"""Shim for editable installs on environments without the `wheel`
package (offline boxes): `python setup.py develop` or
`pip install -e . --no-build-isolation`. All metadata lives in
pyproject.toml."""

from setuptools import setup

setup()
