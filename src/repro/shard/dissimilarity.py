"""Inter-PST context-tree dissimilarity over flat exports.

The cross-shard merge criterion generalizes the paper's §4.5 overlap
test — which needs the member sequences of both clusters — to a pair
of cluster *models* living on different shards, where shipping members
is exactly what sharding is trying to avoid. Instead we compare the
models directly, in the spirit of the context-tree distances of
Leonardi et al., "Detecting phylogenetic relations out from sparse
context trees" (PAPERS.md): two PSTs are close when they predict the
same next-symbol distributions over their significant contexts.

The distance computed here is::

    D(S, T) = (1 / |U|) * sum over u in U of
              || P_S(. | u) - P_T(. | u) ||_1

where ``U`` is the union of the significant context labels exported by
the two trees' :class:`~repro.core.backends.flatten.FlattenedPST`
tables, and ``P_X(. | u)`` is tree X's smoothed next-symbol
distribution at the deepest exported suffix of ``u`` (the same
longest-suffix prediction walk the scoring kernels use). ``D`` is
symmetric, ``D(S, S) = 0``, and ``D`` is bounded by 2 (two
distributions can differ by at most total variation 1 = L1 2).

Everything here is a pure deterministic function of the two flat
exports — no RNG, no engine state — so the cross-shard consolidation
pass that uses it replays bit-identically during crash recovery.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from ..core.backends.flatten import FlattenedPST

__all__ = [
    "context_tree_distance",
    "flat_labels",
    "flat_log_likelihood",
    "predict_row",
]


def flat_labels(flat: FlattenedPST) -> list[tuple[int, ...]]:
    """The context label of every exported row, index-aligned.

    Rows are BFS-ordered parents-before-children, so one forward pass
    over the CSR child tables reconstructs every label: a child's
    label is its edge symbol prepended to its parent's label.
    """
    labels: list[tuple[int, ...]] = [()] * flat.node_count
    offsets = flat.child_offsets
    symbols = flat.child_symbols
    rows = flat.child_rows
    for row in range(flat.node_count):
        label = labels[row]
        for k in range(int(offsets[row]), int(offsets[row + 1])):
            labels[int(rows[k])] = (int(symbols[k]),) + label
    return labels


def predict_row(flat: FlattenedPST, context: Sequence[int]) -> int:
    """Row of the deepest exported suffix of *context* (root = 0).

    Walks the dense transition table from the root, consuming
    *context* right-to-left (the trie is built over reversed
    sequences), and stops at the first missing child — the same
    longest-significant-suffix rule the scoring kernels apply.
    """
    row = 0
    transitions = flat.transitions
    start = max(0, len(context) - flat.max_depth)
    for i in range(len(context) - 1, start - 1, -1):
        nxt = int(transitions[row, context[i]])
        if nxt < 0:
            break
        row = nxt
    return row


def context_tree_distance(a: FlattenedPST, b: FlattenedPST) -> float:
    """Mean L1 distance between the trees' next-symbol distributions.

    Averaged over the union of both trees' exported context labels;
    see the module docstring for the formula and its paper anchor.
    """
    if a.alphabet_size != b.alphabet_size:
        raise ValueError(
            f"alphabet size mismatch: {a.alphabet_size} != {b.alphabet_size}"
        )
    labels = sorted(set(flat_labels(a)) | set(flat_labels(b)))
    probs_a = np.exp(a.log_probs)
    probs_b = np.exp(b.log_probs)
    total = 0.0
    for label in labels:
        row_a = predict_row(a, label)
        row_b = predict_row(b, label)
        total += float(np.abs(probs_a[row_a] - probs_b[row_b]).sum())
    # The union always contains at least the root label ().
    return total / len(labels)


def flat_log_likelihood(flat: FlattenedPST, encoded: Sequence[int]) -> float:
    """Mean per-symbol log-probability of *encoded* under *flat*.

    Each position is predicted from the deepest exported suffix of its
    left context. Used by the PST router to send a sequence to the
    shard whose clusters model it best; returns 0.0 for an empty
    sequence so the router falls through to its hash tie-break.
    """
    if len(encoded) == 0:
        return 0.0
    log_probs = flat.log_probs
    transitions = flat.transitions
    max_depth = flat.max_depth
    total = 0.0
    for i, symbol in enumerate(encoded):
        row = 0
        start = max(0, i - max_depth)
        for j in range(i - 1, start - 1, -1):
            nxt = int(transitions[row, encoded[j]])
            if nxt < 0:
                break
            row = nxt
        total += float(log_probs[row, symbol])
    return total / len(encoded)
