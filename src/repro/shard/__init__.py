"""Sharded streaming: horizontal scale-out of the streaming engine.

:class:`ShardedStreamingCluseq` spreads an unbounded stream across N
independent :class:`~repro.stream.engine.StreamingCluseq` shards —
in-process or one OS process each — with deterministic routing, a
shared-nothing per-shard durability story, and a periodic cross-shard
consolidation pass that merges heavily-overlapping clusters via a
context-tree distance over flat PST exports. See ``docs/SHARDING.md``
for the architecture, the on-disk layout and the determinism contract.

Layering: ``repro.shard`` may import :mod:`repro.stream`,
:mod:`repro.core`, :mod:`repro.sequences`, :mod:`repro.obs` and
:mod:`repro.typing`; nothing below it may import this package
(enforced by checker rule CLQ001).
"""

from .dissimilarity import (
    context_tree_distance,
    flat_labels,
    flat_log_likelihood,
    predict_row,
)
from .engine import (
    DISPATCH_FILENAME,
    MANIFEST_FILENAME,
    ROUTER_STATE_FILENAME,
    RUNNERS,
    SHARD_FORMAT,
    LocalShard,
    ShardConfig,
    ShardedStreamingCluseq,
    ShardEngine,
    ShardHandle,
    ShardStats,
    build_shard_engine,
    dispatch_path,
    manifest_path,
    read_manifest,
    router_state_path,
    shard_cluster_summaries,
    shard_dir,
    shard_state_digest,
)
from .plan import ClusterExport, MergeOp, plan_merges
from .router import (
    ROUTERS,
    HashRouter,
    PstRouter,
    Router,
    build_router,
    fnv1a,
)

__all__ = [
    "DISPATCH_FILENAME",
    "MANIFEST_FILENAME",
    "ROUTERS",
    "ROUTER_STATE_FILENAME",
    "RUNNERS",
    "SHARD_FORMAT",
    "ClusterExport",
    "HashRouter",
    "LocalShard",
    "MergeOp",
    "PstRouter",
    "Router",
    "ShardConfig",
    "ShardEngine",
    "ShardHandle",
    "ShardStats",
    "ShardedStreamingCluseq",
    "build_router",
    "build_shard_engine",
    "context_tree_distance",
    "dispatch_path",
    "flat_labels",
    "flat_log_likelihood",
    "fnv1a",
    "manifest_path",
    "plan_merges",
    "predict_row",
    "read_manifest",
    "router_state_path",
    "shard_cluster_summaries",
    "shard_dir",
    "shard_state_digest",
]
