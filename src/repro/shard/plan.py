"""Deterministic cross-shard merge planning.

A consolidation round looks at every *cross-shard* pair of cluster
exports, scores it with
:func:`~repro.shard.dissimilarity.context_tree_distance`, and greedily
merges pairs below the configured threshold — closest pair first, each
cluster consumed at most once as a merge *source*. The keeper of a
pair is the model with more observed mass (``total_symbols``), ties
broken toward the lower ``(shard, cluster_id)``, so the plan is a pure
deterministic function of the exports and can be re-derived
bit-identically during crash recovery.

Clusters whose flat export contains only the root row carry no
significant context structure yet; they are excluded from pairing
(two near-empty models look identical under any model distance, and
merging them would be noise, not signal).
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from ..core.backends.flatten import FlattenedPST
from .dissimilarity import context_tree_distance

__all__ = ["ClusterExport", "MergeOp", "plan_merges"]


@dataclass(frozen=True)
class ClusterExport:
    """One shard-local cluster as seen by the consolidation pass."""

    shard: int
    cluster_id: int
    #: The PST's total observed symbol mass — the keeper rule's weight.
    weight: int
    flat: FlattenedPST


@dataclass(frozen=True)
class MergeOp:
    """Merge cluster (drop_shard, drop_cluster) into (keep_shard, keep_cluster)."""

    keep_shard: int
    keep_cluster: int
    drop_shard: int
    drop_cluster: int
    distance: float


def plan_merges(
    exports: Sequence[Sequence[ClusterExport]],
    threshold: float,
) -> tuple[list[MergeOp], int]:
    """Plan cross-shard merges over per-shard *exports*.

    Returns ``(ops, pairs_scored)``: the ordered merge operations and
    the number of cross-shard pairs that were distance-scored (the
    ``shard.pairs_scored`` metric).
    """
    candidates: list[ClusterExport] = [
        export
        for shard_exports in exports
        for export in shard_exports
        if export.flat.node_count > 1
    ]
    scored: list[tuple[float, ClusterExport, ClusterExport]] = []
    pairs = 0
    for i, a in enumerate(candidates):
        for b in candidates[i + 1 :]:
            if a.shard == b.shard:
                continue
            pairs += 1
            distance = context_tree_distance(a.flat, b.flat)
            if distance <= threshold:
                scored.append((distance, a, b))
    scored.sort(
        key=lambda item: (
            item[0],
            item[1].shard,
            item[1].cluster_id,
            item[2].shard,
            item[2].cluster_id,
        )
    )
    dropped: set[tuple[int, int]] = set()
    ops: list[MergeOp] = []
    for distance, a, b in scored:
        key_a = (a.shard, a.cluster_id)
        key_b = (b.shard, b.cluster_id)
        if key_a in dropped or key_b in dropped:
            continue
        # Keeper = heavier model; exact-weight ties keep the lower
        # (shard, cluster_id) so the choice never depends on pair order.
        if (a.weight, key_b) > (b.weight, key_a):
            keep, drop = a, b
        else:
            keep, drop = b, a
        dropped.add((drop.shard, drop.cluster_id))
        ops.append(
            MergeOp(
                keep_shard=keep.shard,
                keep_cluster=keep.cluster_id,
                drop_shard=drop.shard,
                drop_cluster=drop.cluster_id,
                distance=distance,
            )
        )
    return ops, pairs
