"""Multi-process shard runner: one OS process per shard.

:class:`ProcessShard` satisfies the same
:class:`~repro.shard.engine.ShardHandle` protocol as the in-process
:class:`~repro.shard.engine.LocalShard`, but hosts its
:class:`~repro.shard.engine.ShardEngine` in a dedicated child process,
so N shards cluster on N cores. The coordinator drives each worker
over a pipe with a strict request/response protocol — one outstanding
command per shard, dispatched in shard-index order — which keeps the
composite engine a deterministic function of the input stream: no
scheduling interleaving can reorder the work a shard observes
(asserted by the differential suite).

Cluster exports for the consolidation pass ship as shared-memory
segments via the PR 5/8 flat-export machinery
(:func:`~repro.core.backends.shm.publish_flat`), with a plain pickled
:class:`FlattenedPST` fallback when ``/dev/shm`` is unavailable; the
coordinator copies the arrays out of the mapping immediately (they are
tiny, and the router snapshot outlives the segment) and tells the
worker to unlink after the round.

Chaos hooks: setting ``REPRO_SHARD_CHAOS_FSYNC_AT=<n>`` (optionally
scoped with ``REPRO_SHARD_CHAOS_SHARD=<i>``) makes the targeted worker
``os._exit`` in place of its *n*-th ``os.fsync`` — the multi-process
analogue of the in-process fault injector in ``tests/chaos.py``,
exercising real process death at every durability boundary.
"""

from __future__ import annotations

import multiprocessing as mp
import os
from collections.abc import Sequence
from dataclasses import asdict
from typing import Any

import numpy as np

from ..core.backends.flatten import FlattenedPST
from ..core.backends.shm import attach_flat, publish_flat
from ..stream.engine import StreamConfig, StreamStats
from .engine import (
    ShardEngine,
    build_shard_engine,
    shard_cluster_summaries,
    shard_state_digest,
)
from .plan import ClusterExport

__all__ = ["ProcessShard", "ShardWorkerError"]

#: Child exit code used by the chaos hook's simulated hard crash.
_CHAOS_EXIT = 17

_START_METHOD = (
    "fork" if "fork" in mp.get_all_start_methods() else "spawn"
)


class ShardWorkerError(RuntimeError):
    """A shard worker died or reported a failure."""


def _install_chaos_hook(shard: int) -> None:
    """Arm the fsync kill switch when the chaos env vars target us."""
    at = os.environ.get("REPRO_SHARD_CHAOS_FSYNC_AT")
    if at is None:
        return
    target = os.environ.get("REPRO_SHARD_CHAOS_SHARD")
    if target is not None and int(target) != shard:
        return
    limit = int(at)
    real_fsync = os.fsync
    state = {"calls": 0}

    def crashing_fsync(fd: int) -> None:
        state["calls"] += 1
        if state["calls"] == limit:
            # Simulated power loss: the write behind this fsync never
            # became durable and no cleanup runs.
            os._exit(_CHAOS_EXIT)
        real_fsync(fd)

    os.fsync = crashing_fsync  # type: ignore[assignment]


def _copy_flat(flat: FlattenedPST) -> FlattenedPST:
    """An owned copy of a (possibly shm-backed) flat export."""
    return FlattenedPST(
        alphabet_size=flat.alphabet_size,
        max_depth=flat.max_depth,
        significance_threshold=flat.significance_threshold,
        p_min=flat.p_min,
        version=flat.version,
        depths=np.array(flat.depths, copy=True),
        suffix_links=np.array(flat.suffix_links, copy=True),
        child_offsets=np.array(flat.child_offsets, copy=True),
        child_symbols=np.array(flat.child_symbols, copy=True),
        child_rows=np.array(flat.child_rows, copy=True),
        transitions=np.array(flat.transitions, copy=True),
        log_probs=np.array(flat.log_probs, copy=True),
    )


def _worker_main(
    conn: Any,
    shard: int,
    spec: dict[str, Any],
    stream_config: dict[str, Any],
    state_dir: "str | None",
    resume: bool,
) -> None:
    """Command loop hosting one shard engine (runs in the child)."""
    _install_chaos_hook(shard)
    engine: ShardEngine = build_shard_engine(
        spec, StreamConfig.from_dict(stream_config), state_dir, resume
    )
    published: list[Any] = []
    while True:
        try:
            op, payload = conn.recv()
        except EOFError:  # pragma: no cover - coordinator vanished
            break
        try:
            result: Any
            if op == "ingest":
                result = engine.ingest_batch(payload)
            elif op == "apply_plan":
                result = engine.apply_plan(payload["round"], payload["plan"])
            elif op == "export_clusters":
                rows = []
                for cluster in engine.result.clusters:
                    flat = cluster.pst.flattened()
                    try:
                        shm, shm_spec = publish_flat(flat)
                        published.append(shm)
                        rows.append(
                            (
                                cluster.cluster_id,
                                cluster.pst.total_symbols,
                                "shm",
                                shm_spec,
                            )
                        )
                    except OSError:  # pragma: no cover - no /dev/shm
                        rows.append(
                            (
                                cluster.cluster_id,
                                cluster.pst.total_symbols,
                                "flat",
                                flat,
                            )
                        )
                result = rows
            elif op == "release_exports":
                for shm in published:
                    shm.close()
                    shm.unlink()
                published = []
                result = True
            elif op == "export_pst":
                result = None
                for cluster in engine.result.clusters:
                    if cluster.cluster_id == payload:
                        result = cluster.pst.to_dict()
                        break
                if result is None:
                    raise ValueError(f"no cluster {payload} on this shard")
            elif op == "counters":
                result = {
                    "batches": engine.batches_ingested,
                    "last_round": engine.last_round,
                }
            elif op == "stats":
                result = asdict(engine.stats())
            elif op == "state":
                result = shard_state_digest(engine)
            elif op == "summaries":
                result = shard_cluster_summaries(engine)
            elif op == "checkpoint":
                if engine.state_dir is not None:
                    engine.checkpoint()
                result = True
            elif op == "close":
                engine.close()
                conn.send(("ok", True))
                break
            else:
                raise ValueError(f"unknown shard op {op!r}")
        except Exception as exc:  # noqa: BLE001 - report, keep serving
            conn.send(("error", f"{type(exc).__name__}: {exc}"))
            continue
        conn.send(("ok", result))
    conn.close()


class ProcessShard:
    """Coordinator-side handle over one worker process."""

    def __init__(
        self, conn: Any, process: Any, shard: int
    ) -> None:
        self._conn = conn
        self._process = process
        self.shard = shard
        self._batches = 0
        self._last_round = -1

    @classmethod
    def spawn(
        cls,
        shard: int,
        spec: dict[str, Any],
        stream: StreamConfig,
        state_dir: "str | None",
        resume: bool,
    ) -> "ProcessShard":
        # Start the resource tracker *before* forking so every worker
        # inherits it: publisher (worker) and attacher (coordinator)
        # must share one tracker or each side's shutdown sweep
        # double-reports the other's segments (see shm.py docstring).
        from multiprocessing import resource_tracker

        resource_tracker.ensure_running()
        ctx = mp.get_context(_START_METHOD)
        parent_conn, child_conn = ctx.Pipe()
        process = ctx.Process(
            target=_worker_main,
            args=(
                child_conn,
                shard,
                spec,
                stream.to_dict(),
                state_dir,
                resume,
            ),
            daemon=True,
            name=f"cluseq-shard-{shard}",
        )
        process.start()
        child_conn.close()
        handle = cls(parent_conn, process, shard)
        counters = handle._call("counters", None)
        handle._batches = int(counters["batches"])
        handle._last_round = int(counters["last_round"])
        return handle

    def _call(self, op: str, payload: Any) -> Any:
        try:
            self._conn.send((op, payload))
            status, result = self._conn.recv()
        except (EOFError, BrokenPipeError, OSError) as exc:
            raise ShardWorkerError(
                f"shard {self.shard} worker died mid-{op} "
                f"(exitcode={self._process.exitcode})"
            ) from exc
        if status == "error":
            raise ShardWorkerError(f"shard {self.shard}: {result}")
        return result

    @property
    def batches(self) -> int:
        return self._batches

    @property
    def last_round(self) -> int:
        return self._last_round

    def ingest_batch(
        self, batch: Sequence[Sequence[int]]
    ) -> "list[int | None]":
        result = self._call("ingest", [list(seq) for seq in batch])
        self._batches += 1
        return list(result)

    def apply_plan(
        self, round_: int, plan: dict[str, Any]
    ) -> tuple[int, int]:
        merged, dropped = self._call(
            "apply_plan", {"round": round_, "plan": plan}
        )
        self._last_round = round_
        return int(merged), int(dropped)

    def export_clusters(self, shard: int) -> list[ClusterExport]:
        exports: list[ClusterExport] = []
        for cluster_id, weight, kind, payload in self._call(
            "export_clusters", None
        ):
            if kind == "shm":
                shm, flat = attach_flat(payload)
                try:
                    owned = _copy_flat(flat)
                finally:
                    del flat
                    shm.close()
                exports.append(
                    ClusterExport(
                        shard=shard,
                        cluster_id=int(cluster_id),
                        weight=int(weight),
                        flat=owned,
                    )
                )
            else:
                exports.append(
                    ClusterExport(
                        shard=shard,
                        cluster_id=int(cluster_id),
                        weight=int(weight),
                        flat=payload,
                    )
                )
        return exports

    def export_pst(self, cluster_id: int) -> dict[str, Any]:
        return dict(self._call("export_pst", cluster_id))

    def release_exports(self) -> None:
        self._call("release_exports", None)

    def checkpoint(self) -> None:
        self._call("checkpoint", None)

    def stats(self) -> StreamStats:
        return StreamStats(**self._call("stats", None))

    def state_digest(self) -> dict[str, Any]:
        return dict(self._call("state", None))

    def cluster_summaries(self) -> list[tuple[int, int, int, int]]:
        return [
            (int(a), int(b), int(c), int(d))
            for a, b, c, d in self._call("summaries", None)
        ]

    def close(self) -> None:
        try:
            self._call("close", None)
        except ShardWorkerError:
            pass
        self._conn.close()
        self._process.join(timeout=5)
        if self._process.is_alive():  # pragma: no cover - stuck worker
            self._process.terminate()
            self._process.join(timeout=5)
