"""Deterministic sequence-to-shard routing.

Two routers share one tiny interface (:class:`Router`):

* :class:`HashRouter` — FNV-1a over the symbol ids, mod shard count.
  Stateless, uniform, and stable across runs and platforms: the same
  sequence always lands on the same shard, which is what makes the
  recorded dispatch log replayable.
* :class:`PstRouter` — content-based assignment: a sequence goes to
  the shard whose cluster models give it the highest mean
  log-likelihood (via :func:`~repro.shard.dissimilarity.flat_log_likelihood`
  over the shards' :class:`FlattenedPST` exports). The snapshot it
  scores against refreshes only at consolidation rounds and is
  persisted atomically alongside the dispatch log, so routing is a
  deterministic function of (snapshot round, sequence) — never of
  in-flight shard state. Before the first snapshot (or for shards with
  no exportable clusters) it falls back to the hash route.

Routing decisions are additionally *recorded* per batch in the
dispatch write-ahead log; crash recovery re-partitions from the
recorded routes and never re-runs a router, so even a router bug
could not break replay determinism.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import Any

import numpy as np

from ..core.backends.flatten import FlattenedPST
from .dissimilarity import flat_log_likelihood

__all__ = [
    "ROUTERS",
    "HashRouter",
    "PstRouter",
    "Router",
    "build_router",
    "fnv1a",
]

#: Recognized router names (the ``ShardConfig.router`` values).
ROUTERS = ("hash", "pst")

_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3
_MASK = (1 << 64) - 1


def fnv1a(symbols: Sequence[int]) -> int:
    """64-bit FNV-1a over a symbol-id sequence (platform-independent)."""
    digest = _FNV_OFFSET
    for symbol in symbols:
        # Mix each id as its own octet stream so ids >= 256 still
        # hash consistently (symbol ids are small non-negative ints).
        value = int(symbol)
        while True:
            digest ^= value & 0xFF
            digest = (digest * _FNV_PRIME) & _MASK
            value >>= 8
            if value == 0:
                break
    return digest


class Router:
    """Assigns each encoded sequence to a shard index in ``[0, shards)``."""

    name = "base"

    def __init__(self, shards: int) -> None:
        if shards < 1:
            raise ValueError("shards must be >= 1")
        self.shards = shards

    def route(self, encoded: Sequence[int]) -> int:
        raise NotImplementedError

    def refresh(
        self, exports: Sequence[Sequence["Any"]], round_: int
    ) -> None:
        """Observe per-shard cluster exports after a consolidation round.

        *exports* is one list of :class:`~repro.shard.plan.ClusterExport`
        per shard. Stateless routers ignore it.
        """

    def state_dict(self) -> dict[str, Any] | None:
        """Serializable snapshot, or ``None`` for stateless routers."""
        return None

    def load_state(self, state: dict[str, Any]) -> None:
        """Restore a snapshot produced by :meth:`state_dict`."""


class HashRouter(Router):
    """Uniform, stateless routing by sequence content hash."""

    name = "hash"

    def route(self, encoded: Sequence[int]) -> int:
        if self.shards == 1:
            return 0
        return fnv1a(encoded) % self.shards


def _flat_to_jsonable(flat: FlattenedPST) -> dict[str, Any]:
    return {
        "alphabet_size": flat.alphabet_size,
        "max_depth": flat.max_depth,
        "significance_threshold": flat.significance_threshold,
        "p_min": flat.p_min,
        "version": flat.version,
        "depths": flat.depths.tolist(),
        "suffix_links": flat.suffix_links.tolist(),
        "child_offsets": flat.child_offsets.tolist(),
        "child_symbols": flat.child_symbols.tolist(),
        "child_rows": flat.child_rows.tolist(),
        "transitions": flat.transitions.tolist(),
        "log_probs": flat.log_probs.tolist(),
    }


def _flat_from_jsonable(data: dict[str, Any]) -> FlattenedPST:
    alphabet_size = int(data["alphabet_size"])
    return FlattenedPST(
        alphabet_size=alphabet_size,
        max_depth=int(data["max_depth"]),
        significance_threshold=int(data["significance_threshold"]),
        p_min=float(data["p_min"]),
        version=int(data["version"]),
        depths=np.asarray(data["depths"], dtype=np.int32),
        suffix_links=np.asarray(data["suffix_links"], dtype=np.int32),
        child_offsets=np.asarray(data["child_offsets"], dtype=np.int32),
        child_symbols=np.asarray(data["child_symbols"], dtype=np.int32),
        child_rows=np.asarray(data["child_rows"], dtype=np.int32),
        transitions=np.asarray(data["transitions"], dtype=np.int32).reshape(
            len(data["depths"]), alphabet_size
        ),
        log_probs=np.asarray(data["log_probs"], dtype=np.float64).reshape(
            len(data["depths"]), alphabet_size
        ),
    )


class PstRouter(HashRouter):
    """Route to the shard whose cluster PSTs best explain the sequence.

    Falls back to the hash route while no snapshot exists and breaks
    exact score ties toward the lower shard index (strict ``>``
    comparison), so the decision is deterministic bit-for-bit.
    """

    name = "pst"

    def __init__(self, shards: int) -> None:
        super().__init__(shards)
        #: One list of flat exports per shard, refreshed at
        #: consolidation rounds only.
        self._snapshot: list[list[FlattenedPST]] = [[] for _ in range(shards)]
        self._round = 0

    def route(self, encoded: Sequence[int]) -> int:
        best_shard = -1
        best_score = 0.0
        for shard, flats in enumerate(self._snapshot):
            for flat in flats:
                score = flat_log_likelihood(flat, encoded)
                if best_shard < 0 or score > best_score:
                    best_shard = shard
                    best_score = score
        if best_shard < 0:
            return super().route(encoded)
        return best_shard

    def refresh(
        self, exports: Sequence[Sequence["Any"]], round_: int
    ) -> None:
        self._snapshot = [
            [export.flat for export in shard_exports]
            for shard_exports in exports
        ]
        self._round = round_

    def state_dict(self) -> dict[str, Any] | None:
        return {
            "name": self.name,
            "shards": self.shards,
            "round": self._round,
            "snapshot": [
                [_flat_to_jsonable(flat) for flat in flats]
                for flats in self._snapshot
            ],
        }

    def load_state(self, state: dict[str, Any]) -> None:
        if int(state.get("shards", self.shards)) != self.shards:
            raise ValueError(
                f"router snapshot is for {state.get('shards')} shards, "
                f"engine has {self.shards}"
            )
        self._round = int(state.get("round", 0))
        self._snapshot = [
            [_flat_from_jsonable(entry) for entry in flats]
            for flats in state.get("snapshot", [])
        ]
        while len(self._snapshot) < self.shards:
            self._snapshot.append([])


def build_router(name: str, shards: int) -> Router:
    """Router factory for :class:`ShardConfig.router` names."""
    if name == "hash":
        return HashRouter(shards)
    if name == "pst":
        return PstRouter(shards)
    raise ValueError(f"unknown router {name!r} (expected one of {ROUTERS})")
