"""Sharded streaming CLUSEQ: horizontal scale-out with consolidation.

:class:`ShardedStreamingCluseq` partitions an incoming stream across
``N`` independent :class:`~repro.stream.engine.StreamingCluseq` shards
(one :class:`ShardEngine` each), routed by content hash or by model
likelihood (:mod:`repro.shard.router`). Each shard keeps its own WAL +
checkpoint state directory and stays bit-deterministic exactly as the
single-shard engine does; a periodic **cross-shard consolidation**
pass compares cluster PSTs across shards with the context-tree
distance of :mod:`repro.shard.dissimilarity` and merges
heavily-overlapping clusters (:mod:`repro.shard.plan`), generalizing
the paper's §4.5 overlap test to models that never share members.

Durability protocol (``repro.shard/v1`` state layout)::

    state_dir/
      manifest.json     # config + cold-start spec (atomic write)
      dispatch.jsonl    # coordinator WAL: batches w/ routes + plans
      router.json       # PST-router snapshot (atomic, pst router only)
      shard-00/         # ordinary StreamingCluseq state dir
      shard-01/
      ...

Write ordering per global batch: the batch (with its per-sequence
routes) is appended to ``dispatch.jsonl`` and fsynced *before* any
shard sees a sub-batch, so the coordinator log is always a superset of
every shard's journal. A consolidation round writes ``router.json``
(if stateful), then the plan record, then applies shard-local plans —
each shard write-aheads the plan into its own journal before mutating
state. Recovery therefore never invents work: shards first recover
themselves (checkpoint + journal replay, batches *and* plans
interleaved in order), then the coordinator scans ``dispatch.jsonl``
from the top and rolls forward anything a shard had not made durable,
re-partitioning from the *recorded* routes. A consolidation round is
re-derived from scratch only when its record is missing entirely —
i.e. the crash hit before the plan became durable, at which point
every shard provably holds the exact pre-consolidation state, and the
plan is a deterministic function of that state.

With ``shards=1`` and the hash router, every global batch is
dispatched whole to shard 0, so the composite is bit-identical to a
plain ``StreamingCluseq`` run (asserted by the differential suite).
"""

from __future__ import annotations

import json
import os
from collections.abc import Iterable, Sequence
# ``replace`` is aliased so CLQ008's conservative os.replace matcher
# doesn't mistake a dataclass copy for a filesystem rename.
from dataclasses import asdict, dataclass, field
from dataclasses import replace as dc_replace
from typing import Any, Protocol, Union

from ..core.persistence import result_to_dict
from ..core.pst import ProbabilisticSuffixTree
from ..obs import get_logger, get_registry, span
from ..sequences.alphabet import Alphabet
from ..stream.checkpoint import (
    CheckpointError,
    journal_path,
    write_json_atomic,
)
from ..stream.engine import StreamConfig, StreamingCluseq, StreamStats
from ..stream.journal import (
    BatchRecord,
    JournalError,
    StreamJournal,
    read_journal,
)
from .plan import ClusterExport, plan_merges
from .router import ROUTERS, Router, build_router

_logger = get_logger("shard.engine")

PathLike = Union[str, "os.PathLike[str]"]

#: On-disk schema identifier for the coordinator manifest.
SHARD_FORMAT = "repro.shard/v1"
MANIFEST_FILENAME = "manifest.json"
DISPATCH_FILENAME = "dispatch.jsonl"
ROUTER_STATE_FILENAME = "router.json"

#: Recognized runner names (the ``ShardConfig.runner`` values).
RUNNERS = ("inprocess", "process")

__all__ = [
    "DISPATCH_FILENAME",
    "MANIFEST_FILENAME",
    "ROUTER_STATE_FILENAME",
    "RUNNERS",
    "SHARD_FORMAT",
    "LocalShard",
    "ShardConfig",
    "ShardEngine",
    "ShardHandle",
    "ShardStats",
    "ShardedStreamingCluseq",
    "build_shard_engine",
    "dispatch_path",
    "manifest_path",
    "read_manifest",
    "router_state_path",
    "shard_cluster_summaries",
    "shard_dir",
    "shard_state_digest",
]


def manifest_path(state_dir: PathLike) -> str:
    """Canonical manifest location inside a sharded state directory."""
    return os.path.join(os.fspath(state_dir), MANIFEST_FILENAME)


def dispatch_path(state_dir: PathLike) -> str:
    """Canonical coordinator-WAL location."""
    return os.path.join(os.fspath(state_dir), DISPATCH_FILENAME)


def router_state_path(state_dir: PathLike) -> str:
    """Canonical router-snapshot location (PST router only)."""
    return os.path.join(os.fspath(state_dir), ROUTER_STATE_FILENAME)


def shard_dir(state_dir: PathLike, shard: int) -> str:
    """Per-shard state directory (an ordinary stream state dir)."""
    return os.path.join(os.fspath(state_dir), f"shard-{shard:02d}")


@dataclass(frozen=True)
class ShardConfig:
    """Coordinator-level knobs; per-shard behavior lives in ``stream``.

    ``consolidate_every`` counts *global* batches between cross-shard
    consolidation rounds (0 disables them); it is independent of the
    per-shard §4.5 dismissal schedule in ``stream.consolidate_every``.
    ``merge_threshold`` is the context-tree distance at or below which
    two cross-shard clusters merge (range [0, 2]; see
    :mod:`repro.shard.dissimilarity`).
    """

    shards: int = 2
    router: str = "hash"
    runner: str = "inprocess"
    consolidate_every: int = 16
    merge_threshold: float = 0.25
    stream: StreamConfig = field(default_factory=StreamConfig)

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise ValueError("shards must be >= 1")
        if self.router not in ROUTERS:
            raise ValueError(
                f"unknown router {self.router!r} (expected one of {ROUTERS})"
            )
        if self.runner not in RUNNERS:
            raise ValueError(
                f"unknown runner {self.runner!r} (expected one of {RUNNERS})"
            )
        if self.consolidate_every < 0:
            raise ValueError("consolidate_every must be >= 0")
        if not 0.0 <= self.merge_threshold <= 2.0:
            raise ValueError("merge_threshold must be within [0, 2]")

    def to_dict(self) -> dict[str, Any]:
        return {
            "shards": self.shards,
            "router": self.router,
            "runner": self.runner,
            "consolidate_every": self.consolidate_every,
            "merge_threshold": self.merge_threshold,
            "stream": self.stream.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "ShardConfig":
        return cls(
            shards=int(data["shards"]),
            router=str(data["router"]),
            runner=str(data["runner"]),
            consolidate_every=int(data["consolidate_every"]),
            merge_threshold=float(data["merge_threshold"]),
            stream=StreamConfig.from_dict(data["stream"]),
        )


@dataclass(frozen=True)
class ShardStats:
    """Aggregated run statistics across every shard."""

    shards: int
    batches: int
    sequences: int
    absorbed: int
    outliers: int
    clusters: int
    clusters_spawned: int
    clusters_dismissed: int
    consolidations: int
    cross_merges: int
    per_shard: tuple[StreamStats, ...]

    def to_dict(self) -> dict[str, Any]:
        return {
            "shards": self.shards,
            "batches": self.batches,
            "sequences": self.sequences,
            "absorbed": self.absorbed,
            "outliers": self.outliers,
            "clusters": self.clusters,
            "clusters_spawned": self.clusters_spawned,
            "clusters_dismissed": self.clusters_dismissed,
            "consolidations": self.consolidations,
            "cross_merges": self.cross_merges,
            "per_shard": [stats.to_dict() for stats in self.per_shard],
        }


class ShardEngine(StreamingCluseq):
    """One shard: a ``StreamingCluseq`` that can apply merge plans.

    Adds exactly one piece of state — ``last_round``, the newest
    cross-shard consolidation round already folded into this shard —
    checkpointed via the ``extra`` hook and used during recovery to
    skip plans the checkpoint already reflects. Plan application is
    write-ahead journaled into the shard's own WAL (a ``consolidate``
    record at the current batch ordinal) so per-shard recovery replays
    batches and plans interleaved in their original order.
    """

    def __init__(
        self,
        result: Any,
        config: StreamConfig | None = None,
        alphabet: Alphabet | None = None,
        state_dir: PathLike | None = None,
    ) -> None:
        self.last_round = -1
        super().__init__(
            result, config=config, alphabet=alphabet, state_dir=state_dir
        )

    def _checkpoint_extra(self) -> dict[str, Any]:
        return {"last_round": self.last_round}

    def _restore_extra(self, extra: dict[str, Any]) -> None:
        self.last_round = int(extra.get("last_round", -1))

    def apply_plan(self, round_: int, plan: dict[str, Any]) -> tuple[int, int]:
        """Apply one shard-local consolidation plan; returns (merged, dropped).

        *plan* holds ``merge`` ops (fold a serialized foreign PST into
        a local cluster) and ``dismiss`` ops (local cluster ids whose
        model moved to another shard). Journaled before mutation
        unless replaying.
        """
        if self._journal is not None and not self._replaying:
            self._journal.append_plan(self._batches, round_, plan)
        merged = 0
        by_id = {
            cluster.cluster_id: cluster for cluster in self.result.clusters
        }
        for op in plan.get("merge", ()):
            cluster = by_id.get(int(op["into"]))
            if cluster is None:
                raise ValueError(
                    f"merge target cluster {op['into']} not on this shard"
                )
            cluster.pst.merge_counts(
                ProbabilisticSuffixTree.from_dict(op["pst"])
            )
            merged += 1
        drop_ids = {int(cid) for cid in plan.get("dismiss", ())}
        if drop_ids:
            self.result.clusters = [
                cluster
                for cluster in self.result.clusters
                if cluster.cluster_id not in drop_ids
            ]
            for index, ids in self.result.assignments.items():
                if ids & drop_ids:
                    self.result.assignments[index] = ids - drop_ids
            self._clusters_dismissed += len(drop_ids)
        self.last_round = round_
        return merged, len(drop_ids)

    @classmethod
    def recover(cls, state_dir: PathLike) -> "ShardEngine":
        """Checkpoint restore + interleaved batch/plan journal replay."""
        engine = cls.restore(state_dir)
        assert isinstance(engine, ShardEngine)
        replayed = 0
        with engine.replaying(), span("stream.recover"):
            for record in read_journal(journal_path(state_dir)):
                if isinstance(record, BatchRecord):
                    if record.ordinal < engine._batches:
                        continue
                    engine.replay_batch(record)
                    replayed += 1
                elif record.round > engine.last_round:
                    engine.apply_plan(record.round, record.plan)
        registry = get_registry()
        if registry.enabled:
            registry.counter("stream.recover_passes").inc()
            registry.counter("stream.recover_replayed_batches").inc(replayed)
        return engine


def build_shard_engine(
    spec: dict[str, Any],
    stream_config: StreamConfig,
    state_dir: PathLike | None,
    resume: bool,
) -> ShardEngine:
    """Build or recover one shard engine from the manifest *spec*.

    On resume, a shard directory holding no durable checkpoint (the
    coordinator crashed before that shard's initial checkpoint became
    durable) is cold-started in place: the shard provably processed
    nothing, so starting fresh is the bit-exact continuation.
    """
    if resume and state_dir is not None:
        try:
            return ShardEngine.recover(state_dir)
        except CheckpointError:
            pass
    symbols = spec.get("alphabet")
    alphabet = Alphabet(symbols) if symbols else None
    engine = ShardEngine.cold_start(
        alphabet_size=int(spec["alphabet_size"]),
        alphabet=alphabet,
        significance_threshold=int(spec["significance_threshold"]),
        similarity_threshold=float(spec["similarity_threshold"]),
        max_depth=int(spec["max_depth"]),
        p_min=spec.get("p_min"),
        max_nodes=spec.get("max_nodes"),
        prune_strategy=str(spec.get("prune_strategy", "paper")),
        config=stream_config,
        state_dir=state_dir,
    )
    assert isinstance(engine, ShardEngine)
    return engine


def shard_state_digest(engine: ShardEngine) -> dict[str, Any]:
    """A JSON-able digest of everything recovery must reproduce.

    Used by the chaos/differential suites (and the multi-process
    runner's ``state`` op) to compare recovered shards bit-for-bit
    against the uncrashed run; excludes ``checkpoints_written``, which
    legitimately differs across crash schedules.
    """
    stats = asdict(engine.stats())
    stats.pop("checkpoints_written")
    return {
        "result": result_to_dict(engine.result, engine.alphabet),
        "pool": engine.pool.to_list(),
        "stats": stats,
        "last_round": engine.last_round,
    }


def shard_cluster_summaries(
    engine: ShardEngine,
) -> list[tuple[int, int, int, int]]:
    """Per-cluster ``(cluster_id, size, created_at, nodes)`` rows."""
    return [
        (
            cluster.cluster_id,
            cluster.size,
            cluster.created_at_iteration,
            cluster.pst.node_count,
        )
        for cluster in engine.result.clusters
    ]


class ShardHandle(Protocol):
    """Uniform coordinator-side view of one shard, local or remote."""

    @property
    def batches(self) -> int: ...

    @property
    def last_round(self) -> int: ...

    def ingest_batch(
        self, batch: Sequence[Sequence[int]]
    ) -> "list[int | None]": ...

    def apply_plan(
        self, round_: int, plan: dict[str, Any]
    ) -> tuple[int, int]: ...

    def export_clusters(self, shard: int) -> list[ClusterExport]: ...

    def export_pst(self, cluster_id: int) -> dict[str, Any]: ...

    def release_exports(self) -> None: ...

    def checkpoint(self) -> None: ...

    def stats(self) -> StreamStats: ...

    def state_digest(self) -> dict[str, Any]: ...

    def cluster_summaries(self) -> list[tuple[int, int, int, int]]: ...

    def close(self) -> None: ...


class LocalShard:
    """In-process shard handle — the reference runner."""

    def __init__(self, engine: ShardEngine) -> None:
        self.engine = engine

    @property
    def batches(self) -> int:
        return self.engine.batches_ingested

    @property
    def last_round(self) -> int:
        return self.engine.last_round

    def ingest_batch(
        self, batch: Sequence[Sequence[int]]
    ) -> "list[int | None]":
        return self.engine.ingest_batch(batch)

    def apply_plan(
        self, round_: int, plan: dict[str, Any]
    ) -> tuple[int, int]:
        return self.engine.apply_plan(round_, plan)

    def export_clusters(self, shard: int) -> list[ClusterExport]:
        return [
            ClusterExport(
                shard=shard,
                cluster_id=cluster.cluster_id,
                weight=cluster.pst.total_symbols,
                flat=cluster.pst.flattened(),
            )
            for cluster in self.engine.result.clusters
        ]

    def export_pst(self, cluster_id: int) -> dict[str, Any]:
        for cluster in self.engine.result.clusters:
            if cluster.cluster_id == cluster_id:
                return cluster.pst.to_dict()
        raise ValueError(f"no cluster {cluster_id} on this shard")

    def release_exports(self) -> None:
        """Nothing shipped, nothing to release."""

    def checkpoint(self) -> None:
        if self.engine.state_dir is not None:
            self.engine.checkpoint()

    def stats(self) -> StreamStats:
        return self.engine.stats()

    def state_digest(self) -> dict[str, Any]:
        return shard_state_digest(self.engine)

    def cluster_summaries(self) -> list[tuple[int, int, int, int]]:
        return shard_cluster_summaries(self.engine)

    def close(self) -> None:
        self.engine.close()


def read_manifest(state_dir: PathLike) -> dict[str, Any]:
    """Load and validate the coordinator manifest."""
    target = manifest_path(state_dir)
    if not os.path.exists(target):
        raise CheckpointError(f"no shard manifest at {target}")
    with open(target, encoding="utf-8") as handle:
        try:
            payload = json.load(handle)
        except json.JSONDecodeError as exc:
            raise CheckpointError(f"{target}: corrupt manifest") from exc
    if (
        not isinstance(payload, dict)
        or payload.get("format") != SHARD_FORMAT
    ):
        raise CheckpointError(
            f"{target}: not a {SHARD_FORMAT} manifest"
        )
    return payload


def _make_handles(
    config: ShardConfig,
    spec: dict[str, Any],
    state_dir: "str | None",
    resume: bool,
) -> list[ShardHandle]:
    dirs: list[str | None] = [
        shard_dir(state_dir, i) if state_dir is not None else None
        for i in range(config.shards)
    ]
    if config.runner == "process":
        from .proc import ProcessShard

        return [
            ProcessShard.spawn(
                shard=i,
                spec=spec,
                stream=config.stream,
                state_dir=dirs[i],
                resume=resume,
            )
            for i in range(config.shards)
        ]
    return [
        LocalShard(build_shard_engine(spec, config.stream, dirs[i], resume))
        for i in range(config.shards)
    ]


class ShardedStreamingCluseq:
    """N independent streaming shards behind the single-engine API.

    Construct with :meth:`cold_start` or :meth:`recover`; see the
    module docstring for the durability protocol. Public surface
    mirrors :class:`StreamingCluseq`: ``ingest`` / ``ingest_batch`` /
    ``flush`` / ``run`` / ``stats`` / ``checkpoint`` / ``close``.
    """

    def __init__(
        self,
        handles: Sequence[ShardHandle],
        config: ShardConfig,
        *,
        spec: dict[str, Any],
        state_dir: PathLike | None = None,
        router: Router | None = None,
    ) -> None:
        if len(handles) != config.shards:
            raise ValueError(
                f"{len(handles)} handles for {config.shards} shards"
            )
        self._handles = list(handles)
        self.config = config
        self.spec = dict(spec)
        self.state_dir = (
            os.fspath(state_dir) if state_dir is not None else None
        )
        symbols = self.spec.get("alphabet")
        self.alphabet = Alphabet(symbols) if symbols else None
        self.router = (
            router
            if router is not None
            else build_router(config.router, config.shards)
        )
        self._pending: list[list[int]] = []
        self._batches = 0
        self._sequences = 0
        self._rounds = 0
        self._cross_merges = 0
        self._dispatch: StreamJournal | None = None
        if self.state_dir is not None:
            self._dispatch = StreamJournal(
                dispatch_path(self.state_dir),
                fsync=config.stream.journal_fsync,
            )

    # -- construction ------------------------------------------------------------

    @classmethod
    def cold_start(
        cls,
        alphabet_size: "int | None" = None,
        *,
        alphabet: "Alphabet | None" = None,
        significance_threshold: int = 3,
        similarity_threshold: float = 1.2,
        max_depth: int = 4,
        p_min: "float | None" = None,
        max_nodes: "int | None" = None,
        prune_strategy: str = "paper",
        config: "ShardConfig | None" = None,
        state_dir: PathLike | None = None,
    ) -> "ShardedStreamingCluseq":
        """A sharded engine with no clusters yet.

        Persists the manifest (config + this cold-start spec) before
        creating any shard so a crash at any later point can always
        rebuild the same topology.
        """
        config = config if config is not None else ShardConfig()
        if alphabet is not None:
            alphabet_size = alphabet.size
        if alphabet_size is None or alphabet_size <= 0:
            raise ValueError("pass alphabet or a positive alphabet_size")
        symbols = list(alphabet.symbols) if alphabet is not None else None
        spec: dict[str, Any] = {
            # Embedded only for string alphabets, mirroring
            # ``result_to_dict`` — a resumed CLI run re-encodes text
            # identically; non-string alphabets stay caller-side.
            "alphabet": (
                "".join(symbols)
                if symbols is not None
                and all(isinstance(s, str) for s in symbols)
                else None
            ),
            "alphabet_size": alphabet_size,
            "significance_threshold": significance_threshold,
            "similarity_threshold": similarity_threshold,
            "max_depth": max_depth,
            "p_min": p_min,
            "max_nodes": max_nodes,
            "prune_strategy": prune_strategy,
        }
        root = os.fspath(state_dir) if state_dir is not None else None
        if root is not None:
            os.makedirs(root, exist_ok=True)
            write_json_atomic(
                manifest_path(root),
                {
                    "format": SHARD_FORMAT,
                    "config": config.to_dict(),
                    "spec": spec,
                },
            )
        handles = _make_handles(config, spec, root, resume=False)
        return cls(handles, config, spec=spec, state_dir=root)

    @classmethod
    def recover(
        cls, state_dir: PathLike, runner: "str | None" = None
    ) -> "ShardedStreamingCluseq":
        """Rebuild the whole sharded engine after a crash.

        Each shard recovers itself first; the coordinator then scans
        its dispatch WAL from the top and rolls forward any batch or
        plan a shard had not made durable. *runner* overrides the
        manifest's runner (a state dir written in-process can resume
        multi-process and vice versa — the on-disk format is shared).
        """
        manifest = read_manifest(state_dir)
        config = ShardConfig.from_dict(manifest["config"])
        if runner is not None and runner != config.runner:
            config = dc_replace(config, runner=runner)
        spec = dict(manifest["spec"])
        root = os.fspath(state_dir)
        handles = _make_handles(config, spec, root, resume=True)
        engine = cls(handles, config, spec=spec, state_dir=root)
        engine._load_router_state()
        engine._roll_forward()
        registry = get_registry()
        if registry.enabled:
            registry.counter("shard.recover_passes").inc()
        return engine

    # -- ingestion ----------------------------------------------------------------

    def ingest(self, encoded: Sequence[int]) -> None:
        """Buffer one encoded sequence; dispatches a full micro-batch."""
        if len(encoded) == 0:
            return
        self._pending.append(list(encoded))
        if len(self._pending) >= self.config.stream.batch_size:
            batch, self._pending = self._pending, []
            self.ingest_batch(batch)

    def flush(self) -> None:
        """Dispatch any buffered partial batch."""
        if self._pending:
            batch, self._pending = self._pending, []
            self.ingest_batch(batch)

    def ingest_batch(
        self, batch: Sequence[Sequence[int]]
    ) -> "list[int | None]":
        """Route, write-ahead and dispatch one global micro-batch.

        Returns per-sequence cluster assignments (cluster ids are only
        unique *per shard*; pair with :meth:`routes_for` when global
        identity matters). Empty sequences are dropped before
        journaling, mirroring the single-shard engine.
        """
        cleaned = [list(seq) for seq in batch if len(seq) > 0]
        if not cleaned:
            return []
        routes = [self.router.route(seq) for seq in cleaned]
        if self._dispatch is not None:
            self._dispatch.append_batch(self._batches, cleaned, routes=routes)
        assigned = self._dispatch_batch(cleaned, routes)
        self._batches += 1
        self._sequences += len(cleaned)
        registry = get_registry()
        if registry.enabled:
            registry.counter("shard.batches").inc()
            registry.counter("shard.sequences").inc(len(cleaned))
        cfg = self.config
        if (
            cfg.consolidate_every > 0
            and self._batches % cfg.consolidate_every == 0
        ):
            self._consolidate(self._batches // cfg.consolidate_every)
        return assigned

    def run(self, source: Iterable[Sequence[int]]) -> ShardStats:
        """Consume *source* to exhaustion (micro-batching internally)."""
        for encoded in source:
            self.ingest(encoded)
        self.flush()
        return self.stats()

    def routes_for(self, batch: Sequence[Sequence[int]]) -> list[int]:
        """The shard each sequence of *batch* would route to right now."""
        return [self.router.route(list(seq)) for seq in batch]

    def _partition(
        self, sequences: list[list[int]], routes: list[int]
    ) -> list[list[list[int]]]:
        subs: list[list[list[int]]] = [[] for _ in self._handles]
        for seq, route in zip(sequences, routes):
            subs[route].append(seq)
        return subs

    def _dispatch_batch(
        self, cleaned: list[list[int]], routes: list[int]
    ) -> "list[int | None]":
        """Send routed sub-batches to their shards, in shard order."""
        subs = self._partition(cleaned, routes)
        with span("shard.batch") as batch_span:
            if batch_span.span_id is not None:
                batch_span.set_attr("batch", self._batches)
                batch_span.set_attr("size", len(cleaned))
            results: list[list[int | None]] = [[] for _ in self._handles]
            for index, sub in enumerate(subs):
                if sub:
                    results[index] = self._handles[index].ingest_batch(sub)
        cursors = [0] * len(self._handles)
        assigned: list[int | None] = []
        for route in routes:
            assigned.append(results[route][cursors[route]])
            cursors[route] += 1
        return assigned

    # -- consolidation ------------------------------------------------------------

    def _consolidate(self, round_: int) -> None:
        """One cross-shard consolidation round (see module docstring)."""
        registry = get_registry()
        with span("shard.consolidate") as round_span:
            if round_span.span_id is not None:
                round_span.set_attr("round", round_)
            exports = [
                handle.export_clusters(index)
                for index, handle in enumerate(self._handles)
            ]
            ops, pairs = plan_merges(exports, self.config.merge_threshold)
            plans: dict[str, dict[str, Any]] = {}
            for op in ops:
                keeper = plans.setdefault(
                    str(op.keep_shard), {"merge": [], "dismiss": []}
                )
                keeper["merge"].append(
                    {
                        "into": op.keep_cluster,
                        "pst": self._handles[op.drop_shard].export_pst(
                            op.drop_cluster
                        ),
                        "from": [op.drop_shard, op.drop_cluster],
                        "distance": op.distance,
                    }
                )
                dropper = plans.setdefault(
                    str(op.drop_shard), {"merge": [], "dismiss": []}
                )
                dropper["dismiss"].append(op.drop_cluster)
            self.router.refresh(exports, round_)
            if self.state_dir is not None:
                state = self.router.state_dict()
                if state is not None:
                    write_json_atomic(
                        router_state_path(self.state_dir),
                        {
                            "format": SHARD_FORMAT,
                            "round": round_,
                            "router": state,
                        },
                    )
            if self._dispatch is not None:
                # Always durable, even when empty: a present record is
                # recovery's proof the round completed its planning.
                self._dispatch.append_plan(self._batches, round_, plans)
            for index, handle in enumerate(self._handles):
                local = plans.get(str(index))
                if local:
                    handle.apply_plan(round_, local)
            for handle in self._handles:
                handle.release_exports()
        self._rounds += 1
        self._cross_merges += len(ops)
        if registry.enabled:
            registry.counter("shard.consolidations").inc()
            registry.counter("shard.pairs_scored").inc(pairs)
            registry.counter("shard.cross_merges").inc(len(ops))
            registry.gauge("shard.clusters").set(
                sum(handle.stats().clusters for handle in self._handles)
            )
        if ops:
            _logger.info(
                "cross-shard consolidation merged %d cluster(s)",
                len(ops),
                extra={"round": round_, "pairs_scored": pairs},
            )

    # -- recovery -----------------------------------------------------------------

    def _load_router_state(self) -> None:
        if self.state_dir is None:
            return
        target = router_state_path(self.state_dir)
        if not os.path.exists(target):
            return
        with open(target, encoding="utf-8") as handle:
            try:
                payload = json.load(handle)
            except json.JSONDecodeError as exc:
                raise CheckpointError(
                    f"{target}: corrupt router snapshot"
                ) from exc
        self.router.load_state(payload["router"])

    def _roll_forward(self) -> None:
        """Re-drive the dispatch WAL over the recovered shards.

        Scans from the top: recorded routes re-partition each batch
        exactly as the original run did; a shard receives only the
        sub-batches beyond what its own recovery already replayed.
        Plans re-apply wherever a shard's ``last_round`` lags. If a
        consolidation was due at the durable tail but its record is
        missing (crash mid-round, before the plan fsync), the round is
        re-derived from scratch — the shards provably hold the exact
        pre-consolidation state, and planning is deterministic.
        """
        if self.state_dir is None:
            return
        target = dispatch_path(self.state_dir)
        delivered = [0] * len(self._handles)
        durable = [handle.batches for handle in self._handles]
        forwarded_batches = 0
        forwarded_plans = 0
        last_round = 0
        with span("shard.recover"):
            if os.path.exists(target):
                for record in read_journal(target):
                    if isinstance(record, BatchRecord):
                        if record.ordinal != self._batches:
                            raise JournalError(
                                f"dispatch gap: expected batch "
                                f"{self._batches}, found {record.ordinal}"
                            )
                        if record.routes is None or len(
                            record.routes
                        ) != len(record.sequences):
                            raise JournalError(
                                f"{target}: batch {record.ordinal} "
                                "has no usable route record"
                            )
                        subs = self._partition(
                            record.sequences, record.routes
                        )
                        for index, sub in enumerate(subs):
                            if not sub:
                                continue
                            delivered[index] += 1
                            if delivered[index] > durable[index]:
                                self._handles[index].ingest_batch(sub)
                                forwarded_batches += 1
                        self._batches += 1
                        self._sequences += len(record.sequences)
                    else:
                        self._rounds += 1
                        last_round = record.round
                        for index, handle in enumerate(self._handles):
                            local = record.plan.get(str(index))
                            if not local:
                                continue
                            self._cross_merges += len(
                                local.get("dismiss", ())
                            )
                            if record.round > handle.last_round:
                                handle.apply_plan(record.round, local)
                                forwarded_plans += 1
        cfg = self.config
        if (
            cfg.consolidate_every > 0
            and self._batches > 0
            and self._batches % cfg.consolidate_every == 0
            and self._batches // cfg.consolidate_every > last_round
        ):
            self._consolidate(self._batches // cfg.consolidate_every)
        registry = get_registry()
        if registry.enabled:
            registry.counter("shard.rollforward_batches").inc(
                forwarded_batches
            )
            registry.counter("shard.rollforward_plans").inc(forwarded_plans)
        _logger.info(
            "recovered sharded engine",
            extra={
                "state_dir": self.state_dir,
                "batches": self._batches,
                "rolled_batches": forwarded_batches,
                "rolled_plans": forwarded_plans,
            },
        )

    # -- durability / lifecycle ---------------------------------------------------

    def checkpoint(self) -> None:
        """Checkpoint every shard (each write is independently atomic)."""
        for handle in self._handles:
            handle.checkpoint()

    def close(self) -> None:
        """Flush buffered sequences, close the WAL and every shard."""
        self.flush()
        if self._dispatch is not None:
            self._dispatch.close()
        errors: list[str] = []
        for handle in self._handles:
            try:
                handle.close()
            except Exception as exc:  # noqa: BLE001 - best-effort teardown
                errors.append(str(exc))
        if errors:
            _logger.warning(
                "shard teardown reported errors", extra={"errors": errors}
            )

    def __enter__(self) -> "ShardedStreamingCluseq":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- introspection ------------------------------------------------------------

    @property
    def handles(self) -> list[ShardHandle]:
        return list(self._handles)

    @property
    def batches_ingested(self) -> int:
        return self._batches

    @property
    def sequences_ingested(self) -> int:
        return self._sequences

    def shard_states(self) -> list[dict[str, Any]]:
        """Every shard's recovery digest (testing / diagnostics)."""
        return [handle.state_digest() for handle in self._handles]

    def stats(self) -> ShardStats:
        per = tuple(handle.stats() for handle in self._handles)
        return ShardStats(
            shards=len(per),
            batches=self._batches,
            sequences=self._sequences,
            absorbed=sum(stats.absorbed for stats in per),
            outliers=sum(stats.outliers for stats in per),
            clusters=sum(stats.clusters for stats in per),
            clusters_spawned=sum(stats.clusters_spawned for stats in per),
            clusters_dismissed=sum(
                stats.clusters_dismissed for stats in per
            ),
            consolidations=self._rounds,
            cross_merges=self._cross_merges,
            per_shard=per,
        )

    def __repr__(self) -> str:
        return (
            f"ShardedStreamingCluseq(shards={len(self._handles)}, "
            f"batches={self._batches}, sequences={self._sequences})"
        )
