"""Shared type vocabulary for the ``repro`` package.

Central home of the aliases and protocols the rest of the package
annotates with, so "a sequence of symbol ids" or "a probability vector
over the alphabet" is spelled the same way everywhere. The module is
import-light by design (stdlib + numpy typing only; package types are
imported under ``TYPE_CHECKING``), so any layer may depend on it
without creating cycles.

Nothing here exists at runtime beyond the alias objects themselves —
the package behaves identically with typing stripped.
"""

from __future__ import annotations

from collections.abc import Callable, Hashable, Sequence
from typing import TYPE_CHECKING, Optional, Protocol, Union, runtime_checkable

import numpy as np
import numpy.typing as npt

if TYPE_CHECKING:
    from .baselines.base import BaselineResult
    from .core.pst import ProbabilisticSuffixTree
    from .sequences.database import SequenceDatabase

__all__ = [
    "Symbol",
    "EncodedSequence",
    "ProbVector",
    "FloatArray",
    "IntArray",
    "LogSimilarity",
    "SimilarityScore",
    "RandomSeed",
    "ClusterLabel",
    "LabelSequence",
    "PSTFactory",
    "EncodedLookup",
    "SequenceClustererProtocol",
    "SupportsFitPredict",
]

#: One raw sequence element before encoding. Anything hashable can be
#: an alphabet symbol (characters for proteins/text, strings for
#: system calls, ints for pre-encoded data).
Symbol = Hashable

#: A sequence after :class:`~repro.sequences.alphabet.Alphabet`
#: encoding: a list of contiguous symbol ids in ``0 .. n-1``.
EncodedSequence = list[int]

#: A probability vector over the alphabet (non-negative, sums to 1;
#: the §5.2 smoothing floor keeps every entry strictly positive).
ProbVector = npt.NDArray[np.float64]

#: General float/int numpy arrays, for when the probability-vector
#: contract does not hold (histogram counts, divergence matrices, …).
FloatArray = npt.NDArray[np.float64]
IntArray = npt.NDArray[np.int64]

#: A similarity in the log domain (the paper's ``log sim_S(σ)``);
#: ``-inf`` is a valid value meaning "no support".
LogSimilarity = float

#: A similarity back in linear space (``sim_S(σ) ≥ 0``).
SimilarityScore = float

#: Anything accepted to seed a ``numpy`` generator.
#: (typing.Union, not ``|``: evaluated at runtime on py39.)
RandomSeed = Union[int, np.random.SeedSequence, np.random.Generator, None]

#: Ground-truth / predicted cluster identity. ``None`` marks an
#: unassigned (outlier) sequence in prediction output.
ClusterLabel = Optional[Hashable]

#: A full labelling of a database, index-aligned with its records.
LabelSequence = Sequence["ClusterLabel"]

#: Anything that builds a single-sequence PST from one encoded
#: sequence (the §4.1 seed models) — the seam the clusterer exposes
#: for tests and model ablations; bind parameters with
#: ``functools.partial`` around ``build_seed_pst``.
PSTFactory = Callable[[Sequence[int]], "ProbabilisticSuffixTree"]

#: Callable mapping a database index to its encoded sequence.
EncodedLookup = Callable[[int], EncodedSequence]


@runtime_checkable
class SequenceClustererProtocol(Protocol):
    """Structural interface of the Table 2 baseline clusterers.

    Anything with a ``name`` and a ``fit_predict(db, num_clusters)``
    returning a :class:`~repro.baselines.base.BaselineResult` can take
    part in the model-comparison harnesses.
    """

    name: str

    def fit_predict(
        self, db: SequenceDatabase, num_clusters: int
    ) -> BaselineResult:
        """Cluster *db* into at most *num_clusters* groups."""
        ...


@runtime_checkable
class SupportsFitPredict(Protocol):
    """Minimal sklearn-style estimator interface (fit → predict).

    Matches :class:`~repro.core.estimator.CluseqClusterer` and any
    drop-in replacement used by downstream pipelines.
    """

    def fit(self, X: SequenceDatabase, y: object = None) -> SupportsFitPredict:
        """Fit the model to a sequence database."""
        ...

    def predict(self, X: SequenceDatabase) -> list[ClusterLabel]:
        """Cluster ids (or ``None`` for outliers) per record of *X*."""
        ...
