"""Streaming CLUSEQ: online micro-batch clustering over the core engine.

This package layers an *online* mode on top of :mod:`repro.core`:
:class:`StreamingCluseq` consumes micro-batches of encoded sequences,
absorbs joiners into existing cluster PSTs, pools outliers for
periodic re-seeding, decays counts to track drift, and (optionally)
journals + checkpoints its state for crash recovery. See
``docs/STREAMING.md`` for the architecture and on-disk format.

Layering: ``repro.stream`` may import :mod:`repro.core`,
:mod:`repro.sequences` and :mod:`repro.obs`; nothing in
:mod:`repro.core` may import this package (enforced by checker rule
CLQ001).
"""

from .checkpoint import (
    CheckpointError,
    checkpoint_path,
    ensure_resumable,
    journal_path,
    read_checkpoint,
    write_checkpoint,
    write_json_atomic,
)
from .decay import DecayPolicy
from .engine import StreamConfig, StreamingCluseq, StreamStats
from .journal import (
    STREAM_FORMAT,
    BatchRecord,
    JournalError,
    PlanRecord,
    StreamJournal,
    journal_batches_after,
    read_journal,
)
from .pool import OutlierPool
from .sources import (
    DriftingStream,
    batched,
    drifting_markov_stream,
    read_encoded_lines,
)

__all__ = [
    "STREAM_FORMAT",
    "BatchRecord",
    "CheckpointError",
    "DecayPolicy",
    "DriftingStream",
    "JournalError",
    "OutlierPool",
    "PlanRecord",
    "StreamConfig",
    "StreamJournal",
    "StreamStats",
    "StreamingCluseq",
    "batched",
    "checkpoint_path",
    "drifting_markov_stream",
    "ensure_resumable",
    "journal_batches_after",
    "journal_path",
    "read_checkpoint",
    "read_journal",
    "read_encoded_lines",
    "write_checkpoint",
    "write_json_atomic",
]
