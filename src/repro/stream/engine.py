"""The streaming CLUSEQ engine: micro-batch online clustering.

:class:`StreamingCluseq` wraps a fitted (or cold-started)
:class:`~repro.core.cluseq.ClusteringResult` and consumes an unbounded
stream in micro-batches. Per sequence it runs the paper's §4.2–§4.4
join rule — score against every cluster PST, join the best cluster
when the similarity clears the threshold, absorb the best-scoring
segment — exactly as ``assign_and_absorb`` does for one-off use.
Non-joiners accumulate in a bounded :class:`~repro.stream.pool.OutlierPool`
that the periodic maintenance pass mines for *new* clusters via the
paper's §4.1 min-max seeding, so the clustering keeps growing with the
stream instead of being frozen at fit time.

Periodic maintenance (all on deterministic batch-counter schedules):

* **decay** — rescale every cluster PST's counts per the
  :class:`~repro.stream.decay.DecayPolicy`, so models track concept
  drift instead of fossilizing;
* **re-seed** — spawn up to ``reseed_k`` clusters from the outlier
  pool (§4.1 min-max selection), then rescue remaining pool members
  that now clear the threshold against the new models;
* **threshold adjustment** — §4.6's valley rule over a rolling window
  of recent log-similarities;
* **consolidation** — §4.5 dismissal of covered clusters;
* **checkpoint** — durable snapshot (see below).

Durability: with a ``state_dir`` every ingested batch is first
appended to a write-ahead :mod:`journal <repro.stream.journal>` and
the engine periodically writes atomic
:mod:`checkpoints <repro.stream.checkpoint>`.
:meth:`StreamingCluseq.recover` loads the newest checkpoint and
replays the journal suffix; because every decision here is a
deterministic function of (state, batch sequence) — maintenance fires
on batch counters, and the re-seed RNG is derived from
``(seed, batch counter)`` — recovery reproduces the pre-crash state
bit-for-bit.
"""

from __future__ import annotations

import math
import os
from collections.abc import Callable, Iterable, Iterator, Sequence
from contextlib import contextmanager
from dataclasses import dataclass, field
from functools import partial
from typing import Any, Union

import numpy as np

from ..core.backends import (
    BACKENDS,
    PstBatchScorer,
    ScoreMatrixResult,
    resolve_backend,
)
from ..core.cluseq import CluseqParams, ClusteringResult
from ..core.cluster import Cluster, Membership
from ..core.consolidation import consolidate
from ..core.persistence import result_from_dict, result_to_dict
from ..core.pst import ProbabilisticSuffixTree
from ..core.seeding import build_seed_pst, select_seeds
from ..core.similarity import SimilarityResult, similarity
from ..core.smoothing import default_p_min
from ..core.threshold import VALLEY_METHODS
from ..obs import (
    get_logger,
    get_profiler,
    get_registry,
    get_span_exporter,
    new_trace_id,
    span,
)
from ..sequences.alphabet import Alphabet
from ..typing import PSTFactory
from .checkpoint import (
    checkpoint_path,
    journal_path,
    read_checkpoint,
    write_checkpoint,
)
from .decay import DecayPolicy
from .journal import BatchRecord, StreamJournal, journal_batches_after
from .pool import OutlierPool

_logger = get_logger("stream.engine")

PathLike = Union[str, "os.PathLike[str]"]

#: Histogram resolution for the rolling-window valley estimate.
_ADJUST_BUCKETS = 100


@dataclass(frozen=True)
class StreamConfig:
    """Tunable parameters of a streaming run.

    Every interval is measured in ingested micro-batches; ``0``
    disables the corresponding maintenance phase. All schedules key
    off the batch counter (never wall clock), which is what makes
    crash-recovery replay deterministic.
    """

    batch_size: int = 32
    pool_size: int = 512
    reseed_every: int = 4
    reseed_k: int = 2
    reseed_min_pool: int = 8
    sample_multiplier: int = 5
    consolidate_every: int = 16
    min_unique_members: int = 1
    adjust_every: int = 0
    score_window: int = 2048
    valley_method: str = "regression"
    decay: DecayPolicy = field(default_factory=DecayPolicy)
    checkpoint_every: int = 0
    journal_fsync: bool = True
    seed: int = 0
    #: Scoring backend for the join/absorb path (``auto`` | ``reference``
    #: | ``vectorized``). Both backends are bit-identical, so replay and
    #: recovery stay deterministic whichever one a run (or a resumed
    #: run) selects.
    backend: str = "auto"

    def __post_init__(self) -> None:
        if self.batch_size < 1:
            raise ValueError("batch_size must be at least 1")
        if self.pool_size < 1:
            raise ValueError("pool_size must be at least 1")
        if self.reseed_k < 1:
            raise ValueError("reseed_k must be at least 1")
        if self.reseed_min_pool < 1:
            raise ValueError("reseed_min_pool must be at least 1")
        if self.sample_multiplier < 1:
            raise ValueError("sample_multiplier must be at least 1")
        if self.min_unique_members < 0:
            raise ValueError("min_unique_members must be non-negative")
        if self.score_window < 2:
            raise ValueError("score_window must be at least 2")
        for name in ("reseed_every", "consolidate_every", "adjust_every",
                     "checkpoint_every"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")
        if self.valley_method not in VALLEY_METHODS:
            raise ValueError(
                f"valley_method must be one of {tuple(VALLEY_METHODS)}"
            )
        if self.backend not in BACKENDS:
            raise ValueError(f"backend must be one of {BACKENDS}")

    def to_dict(self) -> dict[str, object]:
        return {
            "batch_size": self.batch_size,
            "pool_size": self.pool_size,
            "reseed_every": self.reseed_every,
            "reseed_k": self.reseed_k,
            "reseed_min_pool": self.reseed_min_pool,
            "sample_multiplier": self.sample_multiplier,
            "consolidate_every": self.consolidate_every,
            "min_unique_members": self.min_unique_members,
            "adjust_every": self.adjust_every,
            "score_window": self.score_window,
            "valley_method": self.valley_method,
            "decay": self.decay.to_dict(),
            "checkpoint_every": self.checkpoint_every,
            "journal_fsync": self.journal_fsync,
            "seed": self.seed,
            "backend": self.backend,
        }

    @classmethod
    def from_dict(cls, data: dict[str, object]) -> "StreamConfig":
        payload = dict(data)
        decay = payload.pop("decay", None)
        policy = (
            DecayPolicy.from_dict(decay)  # type: ignore[arg-type]
            if decay is not None
            else DecayPolicy()
        )
        return cls(decay=policy, **payload)  # type: ignore[arg-type]


@dataclass(frozen=True)
class StreamStats:
    """A point-in-time summary of a streaming run."""

    batches: int
    sequences: int
    absorbed: int
    outliers: int
    pool_size: int
    pool_evicted: int
    clusters: int
    clusters_spawned: int
    clusters_dismissed: int
    decay_events: int
    decay_pruned_nodes: int
    checkpoints_written: int
    log_threshold: float

    @property
    def absorb_rate(self) -> float:
        """Fraction of ingested sequences that joined a cluster."""
        if self.sequences == 0:
            return 0.0
        return self.absorbed / self.sequences

    def to_dict(self) -> dict[str, object]:
        return {
            "batches": self.batches,
            "sequences": self.sequences,
            "absorbed": self.absorbed,
            "outliers": self.outliers,
            "absorb_rate": self.absorb_rate,
            "pool_size": self.pool_size,
            "pool_evicted": self.pool_evicted,
            "clusters": self.clusters,
            "clusters_spawned": self.clusters_spawned,
            "clusters_dismissed": self.clusters_dismissed,
            "decay_events": self.decay_events,
            "decay_pruned_nodes": self.decay_pruned_nodes,
            "checkpoints_written": self.checkpoints_written,
            "log_threshold": self.log_threshold,
        }


@dataclass(frozen=True)
class _PrescoredBatch:
    """Snapshot of one batch's full (cluster × sequence) score matrix.

    ``psts``/``versions`` pin the models the matrix was computed
    against; ``log_z_rows`` is the join-test matrix pre-converted to
    Python floats (one bulk ``tolist`` instead of a boxed scalar per
    pair). Full :class:`~repro.core.similarity.SimilarityResult`
    objects are materialized lazily from ``matrix`` only for joins.
    """

    psts: list[ProbabilisticSuffixTree]
    versions: list[int]
    matrix: ScoreMatrixResult
    log_z_rows: list[list[float]]


class StreamingCluseq:
    """Online clustering engine over a wrapped ``ClusteringResult``.

    Parameters
    ----------
    result:
        The clustering to grow — a fitted §4 end state, or the empty
        result produced by :meth:`cold_start`.
    config:
        Streaming knobs; defaults are sensible for exploratory use.
    alphabet:
        Optional training alphabet; embedded into checkpoints so a
        resumed CLI run can encode raw text identically.
    state_dir:
        Directory for the write-ahead journal and checkpoints. ``None``
        runs fully in-memory (no durability). A fresh directory gets an
        initial batch-0 checkpoint immediately, so :meth:`recover`
        always has a baseline to replay from.
    """

    def __init__(
        self,
        result: ClusteringResult,
        config: StreamConfig | None = None,
        alphabet: Alphabet | None = None,
        state_dir: PathLike | None = None,
    ) -> None:
        self.result = result
        self.config = config if config is not None else StreamConfig()
        self.alphabet = alphabet
        self.state_dir = os.fspath(state_dir) if state_dir is not None else None
        self.log_threshold = result.final_log_threshold
        self._pool = OutlierPool(self.config.pool_size)
        self._pending: list[list[int]] = []
        self._recent_scores: list[float] = []
        self._batches = 0
        self._sequences = 0
        self._absorbed = 0
        self._outliers = 0
        self._clusters_spawned = 0
        self._clusters_dismissed = 0
        self._decay_events = 0
        self._decay_pruned = 0
        self._checkpoints = 0
        self._replaying = False
        # One trace per engine lifetime: every micro-batch root span of
        # this run shares it, so exported traces read as one story.
        # Allocated lazily, only while a span exporter is installed.
        self._trace_id: str | None = None
        self._next_index = result.next_sequence_index()
        self._next_cluster_id = (
            max((c.cluster_id for c in result.clusters), default=-1) + 1
        )
        params = result.params
        alphabet_size = int(len(result.background))
        p_min = (
            params.p_min
            if params.p_min is not None
            else default_p_min(alphabet_size)
        )
        self._pst_factory: PSTFactory = partial(
            build_seed_pst,
            alphabet_size=alphabet_size,
            max_depth=params.max_depth,
            significance_threshold=params.significance_threshold,
            p_min=p_min,
            max_nodes=params.max_nodes,
            prune_strategy=params.prune_strategy,
        )
        # Both backends produce bit-identical scores, so the choice can
        # never perturb join decisions — recovery replay stays exact
        # even if a resumed run picks a different backend.
        self._scorer: PstBatchScorer | None = (
            PstBatchScorer(result.background)
            if resolve_backend(self.config.backend) == "vectorized"
            else None
        )
        self._journal: StreamJournal | None = None
        if self.state_dir is not None:
            os.makedirs(self.state_dir, exist_ok=True)
            self._journal = StreamJournal(
                journal_path(self.state_dir), fsync=self.config.journal_fsync
            )
            if not os.path.exists(checkpoint_path(self.state_dir)):
                self.checkpoint()

    # -- construction ------------------------------------------------------------

    @classmethod
    def cold_start(
        cls,
        alphabet_size: int | None = None,
        *,
        alphabet: Alphabet | None = None,
        significance_threshold: int = 3,
        similarity_threshold: float = 1.2,
        max_depth: int = 4,
        p_min: float | None = None,
        max_nodes: int | None = None,
        prune_strategy: str = "paper",
        config: StreamConfig | None = None,
        state_dir: PathLike | None = None,
    ) -> "StreamingCluseq":
        """An engine with no clusters yet — everything grows from the
        stream.

        The background model starts uniform (no data has been seen);
        the first clusters appear once the outlier pool is deep enough
        for a re-seed pass.
        """
        if alphabet is not None:
            alphabet_size = alphabet.size
        if alphabet_size is None or alphabet_size <= 0:
            raise ValueError("pass alphabet or a positive alphabet_size")
        params = CluseqParams(
            k=1,
            significance_threshold=significance_threshold,
            similarity_threshold=similarity_threshold,
            max_depth=max_depth,
            p_min=p_min,
            max_nodes=max_nodes,
            prune_strategy=prune_strategy,
            adjust_threshold=False,
        )
        result = ClusteringResult(
            clusters=[],
            assignments={},
            params=params,
            background=np.full(
                alphabet_size, 1.0 / alphabet_size, dtype=np.float64
            ),
            final_log_threshold=math.log(similarity_threshold),
        )
        return cls(result, config=config, alphabet=alphabet, state_dir=state_dir)

    @classmethod
    def restore(cls, state_dir: PathLike) -> "StreamingCluseq":
        """Rebuild the checkpointed state only — no journal replay.

        The building block of :meth:`recover`; subclasses with richer
        replay protocols (the sharded engine's per-shard
        ``ShardEngine``) restore first and then interleave their own
        journal records.
        """
        state = read_checkpoint(checkpoint_path(state_dir))
        config = StreamConfig.from_dict(state["config"])
        result = result_from_dict(state["result"])
        symbols = state["result"].get("alphabet")
        alphabet = Alphabet(symbols) if symbols else None
        engine = cls(result, config=config, alphabet=alphabet, state_dir=state_dir)
        counters = state["counters"]
        engine._pool = OutlierPool.from_list(
            [(int(i), [int(s) for s in seq]) for i, seq in state["pool"]],
            config.pool_size,
            evicted=int(counters["pool_evicted"]),
        )
        engine._batches = int(counters["batches"])
        engine._sequences = int(counters["sequences"])
        engine._absorbed = int(counters["absorbed"])
        engine._outliers = int(counters["outliers"])
        engine._clusters_spawned = int(counters["clusters_spawned"])
        engine._clusters_dismissed = int(counters["clusters_dismissed"])
        engine._decay_events = int(counters["decay_events"])
        engine._decay_pruned = int(counters["decay_pruned_nodes"])
        engine._checkpoints = int(counters["checkpoints_written"])
        engine._next_index = int(counters["next_index"])
        engine._next_cluster_id = int(counters["next_cluster_id"])
        engine.log_threshold = float(state["log_threshold"])
        engine.result.final_log_threshold = engine.log_threshold
        engine._recent_scores = [float(x) for x in state["recent_scores"]]
        engine._restore_extra(state.get("extra") or {})
        return engine

    @classmethod
    def recover(cls, state_dir: PathLike) -> "StreamingCluseq":
        """Rebuild an engine from its state directory after a crash.

        Loads the newest checkpoint, restores every piece of engine
        state it captured, then replays the journal records the
        checkpoint had not yet absorbed. The result is bit-identical
        to the engine that wrote the journal — same clusters, PST
        counts, pool, counters and threshold — provided the state
        directory was produced by the same build.
        """
        engine = cls.restore(state_dir)
        checkpoint_batches = engine._batches
        replayed = 0
        records = journal_batches_after(
            journal_path(state_dir), after=engine._batches
        )
        prof = get_profiler()
        # The replay runs under its own span and kernel timer so
        # crash-recovery cost shows up in traces and profiles
        # (replayed batches also carry a ``replay`` span attr).
        with engine.replaying(), span("stream.recover"), prof.kernel(
            "recover_replay"
        ):
            for record in records:
                engine.replay_batch(record)
                replayed += 1
        registry = get_registry()
        if registry.enabled:
            registry.counter("stream.recover_passes").inc()
            registry.counter("stream.recover_replayed_batches").inc(replayed)
        _logger.info(
            "recovered stream engine",
            extra={
                "state_dir": os.fspath(state_dir),
                "checkpoint_batches": checkpoint_batches,
                "replayed_batches": replayed,
            },
        )
        return engine

    @contextmanager
    def replaying(self) -> Iterator[None]:
        """Mark journal replay: suppress re-journaling and checkpoints."""
        self._replaying = True
        try:
            yield
        finally:
            self._replaying = False

    def replay_batch(self, record: BatchRecord) -> list[int | None]:
        """Re-apply one journaled batch; enforces ordinal contiguity."""
        if record.ordinal != self._batches:
            raise ValueError(
                f"journal gap: expected batch {self._batches}, "
                f"found {record.ordinal}"
            )
        return self._apply_batch(record.sequences)

    # -- subclass extension points -------------------------------------------------

    def _checkpoint_extra(self) -> dict[str, Any]:
        """Extra state a subclass wants checkpointed (empty = omitted)."""
        return {}

    def _restore_extra(self, extra: dict[str, Any]) -> None:
        """Restore state produced by :meth:`_checkpoint_extra`."""

    # -- ingestion ----------------------------------------------------------------

    def ingest(self, encoded: Sequence[int]) -> None:
        """Buffer one encoded sequence; processes a full micro-batch."""
        if len(encoded) == 0:
            return
        self._pending.append(list(encoded))
        if len(self._pending) >= self.config.batch_size:
            batch, self._pending = self._pending, []
            self.ingest_batch(batch)

    def flush(self) -> None:
        """Process any buffered partial batch."""
        if self._pending:
            batch, self._pending = self._pending, []
            self.ingest_batch(batch)

    def ingest_batch(
        self, batch: Sequence[Sequence[int]]
    ) -> list[int | None]:
        """Journal and process one micro-batch immediately.

        Returns the per-sequence cluster assignment (``None`` =
        outlier, pooled). Empty sequences are dropped before
        journaling so replay sees exactly what was applied.
        """
        cleaned = [list(seq) for seq in batch if len(seq) > 0]
        if not cleaned:
            return []
        if self._journal is not None and not self._replaying:
            self._journal.append_batch(self._batches, cleaned)
        return self._apply_batch(cleaned)

    def run(self, source: Iterable[Sequence[int]]) -> StreamStats:
        """Consume *source* to exhaustion (micro-batching internally)."""
        for encoded in source:
            self.ingest(encoded)
        self.flush()
        return self.stats()

    # -- batch processing ---------------------------------------------------------

    def _batch_trace_id(self) -> str | None:
        """The engine-lifetime trace id (when spans are being exported)."""
        if get_span_exporter() is None:
            return None
        if self._trace_id is None:
            self._trace_id = new_trace_id()
        return self._trace_id

    def _apply_batch(self, batch: list[list[int]]) -> list[int | None]:
        registry = get_registry()
        assigned: list[int | None] = []
        with span("stream.batch", trace_id=self._batch_trace_id()) as batch_span:
            if batch_span.span_id is not None:
                batch_span.set_attr("batch", self._batches)
                batch_span.set_attr("size", len(batch))
                if self._replaying:
                    batch_span.set_attr("replay", True)
            with span("stream.score"):
                prescored = self._prescore_batch(batch)
                for column, encoded in enumerate(batch):
                    index = self._next_index
                    self._next_index += 1
                    assigned.append(
                        self._assign(index, encoded, prescored, column)
                    )
            self._sequences += len(batch)
            self._batches += 1
            self._maintain()
        prof = get_profiler()
        if prof.enabled:
            prof.gauge("model.clusters", len(self.result.clusters))
            prof.sample_memory()
        joined = sum(1 for cid in assigned if cid is not None)
        if registry.enabled:
            registry.counter("stream.batches").inc()
            registry.counter("stream.sequences").inc(len(batch))
            registry.counter("stream.absorbed").inc(joined)
            registry.counter("stream.pooled").inc(len(batch) - joined)
            registry.gauge("stream.pool_size").set(len(self._pool))
            registry.gauge("stream.clusters").set(len(self.result.clusters))
            registry.gauge("stream.log_threshold").set(self.log_threshold)
            registry.series("stream.batch.absorbed").append(joined)
            registry.series("stream.batch.size").append(len(batch))
        if _logger.isEnabledFor(10):  # logging.DEBUG
            _logger.debug(
                "batch %d: %d/%d absorbed",
                self._batches - 1,
                joined,
                len(batch),
                extra={
                    "batch": self._batches - 1,
                    "absorbed": joined,
                    "size": len(batch),
                    "pool": len(self._pool),
                    "clusters": len(self.result.clusters),
                },
            )
        return assigned

    def _score_against(
        self, clusters: Sequence[Cluster], encoded: list[int]
    ) -> list[SimilarityResult]:
        """Scores of *encoded* against each cluster, in cluster order."""
        if self._scorer is not None and clusters:
            return self._scorer.score_one_vs_many(
                [cluster.pst for cluster in clusters], encoded
            )
        return [
            similarity(cluster.pst, encoded, self.result.background)
            for cluster in clusters
        ]

    def _prescore_batch(self, batch: list[list[int]]) -> "_PrescoredBatch | None":
        """Score the whole (cluster × batch) matrix in one kernel call.

        Only worthwhile with the vectorized scorer, a real batch and
        live clusters. The matrix is a *snapshot*: every absorb inside
        the batch bumps a cluster PST's version, so :meth:`_assign`
        validates each (sequence, cluster) pair by model identity and
        version and rescores stale pairs against the live model —
        committed scores are exactly the sequential loop's.
        """
        clusters = self.result.clusters
        if self._scorer is None or len(batch) < 2 or not clusters:
            return None
        psts = [cluster.pst for cluster in clusters]
        versions = [pst.version for pst in psts]
        matrix = self._scorer.score_matrix_full(psts, batch)
        return _PrescoredBatch(psts, versions, matrix, matrix.log_z.tolist())

    def _rescore_one(
        self, cluster: Cluster, encoded: list[int]
    ) -> SimilarityResult:
        """Live rescore of one (sequence, cluster) pair gone stale."""
        if self._scorer is not None:
            # The many-vs-one shape keeps the single-tree prepared
            # stack, leaving the batch-wide multi-tree cache intact.
            return self._scorer.score_many_vs_one(cluster.pst, [encoded])[0]
        return similarity(cluster.pst, encoded, self.result.background)

    def _assign(
        self,
        index: int,
        encoded: list[int],
        prescored: "_PrescoredBatch | None" = None,
        column: int = 0,
    ) -> int | None:
        """The §4.2–§4.4 join rule for one stream sequence."""
        window = self.config.adjust_every > 0
        clusters = self.result.clusters
        log_sims: list[float]
        result_for: Callable[[int], SimilarityResult]
        if prescored is not None and len(prescored.psts) == len(clusters):
            # Column *column* of the batch snapshot, validated pair by
            # pair; only the winning cluster materializes a full result.
            log_sims = []
            rescored: dict[int, SimilarityResult] = {}
            for position, cluster in enumerate(clusters):
                if (
                    cluster.pst is prescored.psts[position]
                    and cluster.pst.version == prescored.versions[position]
                ):
                    log_sims.append(prescored.log_z_rows[position][column])
                else:
                    fresh = self._rescore_one(cluster, encoded)
                    rescored[position] = fresh
                    log_sims.append(fresh.log_similarity)

            def result_for(
                position: int,
                _matrix: ScoreMatrixResult = prescored.matrix,
                _column: int = column,
                _rescored: dict[int, SimilarityResult] = rescored,
            ) -> SimilarityResult:
                fresh = _rescored.get(position)
                if fresh is not None:
                    return fresh
                return _matrix.result(position, _column)

        else:
            # One sequence against every cluster model: a natural batch
            # row. Models only mutate *after* this sequence's scores are
            # all in (the absorb below), matching the reference loop's
            # ordering, so the batched scores commit identically.
            results = self._score_against(clusters, encoded)
            log_sims = [result.log_similarity for result in results]
            result_for = results.__getitem__
        best: tuple[Cluster, int] | None = None
        best_log_sim = 0.0
        for position, cluster in enumerate(clusters):
            log_sim = log_sims[position]
            if window:
                self._recent_scores.append(log_sim)
            if best is None or log_sim > best_log_sim:
                best = (cluster, position)
                best_log_sim = log_sim
        if window and len(self._recent_scores) > self.config.score_window:
            del self._recent_scores[: -self.config.score_window]
        if best is None or best_log_sim < self.log_threshold:
            self.result.assignments[index] = set()
            self._outliers += 1
            self._pool.add(index, encoded)
            return None
        cluster, best_position = best
        scored = result_for(best_position)
        cluster.set_member(
            Membership(
                sequence_index=index,
                log_similarity=scored.log_similarity,
                best_start=scored.best_start,
                best_end=scored.best_end,
            )
        )
        cluster.absorb_segment(encoded[scored.best_start : scored.best_end])
        self.result.assignments[index] = {cluster.cluster_id}
        self._absorbed += 1
        return cluster.cluster_id

    # -- maintenance --------------------------------------------------------------

    def _maintain(self) -> None:
        config = self.config
        batches = self._batches
        if config.decay.due(batches):
            with span("stream.decay"):
                self._decay()
        if (
            config.reseed_every > 0
            and batches % config.reseed_every == 0
            and len(self._pool) >= config.reseed_min_pool
        ):
            with span("stream.reseed") as reseed_span:
                spawned, rescued = self._reseed()
                if reseed_span.span_id is not None:
                    reseed_span.set_attr("spawned", spawned)
                    reseed_span.set_attr("rescued", rescued)
        if config.adjust_every > 0 and batches % config.adjust_every == 0:
            with span("stream.adjust_threshold"):
                self._adjust_threshold()
        if (
            config.consolidate_every > 0
            and batches % config.consolidate_every == 0
        ):
            with span("stream.consolidate"):
                self._consolidate()
        if (
            config.checkpoint_every > 0
            and batches % config.checkpoint_every == 0
            and self.state_dir is not None
            and not self._replaying
        ):
            with span("stream.checkpoint"):
                self.checkpoint()

    def _decay(self) -> None:
        policy = self.config.decay
        pruned = 0
        for cluster in self.result.clusters:
            pruned += cluster.pst.decay_counts(
                policy.factor, min_count=policy.min_count
            )
        self._decay_events += 1
        self._decay_pruned += pruned
        registry = get_registry()
        if registry.enabled:
            registry.counter("stream.decay_events").inc()
            registry.counter("stream.decay_pruned_nodes").inc(pruned)
        if pruned and _logger.isEnabledFor(20):  # logging.INFO
            _logger.info(
                "decay pruned %d nodes",
                pruned,
                extra={"batch": self._batches, "pruned_nodes": pruned},
            )

    def _reseed(self) -> tuple[int, int]:
        """Spawn new clusters from the outlier pool (§4.1 seeding).

        The RNG is derived from ``(config.seed, batch counter)`` so a
        replayed run draws the identical sample regardless of where
        the last checkpoint fell. Returns ``(spawned, rescued)`` counts
        for the enclosing span's attributes.
        """
        config = self.config
        rng = np.random.default_rng([config.seed, self._batches])
        candidates = self._pool.indices()
        choices = select_seeds(
            candidates=candidates,
            encoded_lookup=self._pool.get,
            existing_clusters=self.result.clusters,
            background=self.result.background,
            count=min(config.reseed_k, len(candidates)),
            sample_multiplier=config.sample_multiplier,
            rng=rng,
            pst_factory=self._pst_factory,
        )
        spawned: list[Cluster] = []
        for choice in choices:
            encoded = self._pool.get(choice.sequence_index)
            pst = self._pst_factory(encoded)
            cluster = Cluster(
                cluster_id=self._next_cluster_id,
                pst=pst,
                seed_index=choice.sequence_index,
                created_at_iteration=self._batches,
            )
            self._next_cluster_id += 1
            scored = similarity(pst, encoded, self.result.background)
            cluster.set_member(
                Membership(
                    sequence_index=choice.sequence_index,
                    log_similarity=scored.log_similarity,
                    best_start=scored.best_start,
                    best_end=scored.best_end,
                )
            )
            self.result.clusters.append(cluster)
            self.result.assignments[choice.sequence_index] = {
                cluster.cluster_id
            }
            self._pool.remove(choice.sequence_index)
            self._outliers -= 1
            self._absorbed += 1
            self._clusters_spawned += 1
            spawned.append(cluster)
        rescued = 0
        if spawned:
            # Rescue pass: pool members that clear the threshold against
            # a freshly spawned model join it immediately, so one drift
            # event does not need k separate re-seed rounds to drain.
            for index, encoded in self._pool:
                best: tuple[Cluster, SimilarityResult] | None = None
                for cluster, scored in zip(
                    spawned, self._score_against(spawned, encoded)
                ):
                    if best is None or (
                        scored.log_similarity > best[1].log_similarity
                    ):
                        best = (cluster, scored)
                if best is None or best[1].log_similarity < self.log_threshold:
                    continue
                cluster, scored = best
                cluster.set_member(
                    Membership(
                        sequence_index=index,
                        log_similarity=scored.log_similarity,
                        best_start=scored.best_start,
                        best_end=scored.best_end,
                    )
                )
                cluster.absorb_segment(
                    encoded[scored.best_start : scored.best_end]
                )
                self.result.assignments[index] = {cluster.cluster_id}
                self._pool.remove(index)
                self._outliers -= 1
                self._absorbed += 1
                rescued += 1
        registry = get_registry()
        if registry.enabled:
            registry.counter("stream.reseed_passes").inc()
            registry.counter("stream.clusters_spawned").inc(len(spawned))
            registry.counter("stream.pool_rescued").inc(rescued)
        if spawned and _logger.isEnabledFor(20):  # logging.INFO
            _logger.info(
                "re-seeded %d clusters (%d pool members rescued)",
                len(spawned),
                rescued,
                extra={
                    "batch": self._batches,
                    "spawned": [c.cluster_id for c in spawned],
                    "rescued": rescued,
                },
            )
        return len(spawned), rescued

    def _adjust_threshold(self) -> None:
        """§4.6 valley blend over the rolling score window."""
        if len(self._recent_scores) < _ADJUST_BUCKETS:
            return
        finder = VALLEY_METHODS[self.config.valley_method]
        valley = finder(self._recent_scores, buckets=_ADJUST_BUCKETS)
        if valley is None:
            return
        blended = (self.log_threshold + valley.log_threshold) / 2.0
        new_log_t = max(blended, 0.0)
        if abs(new_log_t - self.log_threshold) < 1e-12:
            return
        self.log_threshold = new_log_t
        self.result.final_log_threshold = new_log_t
        registry = get_registry()
        if registry.enabled:
            registry.series("stream.threshold_path").append(new_log_t)

    def _consolidate(self) -> None:
        retained, removed = consolidate(
            list(self.result.clusters), self.config.min_unique_members
        )
        if not removed:
            return
        removed_ids = {cluster.cluster_id for cluster in removed}
        self.result.clusters = retained
        for index, ids in self.result.assignments.items():
            if ids & removed_ids:
                self.result.assignments[index] = ids - removed_ids
        self._clusters_dismissed += len(removed)
        registry = get_registry()
        if registry.enabled:
            registry.counter("stream.clusters_dismissed").inc(len(removed))

    # -- durability ----------------------------------------------------------------

    def checkpoint(self) -> int:
        """Write an atomic checkpoint; returns its size in bytes."""
        if self.state_dir is None:
            raise RuntimeError("checkpoint() requires a state_dir")
        # Count this checkpoint before serializing so a recovered
        # engine's counter matches the uninterrupted run exactly.
        self._checkpoints += 1
        state: dict[str, Any] = {
            "journal_batches": self._batches,
            "config": self.config.to_dict(),
            "result": result_to_dict(self.result, self.alphabet),
            "pool": self._pool.to_list(),
            "recent_scores": list(self._recent_scores),
            "log_threshold": self.log_threshold,
            "counters": {
                "batches": self._batches,
                "sequences": self._sequences,
                "absorbed": self._absorbed,
                "outliers": self._outliers,
                "pool_evicted": self._pool.evicted,
                "clusters_spawned": self._clusters_spawned,
                "clusters_dismissed": self._clusters_dismissed,
                "decay_events": self._decay_events,
                "decay_pruned_nodes": self._decay_pruned,
                "checkpoints_written": self._checkpoints,
                "next_index": self._next_index,
                "next_cluster_id": self._next_cluster_id,
            },
        }
        extra = self._checkpoint_extra()
        if extra:
            state["extra"] = extra
        nbytes = write_checkpoint(checkpoint_path(self.state_dir), state)
        registry = get_registry()
        if registry.enabled:
            registry.counter("stream.checkpoints").inc()
            registry.gauge("stream.checkpoint_bytes").set(nbytes)
        if _logger.isEnabledFor(20):  # logging.INFO
            _logger.info(
                "checkpoint written (%d bytes)",
                nbytes,
                extra={"batch": self._batches, "bytes": nbytes},
            )
        return nbytes

    def close(self) -> None:
        """Flush buffered sequences and close the journal."""
        self.flush()
        if self._journal is not None:
            self._journal.close()

    def __enter__(self) -> "StreamingCluseq":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- introspection -------------------------------------------------------------

    @property
    def pool(self) -> OutlierPool:
        return self._pool

    @property
    def batches_ingested(self) -> int:
        return self._batches

    @property
    def sequences_ingested(self) -> int:
        return self._sequences

    def clusters_spawned_after(self, batch: int) -> list[Cluster]:
        """Clusters created at or after micro-batch *batch* (drift probe)."""
        return [
            cluster
            for cluster in self.result.clusters
            if cluster.created_at_iteration >= batch
        ]

    def stats(self) -> StreamStats:
        return StreamStats(
            batches=self._batches,
            sequences=self._sequences,
            absorbed=self._absorbed,
            outliers=self._outliers,
            pool_size=len(self._pool),
            pool_evicted=self._pool.evicted,
            clusters=len(self.result.clusters),
            clusters_spawned=self._clusters_spawned,
            clusters_dismissed=self._clusters_dismissed,
            decay_events=self._decay_events,
            decay_pruned_nodes=self._decay_pruned,
            checkpoints_written=self._checkpoints,
            log_threshold=self.log_threshold,
        )

    def __repr__(self) -> str:
        return (
            f"StreamingCluseq(batches={self._batches}, "
            f"sequences={self._sequences}, "
            f"clusters={len(self.result.clusters)}, "
            f"pool={len(self._pool)})"
        )
