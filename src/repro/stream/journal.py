"""Append-only ingest journal (write-ahead log) for the stream engine.

Durability half one: every micro-batch is appended to a JSONL journal
*before* it is applied to the in-memory clustering, so a crash can
lose at most the batch whose write was interrupted — and a torn final
line is detected and ignored on replay. Combined with periodic
checkpoints (the other half), recovery is: load the newest checkpoint,
then re-apply the journal suffix. Because the engine is a
deterministic function of (state, batch sequence), replay reproduces
the pre-crash state bit-for-bit.

Format (``repro.stream/v1``): line 1 is a header record; every further
line is one batch record::

    {"type": "header", "format": "repro.stream/v1", ...}
    {"type": "batch", "n": 0, "sequences": [[0, 1, 2], ...]}
    {"type": "batch", "n": 1, "sequences": [...], "route": [0, 1]}
    {"type": "consolidate", "n": 2, "round": 1, "plan": {...}}

``n`` is the 0-based batch ordinal — replay after a checkpoint taken
at ``journal_batches = K`` applies exactly the records with
``n >= K``. Two optional extensions are used by the sharded engine
(:mod:`repro.shard`): a batch record may carry a ``route`` list
(one shard index per sequence, recorded so replay never re-routes),
and ``consolidate`` records write-ahead a cross-shard merge plan at
the batch boundary it fired on.
"""

from __future__ import annotations

import json
import os
import time
from collections.abc import Iterator
from dataclasses import dataclass
from typing import Any, Union

from ..obs import get_profiler

#: On-disk schema identifier, shared with the checkpoint format.
STREAM_FORMAT = "repro.stream/v1"

PathLike = Union[str, "os.PathLike[str]"]


class JournalError(ValueError):
    """Raised when a journal file cannot be parsed or is incompatible."""


@dataclass(frozen=True)
class BatchRecord:
    """One replayable journal entry: a micro-batch of encoded sequences.

    ``routes`` is ``None`` for plain single-engine journals; the
    sharded dispatch log records one shard index per sequence so that
    roll-forward re-partitions exactly as the original run did.
    """

    ordinal: int
    sequences: list[list[int]]
    routes: "list[int] | None" = None


@dataclass(frozen=True)
class PlanRecord:
    """A write-ahead consolidation plan (sharded engine only).

    ``ordinal`` is the batch counter at the moment the plan fired —
    the plan applies to the state *after* that many batches.
    ``round`` numbers consolidation passes monotonically from 1 so
    replay can skip plans already reflected in a checkpoint.
    """

    ordinal: int
    round: int
    plan: dict[str, Any]


class StreamJournal:
    """Appender for the ingest write-ahead log.

    Opens lazily in append mode; ``append_batch`` writes one JSONL
    record and fsyncs, so an acknowledged batch survives process death.
    A fresh (empty) journal receives a header record first.
    """

    def __init__(self, path: PathLike, fsync: bool = True) -> None:
        self.path = os.fspath(path)
        self.fsync = fsync
        self._handle: Any = None

    def _ensure_open(self) -> None:
        if self._handle is not None:
            return
        fresh = not os.path.exists(self.path) or os.path.getsize(self.path) == 0
        if not fresh:
            self._trim_torn_tail()
        self._handle = open(self.path, "a", encoding="utf-8")
        if fresh:
            self._write_line({"type": "header", "format": STREAM_FORMAT})

    def _trim_torn_tail(self) -> None:
        """Truncate a torn (newline-less) final line before appending.

        Readers already ignore a torn final line, but appending *after*
        one would weld the new record onto the torn fragment and turn a
        harmless torn tail into mid-file corruption. Trimming back to
        the last complete line keeps append-after-recovery safe.
        """
        with open(self.path, "rb+") as handle:
            data = handle.read()
            if not data or data.endswith(b"\n"):
                return
            cut = data.rfind(b"\n")
            handle.truncate(cut + 1 if cut >= 0 else 0)
            handle.flush()
            os.fsync(handle.fileno())

    def _write_line(self, payload: dict[str, Any]) -> None:
        assert self._handle is not None
        prof = get_profiler()
        if prof.enabled:
            started = time.perf_counter()
            self._handle.write(json.dumps(payload, separators=(",", ":")) + "\n")
            self._handle.flush()
            if self.fsync:
                fsync_started = time.perf_counter()
                os.fsync(self._handle.fileno())
                prof.latency("wal_fsync", time.perf_counter() - fsync_started)
            prof.latency("wal_append", time.perf_counter() - started)
            return
        self._handle.write(json.dumps(payload, separators=(",", ":")) + "\n")
        self._handle.flush()
        if self.fsync:
            os.fsync(self._handle.fileno())

    def append_batch(
        self,
        ordinal: int,
        sequences: list[list[int]],
        routes: "list[int] | None" = None,
    ) -> None:
        """Write-ahead one micro-batch under 0-based *ordinal*."""
        self._ensure_open()
        payload: dict[str, Any] = {
            "type": "batch",
            "n": ordinal,
            "sequences": sequences,
        }
        if routes is not None:
            payload["route"] = routes
        self._write_line(payload)

    def append_plan(
        self, ordinal: int, round_: int, plan: dict[str, Any]
    ) -> None:
        """Write-ahead one consolidation plan (sharded engine)."""
        self._ensure_open()
        self._write_line(
            {"type": "consolidate", "n": ordinal, "round": round_, "plan": plan}
        )

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "StreamJournal":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def read_journal(path: PathLike) -> "Iterator[BatchRecord | PlanRecord]":
    """Yield every intact record of the journal at *path*, in order.

    Yields :class:`BatchRecord` for ``batch`` records and
    :class:`PlanRecord` for ``consolidate`` records. A torn final line
    (crash mid-append) is silently ignored; a torn line anywhere
    *before* the end means real corruption and raises
    :class:`JournalError`, as does a header announcing an unknown
    format. A *missing* file yields nothing: the journal is created
    lazily on first append, so a state dir checkpointed before any
    batch arrived (or killed right after the cold-start checkpoint)
    legitimately has no journal yet.
    """
    if not os.path.exists(path):
        return
    with open(path, encoding="utf-8") as handle:
        lines = handle.read().split("\n")
    if lines and lines[-1] == "":
        lines.pop()
        trailing_complete = True
    else:
        trailing_complete = False
    for lineno, line in enumerate(lines):
        last = lineno == len(lines) - 1
        try:
            payload = json.loads(line)
        except json.JSONDecodeError:
            if last and not trailing_complete:
                return  # torn final append — the batch was never acked
            raise JournalError(
                f"{path}:{lineno + 1}: corrupt journal line"
            ) from None
        kind = payload.get("type")
        if lineno == 0:
            if kind != "header" or payload.get("format") != STREAM_FORMAT:
                raise JournalError(
                    f"{path}: not a {STREAM_FORMAT} journal "
                    f"(header: {payload!r})"
                )
            continue
        if kind == "batch":
            raw_routes = payload.get("route")
            yield BatchRecord(
                ordinal=int(payload["n"]),
                sequences=[
                    [int(s) for s in seq] for seq in payload["sequences"]
                ],
                routes=(
                    None
                    if raw_routes is None
                    else [int(r) for r in raw_routes]
                ),
            )
        elif kind == "consolidate":
            yield PlanRecord(
                ordinal=int(payload["n"]),
                round=int(payload["round"]),
                plan=dict(payload["plan"]),
            )
        else:
            raise JournalError(f"{path}:{lineno + 1}: unknown record {kind!r}")


def journal_batches_after(path: PathLike, after: int) -> list[BatchRecord]:
    """The replay suffix: intact batch records with ``ordinal >= after``."""
    return [
        record
        for record in read_journal(path)
        if isinstance(record, BatchRecord) and record.ordinal >= after
    ]
