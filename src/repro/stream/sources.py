"""Stream sources: turning external data into encoded micro-batches.

Two producers feed :class:`~repro.stream.engine.StreamingCluseq`:

* :func:`read_encoded_lines` — newline-delimited symbol sequences from
  a file or stdin, encoded against a fixed alphabet (the CLI path).
* :func:`drifting_markov_stream` — a synthetic stream whose generating
  process *switches regime* partway through (two random Markov
  sources), the workload the drift benchmarks and tests use: before
  the drift point sequences come from regime A, after it from
  regime B, so an adaptive engine must spawn at least one new cluster
  post-drift.

Plus :func:`batched`, the micro-batch chunker.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator
from dataclasses import dataclass

import numpy as np

from ..sequences.alphabet import Alphabet, AlphabetError
from ..sequences.markov import random_markov_source


def batched(
    sequences: Iterable[list[int]], batch_size: int
) -> Iterator[list[list[int]]]:
    """Chunk *sequences* into micro-batches of *batch_size*.

    The final batch may be smaller; empty input yields nothing.
    """
    if batch_size < 1:
        raise ValueError("batch_size must be at least 1")
    batch: list[list[int]] = []
    for seq in sequences:
        batch.append(seq)
        if len(batch) >= batch_size:
            yield batch
            batch = []
    if batch:
        yield batch


def read_encoded_lines(
    lines: Iterable[str],
    alphabet: Alphabet,
    on_unknown: str = "skip",
) -> Iterator[list[int]]:
    """Encode newline-delimited sequences against *alphabet*.

    Each non-empty line is one sequence of single-character symbols;
    a ``label<TAB>sequence`` prefix (the labelled-text format) is
    tolerated and the label discarded. *on_unknown* picks the policy
    for symbols outside the alphabet: ``"skip"`` drops the line,
    ``"error"`` raises :class:`~repro.sequences.alphabet.AlphabetError`.
    """
    if on_unknown not in ("skip", "error"):
        raise ValueError("on_unknown must be 'skip' or 'error'")
    for raw in lines:
        line = raw.rstrip("\n").rstrip("\r")
        if not line:
            continue
        if "\t" in line:
            line = line.split("\t", 1)[1]
        if not line:
            continue
        try:
            yield alphabet.encode(tuple(line))
        except AlphabetError:
            if on_unknown == "error":
                raise
            continue


@dataclass(frozen=True)
class DriftingStream:
    """A two-regime synthetic stream and where its drift happens."""

    sequences: list[list[int]]
    #: Index of the first sequence drawn from regime B.
    drift_at: int
    alphabet_size: int

    def __len__(self) -> int:
        return len(self.sequences)


def drifting_markov_stream(
    num_sequences: int,
    drift_at: int,
    alphabet_size: int = 8,
    mean_length: int = 60,
    order: int = 1,
    concentration: float = 0.05,
    length_jitter: float = 0.15,
    seed: int = 0,
) -> DriftingStream:
    """Generate a stream that switches Markov regime at *drift_at*.

    Sequences ``0 .. drift_at-1`` are sampled from one random Markov
    source, the rest from an independently drawn second source (§6.4's
    embedded-cluster generator, replayed over time instead of over a
    database). Small *concentration* values make the regimes strongly
    characteristic, i.e. clearly separable clusters.

    Fully deterministic in *seed*.
    """
    if not 0 < drift_at <= num_sequences:
        raise ValueError("drift_at must be within (0, num_sequences]")
    if mean_length < 2:
        raise ValueError("mean_length must be at least 2")
    rng = np.random.default_rng(seed)
    regime_a = random_markov_source(
        alphabet_size, order=order, rng=rng, concentration=concentration
    )
    regime_b = random_markov_source(
        alphabet_size, order=order, rng=rng, concentration=concentration
    )
    sigma = max(length_jitter, 0.0) * mean_length
    sequences: list[list[int]] = []
    for i in range(num_sequences):
        source = regime_a if i < drift_at else regime_b
        length = max(2, int(round(float(rng.normal(mean_length, sigma)))))
        sequences.append(source.sample(length, rng))
    return DriftingStream(
        sequences=sequences, drift_at=drift_at, alphabet_size=alphabet_size
    )
