"""Bounded outlier pool for the streaming engine.

Sequences that clear no cluster's similarity threshold are not thrown
away: the paper's §4.1 seeding procedure mines exactly this population
for new clusters. The pool keeps the most recent non-joiners (bounded,
FIFO eviction) in deterministic insertion order so the periodic
re-seeding pass — and crash-recovery replay — see an identical
candidate list every time.
"""

from __future__ import annotations

from collections import OrderedDict
from collections.abc import Iterator


class OutlierPool:
    """A bounded FIFO pool of ``(sequence_index, encoded)`` non-joiners.

    Parameters
    ----------
    max_size:
        Capacity; adding beyond it evicts the oldest entry. Evicted
        sequences stay recorded as outliers in the engine's assignment
        map — the pool only bounds *seed candidacy*, not bookkeeping.
    """

    def __init__(self, max_size: int) -> None:
        if max_size < 1:
            raise ValueError("max_size must be at least 1")
        self.max_size = max_size
        self._entries: "OrderedDict[int, list[int]]" = OrderedDict()
        self._evicted = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, index: int) -> bool:
        return index in self._entries

    def __iter__(self) -> Iterator[tuple[int, list[int]]]:
        """Iterate ``(index, encoded)`` oldest-first (insertion order)."""
        return iter(list(self._entries.items()))

    @property
    def evicted(self) -> int:
        """How many entries capacity pressure has pushed out so far."""
        return self._evicted

    def indices(self) -> list[int]:
        """Pooled sequence indices, oldest first."""
        return list(self._entries.keys())

    def get(self, index: int) -> list[int]:
        """The encoded sequence stored under *index* (KeyError if absent)."""
        return self._entries[index]

    def add(self, index: int, encoded: list[int]) -> int | None:
        """Add a non-joiner; returns the evicted index, if any."""
        if index in self._entries:
            raise ValueError(f"sequence index {index} already pooled")
        evicted: int | None = None
        if len(self._entries) >= self.max_size:
            evicted, _ = self._entries.popitem(last=False)
            self._evicted += 1
        self._entries[index] = list(encoded)
        return evicted

    def remove(self, index: int) -> None:
        """Drop *index* from the pool (no-op when absent)."""
        self._entries.pop(index, None)

    def to_list(self) -> list[tuple[int, list[int]]]:
        """JSON-friendly snapshot: ``[(index, encoded), ...]`` in order."""
        return [(index, list(seq)) for index, seq in self._entries.items()]

    @classmethod
    def from_list(
        cls,
        entries: list[tuple[int, list[int]]],
        max_size: int,
        evicted: int = 0,
    ) -> "OutlierPool":
        """Rebuild a pool from :meth:`to_list` output (checkpoint load)."""
        pool = cls(max_size)
        for index, seq in entries:
            pool._entries[int(index)] = [int(s) for s in seq]
        pool._evicted = evicted
        return pool

    def __repr__(self) -> str:
        return (
            f"OutlierPool(size={len(self)}/{self.max_size}, "
            f"evicted={self._evicted})"
        )
