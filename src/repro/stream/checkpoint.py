"""Atomic checkpoints of streaming-engine state.

Durability half two (see :mod:`repro.stream.journal` for the write-
ahead half): a checkpoint is one JSON document holding the complete
engine state — the wrapped clustering in the ``core/persistence``
schema, the outlier pool, the maintenance counters and the config —
plus ``journal_batches``, the number of journal records the state
already reflects. Recovery loads the checkpoint and replays only the
journal records at or past that mark.

Writes are atomic: the document goes to a same-directory temp file
which is fsynced and then ``os.replace``d over the target, so a crash
mid-checkpoint leaves the previous checkpoint intact — there is never
a moment with a half-written ``checkpoint.json`` on disk.
"""

from __future__ import annotations

import json
import os
import time
from typing import Any, Union

from ..obs import get_profiler
from .journal import STREAM_FORMAT

PathLike = Union[str, "os.PathLike[str]"]

#: Default file names inside a stream state directory.
CHECKPOINT_FILENAME = "checkpoint.json"
JOURNAL_FILENAME = "journal.jsonl"


class CheckpointError(ValueError):
    """Raised when a checkpoint file is missing, corrupt or incompatible."""


def write_json_atomic(path: PathLike, payload: dict[str, Any]) -> int:
    """Atomically persist *payload* as compact JSON at *path*.

    Same temp-file/fsync/``os.replace`` discipline as checkpoints —
    shared by the sharded engine's manifest and router snapshots.
    Returns the document size in bytes.
    """
    target = os.fspath(path)
    prof = get_profiler()
    started = time.perf_counter() if prof.enabled else 0.0
    text = json.dumps(payload, separators=(",", ":"))
    tmp_path = target + ".tmp"
    with open(tmp_path, "w", encoding="utf-8") as handle:
        handle.write(text)
        handle.flush()
        if prof.enabled:
            fsync_started = time.perf_counter()
            os.fsync(handle.fileno())
            prof.latency("checkpoint_fsync", time.perf_counter() - fsync_started)
        else:
            os.fsync(handle.fileno())
    os.replace(tmp_path, target)
    if prof.enabled:
        prof.latency("checkpoint_write", time.perf_counter() - started)
    return len(text.encode("utf-8"))


def write_checkpoint(path: PathLike, state: dict[str, Any]) -> int:
    """Atomically write *state* (plus the format tag) to *path*.

    Returns the checkpoint size in bytes (the ``stream.checkpoint_bytes``
    gauge). *state* must already contain ``journal_batches``.
    """
    if "journal_batches" not in state:
        raise CheckpointError("checkpoint state must record journal_batches")
    return write_json_atomic(path, {"format": STREAM_FORMAT, **state})


def read_checkpoint(path: PathLike) -> dict[str, Any]:
    """Load and validate a checkpoint written by :func:`write_checkpoint`."""
    target = os.fspath(path)
    if not os.path.exists(target):
        raise CheckpointError(f"no checkpoint at {target}")
    with open(target, encoding="utf-8") as handle:
        try:
            payload = json.load(handle)
        except json.JSONDecodeError as exc:
            raise CheckpointError(f"{target}: corrupt checkpoint") from exc
    if not isinstance(payload, dict):
        raise CheckpointError(f"{target}: checkpoint must be a JSON object")
    if payload.get("format") != STREAM_FORMAT:
        raise CheckpointError(
            f"{target}: unsupported checkpoint format "
            f"{payload.get('format')!r}; this build reads {STREAM_FORMAT}"
        )
    return payload


def ensure_resumable(state_dir: PathLike) -> str:
    """Validate that *state_dir* looks like a resumable state directory.

    Raises :class:`CheckpointError` with an operator-readable message
    when the directory is missing, is not a directory, or holds no
    durable state at all (no checkpoint/journal/manifest) — the cases
    that previously surfaced as raw tracebacks from ``--resume``.
    Returns the normalized path.
    """
    target = os.fspath(state_dir)
    if not os.path.exists(target):
        raise CheckpointError(f"state directory {target} does not exist")
    if not os.path.isdir(target):
        raise CheckpointError(f"{target} is not a directory")
    durable = [
        name
        for name in os.listdir(target)
        if not name.endswith(".tmp")
    ]
    if not durable:
        raise CheckpointError(
            f"state directory {target} is empty — nothing to resume"
        )
    return target


def checkpoint_path(state_dir: PathLike) -> str:
    """Canonical checkpoint location inside a state directory."""
    return os.path.join(os.fspath(state_dir), CHECKPOINT_FILENAME)


def journal_path(state_dir: PathLike) -> str:
    """Canonical journal location inside a state directory."""
    return os.path.join(os.fspath(state_dir), JOURNAL_FILENAME)
