"""Count-decay policy for streaming cluster models.

CLUSEQ cluster PSTs are additive (§4.4): every joining segment only
ever increases counts, so under an unbounded stream a cluster model
fossilizes — symbols seen a million batches ago outvote the current
regime forever. The decay policy periodically rescales every cluster's
counts (see :meth:`repro.core.pst.ProbabilisticSuffixTree.decay_counts`),
which makes the model an exponentially-weighted window over the
stream: a count observed ``n`` decay events ago retains weight
``factor**n``. Related context-tree results (parsimonious Bayesian
context trees, sparse context-tree estimation) show variable-order
models stay well-behaved under exactly this kind of pruning of
low-count contexts.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class DecayPolicy:
    """When and how hard to decay cluster PST counts.

    Parameters
    ----------
    factor:
        Multiplier applied to every count at each decay event
        (``0 < factor ≤ 1``; 1.0 disables decay entirely).
    every_batches:
        Decay runs after every this-many ingested micro-batches
        (``0`` disables).
    min_count:
        Nodes whose scaled count falls below this are forgotten
        (subtree pruned) — forwarded to ``decay_counts``.
    """

    factor: float = 1.0
    every_batches: int = 0
    min_count: int = 1

    def __post_init__(self) -> None:
        if not 0.0 < self.factor <= 1.0:
            raise ValueError("factor must be in (0, 1]")
        if self.every_batches < 0:
            raise ValueError("every_batches must be non-negative")
        if self.min_count < 1:
            raise ValueError("min_count must be at least 1")

    @property
    def enabled(self) -> bool:
        return self.every_batches > 0 and self.factor < 1.0

    def due(self, batches_ingested: int) -> bool:
        """Whether a decay event fires after batch *batches_ingested*."""
        return (
            self.enabled
            and batches_ingested > 0
            and batches_ingested % self.every_batches == 0
        )

    def half_life_batches(self) -> float:
        """Batches until a count's weight halves (``inf`` when disabled)."""
        if not self.enabled:
            return math.inf
        return self.every_batches * math.log(0.5) / math.log(self.factor)

    def to_dict(self) -> dict[str, object]:
        return {
            "factor": self.factor,
            "every_batches": self.every_batches,
            "min_count": self.min_count,
        }

    @classmethod
    def from_dict(cls, data: dict[str, object]) -> "DecayPolicy":
        return cls(
            factor=float(data["factor"]),  # type: ignore[arg-type]
            every_batches=int(data["every_batches"]),  # type: ignore[arg-type]
            min_count=int(data.get("min_count", 1)),  # type: ignore[arg-type]
        )
