"""§6.3 — effect of the sequence examination order.

Paper's result: fixed order 82 % and random order 83 % accuracy, while
cluster-based order collapses to 65 % — examining a cluster's members
consecutively locks the algorithm into local optima. The reproduction
runs the three policies on the shared synthetic workload.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

from ..core.cluseq import ORDERINGS
from ..evaluation.reporting import percent, print_table
from ..sequences.database import SequenceDatabase
from .common import CluseqRun, run_cluseq, scaled_params
from .table5_initial_k import default_database

#: Paper-reported accuracy per ordering policy.
PAPER_ORDERING_ACCURACY = {"fixed": 0.82, "random": 0.83, "cluster": 0.65}


@dataclass(frozen=True)
class OrderingRow:
    """One examination-order policy's outcome."""

    ordering: str
    accuracy: float
    precision: float
    recall: float
    elapsed_seconds: float
    final_clusters: int


def run_ordering(
    db: SequenceDatabase | None = None,
    orderings: Sequence[str] = ORDERINGS,
    true_k: int = 10,
    seed: int = 3,
    repeats: int = 3,
) -> list[OrderingRow]:
    """Run CLUSEQ per examination-order policy, averaged over seeds.

    At 200-sequence scale a single run's quality wobbles by several
    points with the engine seed; averaging over *repeats* seeds
    exposes the systematic policy effect the paper measures.
    """
    if db is None:
        db = default_database(true_k=true_k, seed=seed)
    if repeats < 1:
        raise ValueError("repeats must be at least 1")
    rows: list[OrderingRow] = []
    for ordering in orderings:
        runs: list[CluseqRun] = [
            run_cluseq(
                db,
                **scaled_params(
                    db,
                    k=true_k,
                    significance_threshold=5,
                    min_unique_members=5,
                    ordering=ordering,
                    seed=seed + repeat,
                ),
            )
            for repeat in range(repeats)
        ]
        rows.append(
            OrderingRow(
                ordering=ordering,
                accuracy=sum(r.accuracy for r in runs) / repeats,
                precision=sum(r.precision for r in runs) / repeats,
                recall=sum(r.recall for r in runs) / repeats,
                elapsed_seconds=sum(r.elapsed_seconds for r in runs) / repeats,
                final_clusters=round(
                    sum(r.result.num_clusters for r in runs) / repeats
                ),
            )
        )
    return rows


def print_ordering(rows: list[OrderingRow]) -> None:
    print_table(
        headers=["ordering", "accuracy", "precision", "recall", "time (s)", "clusters", "paper acc."],
        rows=[
            (
                row.ordering,
                percent(row.accuracy),
                percent(row.precision),
                percent(row.recall),
                row.elapsed_seconds,
                row.final_clusters,
                percent(PAPER_ORDERING_ACCURACY.get(row.ordering, float("nan"))),
            )
            for row in rows
        ],
        title="§6.3 — Effect of the sequence examination order",
    )
