"""§6.1 — robustness to the fraction of outliers.

Paper's result: "the accuracy of CLUSEQ is immune to the increase of
outliers" across 1–20 %. The reproduction sweeps the same range on the
synthetic workload; the bench asserts that accuracy does not degrade
materially from the low-noise to the high-noise end.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

from ..evaluation.reporting import percent, print_table
from ..sequences.generators import generate_clustered_database
from .common import CluseqRun, run_cluseq, scaled_params


@dataclass(frozen=True)
class OutlierRow:
    """One outlier-fraction setting's outcome."""

    outlier_fraction: float
    accuracy: float
    precision: float
    recall: float
    predicted_outliers: int
    true_outliers: int
    final_clusters: int


def run_outlier_robustness(
    fractions: Sequence[float] = (0.01, 0.05, 0.10, 0.20),
    true_k: int = 10,
    num_sequences: int = 200,
    seed: int = 3,
) -> list[OutlierRow]:
    """Sweep the injected-outlier percentage."""
    rows: list[OutlierRow] = []
    for fraction in fractions:
        ds = generate_clustered_database(
            num_sequences=num_sequences,
            num_clusters=true_k,
            avg_length=120,
            alphabet_size=12,
            outlier_fraction=fraction,
            seed=seed,
        )
        db = ds.database
        run: CluseqRun = run_cluseq(
            db,
            **scaled_params(
                db,
                k=true_k,
                significance_threshold=5,
                min_unique_members=5,
                seed=seed,
            ),
        )
        true_outliers = sum(
            1 for record in db if record.label == "__outlier__"
        )
        rows.append(
            OutlierRow(
                outlier_fraction=fraction,
                accuracy=run.accuracy,
                precision=run.precision,
                recall=run.recall,
                predicted_outliers=len(run.result.outliers()),
                true_outliers=true_outliers,
                final_clusters=run.result.num_clusters,
            )
        )
    return rows


def accuracy_drop(rows: Sequence[OutlierRow]) -> float:
    """Accuracy at the lowest noise level minus at the highest."""
    ordered = sorted(rows, key=lambda row: row.outlier_fraction)
    return ordered[0].accuracy - ordered[-1].accuracy


def print_outlier_robustness(rows: list[OutlierRow]) -> None:
    print_table(
        headers=[
            "outlier %",
            "accuracy",
            "precision",
            "recall",
            "pred. outliers",
            "true outliers",
            "clusters",
        ],
        rows=[
            (
                percent(row.outlier_fraction),
                percent(row.accuracy),
                percent(row.precision),
                percent(row.recall),
                row.predicted_outliers,
                row.true_outliers,
                row.final_clusters,
            )
            for row in rows
        ],
        title="§6.1 — Robustness to outliers (accuracy should stay flat)",
    )
