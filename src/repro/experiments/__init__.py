"""Experiment harnesses — one module per paper table/figure.

| Module                     | Paper result                         |
|----------------------------|--------------------------------------|
| ``table2_model_comparison``| Table 2, model accuracy/time         |
| ``table3_protein_families``| Table 3, per-family P/R              |
| ``table4_languages``       | Table 4, language clustering         |
| ``table5_initial_k``       | Table 5, robustness to initial k     |
| ``table6_initial_t``       | Table 6, robustness to initial t     |
| ``fig3_similarity_histogram`` | Figure 3, similarity distribution |
| ``fig4_pst_size``          | Figure 4, PST memory budget          |
| ``fig5_sample_size``       | Figure 5, seed sample size           |
| ``fig6_scalability``       | Figure 6, four scalability sweeps    |
| ``ordering_policies``      | §6.3, examination-order study        |
| ``outlier_robustness``     | §6.1, outlier immunity               |
| ``ablation_modes``         | DESIGN §6.1, hardened-default ablation |
| ``ablation_pruning``       | §5.1, pruning-strategy ablation      |
| ``ablation_smoothing``     | §5.2, smoothing ablation             |
"""

from .common import CluseqRun, run_cluseq, scaled_params

__all__ = ["CluseqRun", "run_cluseq", "scaled_params"]
