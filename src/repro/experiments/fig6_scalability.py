"""Figure 6 — scalability in four dimensions.

Paper's result (100 000 × 1000-symbol synthetic data):

* (a) response time **linear** in the number of embedded clusters,
* (b) **linear** in the number of sequences,
* (c) mildly **super-linear** in the average sequence length,
* (d) essentially **flat** in the number of distinct symbols.

All four follow from the per-iteration complexity
``O(N · k' · l · L)``. The reproduction runs the same four sweeps at
~1/500 scale and reports the time series; a helper fits the log-log
slope so benches can assert the shape (slope ≈ 1 for (a)/(b), ≥ 1 for
(c), ≈ 0 for (d)).
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

import numpy as np

from ..evaluation.reporting import print_table
from ..sequences.generators import generate_clustered_database
from .common import CluseqRun, run_cluseq, scaled_params

#: The four sweep dimensions of Figure 6, in paper order.
DIMENSIONS = ("num_clusters", "num_sequences", "avg_length", "alphabet_size")

#: Default sweep values per dimension (scaled from the paper's axes).
DEFAULT_SWEEPS: dict[str, tuple[int, ...]] = {
    "num_clusters": (2, 5, 10, 20),
    "num_sequences": (50, 100, 200, 400),
    "avg_length": (40, 80, 160, 320),
    "alphabet_size": (5, 10, 20, 40),
}

#: Workload defaults shared by every sweep.
BASE_WORKLOAD = {
    "num_sequences": 150,
    "num_clusters": 5,
    "avg_length": 100,
    "alphabet_size": 12,
    "outlier_fraction": 0.05,
}


@dataclass(frozen=True)
class ScalabilityRow:
    """One point of one Figure 6 panel.

    ``work`` counts symbols scored in the reclustering phases — the
    deterministic cost measure the shape assertions use (wall time is
    reported too but is sensitive to machine load).
    """

    dimension: str
    value: int
    elapsed_seconds: float
    iterations: int
    accuracy: float
    work: int = 0


def run_fig6_dimension(
    dimension: str,
    values: Sequence[int] | None = None,
    seed: int = 3,
) -> list[ScalabilityRow]:
    """Sweep one dimension of Figure 6."""
    if dimension not in DIMENSIONS:
        raise ValueError(f"dimension must be one of {DIMENSIONS}")
    if values is None:
        values = DEFAULT_SWEEPS[dimension]
    # The paper sweeps k with N held large and *fixed* (100k sequences
    # for k up to 100) so every embedded cluster keeps enough members
    # to survive. At the base N=150, twenty embedded clusters have ~7
    # members each and merge away, so the engine's k' — the quantity
    # whose cost is measured — never scales. Fix N to fit the largest k
    # of the sweep (~22 sequences per cluster).
    fixed_sequences = None
    if dimension == "num_clusters":
        fixed_sequences = max(
            BASE_WORKLOAD["num_sequences"], 22 * int(max(values))
        )
    rows: list[ScalabilityRow] = []
    for value in values:
        workload = dict(BASE_WORKLOAD)
        workload[dimension] = value
        workload["seed"] = seed
        if fixed_sequences is not None:
            workload["num_sequences"] = fixed_sequences
        ds = generate_clustered_database(**workload)
        db = ds.database
        run: CluseqRun = run_cluseq(
            db,
            **scaled_params(
                db,
                k=workload["num_clusters"],
                significance_threshold=5,
                min_unique_members=4,
                max_iterations=15,
                seed=seed,
            ),
        )
        rows.append(
            ScalabilityRow(
                dimension=dimension,
                value=int(value),
                elapsed_seconds=run.elapsed_seconds,
                iterations=run.result.iterations,
                accuracy=run.accuracy,
                work=run.result.total_reclustering_work,
            )
        )
    return rows


def run_fig6(seed: int = 3) -> dict[str, list[ScalabilityRow]]:
    """All four sweeps of Figure 6."""
    return {dim: run_fig6_dimension(dim, seed=seed) for dim in DIMENSIONS}


def linear_fit(rows: Sequence[ScalabilityRow]) -> tuple[float, float]:
    """Least-squares fit of per-iteration time vs the swept value.

    Returns ``(slope, r_squared)``. The paper's "linearly proportional"
    figures are straight lines *with an intercept* (fixed per-iteration
    costs), so linearity is judged by R² of this fit, not by a log-log
    slope (which an intercept biases towards 0). The fit runs on the
    deterministic work counter — wall time on a loaded machine is too
    noisy to assert shapes on.
    """
    xs = np.array([row.value for row in rows], dtype=np.float64)
    ys = np.array([row.work / max(row.iterations, 1) for row in rows])
    slope, intercept = np.polyfit(xs, ys, 1)
    predicted = slope * xs + intercept
    residual = float(((ys - predicted) ** 2).sum())
    total = float(((ys - ys.mean()) ** 2).sum())
    r_squared = 1.0 - residual / total if total > 0 else 1.0
    return float(slope), r_squared


def loglog_slope(rows: Sequence[ScalabilityRow]) -> float:
    """Least-squares slope of ``log(time)`` vs ``log(value)``.

    Normalising per iteration removes convergence-count noise, so the
    slope reflects the per-iteration cost model the paper analyses.
    """
    xs = np.log([row.value for row in rows])
    ys = np.log([max(row.work / max(row.iterations, 1), 1e-9) for row in rows])
    slope, _ = np.polyfit(xs, ys, 1)
    return float(slope)


def print_fig6(results: dict[str, list[ScalabilityRow]]) -> None:
    for dimension, rows in results.items():
        print_table(
            headers=[
                dimension,
                "time (s)",
                "work/iter (ksym)",
                "iterations",
                "accuracy",
            ],
            rows=[
                (
                    row.value,
                    row.elapsed_seconds,
                    row.work / max(row.iterations, 1) / 1000.0,
                    row.iterations,
                    row.accuracy,
                )
                for row in rows
            ],
            title=(
                f"Figure 6 — scalability in {dimension} "
                f"(log-log slope {loglog_slope(rows):.2f}, "
                f"linear R² {linear_fit(rows)[1]:.2f})"
            ),
        )
