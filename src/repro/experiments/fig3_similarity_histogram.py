"""Figure 3 — the similarity distribution and its valley.

The paper's Figure 3 sketches the histogram of sequence-cluster
similarities that drives the threshold adjustment: a large mass of
low-similarity combinations falling away quickly, a long sparse tail
of genuine members, and the *valley* between them where the threshold
belongs. This harness fits CLUSEQ on the shared synthetic workload,
recomputes every sequence×cluster similarity, and reports the
histogram series plus where each valley estimator lands relative to
the true member/non-member boundary.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..evaluation.histogram import (
    SimilarityDistribution,
    histogram_series,
    similarity_distribution,
    valley_comparison,
)
from ..evaluation.reporting import print_table
from ..sequences.database import SequenceDatabase
from .common import run_cluseq, scaled_params
from .table5_initial_k import default_database


@dataclass(frozen=True)
class Fig3Result:
    """The Figure 3 data: histogram, estimator positions, separation."""

    series: list[tuple[float, int]]
    valley_estimates: dict[str, float | None]
    member_count: int
    non_member_count: int
    member_p10: float
    non_member_p99: float
    final_log_threshold: float

    @property
    def boundary_window(self) -> tuple[float, float]:
        """The log-sim window a correct threshold must land near:
        (upper edge of the non-member mass, lower edge of the member
        mass). The window edges can overlap on hard data."""
        return (self.non_member_p99, self.member_p10)


def run_fig3(
    db: SequenceDatabase | None = None,
    true_k: int = 10,
    seed: int = 3,
    buckets: int = 50,
) -> Fig3Result:
    """Fit, recompute all similarities, and build the Figure 3 data."""
    if db is None:
        db = default_database(true_k=true_k, seed=seed)
    run = run_cluseq(
        db,
        **scaled_params(
            db, k=true_k, significance_threshold=5, min_unique_members=5,
            seed=seed,
        ),
    )
    dist: SimilarityDistribution = similarity_distribution(run.result, db)
    values = dist.log_similarities.tolist()
    return Fig3Result(
        series=histogram_series(values, buckets=buckets),
        valley_estimates=valley_comparison(values),
        member_count=int(dist.member_mask.sum()),
        non_member_count=int((~dist.member_mask).sum()),
        member_p10=float(np.percentile(dist.member_values, 10))
        if dist.member_values.size
        else float("nan"),
        non_member_p99=float(np.percentile(dist.non_member_values, 99))
        if dist.non_member_values.size
        else float("nan"),
        final_log_threshold=run.result.final_log_threshold,
    )


def print_fig3(result: Fig3Result) -> None:
    bar_unit = max(count for _, count in result.series) / 40 or 1
    print("Figure 3 — similarity distribution (log scale)")
    print("=" * 46)
    for center, count in result.series:
        if count == 0:
            continue
        bar = "#" * max(1, int(count / bar_unit))
        print(f"{center:8.1f} | {bar} {count}")
    print()
    print_table(
        headers=["estimator", "log t̂"],
        rows=[
            (name, value)
            for name, value in result.valley_estimates.items()
        ],
        title="Valley estimates vs the member boundary",
    )
    low, high = result.boundary_window
    print(
        f"non-member p99 = {low:.2f}, member p10 = {high:.2f}, "
        f"final log t = {result.final_log_threshold:.2f} "
        f"({result.member_count} member pairs, "
        f"{result.non_member_count} non-member pairs)\n"
    )
