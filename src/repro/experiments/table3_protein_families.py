"""Table 3 — per-family precision/recall on the protein database.

Paper's result: precision 75–88 % and recall 80–89 % across families
sized 141–884, i.e. quality consistent across very different family
sizes. The reproduction checks the same property on the scaled
substitute.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..evaluation.reporting import percent, print_table
from ..sequences.database import SequenceDatabase
from .common import CluseqRun, run_cluseq, scaled_params
from .table2_model_comparison import default_database

#: Paper-reported (family, size, precision, recall) rows of Table 3.
PAPER_TABLE3 = (
    ("ig", 884, 0.85, 0.82),
    ("pkinase", 725, 0.77, 0.89),
    ("globin", 681, 0.88, 0.86),
    ("7tm_1", 515, 0.82, 0.83),
    ("homeobox", 383, 0.84, 0.81),
    ("efhand", 320, 0.80, 0.83),
    ("RuBisCO_large", 311, 0.85, 0.80),
    ("gluts", 144, 0.85, 0.89),
    ("actin", 142, 0.87, 0.85),
    ("rrm", 141, 0.75, 0.82),
)


@dataclass(frozen=True)
class FamilyRow:
    """One row of Table 3."""

    family: str
    size: int
    precision: float
    recall: float


def run_table3(
    db: SequenceDatabase | None = None, seed: int = 1
) -> list[FamilyRow]:
    """Cluster the protein database and score each family."""
    if db is None:
        db = default_database(seed)
    num_families = len(db.distinct_labels())
    run: CluseqRun = run_cluseq(
        db, **scaled_params(db, k=num_families, significance_threshold=4, seed=seed)
    )
    rows = [
        FamilyRow(
            family=score.family,
            size=score.size,
            precision=score.precision,
            recall=score.recall,
        )
        for score in run.report.family_scores
    ]
    rows.sort(key=lambda row: -row.size)
    return rows


def print_table3(rows: list[FamilyRow]) -> None:
    paper = {name: (p, r) for name, _, p, r in PAPER_TABLE3}
    print_table(
        headers=["Family", "Size", "Precision", "Recall", "Paper P", "Paper R"],
        rows=[
            (
                row.family,
                row.size,
                percent(row.precision),
                percent(row.recall),
                percent(paper[row.family][0]) if row.family in paper else None,
                percent(paper[row.family][1]) if row.family in paper else None,
            )
            for row in rows
        ],
        title="Table 3 — CLUSEQ per-family results (scaled protein database)",
    )
