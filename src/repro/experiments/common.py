"""Shared plumbing for the per-table/figure experiment harnesses.

Each experiment module exposes a ``run_*`` function returning plain
row dicts plus a ``print_*`` helper rendering them the way the paper's
table/figure reports, so the pytest-benchmark targets stay thin.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any

from ..core.cluseq import CLUSEQ, CluseqParams, ClusteringResult
from ..evaluation.metrics import EvaluationReport, evaluate_clustering
from ..sequences.database import SequenceDatabase


@dataclass(frozen=True)
class CluseqRun:
    """A fitted CLUSEQ result together with its evaluation and timing."""

    result: ClusteringResult
    report: EvaluationReport
    elapsed_seconds: float

    @property
    def accuracy(self) -> float:
        return self.report.accuracy

    @property
    def precision(self) -> float:
        return self.report.macro_precision

    @property
    def recall(self) -> float:
        return self.report.macro_recall


def run_cluseq(db: SequenceDatabase, **param_overrides: Any) -> CluseqRun:
    """Fit CLUSEQ on *db*, evaluate against its ground truth, and time it."""
    params = CluseqParams(**param_overrides)
    start = time.perf_counter()
    result = CLUSEQ(params).fit(db)
    elapsed = time.perf_counter() - start
    report = evaluate_clustering(db.labels, result.labels())
    return CluseqRun(result=result, report=report, elapsed_seconds=elapsed)


def scaled_params(db: SequenceDatabase, **overrides: object) -> dict[str, object]:
    """Default CLUSEQ parameters scaled to a laptop-sized database.

    The paper's ``c = 30`` and consolidation threshold assume 100 000
    sequences of length 1 000; our workloads are ~100× smaller, so the
    defaults here keep the same *relative* statistical strength.
    """
    base: dict[str, object] = {
        "k": 1,
        "significance_threshold": max(3, int(db.average_length // 25)),
        "min_unique_members": max(3, len(db) // 60),
        "similarity_threshold": 1.2,
        "max_iterations": 25,
        "seed": 0,
    }
    base.update(overrides)
    return base
