"""§5.2 ablation — adjusted probability estimation (smoothing).

The paper motivates smoothing with the zero-probability failure mode:
a small cluster's empirical CPD assigns probability 0 to unseen
symbols, zeroing the predict probability of any sequence containing
one. This ablation clusters the shared workload with smoothing on
(the paper's adjustment) and off, and also measures the direct effect
on similarity scores of held-out same-cluster sequences.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

import numpy as np

from ..core.pst import ProbabilisticSuffixTree
from ..core.similarity import similarity
from ..evaluation.reporting import percent, print_table
from ..sequences.database import SequenceDatabase
from ..sequences.generators import generate_clustered_database
from .common import CluseqRun, run_cluseq, scaled_params
from .table5_initial_k import default_database


@dataclass(frozen=True)
class SmoothingRow:
    """Clustering quality with one smoothing setting."""

    p_min_scale: float
    accuracy: float
    precision: float
    recall: float
    final_clusters: int


@dataclass(frozen=True)
class ZeroProbabilityStats:
    """Direct measurement of the §5.2 failure mode.

    ``fraction_zeroed``: share of held-out same-cluster sequences whose
    whole-sequence predict probability collapses to (effectively) zero
    without smoothing.
    """

    fraction_zeroed_unsmoothed: float
    fraction_zeroed_smoothed: float
    mean_log_sim_unsmoothed: float
    mean_log_sim_smoothed: float


def run_ablation_smoothing(
    db: SequenceDatabase | None = None,
    p_min_scales: Sequence[float] = (0.0, 1e-4, 1e-3, 1e-2),
    true_k: int = 10,
    seed: int = 3,
) -> list[SmoothingRow]:
    """Cluster with several smoothing strengths (0.0 disables it)."""
    if db is None:
        db = default_database(true_k=true_k, seed=seed)
    rows: list[SmoothingRow] = []
    for scale in p_min_scales:
        p_min = scale / db.alphabet.size if scale > 0 else 0.0
        run: CluseqRun = run_cluseq(
            db,
            **scaled_params(
                db,
                k=true_k,
                significance_threshold=5,
                min_unique_members=5,
                p_min=p_min,
                seed=seed,
            ),
        )
        rows.append(
            SmoothingRow(
                p_min_scale=scale,
                accuracy=run.accuracy,
                precision=run.precision,
                recall=run.recall,
                final_clusters=run.result.num_clusters,
            )
        )
    return rows


def measure_zero_probability_effect(
    cluster_size: int = 4,
    holdout: int = 10,
    avg_length: int = 150,
    alphabet_size: int = 20,
    seed: int = 5,
) -> ZeroProbabilityStats:
    """Quantify the zero-probability failure on a deliberately small cluster.

    Builds a PST from only *cluster_size* sequences of one synthetic
    cluster and scores *holdout* held-out members with and without
    smoothing, comparing whole-sequence predict scores.
    """
    ds = generate_clustered_database(
        num_sequences=cluster_size + holdout,
        num_clusters=1,
        avg_length=avg_length,
        alphabet_size=alphabet_size,
        outlier_fraction=0.0,
        seed=seed,
    )
    db = ds.database
    background = db.background_probabilities()
    training = [db.encoded(i) for i in range(cluster_size)]
    held_out = [db.encoded(i) for i in range(cluster_size, cluster_size + holdout)]

    def build(p_min: float) -> ProbabilisticSuffixTree:
        pst = ProbabilisticSuffixTree(
            alphabet_size=alphabet_size,
            max_depth=6,
            significance_threshold=3,
            p_min=p_min,
        )
        for seq in training:
            pst.add_sequence(seq)
        return pst

    unsmoothed = build(0.0)
    smoothed = build(1e-3 / alphabet_size)

    zeroed_u = zeroed_s = 0
    logs_u: list[float] = []
    logs_s: list[float] = []
    for seq in held_out:
        whole_u = similarity(unsmoothed, seq, background).whole_sequence_log
        whole_s = similarity(smoothed, seq, background).whole_sequence_log
        # A zeroed conditional contributes ~-700 per occurrence, and
        # affected sequences typically hit many; smoothed scores bottom
        # out around (length · log(p_min/background)) ≈ -10³. -2000
        # separates the regimes with a wide margin.
        if whole_u < -2000:
            zeroed_u += 1
        if whole_s < -2000:
            zeroed_s += 1
        logs_u.append(whole_u)
        logs_s.append(whole_s)
    return ZeroProbabilityStats(
        fraction_zeroed_unsmoothed=zeroed_u / holdout,
        fraction_zeroed_smoothed=zeroed_s / holdout,
        mean_log_sim_unsmoothed=float(np.mean(logs_u)),
        mean_log_sim_smoothed=float(np.mean(logs_s)),
    )


def print_ablation_smoothing(
    rows: list[SmoothingRow], stats: ZeroProbabilityStats | None = None
) -> None:
    print_table(
        headers=["n·p_min", "accuracy", "precision", "recall", "clusters"],
        rows=[
            (
                row.p_min_scale,
                percent(row.accuracy),
                percent(row.precision),
                percent(row.recall),
                row.final_clusters,
            )
            for row in rows
        ],
        title="§5.2 ablation — adjusted probability estimation",
    )
    if stats is not None:
        print(
            "zero-probability failure on a small cluster: "
            f"{percent(stats.fraction_zeroed_unsmoothed)} of held-out members "
            f"zeroed without smoothing vs "
            f"{percent(stats.fraction_zeroed_smoothed)} with smoothing\n"
        )
