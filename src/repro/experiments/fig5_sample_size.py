"""Figure 5 — effect of the seed-sampling size ``m``.

Paper's result: precision/recall improve with the sample size and
plateau around ``m = 5k``; the response time has a valley near
``m = 3k`` — small samples give poor initial clusters that take longer
to fix, large samples make seed selection itself expensive. The
reproduction sweeps the ``m/k`` multiplier.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

from ..evaluation.reporting import percent, print_table
from ..sequences.database import SequenceDatabase
from .common import CluseqRun, run_cluseq, scaled_params
from .table5_initial_k import default_database


@dataclass(frozen=True)
class SampleSizeRow:
    """One x-position of Figure 5 (a) and (b)."""

    multiplier: int
    precision: float
    recall: float
    elapsed_seconds: float
    iterations: int


def run_fig5(
    db: SequenceDatabase | None = None,
    multipliers: Sequence[int] = (1, 2, 3, 5, 8),
    true_k: int = 10,
    seed: int = 3,
) -> list[SampleSizeRow]:
    """Sweep the ``m = multiplier · k_n`` sampling rule."""
    if db is None:
        db = default_database(true_k=true_k, seed=seed)
    rows: list[SampleSizeRow] = []
    for multiplier in multipliers:
        run: CluseqRun = run_cluseq(
            db,
            **scaled_params(
                db,
                k=true_k,
                significance_threshold=5,
                min_unique_members=5,
                sample_multiplier=multiplier,
                seed=seed,
            ),
        )
        rows.append(
            SampleSizeRow(
                multiplier=multiplier,
                precision=run.precision,
                recall=run.recall,
                elapsed_seconds=run.elapsed_seconds,
                iterations=run.result.iterations,
            )
        )
    return rows


def print_fig5(rows: list[SampleSizeRow]) -> None:
    print_table(
        headers=["m / k", "precision", "recall", "time (s)", "iterations"],
        rows=[
            (
                row.multiplier,
                percent(row.precision),
                percent(row.recall),
                row.elapsed_seconds,
                row.iterations,
            )
            for row in rows
        ],
        title="Figure 5 — Effect of the initial sample size",
    )
