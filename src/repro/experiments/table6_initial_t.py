"""Table 6 — robustness to the initial similarity threshold ``t``.

Paper's result (true ``t = 2``): the final threshold converges to
1.99–2.01 for any initial ``t ∈ {1.05, 1.5, 2, 3}``, with modest extra
cost for bad starts.

In this implementation the iteration-0 calibration (see
``CluseqParams.calibrate_threshold``) *replaces* the user's initial
``t`` with a data-driven estimate, which makes the paper's claim —
"the final value of t is very close to the true value regardless of
its initial setting" — hold by construction: the sweep verifies that
the final threshold, cluster count and quality are identical across
initial settings, and a second sweep with calibration disabled shows
how far raw valley-blending alone gets.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

from ..evaluation.reporting import percent, print_table
from ..sequences.database import SequenceDatabase
from .common import CluseqRun, run_cluseq, scaled_params
from .table5_initial_k import default_database


@dataclass(frozen=True)
class InitialTRow:
    """One column of the paper's Table 6."""

    initial_t: float
    final_log_t: float
    final_clusters: int
    elapsed_seconds: float
    precision: float
    recall: float
    calibrated: bool


def run_table6(
    db: SequenceDatabase | None = None,
    initial_ts: Sequence[float] = (1.05, 1.5, 2.0, 3.0),
    true_k: int = 10,
    seed: int = 3,
    calibrate: bool = True,
) -> list[InitialTRow]:
    """Sweep the initial similarity threshold and record convergence."""
    if db is None:
        db = default_database(true_k=true_k, seed=seed)
    rows: list[InitialTRow] = []
    for t in initial_ts:
        run: CluseqRun = run_cluseq(
            db,
            **scaled_params(
                db,
                k=true_k,
                significance_threshold=5,
                min_unique_members=5,
                similarity_threshold=t,
                calibrate_threshold=calibrate,
                seed=seed,
            ),
        )
        rows.append(
            InitialTRow(
                initial_t=t,
                final_log_t=run.result.final_log_threshold,
                final_clusters=run.result.num_clusters,
                elapsed_seconds=run.elapsed_seconds,
                precision=run.precision,
                recall=run.recall,
                calibrated=calibrate,
            )
        )
    return rows


def final_threshold_spread(rows: Sequence[InitialTRow]) -> float:
    """Max − min of the final log thresholds — 0 means perfect
    initial-t independence (the paper's headline claim)."""
    values = [row.final_log_t for row in rows]
    return max(values) - min(values)


def print_table6(rows: list[InitialTRow]) -> None:
    print_table(
        headers=[
            "init t",
            "final log t",
            "final clusters",
            "time (s)",
            "precision",
            "recall",
        ],
        rows=[
            (
                row.initial_t,
                row.final_log_t,
                row.final_clusters,
                row.elapsed_seconds,
                percent(row.precision),
                percent(row.recall),
            )
            for row in rows
        ],
        title="Table 6 — Effect of the initial similarity threshold",
    )
    print(f"final log-threshold spread: {final_threshold_spread(rows):.4f}\n")
