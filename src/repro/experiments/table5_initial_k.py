"""Table 5 — robustness to the initial number of clusters ``k``.

Paper's result (100 embedded clusters, 100 000 sequences, 10 %
outliers): the final cluster count lands at 99–102 for initial
``k ∈ {1, 20, 100, 200}``, precision/recall stay ≈ 81–83 %, and a badly
under-set ``k`` costs ~60 % extra response time.

The reproduction embeds ``true_k`` clusters (default 10) at ~1/500
scale and sweeps the same relative initial-k regimes: far below, below,
exact, and above the truth.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

from ..evaluation.reporting import percent, print_table
from ..sequences.generators import generate_clustered_database
from ..sequences.database import SequenceDatabase
from .common import CluseqRun, run_cluseq, scaled_params


@dataclass(frozen=True)
class InitialKRow:
    """One column of the paper's Table 5."""

    initial_k: int
    final_clusters: int
    elapsed_seconds: float
    precision: float
    recall: float
    iterations: int


def default_database(true_k: int = 10, seed: int = 3) -> SequenceDatabase:
    """The synthetic workload shared by the sensitivity experiments.

    The paper's sensitivity workloads carry 10 % outliers at 100 000
    sequences; at this 200-sequence scale we use 5 % — with 10 %, the
    ~20 outliers dominate the greedy min-max seed selection (outliers
    are maximally dissimilar by construction) and the k-recovery
    dynamics under test drown in seed noise. The outlier-robustness
    experiment sweeps 1–20 % explicitly.
    """
    return generate_clustered_database(
        num_sequences=200,
        num_clusters=true_k,
        avg_length=120,
        alphabet_size=12,
        outlier_fraction=0.05,
        seed=seed,
    ).database


def run_table5(
    db: SequenceDatabase | None = None,
    initial_ks: Sequence[int] = (1, 2, 10, 20),
    true_k: int = 10,
    seed: int = 3,
) -> list[InitialKRow]:
    """Sweep the initial cluster count and record the recovery."""
    if db is None:
        db = default_database(true_k=true_k, seed=seed)
    rows: list[InitialKRow] = []
    for k in initial_ks:
        run: CluseqRun = run_cluseq(
            db,
            **scaled_params(
                db, k=k, significance_threshold=5, min_unique_members=5, seed=seed
            ),
        )
        rows.append(
            InitialKRow(
                initial_k=k,
                final_clusters=run.result.num_clusters,
                elapsed_seconds=run.elapsed_seconds,
                precision=run.precision,
                recall=run.recall,
                iterations=run.result.iterations,
            )
        )
    return rows


def print_table5(rows: list[InitialKRow], true_k: int = 10) -> None:
    print_table(
        headers=[
            "init k",
            "final clusters",
            "time (s)",
            "precision",
            "recall",
            "iterations",
        ],
        rows=[
            (
                row.initial_k,
                row.final_clusters,
                row.elapsed_seconds,
                percent(row.precision),
                percent(row.recall),
                row.iterations,
            )
            for row in rows
        ],
        title=f"Table 5 — Effect of initial cluster count (true k = {true_k})",
    )
