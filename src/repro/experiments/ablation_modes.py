"""Ablation of this implementation's hardened defaults (DESIGN.md §6.1).

Not a paper table. The reproduction hardens three of the paper's
literal mechanisms — iteration-0 threshold calibration, per-iteration
PST rebuild, and descending ("dissolving") consolidation — each behind
a switch. This harness runs the shared synthetic workload with each
switch disabled in turn (and all disabled together ≈ the literal
paper loop) so the contribution of every safeguard is measurable.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..evaluation.reporting import percent, print_table
from ..sequences.database import SequenceDatabase
from .common import CluseqRun, run_cluseq, scaled_params
from .table5_initial_k import default_database

#: mode name → CluseqParams overrides.
MODES: dict[str, dict[str, object]] = {
    "hardened defaults": {},
    "no calibration": {"calibrate_threshold": False},
    "additive PSTs": {"rebuild_each_iteration": False},
    "ascending consolidation": {"dissolve_covered": False},
    "all literal": {
        "calibrate_threshold": False,
        "rebuild_each_iteration": False,
        "dissolve_covered": False,
    },
}


@dataclass(frozen=True)
class ModeRow:
    """One configuration's outcome."""

    mode: str
    accuracy: float
    precision: float
    recall: float
    final_clusters: int
    iterations: int


def run_ablation_modes(
    db: SequenceDatabase | None = None,
    true_k: int = 10,
    seed: int = 3,
    initial_k: int = 1,
) -> list[ModeRow]:
    """Run every mode on the same workload with the same wrong-k start."""
    if db is None:
        db = default_database(true_k=true_k, seed=seed)
    rows: list[ModeRow] = []
    for mode, overrides in MODES.items():
        run: CluseqRun = run_cluseq(
            db,
            **scaled_params(
                db,
                k=initial_k,
                significance_threshold=5,
                min_unique_members=5,
                seed=seed,
                **overrides,
            ),
        )
        rows.append(
            ModeRow(
                mode=mode,
                accuracy=run.accuracy,
                precision=run.precision,
                recall=run.recall,
                final_clusters=run.result.num_clusters,
                iterations=run.result.iterations,
            )
        )
    return rows


def print_ablation_modes(rows: list[ModeRow], true_k: int = 10) -> None:
    print_table(
        headers=["mode", "accuracy", "precision", "recall", "clusters", "iters"],
        rows=[
            (
                row.mode,
                percent(row.accuracy),
                percent(row.precision),
                percent(row.recall),
                row.final_clusters,
                row.iterations,
            )
            for row in rows
        ],
        title=f"DESIGN §6.1 ablation — hardened defaults vs literal paper "
        f"(true k = {true_k}, initial k = 1)",
    )
