"""§5.1 ablation — PST pruning strategies under a tight node budget.

The paper claims "little degradation of the accuracy of the similarity
estimation" under its pruning strategies. This ablation fixes a tight
per-tree node budget and compares the three strategies (plus the
paper's combined policy and an unbounded control) on clustering
quality and speed.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.pruning import STRATEGIES
from ..evaluation.reporting import percent, print_table
from ..sequences.database import SequenceDatabase
from .common import CluseqRun, run_cluseq, scaled_params
from .table5_initial_k import default_database


@dataclass(frozen=True)
class PruningRow:
    """One pruning configuration's outcome."""

    strategy: str
    max_nodes: int | None
    accuracy: float
    precision: float
    recall: float
    elapsed_seconds: float


def run_ablation_pruning(
    db: SequenceDatabase | None = None,
    max_nodes: int = 400,
    true_k: int = 10,
    seed: int = 3,
) -> list[PruningRow]:
    """Compare all pruning strategies at one node budget + a control."""
    if db is None:
        db = default_database(true_k=true_k, seed=seed)

    configurations: list[tuple] = [("unbounded", None)]
    configurations += [(strategy, max_nodes) for strategy in STRATEGIES]

    rows: list[PruningRow] = []
    for strategy, budget in configurations:
        overrides = scaled_params(
            db,
            k=true_k,
            significance_threshold=5,
            min_unique_members=5,
            seed=seed,
        )
        if budget is not None:
            overrides["max_nodes"] = budget
            overrides["prune_strategy"] = strategy
        run: CluseqRun = run_cluseq(db, **overrides)
        rows.append(
            PruningRow(
                strategy=strategy,
                max_nodes=budget,
                accuracy=run.accuracy,
                precision=run.precision,
                recall=run.recall,
                elapsed_seconds=run.elapsed_seconds,
            )
        )
    return rows


def print_ablation_pruning(rows: list[PruningRow]) -> None:
    print_table(
        headers=["strategy", "node budget", "accuracy", "precision", "recall", "time (s)"],
        rows=[
            (
                row.strategy,
                row.max_nodes,
                percent(row.accuracy),
                percent(row.precision),
                percent(row.recall),
                row.elapsed_seconds,
            )
            for row in rows
        ],
        title="§5.1 ablation — pruning strategies under a tight node budget",
    )
