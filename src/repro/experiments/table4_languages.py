"""Table 4 — natural-language sentence clustering.

Paper's result on 600 sentences/language + 100 noise sentences
(spaces removed, phonetic alphabet):

                English   Chinese   Japanese
    Precision %      86        79         81
    Recall %         84        78         80

with English easiest (strong "th"/"he"/"e" statistics) and Chinese
hardest. The reproduction uses the generated language substitute
(see ``repro.datasets.languages``) at 1/5 scale by default.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..datasets.languages import make_language_database
from ..evaluation.reporting import percent, print_table
from ..sequences.database import SequenceDatabase
from .common import CluseqRun, run_cluseq, scaled_params

#: Paper-reported precision/recall per language.
PAPER_TABLE4 = {
    "english": (0.86, 0.84),
    "chinese": (0.79, 0.78),
    "japanese": (0.81, 0.80),
}


@dataclass(frozen=True)
class LanguageRow:
    """One column of Table 4 (transposed into a row here)."""

    language: str
    precision: float
    recall: float
    size: int


def run_table4(
    db: SequenceDatabase | None = None,
    sentences_per_language: int = 120,
    noise_sentences: int = 20,
    seed: int = 2,
) -> list[LanguageRow]:
    """Cluster the language database and score each language."""
    if db is None:
        db = make_language_database(
            sentences_per_language=sentences_per_language,
            noise_sentences=noise_sentences,
            seed=seed,
        )
    run: CluseqRun = run_cluseq(
        db, **scaled_params(db, k=3, significance_threshold=4, seed=seed)
    )
    return [
        LanguageRow(
            language=score.family,
            precision=score.precision,
            recall=score.recall,
            size=score.size,
        )
        for score in run.report.family_scores
    ]


def print_table4(rows: list[LanguageRow]) -> None:
    print_table(
        headers=["Language", "Precision", "Recall", "Size", "Paper P", "Paper R"],
        rows=[
            (
                row.language,
                percent(row.precision),
                percent(row.recall),
                row.size,
                percent(PAPER_TABLE4[row.language][0])
                if row.language in PAPER_TABLE4
                else None,
                percent(PAPER_TABLE4[row.language][1])
                if row.language in PAPER_TABLE4
                else None,
            )
            for row in rows
        ],
        title="Table 4 — Language clustering (generated substitute)",
    )
