"""Table 2 — model comparison on the protein database.

Paper's result (8 000 proteins, 30 families, Sun Ultra 10):

    Model     CLUSEQ   ED    EDBO    HMM   q-gram
    Accuracy    82 %  23 %   80 %   81 %     75 %
    Time (s)    144    487  13754   3117      132

Expected shape on the scaled substitute: CLUSEQ leads or ties the best
accuracy at q-gram-like speed; ED's accuracy collapses; EDBO and HMM
are competitive on accuracy but one to two orders of magnitude slower.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from ..baselines import (
    BlockEditClusterer,
    EditDistanceClusterer,
    HMMClusterer,
    QGramClusterer,
)
from ..datasets.protein import make_protein_database
from ..evaluation.metrics import evaluate_clustering
from ..evaluation.reporting import percent, print_table
from ..sequences.database import SequenceDatabase
from .common import run_cluseq, scaled_params

#: Paper-reported accuracies, for EXPERIMENTS.md comparison.
PAPER_ACCURACY = {
    "CLUSEQ": 0.82,
    "ED": 0.23,
    "EDBO": 0.80,
    "HMM": 0.81,
    "q-gram": 0.75,
}


@dataclass(frozen=True)
class ModelRow:
    """One row of Table 2."""

    model: str
    accuracy: float
    elapsed_seconds: float
    num_clusters: int


def default_database(seed: int = 1) -> SequenceDatabase:
    """The scaled protein database used across the Table 2/3 harnesses."""
    return make_protein_database(
        num_families=10,
        scale=0.04,
        mean_length=100,
        seed=seed,
        concentration=0.2,
    )


def run_table2(
    db: SequenceDatabase | None = None,
    models: list[str] | None = None,
    seed: int = 1,
) -> list[ModelRow]:
    """Run the full model comparison; returns one row per model.

    *models* filters which comparisons run (EDBO and HMM dominate the
    runtime; pass e.g. ``["CLUSEQ", "ED", "q-gram"]`` for a quick pass).
    """
    if db is None:
        db = default_database(seed)
    wanted = set(models) if models is not None else set(PAPER_ACCURACY)
    num_families = len(db.distinct_labels())
    truth = db.labels
    rows: list[ModelRow] = []

    if "CLUSEQ" in wanted:
        run = run_cluseq(
            db, **scaled_params(db, k=num_families, significance_threshold=4, seed=seed)
        )
        rows.append(
            ModelRow(
                model="CLUSEQ",
                accuracy=run.accuracy,
                elapsed_seconds=run.elapsed_seconds,
                num_clusters=run.result.num_clusters,
            )
        )

    baselines = {
        "ED": EditDistanceClusterer(seed=seed),
        "EDBO": BlockEditClusterer(seed=seed),
        "HMM": HMMClusterer(num_states=5, seed=seed),
        "q-gram": QGramClusterer(q=3, seed=seed),
    }
    for name, model in baselines.items():
        if name not in wanted:
            continue
        outcome = model.fit_predict(db, num_families)
        report = evaluate_clustering(truth, outcome.labels)
        rows.append(
            ModelRow(
                model=name,
                accuracy=report.accuracy,
                elapsed_seconds=outcome.elapsed_seconds,
                num_clusters=outcome.num_clusters,
            )
        )
    return rows


def print_table2(rows: list[ModelRow]) -> None:
    """Render the rows in the paper's Table 2 layout."""
    print_table(
        headers=["Model", "Correctly labeled", "Response time (s)", "#clusters", "Paper acc."],
        rows=[
            (
                row.model,
                percent(row.accuracy),
                row.elapsed_seconds,
                row.num_clusters,
                percent(PAPER_ACCURACY.get(row.model, float("nan"))),
            )
            for row in rows
        ],
        title="Table 2 — Model Comparison (scaled protein database)",
    )
