"""Figure 4 — effect of the PST memory budget.

Paper's result: precision/recall climb with the per-tree memory budget
and plateau once each PST gets ~5 MB; response time keeps growing with
the budget. The reproduction sweeps a per-tree *node* budget (the
paper's megabytes ≈ nodes × bytes-per-node) and reports the same
series: precision, recall and response time per budget.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

from ..core.pst import APPROX_BYTES_PER_NODE
from ..evaluation.reporting import percent, print_table
from ..sequences.database import SequenceDatabase
from .common import CluseqRun, run_cluseq, scaled_params
from .table5_initial_k import default_database


@dataclass(frozen=True)
class PstSizeRow:
    """One x-position of Figure 4 (a) and (b)."""

    max_nodes: int
    approx_kib: float
    precision: float
    recall: float
    elapsed_seconds: float
    final_clusters: int


def run_fig4(
    db: SequenceDatabase | None = None,
    node_budgets: Sequence[int] = (100, 250, 500, 1000, 2000, 4000),
    true_k: int = 10,
    seed: int = 3,
) -> list[PstSizeRow]:
    """Sweep the per-tree node budget."""
    if db is None:
        db = default_database(true_k=true_k, seed=seed)
    rows: list[PstSizeRow] = []
    for budget in node_budgets:
        run: CluseqRun = run_cluseq(
            db,
            **scaled_params(
                db,
                k=true_k,
                significance_threshold=5,
                min_unique_members=5,
                max_nodes=budget,
                seed=seed,
            ),
        )
        rows.append(
            PstSizeRow(
                max_nodes=budget,
                approx_kib=budget * APPROX_BYTES_PER_NODE / 1024.0,
                precision=run.precision,
                recall=run.recall,
                elapsed_seconds=run.elapsed_seconds,
                final_clusters=run.result.num_clusters,
            )
        )
    return rows


def print_fig4(rows: list[PstSizeRow]) -> None:
    print_table(
        headers=[
            "max nodes/tree",
            "≈ KiB",
            "precision",
            "recall",
            "time (s)",
            "clusters",
        ],
        rows=[
            (
                row.max_nodes,
                row.approx_kib,
                percent(row.precision),
                percent(row.recall),
                row.elapsed_seconds,
                row.final_clusters,
            )
            for row in rows
        ],
        title="Figure 4 — Effect of PST size (accuracy plateaus, time grows)",
    )
