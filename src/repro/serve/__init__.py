"""Clustering-as-a-service: async HTTP serving over versioned models.

The subsystem layers (each importable on its own):

* :mod:`repro.serve.http` — framework-free asyncio HTTP/1.1 wire layer.
* :mod:`repro.serve.registry` — versioned model registry with the
  epoch/refcount hot-swap protocol.
* :mod:`repro.serve.batching` — bounded-queue micro-batching dispatcher
  coalescing classify requests into single kernel invocations.
* :mod:`repro.serve.app` — endpoint routing and the server lifecycle.

Layering: ``serve`` may import ``core``, ``stream``, ``sequences`` and
``obs``; nothing in the engine imports ``serve`` (enforced by CLQ001).
"""

from __future__ import annotations

from .app import ServeApp
from .batching import BatchStats, MicroBatcher, QueueFullError
from .http import (
    HttpProtocolError,
    HttpRequest,
    HttpResponse,
    HttpServer,
    error_response,
    http_call,
    json_response,
)
from .registry import (
    ClassifyOutcome,
    ModelLoadError,
    ModelRegistry,
    ModelVersion,
    load_model_payload,
)

__all__ = [
    "BatchStats",
    "ClassifyOutcome",
    "HttpProtocolError",
    "HttpRequest",
    "HttpResponse",
    "HttpServer",
    "MicroBatcher",
    "ModelLoadError",
    "ModelRegistry",
    "ModelVersion",
    "QueueFullError",
    "ServeApp",
    "error_response",
    "http_call",
    "json_response",
    "load_model_payload",
]
