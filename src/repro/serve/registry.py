"""Versioned model registry with epoch/refcount hot swap.

A *model* is a fitted :class:`~repro.core.cluseq.ClusteringResult`
plus its alphabet — exactly what ``cluster --save-model`` writes via
:mod:`repro.core.persistence`, or what the streaming engine captures
in a ``repro.stream/v1`` checkpoint. The registry loads either format
(:func:`load_model_payload` sniffs the ``format``/``format_version``
tag, and accepts a stream state *directory* by resolving its
``checkpoint.json``), wraps it in a :class:`ModelVersion` carrying its
own :class:`~repro.core.backends.dispatch.PstBatchScorer`, and serves
it to request handlers under an epoch/refcount protocol:

* ``acquire()`` returns the live version with its refcount bumped;
  ``release()`` drops it. Every scoring pass runs against exactly one
  acquired version.
* ``reload()`` builds the replacement *completely* — parsed, scored
  against nothing, ready to serve — and then swaps the registry slot
  in one assignment under the lock. In-flight requests finish on the
  version they acquired; new acquisitions see only the new epoch.
  There is never a moment where a half-loaded model is visible.
* The retired version's refcount drains to zero as in-flight work
  completes; ``ModelVersion.drained`` flips, its caches are dropped,
  and the memory goes with the last reference.

Thread-safe by a plain mutex: acquire/release/swap are a few pointer
operations, far off any hot path (scoring happens *outside* the lock).
"""

from __future__ import annotations

import json
import os
import threading
import time
from dataclasses import dataclass
from typing import Any

from ..core.backends.dispatch import PstBatchScorer
from ..core.backends.parallel import ScoringPool
from ..core.cluseq import ClusteringResult
from ..core.persistence import FORMAT_VERSION, result_from_dict
from ..obs import get_registry
from ..sequences.alphabet import Alphabet
from ..stream.checkpoint import CHECKPOINT_FILENAME, read_checkpoint
from ..stream.journal import STREAM_FORMAT

__all__ = [
    "ClassifyOutcome",
    "ModelLoadError",
    "ModelRegistry",
    "ModelVersion",
    "load_model_payload",
]


class ModelLoadError(ValueError):
    """A model source that cannot be loaded (missing, foreign, corrupt)."""


def load_model_payload(path: str) -> tuple[ClusteringResult, Alphabet, str]:
    """Load ``(result, alphabet, kind)`` from any supported source.

    *path* may be a ``core.persistence`` snapshot (``kind="snapshot"``),
    a ``repro.stream/v1`` checkpoint file (``kind="checkpoint"``), or a
    stream state directory containing ``checkpoint.json``. The alphabet
    must be embedded — a server cannot encode requests without one.
    """
    target = path
    if os.path.isdir(target):
        target = os.path.join(target, CHECKPOINT_FILENAME)
    if not os.path.exists(target):
        raise ModelLoadError(f"no model source at {target}")
    with open(target, encoding="utf-8") as handle:
        try:
            payload = json.load(handle)
        except json.JSONDecodeError as exc:
            raise ModelLoadError(f"{target}: not valid JSON: {exc}") from exc
    if not isinstance(payload, dict):
        raise ModelLoadError(f"{target}: model source must be a JSON object")
    if payload.get("format") == STREAM_FORMAT:
        # Re-read through the checkpoint reader so its validation
        # (format tag, object shape) stays the single source of truth.
        state = read_checkpoint(target)
        result_payload = state.get("result")
        if not isinstance(result_payload, dict):
            raise ModelLoadError(f"{target}: checkpoint carries no model state")
        kind = "checkpoint"
    elif payload.get("format_version") == FORMAT_VERSION:
        result_payload = payload
        kind = "snapshot"
    else:
        raise ModelLoadError(
            f"{target}: neither a persistence snapshot nor a "
            f"{STREAM_FORMAT} checkpoint"
        )
    result = result_from_dict(result_payload)
    symbols = result_payload.get("alphabet")
    if not symbols:
        raise ModelLoadError(
            f"{target}: model does not embed an alphabet; a server "
            "cannot encode request sequences without one"
        )
    return result, Alphabet(symbols), kind


@dataclass
class ClassifyOutcome:
    """One sequence's classification against one model version."""

    cluster_id: int | None
    log_similarity: float
    best_start: int
    best_end: int

    def to_dict(self) -> dict[str, Any]:
        return {
            "cluster": self.cluster_id,
            "log_similarity": self.log_similarity,
            "segment": [self.best_start, self.best_end],
        }


class ModelVersion:
    """One immutable-by-convention loaded model generation.

    Classification never mutates the model; ``/v1/stream/ingest``
    does (absorbing §4.4 segments), which is safe because every PST
    carries a mutation version counter and the scorer re-flattens any
    tree whose version moved — the same contract the streaming engine
    relies on.
    """

    def __init__(
        self,
        name: str,
        epoch: int,
        result: ClusteringResult,
        alphabet: Alphabet,
        source: str,
        kind: str,
    ) -> None:
        self.name = name
        self.epoch = epoch
        self.result = result
        self.alphabet = alphabet
        self.source = source
        self.kind = kind
        self.loaded_unix = time.time()
        self.scorer = PstBatchScorer(result.background)
        self._lock = threading.Lock()
        self._refs = 0
        self._retired = False
        self._drained = threading.Event()

    @property
    def refs(self) -> int:
        return self._refs

    @property
    def retired(self) -> bool:
        return self._retired

    @property
    def drained(self) -> bool:
        """True once retired with no outstanding references."""
        return self._drained.is_set()

    def _acquire(self) -> None:
        with self._lock:
            self._refs += 1

    def release(self) -> None:
        """Drop one reference; finishes the drain when retired."""
        with self._lock:
            if self._refs <= 0:
                raise RuntimeError(f"release() without acquire on {self!r}")
            self._refs -= 1
            drained = self._retired and self._refs == 0
        if drained:
            self.scorer.forget()
            self._drained.set()

    def _retire(self) -> None:
        with self._lock:
            self._retired = True
            drained = self._refs == 0
        if drained:
            self.scorer.forget()
            self._drained.set()

    def wait_drained(self, timeout: float | None = None) -> bool:
        """Block until every in-flight reference is released."""
        return self._drained.wait(timeout)

    def classify_batch(
        self,
        sequences: list[list[str]],
        pool: ScoringPool | None = None,
    ) -> list[ClassifyOutcome | None]:
        """Classify raw symbol sequences; ``None`` marks an unencodable one.

        All encodable sequences go through **one** batch-scorer matrix
        call (amortizing the flat/stack caches across every request in
        the micro-batch); the decision rule is the paper's: best
        cluster by log-similarity, outlier below the model's final
        threshold — bit-identical to ``ClusteringResult.predict``.
        """
        from ..sequences.alphabet import AlphabetError

        encoded: list[list[int]] = []
        positions: list[int] = []
        for position, symbols in enumerate(sequences):
            try:
                row = self.alphabet.encode(symbols)
            except AlphabetError:
                continue
            if len(row) == 0:
                continue
            encoded.append(list(row))
            positions.append(position)
        outcomes: list[ClassifyOutcome | None] = [None] * len(sequences)
        if not encoded:
            return outcomes
        psts = [cluster.pst for cluster in self.result.clusters]
        if pool is not None:
            matrix = self.scorer.prescore_matrix(psts, encoded, pool=pool)
        else:
            matrix = self.scorer.score_matrix_full(psts, encoded)
        threshold = self.result.final_log_threshold
        for column, position in enumerate(positions):
            best_tree = -1
            best_log = float("-inf")
            for tree in range(matrix.trees):
                log_z = float(matrix.log_z[tree, column])
                if log_z > best_log:
                    best_log = log_z
                    best_tree = tree
            if best_tree >= 0 and best_log >= threshold:
                outcomes[position] = ClassifyOutcome(
                    cluster_id=self.result.clusters[best_tree].cluster_id,
                    log_similarity=best_log,
                    best_start=int(matrix.best_start[best_tree, column]),
                    best_end=int(matrix.best_end[best_tree, column]),
                )
            else:
                outcomes[position] = ClassifyOutcome(
                    cluster_id=None,
                    log_similarity=best_log,
                    best_start=0,
                    best_end=0,
                )
        return outcomes

    def describe(self) -> dict[str, Any]:
        return {
            "model": self.name,
            "epoch": self.epoch,
            "source": self.source,
            "kind": self.kind,
            "loaded_unix": self.loaded_unix,
            "clusters": len(self.result.clusters),
            "log_threshold": self.result.final_log_threshold,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ModelVersion(name={self.name!r}, epoch={self.epoch}, "
            f"refs={self._refs}, retired={self._retired})"
        )


class ModelRegistry:
    """Named models, each at some epoch, hot-swappable under load."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._models: dict[str, ModelVersion] = {}
        self._sources: dict[str, str] = {}

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._models)

    def load(self, name: str, source: str) -> ModelVersion:
        """Load *source* as epoch 1 of *name* (or swap if it exists)."""
        return self._install(name, source)

    def reload(self, name: str, source: str | None = None) -> ModelVersion:
        """Re-read the model's source (or a new one) and hot-swap it.

        The old epoch keeps serving its in-flight requests and drains;
        callers that acquired before the swap are never torn between
        generations.
        """
        with self._lock:
            if name not in self._models:
                raise KeyError(f"no model named {name!r}")
            resolved = source if source is not None else self._sources[name]
        return self._install(name, resolved)

    def _install(self, name: str, source: str) -> ModelVersion:
        started = time.perf_counter()
        result, alphabet, kind = load_model_payload(source)
        with self._lock:
            previous = self._models.get(name)
            epoch = previous.epoch + 1 if previous is not None else 1
            version = ModelVersion(name, epoch, result, alphabet, source, kind)
            self._models[name] = version
            self._sources[name] = source
        if previous is not None:
            previous._retire()
        registry = get_registry()
        if registry.enabled:
            registry.counter("serve.reloads").inc()
            registry.timer("serve.reload_seconds").record(
                time.perf_counter() - started
            )
            registry.gauge("serve.model_epoch").set(epoch)
        return version

    def get(self, name: str) -> ModelVersion:
        """The live version of *name* (no refcount taken)."""
        with self._lock:
            version = self._models.get(name)
        if version is None:
            raise KeyError(f"no model named {name!r}")
        return version

    def acquire(self, name: str) -> ModelVersion:
        """The live version with one reference taken; pair with release.

        The bump happens under the registry lock so a concurrent
        ``reload`` either retires the version *after* this reference is
        counted (the drain waits for it) or swaps first (and this call
        returns the new epoch) — the in-between does not exist.
        """
        with self._lock:
            version = self._models.get(name)
            if version is None:
                raise KeyError(f"no model named {name!r}")
            version._acquire()
        return version
