"""Micro-batching dispatcher: coalesce classify requests into one kernel.

Concurrent ``/v1/classify`` requests each carry a handful of
sequences; scoring them one request at a time would pay the batch
scorer's fixed costs (stack-cache validation, kernel launch overhead,
padding) per request. The dispatcher instead drains a bounded queue
under a (max batch size, max delay) window and pushes **all** waiting
sequences through a single
:meth:`~repro.core.backends.dispatch.PstBatchScorer` full-matrix
invocation — the PR 8 kernel pipeline — against one acquired
:class:`~repro.serve.registry.ModelVersion`, so the flat/stack caches
and the walk/Kadane kernels are amortized across clients.

Backpressure is the queue bound: when it is full, :meth:`submit`
raises :class:`QueueFullError` and the HTTP layer answers 503 with a
``Retry-After`` hint instead of letting latency grow without bound.

When the dispatcher runs with a :class:`ScoringPool` (``--workers``)
and that pool's executor dies (a worker OOM-killed or segfaulted),
the flush falls back to in-process scoring for the affected batch,
resets the pool, and keeps serving — a crashed worker pool must never
poison a long-running server.
"""

from __future__ import annotations

import asyncio
import time
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field

from ..core.backends.parallel import ScoringPool
from ..obs import get_logger, get_registry
from .registry import ClassifyOutcome, ModelRegistry, ModelVersion

__all__ = ["BatchStats", "MicroBatcher", "QueueFullError"]

_logger = get_logger("serve.batching")


class QueueFullError(RuntimeError):
    """The request queue is at capacity; the caller should shed load."""


@dataclass
class _Item:
    sequences: list[list[str]]
    future: "asyncio.Future[tuple[list[ClassifyOutcome | None], ModelVersion]]"
    enqueued: float


@dataclass
class BatchStats:
    """Dispatcher counters, exposed for tests and the stats endpoint."""

    flushes: int = 0
    requests: int = 0
    sequences: int = 0
    rejected: int = 0
    pool_resets: int = 0
    occupancy_sum: float = 0.0

    @property
    def mean_occupancy(self) -> float:
        """Mean requests coalesced per flush (the batching win metric)."""
        return self.occupancy_sum / self.flushes if self.flushes else 0.0

    def to_dict(self) -> dict[str, float]:
        return {
            "flushes": self.flushes,
            "requests": self.requests,
            "sequences": self.sequences,
            "rejected": self.rejected,
            "pool_resets": self.pool_resets,
            "mean_occupancy": self.mean_occupancy,
        }


@dataclass
class MicroBatcher:
    """Bounded-queue request coalescer over one registry model."""

    registry: ModelRegistry
    model_name: str = "default"
    #: Flush when this many sequences are waiting...
    max_batch: int = 64
    #: ...or when the oldest waiting request has aged this long.
    max_delay: float = 0.002
    #: Queue bound in *requests*; beyond it, submit() sheds load.
    max_queue: int = 256
    #: Optional worker pool for the scoring fan-out (``--workers``).
    pool: ScoringPool | None = None
    stats: BatchStats = field(default_factory=BatchStats)

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise ValueError("max_batch must be at least 1")
        if self.max_queue < 1:
            raise ValueError("max_queue must be at least 1")
        if self.max_delay < 0:
            raise ValueError("max_delay must be non-negative")
        # Created lazily inside the running loop: on py3.9 an
        # asyncio.Queue binds the *construction-time* loop, and the
        # batcher is typically built before asyncio.run() starts one.
        self._queue: asyncio.Queue[_Item] | None = None
        self._task: asyncio.Task[None] | None = None
        self._closed = False

    def start(self) -> None:
        """Spawn the dispatcher task on the running event loop."""
        if self._queue is None:
            self._queue = asyncio.Queue(maxsize=self.max_queue)
        if self._task is None:
            self._task = asyncio.get_running_loop().create_task(self._dispatch())

    async def close(self) -> None:
        """Stop dispatching; pending requests are failed, not dropped silently."""
        self._closed = True
        if self._task is not None:
            self._task.cancel()
            try:
                await self._task
            except asyncio.CancelledError:
                pass
            self._task = None
        while self._queue is not None and not self._queue.empty():
            item = self._queue.get_nowait()
            if not item.future.done():
                item.future.set_exception(RuntimeError("server shutting down"))

    async def submit(
        self, sequences: list[list[str]]
    ) -> tuple[list[ClassifyOutcome | None], ModelVersion]:
        """Enqueue one request; resolves with its outcomes and the
        model version they were scored against.

        Raises :class:`QueueFullError` immediately when the queue is at
        capacity — backpressure must be visible to the client *now*,
        not after the queue has already grown a latency mountain.
        """
        if self._closed:
            raise RuntimeError("batcher is closed")
        self.start()
        assert self._queue is not None
        loop = asyncio.get_running_loop()
        future: asyncio.Future[
            tuple[list[ClassifyOutcome | None], ModelVersion]
        ] = loop.create_future()
        item = _Item(sequences=sequences, future=future, enqueued=time.monotonic())
        try:
            self._queue.put_nowait(item)
        except asyncio.QueueFull:
            self.stats.rejected += 1
            registry = get_registry()
            if registry.enabled:
                registry.counter("serve.rejected").inc()
            raise QueueFullError(
                f"request queue at capacity ({self.max_queue})"
            ) from None
        registry = get_registry()
        if registry.enabled:
            registry.gauge("serve.queue_depth").set(self._queue.qsize())
        return await future

    async def _dispatch(self) -> None:
        assert self._queue is not None
        while True:
            first = await self._queue.get()
            batch = [first]
            size = len(first.sequences)
            deadline = time.monotonic() + self.max_delay
            try:
                while size < self.max_batch:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        break
                    try:
                        item = await asyncio.wait_for(
                            self._queue.get(), remaining
                        )
                    except asyncio.TimeoutError:
                        break
                    batch.append(item)
                    size += len(item.sequences)
            except asyncio.CancelledError:
                # Shutdown landed mid-window: these items left the queue
                # already, so close() cannot see them — fail them here.
                for item in batch:
                    if not item.future.done():
                        item.future.set_exception(
                            RuntimeError("server shutting down")
                        )
                raise
            self._flush(batch)

    def _flush(self, batch: list[_Item]) -> None:
        """Score one coalesced batch against one acquired model version.

        Synchronous on purpose: the scoring kernel is numpy-bound and
        releases no useful concurrency to the loop; running it inline
        keeps request/score/respond on one thread with no cross-thread
        mutation hazards against ``/v1/stream/ingest``.
        """
        registry = get_registry()
        if registry.enabled and self._queue is not None:
            registry.gauge("serve.queue_depth").set(self._queue.qsize())
        started = time.perf_counter()
        sequences: list[list[str]] = []
        for item in batch:
            sequences.extend(item.sequences)
        version = self.registry.acquire(self.model_name)
        try:
            try:
                outcomes = self._score(version, sequences)
            except Exception as exc:
                for item in batch:
                    if not item.future.done():
                        item.future.set_exception(exc)
                return
            offset = 0
            for item in batch:
                chunk = outcomes[offset : offset + len(item.sequences)]
                offset += len(item.sequences)
                if not item.future.done():
                    item.future.set_result((chunk, version))
        finally:
            version.release()
        self.stats.flushes += 1
        self.stats.requests += len(batch)
        self.stats.sequences += len(sequences)
        self.stats.occupancy_sum += len(batch)
        if registry.enabled:
            registry.counter("serve.batch.flushes").inc()
            registry.histogram("serve.batch.requests").observe(len(batch))
            registry.histogram("serve.batch.sequences").observe(len(sequences))
            registry.timer("serve.batch.score_seconds").record(
                time.perf_counter() - started
            )

    def _score(
        self, version: ModelVersion, sequences: list[list[str]]
    ) -> list[ClassifyOutcome | None]:
        if self.pool is None:
            return version.classify_batch(sequences)
        try:
            return version.classify_batch(sequences, pool=self.pool)
        except BrokenProcessPool:
            # A worker died (OOM, segfault, kill). Recover the pool for
            # the next flush and answer this one in-process — shedding
            # correct work because a worker crashed is not acceptable.
            self.stats.pool_resets += 1
            registry = get_registry()
            if registry.enabled:
                registry.counter("serve.pool_resets").inc()
            _logger.warning(
                "scoring pool broken; resetting and scoring in-process",
                extra={"model": version.name, "epoch": version.epoch},
            )
            self.pool.reset()
            return version.classify_batch(sequences)
