"""Clustering-as-a-service: endpoint routing and the server lifecycle.

:class:`ServeApp` wires the pieces — :class:`~.registry.ModelRegistry`
for versioned models, :class:`~.batching.MicroBatcher` for coalesced
scoring, :class:`~.http.HttpServer` for the wire — into the service
surface:

====================================  =========================================
``POST /v1/classify``                 batch-score sequences against the model
``POST /v1/stream/ingest``            absorb sequences into the live model
``GET  /v1/clusters``                 cluster summary of the active epoch
``GET  /v1/stats``                    dispatcher / registry counters
``GET  /healthz``                     liveness (+ ``?probe=1`` pool probe)
``GET  /metrics``                     Prometheus text exposition
``POST /admin/models/{name}/reload``  hot-swap a model from its source
====================================  =========================================

Request handling is single-threaded on the event loop; scoring runs
inline in the dispatcher flush (numpy releases nothing useful to
overlap) and model mutation (`ingest`) happens between flushes, so no
lock guards the model itself — the epoch/refcount protocol in the
registry is the only cross-request synchronization, and it exists for
*swaps*, not scoring.
"""

from __future__ import annotations

import re
import time
from typing import Any

from ..core.backends.parallel import ScoringPool
from ..obs import get_logger, get_registry, to_prometheus_text
from .batching import MicroBatcher, QueueFullError
from .http import (
    HttpRequest,
    HttpResponse,
    HttpServer,
    error_response,
    json_response,
)
from .registry import ModelLoadError, ModelRegistry

__all__ = ["ServeApp"]

_logger = get_logger("serve.app")

_RELOAD_PATH = re.compile(r"^/admin/models/([A-Za-z0-9_.-]+)/reload$")

#: Retry-After seconds suggested to shed clients. One batching window
#: is usually enough for the queue to drain a slot; a full second is
#: the conservative, cache-friendly hint.
RETRY_AFTER_SECONDS = 1


def _sequences_from_payload(payload: Any) -> list[list[str]]:
    """Normalize a request body into a list of symbol sequences.

    Accepts ``{"sequences": ["acgt", ...]}`` (each entry a string of
    one-character symbols or a list of symbol tokens) or the singular
    ``{"sequence": "acgt"}``.
    """
    if not isinstance(payload, dict):
        raise ValueError("body must be a JSON object")
    if "sequence" in payload and "sequences" not in payload:
        raw = [payload["sequence"]]
    else:
        raw = payload.get("sequences")
    if not isinstance(raw, list) or not raw:
        raise ValueError("body must carry a non-empty 'sequences' array")
    sequences: list[list[str]] = []
    for entry in raw:
        if isinstance(entry, str):
            sequences.append(list(entry))
        elif isinstance(entry, list) and all(isinstance(s, str) for s in entry):
            sequences.append(list(entry))
        else:
            raise ValueError(
                "each sequence must be a string or a list of symbol strings"
            )
    return sequences


class ServeApp:
    """The serving application: routes, counters and lifecycle."""

    def __init__(
        self,
        registry: ModelRegistry,
        model_name: str = "default",
        max_batch: int = 64,
        max_delay: float = 0.002,
        max_queue: int = 256,
        workers: int = 0,
    ) -> None:
        self.registry = registry
        self.model_name = model_name
        self._pool = ScoringPool(workers) if workers > 0 else None
        self.batcher = MicroBatcher(
            registry=registry,
            model_name=model_name,
            max_batch=max_batch,
            max_delay=max_delay,
            max_queue=max_queue,
            pool=self._pool,
        )
        self.server = HttpServer(self.handle)
        self.started_unix = time.time()

    # -- lifecycle ----------------------------------------------------------------

    async def start(self, host: str = "127.0.0.1", port: int = 0) -> tuple[str, int]:
        """Start the dispatcher and listen; returns the bound address."""
        self.batcher.start()
        bound = await self.server.start(host, port)
        _logger.info(
            "serving", extra={"host": bound[0], "port": bound[1],
                              "model": self.model_name}
        )
        return bound

    async def close(self) -> None:
        """Stop accepting, stop dispatching, release the worker pool."""
        await self.server.close()
        await self.batcher.close()
        if self._pool is not None:
            self._pool.close()

    async def __aenter__(self) -> "ServeApp":
        return self

    async def __aexit__(self, *exc_info: object) -> None:
        await self.close()

    # -- routing ------------------------------------------------------------------

    async def handle(self, request: HttpRequest) -> HttpResponse:
        """Route one request; every endpoint's metrics funnel through here."""
        registry = get_registry()
        started = time.perf_counter()
        endpoint, response = await self._route(request)
        if registry.enabled:
            registry.counter("serve.requests", endpoint=endpoint).inc()
            registry.timer("serve.request_seconds", endpoint=endpoint).record(
                time.perf_counter() - started
            )
            if response.status >= 500:
                registry.counter("serve.errors").inc()
        return response

    async def _route(self, request: HttpRequest) -> tuple[str, HttpResponse]:
        path = request.path.rstrip("/") or "/"
        if path == "/healthz":
            return "healthz", await self._healthz(request)
        if path == "/metrics":
            return "metrics", self._metrics(request)
        if path == "/v1/classify":
            if request.method != "POST":
                return "classify", error_response(405, "POST only")
            return "classify", await self._classify(request)
        if path == "/v1/stream/ingest":
            if request.method != "POST":
                return "ingest", error_response(405, "POST only")
            return "ingest", self._ingest(request)
        if path == "/v1/clusters":
            return "clusters", self._clusters(request)
        if path == "/v1/stats":
            return "stats", self._stats(request)
        match = _RELOAD_PATH.match(path)
        if match:
            if request.method != "POST":
                return "reload", error_response(405, "POST only")
            return "reload", self._reload(request, match.group(1))
        return "unknown", error_response(404, f"no route for {path}")

    # -- endpoints ----------------------------------------------------------------

    async def _classify(self, request: HttpRequest) -> HttpResponse:
        try:
            sequences = _sequences_from_payload(request.json())
        except ValueError as exc:
            return error_response(400, str(exc))
        try:
            outcomes, version = await self.batcher.submit(sequences)
        except QueueFullError as exc:
            return error_response(
                503, str(exc), **{"Retry-After": str(RETRY_AFTER_SECONDS)}
            )
        except KeyError as exc:
            return error_response(503, f"model not loaded: {exc}")
        results = [
            {"error": "unencodable sequence"} if outcome is None
            else outcome.to_dict()
            for outcome in outcomes
        ]
        registry = get_registry()
        if registry.enabled:
            classified = sum(
                1 for o in outcomes if o is not None and o.cluster_id is not None
            )
            registry.counter("serve.classified").inc(classified)
            registry.counter("serve.outliers").inc(
                sum(1 for o in outcomes if o is not None and o.cluster_id is None)
            )
        return json_response(
            {
                "model": version.name,
                "epoch": version.epoch,
                "results": results,
            }
        )

    def _ingest(self, request: HttpRequest) -> HttpResponse:
        """Absorb sequences into the live model (§4.4 streaming join).

        Mutation bumps each touched PST's version counter, so the next
        classify flush transparently re-flattens exactly the mutated
        trees — the same invalidation contract the streaming engine
        uses.
        """
        from ..sequences.alphabet import AlphabetError

        try:
            sequences = _sequences_from_payload(request.json())
        except ValueError as exc:
            return error_response(400, str(exc))
        try:
            version = self.registry.acquire(self.model_name)
        except KeyError as exc:
            return error_response(503, f"model not loaded: {exc}")
        try:
            assignments: list[int | None] = []
            absorbed = 0
            skipped = 0
            for symbols in sequences:
                try:
                    encoded = version.alphabet.encode(symbols)
                except AlphabetError:
                    assignments.append(None)
                    skipped += 1
                    continue
                if len(encoded) == 0:
                    assignments.append(None)
                    skipped += 1
                    continue
                cluster_id = version.result.assign_and_absorb(list(encoded))
                assignments.append(cluster_id)
                if cluster_id is not None:
                    absorbed += 1
        finally:
            version.release()
        registry = get_registry()
        if registry.enabled:
            registry.counter("serve.ingested").inc(len(sequences))
            registry.counter("serve.ingest_absorbed").inc(absorbed)
        return json_response(
            {
                "model": version.name,
                "epoch": version.epoch,
                "assignments": assignments,
                "absorbed": absorbed,
                "skipped": skipped,
            }
        )

    def _clusters(self, request: HttpRequest) -> HttpResponse:
        try:
            version = self.registry.get(self.model_name)
        except KeyError as exc:
            return error_response(503, f"model not loaded: {exc}")
        clusters = [
            {
                "cluster": cluster.cluster_id,
                "size": cluster.size,
                "pst_nodes": cluster.pst.node_count,
            }
            for cluster in sorted(
                version.result.clusters, key=lambda cl: -cl.size
            )
        ]
        payload = version.describe()
        payload["clusters"] = clusters
        return json_response(payload)

    def _stats(self, request: HttpRequest) -> HttpResponse:
        models = {
            name: self.registry.get(name).describe()
            for name in self.registry.names()
        }
        return json_response(
            {
                "uptime_seconds": time.time() - self.started_unix,
                "batching": self.batcher.stats.to_dict(),
                "models": models,
                "connections": self.server.connections,
            }
        )

    async def _healthz(self, request: HttpRequest) -> HttpResponse:
        body: dict[str, Any] = {"status": "ok"}
        try:
            version = self.registry.get(self.model_name)
            body["model"] = version.name
            body["epoch"] = version.epoch
        except KeyError:
            body["status"] = "degraded"
            body["model"] = None
        if self._pool is None:
            body["pool"] = "absent"
        elif request.query.get("probe"):
            # The probe round-trips a task through a worker process; it
            # blocks, so it runs off-loop and only on explicit request.
            import asyncio

            healthy = await asyncio.get_running_loop().run_in_executor(
                None, self._pool.probe
            )
            body["pool"] = "ok" if healthy else "broken"
            if not healthy:
                body["status"] = "degraded"
        else:
            body["pool"] = "ok" if not self._pool.closed else "closed"
        status = 200 if body["status"] == "ok" else 503
        return json_response(body, status=status)

    def _metrics(self, request: HttpRequest) -> HttpResponse:
        registry = get_registry()
        if not registry.enabled:
            return HttpResponse(
                status=200,
                body=b"# metrics registry disabled\n",
                content_type="text/plain; version=0.0.4",
            )
        assert hasattr(registry, "snapshot")
        text = to_prometheus_text(registry)  # type: ignore[arg-type]
        return HttpResponse(
            status=200,
            body=text.encode("utf-8"),
            content_type="text/plain; version=0.0.4",
        )

    def _reload(self, request: HttpRequest, name: str) -> HttpResponse:
        source: str | None = None
        if request.body:
            try:
                payload = request.json()
            except ValueError as exc:
                return error_response(400, str(exc))
            if isinstance(payload, dict) and payload.get("path") is not None:
                if not isinstance(payload["path"], str):
                    return error_response(400, "'path' must be a string")
                source = payload["path"]
        try:
            version = self.registry.reload(name, source=source)
        except KeyError:
            return error_response(404, f"no model named {name!r}")
        except ModelLoadError as exc:
            return error_response(422, str(exc))
        _logger.info(
            "model reloaded",
            extra={"model": name, "epoch": version.epoch,
                   "source": version.source},
        )
        return json_response(version.describe())
