"""A minimal asyncio HTTP/1.1 layer for the serving subsystem.

Framework-free by design (stdlib ``asyncio`` streams only): the serve
layer must be shippable wherever the core engine is, and the protocol
surface it needs — parse a request, dispatch, write a response, keep
the connection alive — is small enough that a dependency would cost
more than these few hundred lines.

The pieces:

* :class:`HttpRequest` / :class:`HttpResponse` — plain dataclasses for
  one exchange; helpers :func:`json_response` and :func:`error_response`
  build the JSON bodies every endpoint speaks.
* :func:`read_request` — incremental request parser over a
  ``StreamReader`` with hard limits (line length, header count, body
  size) so a misbehaving client cannot balloon server memory.
* :class:`HttpServer` — accept loop wrapping ``asyncio.start_server``;
  each connection runs a keep-alive loop that feeds parsed requests to
  an async handler and writes its responses back.
* :func:`http_call` — a tiny client used by the tests, the load
  generator benchmark and CI smoke checks, so client and server speak
  through one implementation of the wire format.
"""

from __future__ import annotations

import asyncio
import json
from collections.abc import Awaitable, Callable
from dataclasses import dataclass, field
from typing import Any
from urllib.parse import parse_qsl, urlsplit

__all__ = [
    "HttpProtocolError",
    "HttpRequest",
    "HttpResponse",
    "HttpServer",
    "error_response",
    "http_call",
    "json_response",
    "read_request",
]

#: Hard parser limits; requests beyond them are rejected with 4xx.
MAX_REQUEST_LINE = 8192
MAX_HEADER_COUNT = 100
MAX_BODY_BYTES = 8 * 1024 * 1024

#: Reason phrases for the statuses the serving layer emits.
REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    413: "Payload Too Large",
    422: "Unprocessable Entity",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class HttpProtocolError(ValueError):
    """A malformed or over-limit request; maps to a 4xx response."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


@dataclass
class HttpRequest:
    """One parsed HTTP/1.1 request."""

    method: str
    path: str
    query: dict[str, str]
    headers: dict[str, str]
    body: bytes

    def json(self) -> Any:
        """The body parsed as JSON; raises :class:`HttpProtocolError`."""
        if not self.body:
            raise HttpProtocolError(400, "request body is empty")
        try:
            return json.loads(self.body)
        except json.JSONDecodeError as exc:
            raise HttpProtocolError(400, f"request body is not JSON: {exc}") from exc

    @property
    def keep_alive(self) -> bool:
        return self.headers.get("connection", "").lower() != "close"


@dataclass
class HttpResponse:
    """One response; ``Content-Length`` is derived from ``body``."""

    status: int = 200
    body: bytes = b""
    content_type: str = "application/json"
    headers: dict[str, str] = field(default_factory=dict)

    def encode(self, keep_alive: bool = True) -> bytes:
        reason = REASONS.get(self.status, "Unknown")
        lines = [
            f"HTTP/1.1 {self.status} {reason}",
            f"Content-Type: {self.content_type}",
            f"Content-Length: {len(self.body)}",
            f"Connection: {'keep-alive' if keep_alive else 'close'}",
        ]
        for key, value in self.headers.items():
            lines.append(f"{key}: {value}")
        head = "\r\n".join(lines) + "\r\n\r\n"
        return head.encode("ascii") + self.body

    def json(self) -> Any:
        """The body parsed as JSON (client-side convenience)."""
        return json.loads(self.body)


def json_response(payload: Any, status: int = 200, **headers: str) -> HttpResponse:
    """A JSON-encoded :class:`HttpResponse` for *payload*."""
    body = json.dumps(payload).encode("utf-8")
    return HttpResponse(status=status, body=body, headers=dict(headers))


def error_response(status: int, message: str, **headers: str) -> HttpResponse:
    """The uniform error body: ``{"error": <message>}``."""
    return json_response({"error": message}, status=status, **headers)


async def read_request(
    reader: asyncio.StreamReader, max_body: int = MAX_BODY_BYTES
) -> HttpRequest | None:
    """Parse one request from *reader*; ``None`` on a clean EOF.

    Raises :class:`HttpProtocolError` for malformed or over-limit
    input — the server maps it to a 4xx response and closes.
    """
    try:
        raw_line = await reader.readuntil(b"\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None  # clean EOF between requests
        raise HttpProtocolError(400, "truncated request line") from exc
    except asyncio.LimitOverrunError as exc:
        raise HttpProtocolError(400, "request line too long") from exc
    if len(raw_line) > MAX_REQUEST_LINE:
        raise HttpProtocolError(400, "request line too long")
    parts = raw_line.decode("latin-1").rstrip("\r\n").split(" ")
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise HttpProtocolError(400, "malformed request line")
    method, target, _version = parts
    split = urlsplit(target)
    query = dict(parse_qsl(split.query))
    headers: dict[str, str] = {}
    while True:
        if len(headers) > MAX_HEADER_COUNT:
            raise HttpProtocolError(400, "too many headers")
        try:
            raw_header = await reader.readuntil(b"\r\n")
        except (asyncio.IncompleteReadError, asyncio.LimitOverrunError) as exc:
            raise HttpProtocolError(400, "truncated headers") from exc
        line = raw_header.decode("latin-1").rstrip("\r\n")
        if not line:
            break
        name, sep, value = line.partition(":")
        if not sep:
            raise HttpProtocolError(400, f"malformed header line: {line!r}")
        headers[name.strip().lower()] = value.strip()
    body = b""
    length_header = headers.get("content-length")
    if length_header is not None:
        try:
            length = int(length_header)
        except ValueError as exc:
            raise HttpProtocolError(400, "bad Content-Length") from exc
        if length < 0:
            raise HttpProtocolError(400, "bad Content-Length")
        if length > max_body:
            raise HttpProtocolError(413, f"body exceeds {max_body} bytes")
        try:
            body = await reader.readexactly(length)
        except asyncio.IncompleteReadError as exc:
            raise HttpProtocolError(400, "truncated body") from exc
    elif headers.get("transfer-encoding"):
        raise HttpProtocolError(400, "chunked requests are not supported")
    return HttpRequest(
        method=method.upper(),
        path=split.path,
        query=query,
        headers=headers,
        body=body,
    )


#: The application contract: one request in, one response out.
Handler = Callable[[HttpRequest], Awaitable[HttpResponse]]


class HttpServer:
    """Keep-alive HTTP/1.1 accept loop over ``asyncio.start_server``.

    The handler is applied per request; handler exceptions become 500
    responses (and the connection survives), protocol errors become
    4xx and close the connection. ``close()`` stops accepting and
    waits for the listener to go away; in-flight handlers finish on
    their own connections.
    """

    def __init__(self, handler: Handler, max_body: int = MAX_BODY_BYTES) -> None:
        self._handler = handler
        self._max_body = max_body
        self._server: asyncio.base_events.Server | None = None
        self.connections = 0

    async def start(self, host: str = "127.0.0.1", port: int = 0) -> tuple[str, int]:
        """Bind and listen; returns the bound ``(host, port)``."""
        if self._server is not None:
            raise RuntimeError("server already started")
        self._server = await asyncio.start_server(
            self._serve_connection, host=host, port=port
        )
        sockname = self._server.sockets[0].getsockname()
        return str(sockname[0]), int(sockname[1])

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.connections += 1
        try:
            while True:
                try:
                    request = await read_request(reader, self._max_body)
                except HttpProtocolError as exc:
                    writer.write(
                        error_response(exc.status, str(exc)).encode(keep_alive=False)
                    )
                    await writer.drain()
                    break
                if request is None:
                    break
                try:
                    response = await self._handler(request)
                except Exception as exc:  # noqa: BLE001 - boundary
                    response = error_response(500, f"internal error: {exc}")
                keep = request.keep_alive
                writer.write(response.encode(keep_alive=keep))
                await writer.drain()
                if not keep:
                    break
        except (ConnectionResetError, BrokenPipeError):
            pass  # client went away mid-exchange; nothing to salvage
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None


async def http_call(
    host: str,
    port: int,
    method: str,
    path: str,
    payload: Any | None = None,
    timeout: float = 30.0,
) -> HttpResponse:
    """One client request against a running server (tests/bench/CI).

    Opens a fresh connection per call — deliberately the simplest
    correct client; the load generator layers connection reuse on top
    where throughput matters.
    """
    reader, writer = await asyncio.open_connection(host, port)
    try:
        body = b"" if payload is None else json.dumps(payload).encode("utf-8")
        head = (
            f"{method} {path} HTTP/1.1\r\n"
            f"Host: {host}:{port}\r\n"
            f"Content-Length: {len(body)}\r\n"
            "Content-Type: application/json\r\n"
            "Connection: close\r\n\r\n"
        )
        writer.write(head.encode("ascii") + body)
        await writer.drain()
        raw = await asyncio.wait_for(reader.read(), timeout=timeout)
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass
    return parse_response(raw)


def parse_response(raw: bytes) -> HttpResponse:
    """Parse a full response byte string (client side)."""
    head, _, body = raw.partition(b"\r\n\r\n")
    lines = head.decode("latin-1").split("\r\n")
    status_parts = lines[0].split(" ", 2)
    if len(status_parts) < 2 or not status_parts[0].startswith("HTTP/1."):
        raise HttpProtocolError(400, "malformed status line")
    headers: dict[str, str] = {}
    content_type = "application/json"
    for line in lines[1:]:
        name, sep, value = line.partition(":")
        if sep:
            key = name.strip().lower()
            headers[key] = value.strip()
            if key == "content-type":
                content_type = value.strip()
    return HttpResponse(
        status=int(status_parts[1]),
        body=body,
        content_type=content_type,
        headers=headers,
    )
