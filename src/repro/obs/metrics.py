"""A dependency-free metrics registry.

Five metric primitives cover everything the CLUSEQ pipeline needs to
report about itself:

* :class:`Counter` — a monotonically increasing count (events, DP
  cells, pruned nodes).
* :class:`Gauge` — a last-value-wins instantaneous reading (final
  cluster count, final threshold).
* :class:`Histogram` — a fixed-bucket distribution (segment lengths,
  PST depths).
* :class:`Timer` — aggregated durations with wall and CPU components
  (phase spans, baseline fits).
* :class:`Series` — an append-only trajectory, one value per
  observation in order (per-iteration cluster counts, threshold path).

Metrics live in a :class:`MetricsRegistry`, keyed by name plus an
optional label set; ``registry.counter("x", model="hmm")`` and
``registry.counter("x", model="ed")`` are distinct time series of the
same metric family.

**Zero overhead by default.** The module-level active registry starts
as a :class:`NullRegistry` whose factory methods hand back shared
no-op instruments: instrumented code pays one attribute check
(``registry.enabled``) — or, at worst, a couple of no-op method calls —
per *call site*, never per symbol. Enable collection for a block of
code with::

    from repro.obs import MetricsRegistry, use_registry

    registry = MetricsRegistry()
    with use_registry(registry):
        result = CLUSEQ(params).fit(db)
    print(registry.snapshot())

Nothing here imports anything outside the standard library, so the
``obs`` package can be pulled into the hottest modules without
dependency concerns.
"""

from __future__ import annotations

import json
import math
import threading
from bisect import bisect_left
from collections.abc import Callable, Sequence
from typing import TypeVar, Union, cast

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Timer",
    "Series",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "get_registry",
    "set_registry",
    "use_registry",
]

#: Default histogram bucket upper bounds: powers of two up to 64k.
DEFAULT_BUCKETS: tuple[float, ...] = tuple(float(2**i) for i in range(17))

LabelItems = tuple[tuple[str, str], ...]

#: Any concrete instrument (typing.Union: evaluated at runtime on py39).
Metric = Union["Counter", "Gauge", "Histogram", "Timer", "Series"]

_M = TypeVar("_M", "Counter", "Gauge", "Histogram", "Timer", "Series")


def _label_key(labels: dict[str, object]) -> LabelItems:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _render_name(name: str, labels: LabelItems) -> str:
    if not labels:
        return name
    inner = ",".join(f"{k}={v}" for k, v in labels)
    return f"{name}{{{inner}}}"


class Counter:
    """A monotonically increasing event count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: float = 0

    def inc(self, amount: float = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge instead")
        self.value += amount

    def to_dict(self) -> dict[str, object]:
        return {"type": "counter", "value": self.value}


class Gauge:
    """A last-value-wins instantaneous reading."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: float = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1) -> None:
        self.value += amount

    def dec(self, amount: float = 1) -> None:
        self.value -= amount

    def to_dict(self) -> dict[str, object]:
        return {"type": "gauge", "value": self.value}


class Histogram:
    """A fixed-bucket distribution of observed values.

    ``buckets`` are *upper bounds* in ascending order; an implicit
    ``+inf`` bucket catches everything above the last bound. Alongside
    bucket counts the histogram tracks count/sum/min/max so means are
    recoverable without bucket interpolation.
    """

    __slots__ = ("bounds", "bucket_counts", "count", "total", "min", "max")

    def __init__(self, buckets: Sequence[float] | None = None) -> None:
        bounds = tuple(float(b) for b in (buckets or DEFAULT_BUCKETS))
        if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise ValueError("histogram buckets must be strictly increasing")
        if not bounds:
            raise ValueError("need at least one bucket bound")
        self.bounds = bounds
        self.bucket_counts: list[int] = [0] * (len(bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        self.bucket_counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def merge_binned(
        self,
        bucket_counts: Sequence[int],
        count: int,
        total: float,
        minimum: float,
        maximum: float,
    ) -> None:
        """Fold in a batch that was already binned by the caller.

        The hot batched scorer bins thousands of observations per call
        with vectorized ops; routing each through :meth:`observe` would
        dominate the kernel it is measuring. *bucket_counts* must use
        this histogram's bucket rule — index ``bisect_left(bounds,
        value)``, one trailing +inf bucket — and the aggregates must
        describe exactly the binned batch.
        """
        if count == 0:
            return
        if len(bucket_counts) != len(self.bucket_counts):
            raise ValueError(
                f"expected {len(self.bucket_counts)} bucket counts, "
                f"got {len(bucket_counts)}"
            )
        for index, bucket_count in enumerate(bucket_counts):
            self.bucket_counts[index] += int(bucket_count)
        self.count += count
        self.total += total
        if minimum < self.min:
            self.min = minimum
        if maximum > self.max:
            self.max = maximum

    def to_dict(self) -> dict[str, object]:
        return {
            "type": "histogram",
            "count": self.count,
            "sum": self.total,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            "buckets": {
                **{f"le_{b:g}": c for b, c in zip(self.bounds, self.bucket_counts)},
                "inf": self.bucket_counts[-1],
            },
        }


class Timer:
    """Aggregated durations: wall time always, CPU time when provided."""

    __slots__ = ("count", "total_seconds", "total_cpu_seconds", "min", "max")

    def __init__(self) -> None:
        self.count = 0
        self.total_seconds = 0.0
        self.total_cpu_seconds = 0.0
        self.min = math.inf
        self.max = -math.inf

    def record(self, wall_seconds: float, cpu_seconds: float | None = None) -> None:
        if wall_seconds < 0:
            raise ValueError("durations must be non-negative")
        self.count += 1
        self.total_seconds += wall_seconds
        if cpu_seconds is not None:
            self.total_cpu_seconds += cpu_seconds
        if wall_seconds < self.min:
            self.min = wall_seconds
        if wall_seconds > self.max:
            self.max = wall_seconds

    @property
    def mean_seconds(self) -> float:
        return self.total_seconds / self.count if self.count else 0.0

    def to_dict(self) -> dict[str, object]:
        return {
            "type": "timer",
            "count": self.count,
            "total_seconds": self.total_seconds,
            "total_cpu_seconds": self.total_cpu_seconds,
            "min_seconds": self.min if self.count else None,
            "max_seconds": self.max if self.count else None,
        }


class Series:
    """An append-only trajectory of values, in observation order."""

    __slots__ = ("values",)

    def __init__(self) -> None:
        self.values: list[float] = []

    def append(self, value: float) -> None:
        self.values.append(value)

    def __len__(self) -> int:
        return len(self.values)

    def to_dict(self) -> dict[str, object]:
        return {"type": "series", "values": list(self.values)}


class MetricsRegistry:
    """A named collection of metric instruments.

    Instruments are created lazily on first access and cached, so
    instrumented code can call ``registry.counter("x").inc()`` in a
    loop without bookkeeping. Requesting an existing name with a
    different type raises ``ValueError`` — a name identifies exactly
    one instrument kind. Thread-safe for instrument creation; the
    instruments themselves rely on the GIL like ordinary Python
    counters do.
    """

    #: Instrumented code may branch on this to skip collection work.
    enabled = True

    def __init__(self) -> None:
        self._metrics: dict[tuple[str, LabelItems], Metric] = {}
        self._types: dict[tuple[str, LabelItems], str] = {}
        self._lock = threading.Lock()

    # -- instrument factories ------------------------------------------------

    def _get_or_create(
        self,
        kind: str,
        name: str,
        labels: dict[str, object],
        factory: Callable[[], _M],
    ) -> _M:
        key = (name, _label_key(labels))
        metric = self._metrics.get(key)
        if metric is not None:
            if self._types[key] != kind:
                raise ValueError(
                    f"metric {name!r} already registered as {self._types[key]}, "
                    f"requested as {kind}"
                )
            return cast(_M, metric)
        with self._lock:
            metric = self._metrics.get(key)
            if metric is None:
                metric = factory()
                self._metrics[key] = metric
                self._types[key] = kind
            elif self._types[key] != kind:
                raise ValueError(
                    f"metric {name!r} already registered as {self._types[key]}, "
                    f"requested as {kind}"
                )
        return cast(_M, metric)

    def counter(self, name: str, **labels: object) -> Counter:
        return self._get_or_create("counter", name, labels, Counter)

    def gauge(self, name: str, **labels: object) -> Gauge:
        return self._get_or_create("gauge", name, labels, Gauge)

    def histogram(
        self, name: str, buckets: Sequence[float] | None = None, **labels: object
    ) -> Histogram:
        return self._get_or_create(
            "histogram", name, labels, lambda: Histogram(buckets)
        )

    def timer(self, name: str, **labels: object) -> Timer:
        return self._get_or_create("timer", name, labels, Timer)

    def series(self, name: str, **labels: object) -> Series:
        return self._get_or_create("series", name, labels, Series)

    # -- introspection -------------------------------------------------------

    def names(self) -> list[str]:
        """Sorted rendered names (labels inlined) of all instruments."""
        return sorted(_render_name(name, labels) for name, labels in self._metrics)

    def __len__(self) -> int:
        return len(self._metrics)

    def __contains__(self, name: str) -> bool:
        return any(base == name for base, _ in self._metrics)

    def get(self, name: str, **labels: object) -> Metric | None:
        """The instrument registered under *name*/*labels*, or ``None``."""
        return self._metrics.get((name, _label_key(labels)))

    def snapshot(self) -> dict[str, dict[str, object]]:
        """A JSON-serializable dump of every instrument's state."""
        out: dict[str, dict[str, object]] = {}
        for (name, labels), metric in sorted(self._metrics.items()):
            entry = metric.to_dict()
            if labels:
                entry["labels"] = dict(labels)
            out[_render_name(name, labels)] = entry
        return out

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(_sanitize(self.snapshot()), indent=indent)

    def reset(self) -> None:
        """Drop every instrument (a fresh start, e.g. between benches)."""
        with self._lock:
            self._metrics.clear()
            self._types.clear()


def _sanitize(value: object) -> object:
    """Make *value* strict-JSON safe: non-finite floats become ``None``
    (``json.dumps`` would otherwise emit the invalid ``Infinity``/``NaN``
    literals, which non-Python consumers reject)."""
    if isinstance(value, float) and not math.isfinite(value):
        return None
    if isinstance(value, dict):
        return {k: _sanitize(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_sanitize(v) for v in value]
    return value


# -- the no-op implementation ---------------------------------------------------


class _NullCounter(Counter):
    __slots__ = ()

    def inc(self, amount: float = 1) -> None:
        pass


class _NullGauge(Gauge):
    __slots__ = ()

    def set(self, value: float) -> None:
        pass

    def inc(self, amount: float = 1) -> None:
        pass

    def dec(self, amount: float = 1) -> None:
        pass


class _NullHistogram(Histogram):
    __slots__ = ()

    def observe(self, value: float) -> None:
        pass


class _NullTimer(Timer):
    __slots__ = ()

    def record(self, wall_seconds: float, cpu_seconds: float | None = None) -> None:
        pass


class _NullSeries(Series):
    __slots__ = ()

    def append(self, value: float) -> None:
        pass


_NULL_COUNTER = _NullCounter()
_NULL_GAUGE = _NullGauge()
_NULL_HISTOGRAM = _NullHistogram()
_NULL_TIMER = _NullTimer()
_NULL_SERIES = _NullSeries()


class NullRegistry(MetricsRegistry):
    """The disabled registry: every factory returns a shared no-op.

    ``enabled`` is ``False`` so hot paths can skip even the factory
    call; code that does call through records nothing and allocates
    nothing.
    """

    enabled = False

    def __init__(self) -> None:
        super().__init__()

    def counter(self, name: str, **labels: object) -> Counter:
        return _NULL_COUNTER

    def gauge(self, name: str, **labels: object) -> Gauge:
        return _NULL_GAUGE

    def histogram(
        self, name: str, buckets: Sequence[float] | None = None, **labels: object
    ) -> Histogram:
        return _NULL_HISTOGRAM

    def timer(self, name: str, **labels: object) -> Timer:
        return _NULL_TIMER

    def series(self, name: str, **labels: object) -> Series:
        return _NULL_SERIES


#: The process-wide disabled registry (also the default active one).
NULL_REGISTRY = NullRegistry()

_active: MetricsRegistry = NULL_REGISTRY


def get_registry() -> MetricsRegistry:
    """The currently active registry (the no-op one unless enabled)."""
    return _active


def set_registry(registry: MetricsRegistry | None) -> MetricsRegistry:
    """Install *registry* as the active one; ``None`` disables collection.

    Returns the previously active registry so callers can restore it.
    """
    global _active
    previous = _active
    _active = registry if registry is not None else NULL_REGISTRY
    return previous


class use_registry:
    """Context manager: activate a registry for a block, then restore.

    >>> registry = MetricsRegistry()
    >>> with use_registry(registry):
    ...     get_registry().counter("demo").inc()
    >>> registry.get("demo").value
    1
    """

    def __init__(self, registry: MetricsRegistry | None) -> None:
        self.registry = registry if registry is not None else NULL_REGISTRY
        self._previous: MetricsRegistry | None = None

    def __enter__(self) -> MetricsRegistry:
        self._previous = set_registry(self.registry)
        return self.registry

    def __exit__(self, *exc_info: object) -> None:
        set_registry(self._previous)
