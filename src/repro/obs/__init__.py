"""Observability: metrics, structured logging and tracing.

The instrumentation layer for the CLUSEQ pipeline, dependency-free by
design and **zero-overhead by default** — until an application opts
in, the active metrics registry is a no-op and every log call is
level-gated away under a ``NullHandler``.

Three pieces:

* :mod:`repro.obs.metrics` — counters, gauges, histograms, timers and
  series in a :class:`MetricsRegistry`; activate one with
  :func:`use_registry`/:func:`set_registry`.
* :mod:`repro.obs.logging` — the ``repro.*`` logger hierarchy,
  :func:`configure_logging` and a JSON-lines formatter. The root
  logger is never touched.
* :mod:`repro.obs.tracing` — nested :func:`span` context managers
  measuring wall/CPU time per pipeline phase.

See ``docs/OBSERVABILITY.md`` for the metric catalogue and usage.
"""

from .logging import (
    LOGGER_NAME,
    JsonLinesFormatter,
    configure_logging,
    get_logger,
    reset_logging,
)
from .metrics import (
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    Series,
    Timer,
    get_registry,
    set_registry,
    use_registry,
)
from .tracing import Span, current_span, iter_tree, span

__all__ = [
    "LOGGER_NAME",
    "JsonLinesFormatter",
    "configure_logging",
    "get_logger",
    "reset_logging",
    "Counter",
    "Gauge",
    "Histogram",
    "Timer",
    "Series",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "get_registry",
    "set_registry",
    "use_registry",
    "Span",
    "span",
    "current_span",
    "iter_tree",
]
