"""Observability: metrics, structured logging, tracing and profiling.

The instrumentation layer for the CLUSEQ pipeline, dependency-free by
design and **zero-overhead by default** — until an application opts
in, the active metrics registry is a no-op and every log call is
level-gated away under a ``NullHandler``.

Five pieces:

* :mod:`repro.obs.metrics` — counters, gauges, histograms, timers and
  series in a :class:`MetricsRegistry`; activate one with
  :func:`use_registry`/:func:`set_registry`.
* :mod:`repro.obs.logging` — the ``repro.*`` logger hierarchy,
  :func:`configure_logging` and a JSON-lines formatter. The root
  logger is never touched.
* :mod:`repro.obs.tracing` — nested :func:`span` context managers
  measuring wall/CPU time per pipeline phase, with optional trace
  export (span/trace ids) via :func:`set_span_exporter`.
* :mod:`repro.obs.profile` — the opt-in hot-path profiler: per-kernel
  timers, cache hit/miss counters, I/O latency histograms and memory
  gauges under the ``profile.*`` namespace.
* :mod:`repro.obs.export` — Prometheus text exposition,
  ``repro.telemetry/v2`` JSON snapshots and the ``repro.trace/v1``
  JSONL span exporter.

See ``docs/OBSERVABILITY.md`` for the metric catalogue and usage.
"""

from .export import (
    TELEMETRY_SCHEMA_V2,
    TRACE_SCHEMA,
    JsonlSpanExporter,
    prometheus_from_snapshot,
    read_trace,
    telemetry_document,
    to_prometheus_text,
    use_span_exporter,
    write_prometheus_text,
    write_telemetry_json,
)
from .logging import (
    LOGGER_NAME,
    JsonLinesFormatter,
    configure_logging,
    get_logger,
    reset_logging,
)
from .metrics import (
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    Series,
    Timer,
    get_registry,
    set_registry,
    use_registry,
)
from .profile import (
    NULL_PROFILER,
    NullProfiler,
    Profiler,
    get_profiler,
    set_profiler,
    use_profiler,
)
from .tracing import (
    Span,
    current_span,
    current_trace_context,
    get_span_exporter,
    iter_tree,
    new_trace_id,
    record_foreign_span,
    set_span_exporter,
    span,
)

__all__ = [
    "LOGGER_NAME",
    "JsonLinesFormatter",
    "configure_logging",
    "get_logger",
    "reset_logging",
    "Counter",
    "Gauge",
    "Histogram",
    "Timer",
    "Series",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "get_registry",
    "set_registry",
    "use_registry",
    "Span",
    "span",
    "current_span",
    "current_trace_context",
    "new_trace_id",
    "record_foreign_span",
    "set_span_exporter",
    "get_span_exporter",
    "iter_tree",
    "Profiler",
    "NullProfiler",
    "NULL_PROFILER",
    "get_profiler",
    "set_profiler",
    "use_profiler",
    "TELEMETRY_SCHEMA_V2",
    "TRACE_SCHEMA",
    "JsonlSpanExporter",
    "use_span_exporter",
    "telemetry_document",
    "write_telemetry_json",
    "to_prometheus_text",
    "prometheus_from_snapshot",
    "write_prometheus_text",
    "read_trace",
]
