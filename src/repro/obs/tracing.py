"""Lightweight tracing spans.

A *span* measures one named region of work — wall-clock and CPU time —
and nests: spans opened inside another span become its children, and
their metric names extend the parent's dotted path. Opening the same
path repeatedly (a per-iteration phase, say) aggregates into one
:class:`~repro.obs.metrics.Timer`, so a whole run's phase breakdown is
five timers, not five thousand span records.

Usage::

    from repro.obs import span

    with span("cluseq") as run_span:
        with span("reclustering"):      # path: cluseq.reclustering
            ...
    run_span.wall_seconds, run_span.cpu_seconds

When a metrics registry is active each finished span records its wall
and CPU time into ``span.<path>``; when none is (the default), the
cost of a span is two clock reads and a list append — nothing is
retained. Finished child spans stay reachable through
``parent.children`` for callers that want the tree itself.

The span stack is thread-local, so concurrent pipelines trace
independently.
"""

from __future__ import annotations

import threading
import time
from collections.abc import Iterator

from .logging import get_logger
from .metrics import MetricsRegistry, get_registry

__all__ = ["Span", "span", "current_span"]

_logger = get_logger("obs.trace")

_state = threading.local()


def _stack() -> list["Span"]:
    stack = getattr(_state, "stack", None)
    if stack is None:
        stack = []
        _state.stack = stack
    return stack


class Span:
    """One traced region; use via the :func:`span` context manager."""

    __slots__ = (
        "name",
        "path",
        "depth",
        "children",
        "wall_seconds",
        "cpu_seconds",
        "_wall_start",
        "_cpu_start",
        "_registry",
    )

    def __init__(
        self, name: str, path: str, depth: int, registry: MetricsRegistry
    ) -> None:
        self.name = name
        self.path = path
        self.depth = depth
        self.children: list["Span"] = []
        self.wall_seconds: float | None = None
        self.cpu_seconds: float | None = None
        self._wall_start = 0.0
        self._cpu_start = 0.0
        self._registry = registry

    @property
    def finished(self) -> bool:
        return self.wall_seconds is not None

    def __repr__(self) -> str:
        timing = (
            f"{self.wall_seconds:.6f}s" if self.finished else "running"
        )
        return f"Span({self.path!r}, {timing}, children={len(self.children)})"


class span:
    """Context manager opening a :class:`Span` named *name*.

    Parameters
    ----------
    name:
        Span name; nested spans get dotted paths (``parent.child``).
    registry:
        Metrics registry to record into; defaults to the active one at
        entry time.

    On exit the span records ``span.<path>`` into the registry (a
    no-op when collection is disabled) and emits one DEBUG log line.
    """

    __slots__ = ("_name", "_registry", "_span")

    def __init__(self, name: str, registry: MetricsRegistry | None = None) -> None:
        if not name:
            raise ValueError("span name must be non-empty")
        self._name = name
        self._registry = registry
        self._span: Span | None = None

    def __enter__(self) -> Span:
        registry = self._registry if self._registry is not None else get_registry()
        stack = _stack()
        parent_path = stack[-1].path if stack else ""
        path = f"{parent_path}.{self._name}" if parent_path else self._name
        current = Span(self._name, path, len(stack), registry)
        stack.append(current)
        self._span = current
        current._cpu_start = time.process_time()
        current._wall_start = time.perf_counter()
        return current

    def __exit__(self, *exc_info: object) -> None:
        wall_end = time.perf_counter()
        cpu_end = time.process_time()
        current = self._span
        stack = _stack()
        # Pop back to (and including) our span even if inner code
        # leaked unbalanced spans via exceptions.
        while stack:
            top = stack.pop()
            if top is current:
                break
        current.wall_seconds = wall_end - current._wall_start
        current.cpu_seconds = cpu_end - current._cpu_start
        if stack:
            stack[-1].children.append(current)
        registry = current._registry
        if registry.enabled:
            registry.timer(f"span.{current.path}").record(
                current.wall_seconds, current.cpu_seconds
            )
        if _logger.isEnabledFor(10):  # logging.DEBUG
            _logger.debug(
                "span %s finished",
                current.path,
                extra={
                    "span": current.path,
                    "wall_seconds": round(current.wall_seconds, 6),
                    "cpu_seconds": round(current.cpu_seconds, 6),
                    "depth": current.depth,
                },
            )


def current_span() -> Span | None:
    """The innermost open span on this thread, or ``None``."""
    stack = _stack()
    return stack[-1] if stack else None


def iter_tree(root: Span) -> Iterator[Span]:
    """Depth-first iteration over a finished span tree."""
    yield root
    for child in root.children:
        yield from iter_tree(child)
