"""Lightweight tracing spans.

A *span* measures one named region of work — wall-clock and CPU time —
and nests: spans opened inside another span become its children, and
their metric names extend the parent's dotted path. Opening the same
path repeatedly (a per-iteration phase, say) aggregates into one
:class:`~repro.obs.metrics.Timer`, so a whole run's phase breakdown is
five timers, not five thousand span records.

Usage::

    from repro.obs import span

    with span("cluseq") as run_span:
        with span("reclustering"):      # path: cluseq.reclustering
            ...
    run_span.wall_seconds, run_span.cpu_seconds

When a metrics registry is active each finished span records its wall
and CPU time into ``span.<path>``; when none is (the default), the
cost of a span is two clock reads and a list append — nothing is
retained. Finished child spans stay reachable through
``parent.children`` for callers that want the tree itself.

**Exported traces (Telemetry v2).** Installing a span exporter with
:func:`set_span_exporter` (or :class:`repro.obs.export.use_span_exporter`)
upgrades spans into trace records: each span gets a process-unique
``span_id``, inherits (or starts) a ``trace_id``, remembers its
parent's id, and is handed to the exporter on exit. Root spans start a
new trace unless given an explicit ``trace_id`` — that is how the
streaming engine keeps every micro-batch of one run on a single trace.
Work measured in another process (``ScoringPool`` worker chunks) is
stitched onto the live trace with :func:`record_foreign_span`.
Without an exporter none of this machinery runs.

The span stack is thread-local, so concurrent pipelines trace
independently.
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from collections.abc import Iterator
from typing import Protocol

from .logging import get_logger
from .metrics import MetricsRegistry, get_registry

__all__ = [
    "Span",
    "span",
    "current_span",
    "current_trace_context",
    "new_trace_id",
    "record_foreign_span",
    "set_span_exporter",
    "get_span_exporter",
    "SpanExporter",
]

_logger = get_logger("obs.trace")

_state = threading.local()


def _stack() -> list["Span"]:
    stack = getattr(_state, "stack", None)
    if stack is None:
        stack = []
        _state.stack = stack
    return stack


class SpanExporter(Protocol):
    """Anything that can receive finished spans (duck-typed)."""

    def export(self, span: "Span") -> None: ...


_exporter: SpanExporter | None = None

#: Process-scoped token keeping ids unique across concurrent runs that
#: merge trace files; counters keep ids deterministic within a process.
_RUN_TOKEN = f"{os.getpid():x}"
_span_ids = itertools.count(1)
_trace_ids = itertools.count(1)


def new_trace_id() -> str:
    """A fresh process-unique trace id (monotonic, not random)."""
    return f"t-{_RUN_TOKEN}-{next(_trace_ids):06d}"


def _new_span_id() -> str:
    return f"s-{_RUN_TOKEN}-{next(_span_ids):08d}"


def set_span_exporter(exporter: SpanExporter | None) -> SpanExporter | None:
    """Install *exporter* to receive finished spans; ``None`` disables.

    Returns the previously installed exporter so callers can restore it.
    """
    global _exporter
    previous = _exporter
    _exporter = exporter
    return previous


def get_span_exporter() -> SpanExporter | None:
    """The currently installed span exporter, if any."""
    return _exporter


class Span:
    """One traced region; use via the :func:`span` context manager."""

    __slots__ = (
        "name",
        "path",
        "depth",
        "children",
        "wall_seconds",
        "cpu_seconds",
        "trace_id",
        "span_id",
        "parent_id",
        "start_unix",
        "attrs",
        "_wall_start",
        "_cpu_start",
        "_registry",
    )

    def __init__(
        self, name: str, path: str, depth: int, registry: MetricsRegistry
    ) -> None:
        self.name = name
        self.path = path
        self.depth = depth
        self.children: list["Span"] = []
        self.wall_seconds: float | None = None
        self.cpu_seconds: float | None = None
        self.trace_id: str | None = None
        self.span_id: str | None = None
        self.parent_id: str | None = None
        self.start_unix: float | None = None
        self.attrs: dict[str, object] | None = None
        self._wall_start = 0.0
        self._cpu_start = 0.0
        self._registry = registry

    @property
    def finished(self) -> bool:
        return self.wall_seconds is not None

    def set_attr(self, key: str, value: object) -> None:
        """Attach one key/value to the span's exported record."""
        if self.attrs is None:
            self.attrs = {}
        self.attrs[key] = value

    def __repr__(self) -> str:
        timing = (
            f"{self.wall_seconds:.6f}s" if self.finished else "running"
        )
        return f"Span({self.path!r}, {timing}, children={len(self.children)})"


class span:
    """Context manager opening a :class:`Span` named *name*.

    Parameters
    ----------
    name:
        Span name; nested spans get dotted paths (``parent.child``).
    registry:
        Metrics registry to record into; defaults to the active one at
        entry time.
    trace_id:
        Explicit trace to continue when an exporter is installed.
        Only meaningful for root spans: nested spans always inherit
        their parent's trace. This is how long-lived engines keep
        successive root spans (one per micro-batch) on a single trace.

    On exit the span records ``span.<path>`` into the registry (a
    no-op when collection is disabled), hands itself to the installed
    span exporter (if any), and emits one DEBUG log line.
    """

    __slots__ = ("_name", "_registry", "_trace_id", "_span")

    def __init__(
        self,
        name: str,
        registry: MetricsRegistry | None = None,
        trace_id: str | None = None,
    ) -> None:
        if not name:
            raise ValueError("span name must be non-empty")
        self._name = name
        self._registry = registry
        self._trace_id = trace_id
        self._span: Span | None = None

    def __enter__(self) -> Span:
        registry = self._registry if self._registry is not None else get_registry()
        stack = _stack()
        parent_path = stack[-1].path if stack else ""
        path = f"{parent_path}.{self._name}" if parent_path else self._name
        current = Span(self._name, path, len(stack), registry)
        if _exporter is not None:
            current.span_id = _new_span_id()
            if stack:
                parent = stack[-1]
                current.parent_id = parent.span_id
                current.trace_id = (
                    parent.trace_id if parent.trace_id is not None else new_trace_id()
                )
            else:
                current.trace_id = (
                    self._trace_id if self._trace_id is not None else new_trace_id()
                )
            current.start_unix = time.time()
        stack.append(current)
        self._span = current
        current._cpu_start = time.process_time()
        current._wall_start = time.perf_counter()
        return current

    def __exit__(self, *exc_info: object) -> None:
        wall_end = time.perf_counter()
        cpu_end = time.process_time()
        current = self._span
        assert current is not None  # __exit__ implies __enter__ ran
        stack = _stack()
        # Pop back to (and including) our span even if inner code
        # leaked unbalanced spans via exceptions.
        while stack:
            top = stack.pop()
            if top is current:
                break
        current.wall_seconds = wall_end - current._wall_start
        current.cpu_seconds = cpu_end - current._cpu_start
        if stack:
            stack[-1].children.append(current)
        registry = current._registry
        if registry.enabled:
            registry.timer(f"span.{current.path}").record(
                current.wall_seconds, current.cpu_seconds
            )
        exporter = _exporter
        if exporter is not None and current.span_id is not None:
            exporter.export(current)
        if _logger.isEnabledFor(10):  # logging.DEBUG
            _logger.debug(
                "span %s finished",
                current.path,
                extra={
                    "span": current.path,
                    "wall_seconds": round(current.wall_seconds, 6),
                    "cpu_seconds": round(current.cpu_seconds, 6),
                    "depth": current.depth,
                },
            )


def current_span() -> Span | None:
    """The innermost open span on this thread, or ``None``."""
    stack = _stack()
    return stack[-1] if stack else None


def current_trace_context() -> tuple[str, str] | None:
    """``(trace_id, span_id)`` of the innermost open span, or ``None``.

    ``None`` also when no exporter is installed (spans then carry no
    ids), so callers can use this as the "is tracing worth it" gate
    before shipping context to workers.
    """
    stack = _stack()
    if not stack:
        return None
    top = stack[-1]
    if top.trace_id is None or top.span_id is None:
        return None
    return (top.trace_id, top.span_id)


def record_foreign_span(
    path: str,
    wall_seconds: float,
    cpu_seconds: float | None = None,
    *,
    trace_id: str | None = None,
    parent_id: str | None = None,
    attrs: dict[str, object] | None = None,
    registry: MetricsRegistry | None = None,
) -> Span:
    """Record a span measured elsewhere (e.g. in a worker process).

    ``ScoringPool`` workers cannot open spans on the parent's stack, so
    they measure their chunk locally and ship the timing home; the
    parent calls this on commit to stitch a finished child span onto
    the live trace. The span records a ``span.<path>`` timer when a
    registry is active and is exported when an exporter is installed.
    """
    target = registry if registry is not None else get_registry()
    finished = Span(path.rpartition(".")[2] or path, path, 0, target)
    finished.wall_seconds = wall_seconds
    finished.cpu_seconds = cpu_seconds
    finished.trace_id = trace_id
    finished.parent_id = parent_id
    if attrs:
        finished.attrs = dict(attrs)
    if target.enabled:
        target.timer(f"span.{path}").record(wall_seconds, cpu_seconds)
    exporter = _exporter
    if exporter is not None:
        finished.span_id = _new_span_id()
        exporter.export(finished)
    return finished


def iter_tree(root: Span) -> Iterator[Span]:
    """Depth-first iteration over a finished span tree."""
    yield root
    for child in root.children:
        yield from iter_tree(child)
