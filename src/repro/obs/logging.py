"""Structured logging for the ``repro`` package.

Every module logs under the ``repro.*`` logger hierarchy
(``repro.core.cluseq``, ``repro.obs.trace``, …), obtained through
:func:`get_logger`. The library is a good citizen:

* importing ``repro`` attaches a single ``NullHandler`` to the
  ``repro`` logger and **never touches the root logger** — an
  application embedding the library sees no surprise output and no
  handler side effects;
* nothing is logged below ``WARNING`` unless the application opts in
  via :func:`configure_logging` (or its own handler), so the
  instrumentation's ``debug``/``info`` calls are level-gated out
  before a ``LogRecord`` is even allocated.

:func:`configure_logging` installs one stream handler on the ``repro``
logger, either human-readable or JSON-lines (one JSON object per
line — the format log shippers ingest directly). Structured fields
pass through ``extra``::

    logger = get_logger("core.cluseq")
    logger.info("iteration done", extra={"iteration": 3, "clusters": 7})

With the JSON formatter those extras become top-level keys of the
emitted object.
"""

from __future__ import annotations

import json
import logging
import sys
import time
from typing import IO

__all__ = [
    "LOGGER_NAME",
    "JsonLinesFormatter",
    "get_logger",
    "configure_logging",
    "reset_logging",
]

#: The package's logger namespace root.
LOGGER_NAME = "repro"

#: Attributes present on every vanilla LogRecord; anything else on a
#: record was supplied via ``extra`` and is emitted as structured data.
_STANDARD_RECORD_ATTRS = frozenset(
    vars(
        logging.LogRecord("", 0, "", 0, "", (), None)
    ).keys()
) | {"message", "asctime", "taskName"}


class JsonLinesFormatter(logging.Formatter):
    """Format records as one JSON object per line.

    The object always carries ``ts`` (unix seconds), ``level``,
    ``logger`` and ``message``; any ``extra`` fields are merged in as
    top-level keys (standard record attributes are filtered out).
    Exceptions are rendered into an ``exc_info`` string field.
    """

    def format(self, record: logging.LogRecord) -> str:
        payload = {
            "ts": round(record.created, 6),
            "level": record.levelname,
            "logger": record.name,
            "message": record.getMessage(),
        }
        for key, value in record.__dict__.items():
            if key in _STANDARD_RECORD_ATTRS or key.startswith("_"):
                continue
            payload[key] = value
        if record.exc_info:
            payload["exc_info"] = self.formatException(record.exc_info)
        return json.dumps(payload, default=str)


def get_logger(name: str | None = None) -> logging.Logger:
    """The ``repro`` logger, or the ``repro.<name>`` child logger."""
    if not name:
        return logging.getLogger(LOGGER_NAME)
    if name.startswith(LOGGER_NAME + ".") or name == LOGGER_NAME:
        return logging.getLogger(name)
    return logging.getLogger(f"{LOGGER_NAME}.{name}")


# Library-safe default: swallow records unless the application (or
# configure_logging) attaches a real handler. Installed exactly once,
# at import time, on the package logger — never on the root logger.
_null_handler = logging.NullHandler()
_package_logger = logging.getLogger(LOGGER_NAME)
if not any(isinstance(h, logging.NullHandler) for h in _package_logger.handlers):
    _package_logger.addHandler(_null_handler)

#: The handler installed by :func:`configure_logging`, for idempotency.
_configured_handler: logging.Handler | None = None


def configure_logging(
    level: int | str = "INFO",
    json_lines: bool = False,
    stream: IO[str] | None = None,
) -> logging.Handler:
    """Attach a stream handler to the ``repro`` logger hierarchy.

    Parameters
    ----------
    level:
        Minimum level to emit (name or numeric), applied to the
        ``repro`` logger.
    json_lines:
        Emit :class:`JsonLinesFormatter` output instead of the default
        human-readable ``time level logger: message`` lines.
    stream:
        Target stream; defaults to ``sys.stderr``.

    Calling again replaces the previously configured handler (the
    NullHandler stays put), so repeated CLI invocations or tests do
    not stack handlers. Returns the installed handler.
    """
    global _configured_handler
    logger = get_logger()
    if _configured_handler is not None:
        logger.removeHandler(_configured_handler)
    handler = logging.StreamHandler(stream or sys.stderr)
    if json_lines:
        handler.setFormatter(JsonLinesFormatter())
    else:
        formatter = logging.Formatter(
            fmt="%(asctime)s %(levelname)-7s %(name)s: %(message)s",
            datefmt="%H:%M:%S",
        )
        formatter.converter = time.localtime
        handler.setFormatter(formatter)
    logger.addHandler(handler)
    logger.setLevel(level if isinstance(level, int) else level.upper())
    _configured_handler = handler
    return handler


def reset_logging() -> None:
    """Undo :func:`configure_logging` (mainly for tests)."""
    global _configured_handler
    logger = get_logger()
    if _configured_handler is not None:
        logger.removeHandler(_configured_handler)
        _configured_handler = None
    logger.setLevel(logging.NOTSET)
