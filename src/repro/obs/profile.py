"""Opt-in hot-path profiler (Telemetry v2).

The CLUSEQ paper's pitch is *efficiency* (§6's scalability study), so
the reproduction needs to see where its own time goes: how long each
vectorized kernel runs (flatten / context walk / Kadane scan), how
often the :class:`FlattenedPST` flat/stack caches hit, what WAL fsyncs
and checkpoints cost, and how model size and process memory evolve per
iteration. This module is that instrument panel.

It follows the same *zero-overhead by default* contract as
:mod:`repro.obs.metrics`: the module-level active profiler starts as
:data:`NULL_PROFILER` (``enabled = False``), whose methods do nothing
and allocate nothing — ``kernel()`` returns one shared no-op context
manager, counters and gauges never touch a registry. Hot paths guard
with ``prof.enabled`` so the disabled cost is a single attribute read
per call site.

A real :class:`Profiler` records into a metrics registry under the
``profile.*`` namespace:

* ``profile.kernel.<name>`` — :class:`~repro.obs.metrics.Timer` per
  kernel (``flatten``, ``walk``, ``gather``, ``kadane``, …).
* ``profile.cache.<cache>.hits`` / ``.misses`` — cache effectiveness
  counters (``flat``, ``stack``).
* ``profile.latency.<name>`` — latency histograms on I/O edges
  (``wal_append``, ``wal_fsync``, ``checkpoint_write``,
  ``checkpoint_fsync``) with microsecond-scale buckets.
* ``profile.<name>`` — gauges/series for per-iteration model size and
  memory readings (``profile.memory.peak_rss_bytes``, …).

By default the profiler records into whatever registry is active at
record time (:func:`repro.obs.metrics.get_registry`), so one
``use_registry`` block captures both plain metrics and profile data::

    from repro.obs import MetricsRegistry, Profiler, use_profiler, use_registry

    registry = MetricsRegistry()
    with use_registry(registry), use_profiler(Profiler()):
        CLUSEQ(params).fit(db)
    print(registry.snapshot()["profile.kernel.kadane"])

Stdlib-only, like the rest of ``repro.obs``.
"""

from __future__ import annotations

import sys
import time
import tracemalloc

from .metrics import MetricsRegistry, Timer, get_registry

__all__ = [
    "LATENCY_BUCKETS",
    "KernelTimer",
    "Profiler",
    "NullProfiler",
    "NULL_PROFILER",
    "get_profiler",
    "set_profiler",
    "use_profiler",
]

#: Latency histogram bucket upper bounds: powers of two from 1 µs up to
#: ~16.8 s. Wide enough for an fsync on spinning rust, fine enough to
#: separate a page-cache flush from a durable one.
LATENCY_BUCKETS: tuple[float, ...] = tuple(1e-6 * 2**i for i in range(25))


def _peak_rss_bytes() -> float | None:
    """Peak resident set size of this process in bytes.

    Returns ``None`` on platforms without the :mod:`resource` module.
    """
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX platforms
        return None
    peak = float(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)
    # ru_maxrss is KiB on Linux, bytes on macOS.
    return peak if sys.platform == "darwin" else peak * 1024.0


class KernelTimer:
    """Context manager timing one kernel invocation (wall clock only).

    Deliberately skips the CPU clock: kernels are microsecond-scale and
    ``time.process_time()`` is a syscall on some platforms.
    """

    __slots__ = ("_timer", "_start")

    def __init__(self, timer: Timer) -> None:
        self._timer = timer
        self._start = 0.0

    def __enter__(self) -> "KernelTimer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self._timer.record(time.perf_counter() - self._start)


class _NullKernelTimer(KernelTimer):
    """The shared do-nothing kernel timer handed out when disabled."""

    __slots__ = ()

    def __init__(self) -> None:
        pass

    def __enter__(self) -> "KernelTimer":
        return self

    def __exit__(self, *exc_info: object) -> None:
        pass


_NULL_KERNEL_TIMER = _NullKernelTimer()


class Profiler:
    """Hot-path profiler recording into a metrics registry.

    Parameters
    ----------
    registry:
        Registry to record into. ``None`` (the default) means *the
        active registry at record time*, so ``use_registry`` +
        ``use_profiler`` compose; note that with the default and no
        active registry, records go to the no-op registry.
    """

    #: Instrumented code branches on this to skip collection work.
    enabled = True

    __slots__ = ("_registry",)

    def __init__(self, registry: MetricsRegistry | None = None) -> None:
        self._registry = registry

    @property
    def registry(self) -> MetricsRegistry:
        """The registry records go to (bound or currently active)."""
        return self._registry if self._registry is not None else get_registry()

    # -- kernels -------------------------------------------------------------

    def kernel(self, name: str) -> KernelTimer:
        """Context manager timing one ``profile.kernel.<name>`` call."""
        return KernelTimer(self.registry.timer(f"profile.kernel.{name}"))

    def record_kernel(self, name: str, wall_seconds: float) -> None:
        """Record an externally measured kernel duration."""
        self.registry.timer(f"profile.kernel.{name}").record(wall_seconds)

    # -- caches --------------------------------------------------------------

    def cache_hit(self, cache: str) -> None:
        self.registry.counter(f"profile.cache.{cache}.hits").inc()

    def cache_miss(self, cache: str) -> None:
        self.registry.counter(f"profile.cache.{cache}.misses").inc()

    # -- latency histograms --------------------------------------------------

    def latency(self, name: str, seconds: float) -> None:
        """Observe one I/O-edge latency into ``profile.latency.<name>``."""
        self.registry.histogram(
            f"profile.latency.{name}", buckets=LATENCY_BUCKETS
        ).observe(seconds)

    # -- gauges / series -----------------------------------------------------

    def gauge(self, name: str, value: float) -> None:
        """Set the ``profile.<name>`` gauge."""
        self.registry.gauge(f"profile.{name}").set(value)

    def series(self, name: str, value: float) -> None:
        """Append to the ``profile.<name>`` trajectory."""
        self.registry.series(f"profile.{name}").append(value)

    def sample_memory(self) -> float | None:
        """Record process memory gauges; returns peak RSS in bytes.

        Sets ``profile.memory.peak_rss_bytes`` (from ``getrusage``) and,
        when :mod:`tracemalloc` is tracing, the currently traced Python
        heap in ``profile.memory.traced_bytes``.
        """
        peak = _peak_rss_bytes()
        if peak is not None:
            self.registry.gauge("profile.memory.peak_rss_bytes").set(peak)
        if tracemalloc.is_tracing():
            current, _ = tracemalloc.get_traced_memory()
            self.registry.gauge("profile.memory.traced_bytes").set(float(current))
        return peak


class NullProfiler(Profiler):
    """The disabled profiler: every method is a no-op.

    ``enabled`` is ``False`` so hot paths skip even the method call;
    code that calls through anyway records nothing and allocates
    nothing (``kernel()`` hands back one shared context manager).
    """

    enabled = False

    __slots__ = ()

    def __init__(self) -> None:
        super().__init__(None)

    def kernel(self, name: str) -> KernelTimer:
        return _NULL_KERNEL_TIMER

    def record_kernel(self, name: str, wall_seconds: float) -> None:
        pass

    def cache_hit(self, cache: str) -> None:
        pass

    def cache_miss(self, cache: str) -> None:
        pass

    def latency(self, name: str, seconds: float) -> None:
        pass

    def gauge(self, name: str, value: float) -> None:
        pass

    def series(self, name: str, value: float) -> None:
        pass

    def sample_memory(self) -> float | None:
        return None


#: The process-wide disabled profiler (also the default active one).
NULL_PROFILER = NullProfiler()

_active: Profiler = NULL_PROFILER


def get_profiler() -> Profiler:
    """The currently active profiler (the no-op one unless enabled)."""
    return _active


def set_profiler(profiler: Profiler | None) -> Profiler:
    """Install *profiler* as the active one; ``None`` disables profiling.

    Returns the previously active profiler so callers can restore it.
    """
    global _active
    previous = _active
    _active = profiler if profiler is not None else NULL_PROFILER
    return previous


class use_profiler:
    """Context manager: activate a profiler for a block, then restore.

    >>> from repro.obs import MetricsRegistry, use_registry
    >>> registry = MetricsRegistry()
    >>> with use_registry(registry), use_profiler(Profiler()):
    ...     get_profiler().cache_hit("flat")
    >>> registry.get("profile.cache.flat.hits").value
    1
    """

    def __init__(self, profiler: Profiler | None) -> None:
        self.profiler = profiler if profiler is not None else NULL_PROFILER
        self._previous: Profiler | None = None

    def __enter__(self) -> Profiler:
        self._previous = set_profiler(self.profiler)
        return self.profiler

    def __exit__(self, *exc_info: object) -> None:
        set_profiler(self._previous)
