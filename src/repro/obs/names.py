"""The declared telemetry-name registry.

Every metric, span, kernel, cache and latency name the codebase is
allowed to emit is declared here, once, as a reviewable constant. The
static analyzer's CLQ010 rule parses this module (by AST, in pass 1 of
``tools.checkers``) and resolves every literal name at every emission
site against it: a typo'd metric name forks a time series that no
dashboard charts, and this registry is what makes that a CI failure
instead of a silent data loss.

Renaming or adding telemetry is therefore a two-line diff — the
emission site and the declaration — and the declaration diff is the
reviewable event. Dynamic name families (``span.*`` mirror metrics,
``profile.*`` internals) are declared as prefixes rather than
enumerations.

The module is import-light on purpose (stdlib only, no runtime logic):
it is also imported by tests to assert registry/emitter agreement.
"""

from __future__ import annotations

__all__ = [
    "CACHES",
    "KERNELS",
    "LATENCIES",
    "METRICS",
    "METRIC_PREFIXES",
    "SPANS",
    "SPAN_PREFIXES",
]

#: Exact counter/gauge/histogram/timer/series names.
METRICS: frozenset[str] = frozenset(
    {
        # baselines
        "baseline.runs",
        "baseline.fit_seconds",
        "baseline.clusters",
        # streaming subsystem
        "stream.recover_passes",
        "stream.recover_replayed_batches",
        "stream.batches",
        "stream.sequences",
        "stream.absorbed",
        "stream.pooled",
        "stream.pool_size",
        "stream.clusters",
        "stream.log_threshold",
        "stream.batch.absorbed",
        "stream.batch.size",
        "stream.decay_events",
        "stream.decay_pruned_nodes",
        "stream.reseed_passes",
        "stream.clusters_spawned",
        "stream.pool_rescued",
        "stream.threshold_path",
        "stream.clusters_dismissed",
        "stream.checkpoints",
        "stream.checkpoint_bytes",
        # sharded streaming coordinator (repro.shard)
        "shard.batches",
        "shard.sequences",
        "shard.clusters",
        "shard.consolidations",
        "shard.pairs_scored",
        "shard.cross_merges",
        "shard.recover_passes",
        "shard.rollforward_batches",
        "shard.rollforward_plans",
        # batch clustering driver
        "cluseq.iterations",
        "cluseq.final_clusters",
        "cluseq.final_log_threshold",
        "cluseq.converged",
        "cluseq.final_pst_nodes",
        "cluseq.iteration.clusters",
        "cluseq.iteration.unclustered",
        "cluseq.iteration.log_threshold",
        "cluseq.iteration.membership_changes",
        "cluseq.iteration.pst_nodes",
        "cluseq.clusters_seeded",
        "cluseq.clusters_dismissed",
        "cluseq.reclustering_work",
        "cluseq.calibrated_log_threshold",
        "cluseq.calibration_references",
        # suffix tree
        "pst.final_nodes",
        "pst.final_depth",
        "pst.decay_events",
        "pst.decay_pruned_nodes",
        "pst.prune_events",
        "pst.pruned_nodes",
        "pst.pruned_nodes_per_event",
        # threshold search
        "threshold.valley_searches",
        "threshold.valley_misses",
        "threshold.valley_log",
        # seeding
        "seeding.selections",
        "seeding.seeds_selected",
        "seeding.candidates_sampled",
        "seeding.reference_scorings",
        # consolidation
        "consolidation.passes",
        "consolidation.dismissed",
        # vectorized scoring backend
        "backend.prescore_stale_pairs",
        "backend.prescore_fallbacks",
        "backend.flatten_seconds",
        "backend.stack_rebuilds",
        "backend.batch_calls",
        "backend.batch_rows",
        "backend.score_seconds",
        "backend.parallel_chunks",
        "backend.flatten_builds",
        "backend.flatten_nodes",
        # shared-memory flat publishing (repro.core.backends.shm)
        "backend.shm.publishes",
        "backend.shm.publish_seconds",
        "backend.shm.reuses",
        "backend.shm.attaches",
        "backend.shm.attach_seconds",
        "backend.shm.segments",
        "backend.shm.bytes",
        "backend.shm.unlinks",
        # reference similarity measure
        "similarity.calls",
        "similarity.dp_cells",
        "similarity.segment_length",
        # serving subsystem (repro.serve)
        "serve.requests",
        "serve.request_seconds",
        "serve.errors",
        "serve.classified",
        "serve.outliers",
        "serve.ingested",
        "serve.ingest_absorbed",
        "serve.rejected",
        "serve.queue_depth",
        "serve.batch.flushes",
        "serve.batch.requests",
        "serve.batch.sequences",
        "serve.batch.score_seconds",
        "serve.pool_resets",
        "serve.reloads",
        "serve.reload_seconds",
        "serve.model_epoch",
        # profiler value gauges/series (emitted via HotPathProfiler)
        "model.clusters",
        "model.pst_nodes",
        "model.approx_bytes",
        "iteration.pst_nodes",
        "iteration.peak_rss_bytes",
        "profile.memory.peak_rss_bytes",
        "profile.memory.traced_bytes",
    }
)

#: Dynamic metric families: ``span.<span-name>`` duration mirrors and
#: the profiler's ``profile.kernel.* / profile.cache.* / ...`` internals.
METRIC_PREFIXES: tuple[str, ...] = ("span.", "profile.")

#: Exact tracer span names.
SPANS: frozenset[str] = frozenset(
    {
        "cluseq",
        "reclustering",
        "seed",
        "calibrate",
        "recluster",
        "consolidate",
        "rebuild",
        "adjust_threshold",
        "stream.recover",
        "stream.batch",
        "stream.score",
        "stream.decay",
        "stream.reseed",
        "stream.adjust_threshold",
        "stream.consolidate",
        "stream.checkpoint",
        # Sharded streaming coordinator (repro.shard).
        "shard.batch",
        "shard.consolidate",
        "shard.recover",
        # Stitched onto the caller's trace from pool workers
        # (record_foreign_span in repro.core.backends.parallel).
        "backend.worker_chunk",
    }
)

#: Dynamic span families: one span per baseline algorithm.
SPAN_PREFIXES: tuple[str, ...] = ("baseline.",)

#: Hot-path kernel timer names (``prof.kernel(...)``).
KERNELS: frozenset[str] = frozenset(
    {
        "flatten",
        "pad",
        "walk",
        "gather",
        "kadane",
        "recover_replay",
        "shm_publish",
    }
)

#: Cache hit/miss channel names (``prof.cache_hit/cache_miss``).
CACHES: frozenset[str] = frozenset({"flat", "stack"})

#: Latency channel names (``prof.latency(...)``).
LATENCIES: frozenset[str] = frozenset(
    {"checkpoint_fsync", "checkpoint_write", "wal_fsync", "wal_append"}
)
