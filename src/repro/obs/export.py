"""Metrics and trace exporters (Telemetry v2).

Three output formats, all derived from the same
:class:`~repro.obs.metrics.MetricsRegistry` snapshot or live span
stream:

* **Prometheus text exposition** — :func:`to_prometheus_text` renders
  every instrument into the ``text/plain; version=0.0.4`` format so a
  scrape endpoint (or a pushed ``.prom`` file) needs no extra code.
* **Versioned JSON snapshots** — :func:`telemetry_document` builds a
  ``repro.telemetry/v2`` document: the raw metric snapshot plus a
  derived ``profile`` view (kernels / caches / latency / gauges) so
  consumers don't have to re-group ``profile.*`` names themselves.
* **JSONL trace spans** — :class:`JsonlSpanExporter` writes finished
  spans as ``repro.trace/v1`` JSON lines (one header record, then one
  record per span with trace/span/parent ids), the wire format the
  ``ScoringPool`` fan-out and streaming micro-batches stitch into.

Stdlib-only, like the rest of ``repro.obs``.
"""

from __future__ import annotations

import json
import math
import re
import threading
import time
from collections.abc import Mapping
from pathlib import Path
from typing import IO, Optional, Union

from .metrics import MetricsRegistry, _sanitize
from .tracing import Span, SpanExporter, set_span_exporter

__all__ = [
    "TELEMETRY_SCHEMA_V2",
    "TRACE_SCHEMA",
    "telemetry_document",
    "write_telemetry_json",
    "to_prometheus_text",
    "prometheus_from_snapshot",
    "write_prometheus_text",
    "JsonlSpanExporter",
    "use_span_exporter",
    "read_trace",
]

#: Version tag stamped on every exported telemetry snapshot. v2 adds
#: the creation timestamp, run context, and the derived profile view
#: on top of v1's bare ``{"schema", "metrics"}`` shape.
TELEMETRY_SCHEMA_V2 = "repro.telemetry/v2"

#: Version tag on the JSONL trace stream's header record.
TRACE_SCHEMA = "repro.trace/v1"

#: One instrument's serialized state, as produced by ``snapshot()``.
SnapshotEntry = Mapping[str, object]
Snapshot = Mapping[str, SnapshotEntry]

_PROM_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")


# -- telemetry/v2 JSON snapshots ------------------------------------------------


def _base_name(rendered: str) -> str:
    """Instrument family name with any inlined labels stripped."""
    return rendered.split("{", 1)[0]


def _profile_view(snapshot: Snapshot) -> dict[str, object]:
    """Group ``profile.*`` instruments into a consumer-friendly view.

    Labeled instrument variants are left to the raw ``metrics`` section;
    this view indexes by base name only.
    """
    kernels: dict[str, object] = {}
    caches: dict[str, dict[str, float]] = {}
    latency: dict[str, object] = {}
    gauges: dict[str, object] = {}
    series: dict[str, object] = {}
    for rendered, entry in snapshot.items():
        name = _base_name(rendered)
        if not name.startswith("profile.") or name != rendered:
            continue
        kind = entry.get("type")
        if name.startswith("profile.kernel.") and kind == "timer":
            count = entry.get("count")
            total = entry.get("total_seconds")
            mean: float | None = None
            if isinstance(total, (int, float)) and isinstance(count, int) and count:
                mean = total / count
            kernels[name[len("profile.kernel."):]] = {
                "calls": count,
                "total_seconds": total,
                "mean_seconds": mean,
                "max_seconds": entry.get("max_seconds"),
            }
        elif name.startswith("profile.cache.") and kind == "counter":
            rest = name[len("profile.cache."):]
            cache, _, outcome = rest.rpartition(".")
            if cache and outcome in ("hits", "misses"):
                value = entry.get("value")
                if isinstance(value, (int, float)):
                    caches.setdefault(cache, {})[outcome] = float(value)
        elif name.startswith("profile.latency.") and kind == "histogram":
            count = entry.get("count")
            total = entry.get("sum")
            mean = None
            if isinstance(total, (int, float)) and isinstance(count, int) and count:
                mean = total / count
            latency[name[len("profile.latency."):]] = {
                "count": count,
                "sum_seconds": total,
                "mean_seconds": mean,
                "max_seconds": entry.get("max"),
            }
        elif kind == "gauge":
            gauges[name[len("profile."):]] = entry.get("value")
        elif kind == "series":
            series[name[len("profile."):]] = entry.get("values")
    for stats in caches.values():
        hits = stats.get("hits", 0.0)
        misses = stats.get("misses", 0.0)
        stats["hit_rate"] = hits / (hits + misses) if hits + misses else 0.0
    return {
        "kernels": kernels,
        "caches": caches,
        "latency": latency,
        "gauges": gauges,
        "series": series,
    }


def telemetry_document(
    registry: MetricsRegistry,
    context: Mapping[str, object] | None = None,
) -> dict[str, object]:
    """A ``repro.telemetry/v2`` document for *registry*'s current state."""
    snapshot = registry.snapshot()
    return {
        "schema": TELEMETRY_SCHEMA_V2,
        "created_unix": time.time(),
        "context": dict(context) if context else {},
        "profile": _sanitize(_profile_view(snapshot)),
        "metrics": _sanitize(snapshot),
    }


def write_telemetry_json(
    path: Union[str, Path],
    registry: MetricsRegistry,
    context: Mapping[str, object] | None = None,
) -> Path:
    """Write a ``repro.telemetry/v2`` snapshot; returns the path."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    document = telemetry_document(registry, context=context)
    target.write_text(
        json.dumps(document, indent=2, sort_keys=False) + "\n", encoding="utf-8"
    )
    return target


# -- Prometheus text exposition -------------------------------------------------


def _prom_name(name: str, namespace: str) -> str:
    flat = _PROM_NAME_RE.sub("_", name)
    return f"{namespace}_{flat}" if namespace else flat


def _prom_labels(labels: Mapping[str, object] | None) -> str:
    if not labels:
        return ""
    parts = []
    for key, value in sorted((str(k), str(v)) for k, v in labels.items()):
        escaped = value.replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")
        parts.append(f'{_PROM_NAME_RE.sub("_", key)}="{escaped}"')
    return "{" + ",".join(parts) + "}"


def _prom_number(value: object) -> str:
    if not isinstance(value, (int, float)):
        return "NaN"
    number = float(value)
    if math.isnan(number):
        return "NaN"
    if math.isinf(number):
        return "+Inf" if number > 0 else "-Inf"
    return repr(number) if isinstance(value, float) else str(value)


def prometheus_from_snapshot(snapshot: Snapshot, namespace: str = "repro") -> str:
    """Render a registry snapshot in Prometheus text exposition format.

    Counters gain the conventional ``_total`` suffix, timers become
    summary-style ``_seconds_sum``/``_seconds_count`` pairs, histograms
    get cumulative ``_bucket{le=...}`` lines, and a series is exposed
    as its last value plus a point count (Prometheus has no trajectory
    type; the full series lives in the JSON snapshot).
    """
    families: dict[str, list[str]] = {}
    types: dict[str, str] = {}

    def emit(family: str, prom_type: str, line: str) -> None:
        types.setdefault(family, prom_type)
        families.setdefault(family, []).append(line)

    for rendered, entry in snapshot.items():
        base = _base_name(rendered)
        raw_labels = entry.get("labels")
        label_dict: dict[str, object] = (
            dict(raw_labels) if isinstance(raw_labels, dict) else {}
        )
        labels = _prom_labels(label_dict)
        kind = entry.get("type")
        if kind == "counter":
            family = _prom_name(base, namespace) + "_total"
            emit(family, "counter", f"{family}{labels} {_prom_number(entry.get('value'))}")
        elif kind == "gauge":
            family = _prom_name(base, namespace)
            emit(family, "gauge", f"{family}{labels} {_prom_number(entry.get('value'))}")
        elif kind == "histogram":
            family = _prom_name(base, namespace)
            buckets = entry.get("buckets")
            cumulative = 0
            if isinstance(buckets, dict):
                bounded = sorted(
                    (float(key[len("le_"):]), count)
                    for key, count in buckets.items()
                    if key.startswith("le_") and isinstance(count, int)
                )
                for bound, count in bounded:
                    cumulative += count
                    le = _prom_labels({**label_dict, "le": f"{bound:g}"})
                    emit(family, "histogram", f"{family}_bucket{le} {cumulative}")
                overflow = buckets.get("inf")
                if isinstance(overflow, int):
                    cumulative += overflow
                inf_labels = _prom_labels({**label_dict, "le": "+Inf"})
                emit(family, "histogram", f"{family}_bucket{inf_labels} {cumulative}")
            emit(family, "histogram", f"{family}_sum{labels} {_prom_number(entry.get('sum'))}")
            emit(family, "histogram", f"{family}_count{labels} {_prom_number(entry.get('count'))}")
        elif kind == "timer":
            family = _prom_name(base, namespace) + "_seconds"
            emit(
                family,
                "summary",
                f"{family}_sum{labels} {_prom_number(entry.get('total_seconds'))}",
            )
            emit(
                family,
                "summary",
                f"{family}_count{labels} {_prom_number(entry.get('count'))}",
            )
        elif kind == "series":
            family = _prom_name(base, namespace)
            values = entry.get("values")
            last = values[-1] if isinstance(values, list) and values else math.nan
            points = len(values) if isinstance(values, list) else 0
            emit(family, "gauge", f"{family}{labels} {_prom_number(last)}")
            emit(
                f"{family}_points",
                "gauge",
                f"{family}_points{labels} {points}",
            )
    lines: list[str] = []
    for family in sorted(families):
        lines.append(f"# TYPE {family} {types[family]}")
        lines.extend(families[family])
    return "\n".join(lines) + ("\n" if lines else "")


def to_prometheus_text(registry: MetricsRegistry, namespace: str = "repro") -> str:
    """Prometheus text exposition of *registry*'s current state."""
    return prometheus_from_snapshot(registry.snapshot(), namespace=namespace)


def write_prometheus_text(
    path: Union[str, Path], registry: MetricsRegistry, namespace: str = "repro"
) -> Path:
    """Write a ``.prom`` exposition file; returns the path."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(to_prometheus_text(registry, namespace), encoding="utf-8")
    return target


# -- repro.trace/v1 JSONL spans -------------------------------------------------


class JsonlSpanExporter:
    """Writes finished spans as ``repro.trace/v1`` JSON lines.

    The first line is a header record carrying the schema tag; every
    subsequent line is one span::

        {"type": "header", "schema": "repro.trace/v1", ...}
        {"type": "span", "trace": "t-…", "span": "s-…", "parent": null, ...}

    Thread-safe: spans from worker threads interleave whole lines.
    Install for a block of code with :class:`use_span_exporter`.
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()
        self._file: Optional[IO[str]] = self.path.open("w", encoding="utf-8")
        self.exported = 0
        self._write(
            {
                "type": "header",
                "schema": TRACE_SCHEMA,
                "created_unix": time.time(),
            }
        )

    def _write(self, record: Mapping[str, object]) -> None:
        with self._lock:
            if self._file is None:
                return
            self._file.write(json.dumps(_sanitize(record)) + "\n")
            self._file.flush()

    def export(self, span: Span) -> None:
        record: dict[str, object] = {
            "type": "span",
            "trace": span.trace_id,
            "span": span.span_id,
            "parent": span.parent_id,
            "name": span.name,
            "path": span.path,
            "depth": span.depth,
            "start_unix": span.start_unix,
            "wall_seconds": span.wall_seconds,
            "cpu_seconds": span.cpu_seconds,
        }
        if span.attrs:
            record["attrs"] = dict(span.attrs)
        self._write(record)
        self.exported += 1

    def close(self) -> None:
        with self._lock:
            if self._file is not None:
                self._file.close()
                self._file = None

    def __enter__(self) -> "JsonlSpanExporter":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class use_span_exporter:
    """Context manager: install a span exporter for a block, restore after.

    Does not close the exporter — pair with the exporter's own context
    manager when writing to a file::

        with JsonlSpanExporter(path) as exporter, use_span_exporter(exporter):
            run()
    """

    def __init__(self, exporter: SpanExporter | None) -> None:
        self.exporter = exporter
        self._previous: SpanExporter | None = None

    def __enter__(self) -> SpanExporter | None:
        self._previous = set_span_exporter(self.exporter)
        return self.exporter

    def __exit__(self, *exc_info: object) -> None:
        set_span_exporter(self._previous)


def read_trace(path: Union[str, Path]) -> tuple[dict[str, object], list[dict[str, object]]]:
    """Parse a ``repro.trace/v1`` file into ``(header, span_records)``.

    Raises ``ValueError`` on a missing/foreign header; blank lines are
    skipped so a partially flushed tail doesn't break readers.
    """
    header: dict[str, object] | None = None
    spans: list[dict[str, object]] = []
    with Path(path).open(encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            if not isinstance(record, dict):
                raise ValueError(f"malformed trace record in {path}")
            if header is None:
                if record.get("type") != "header" or record.get("schema") != TRACE_SCHEMA:
                    raise ValueError(
                        f"{path} is not a {TRACE_SCHEMA} trace (bad header)"
                    )
                header = record
            elif record.get("type") == "span":
                spans.append(record)
    if header is None:
        raise ValueError(f"{path} is empty (no trace header)")
    return header, spans
