"""Sequence corruption utilities.

CLUSEQ's similarity measure is built to survive local damage — the
best-segment maximisation skips corrupted regions, and the paper's
block-edit discussion is all about rearrangement robustness. These
utilities apply controlled corruption to encoded sequences so
robustness can be measured instead of asserted:

* :func:`point_mutations` — substitute a fraction of positions with
  random symbols (sequencing noise, typos).
* :func:`indels` — random insertions/deletions (alignment-breaking
  noise).
* :func:`block_shuffle` — cut the sequence into blocks and permute
  them (the paper's footnote-1 scenario, e.g. domain rearrangement).
* :func:`corrupt_database` — apply a mutation to every sequence of a
  database, preserving labels.

All functions are pure: they return new lists and never modify their
inputs. They are also deterministic: when no generator is passed, a
fixed seed-0 ``np.random.Generator`` is created per call, so repeated
rng-less calls return identical output (pass your own generator for
varied draws).
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

import numpy as np

from .database import SequenceDatabase

Mutation = Callable[[list[int], np.random.Generator], list[int]]


def point_mutations(
    encoded: Sequence[int],
    rate: float,
    alphabet_size: int,
    rng: np.random.Generator | None = None,
) -> list[int]:
    """Substitute each position with probability *rate*.

    Replacement symbols are drawn uniformly from the alphabet
    *excluding* the current symbol, so ``rate`` is the true expected
    fraction of changed positions.
    """
    if not 0.0 <= rate <= 1.0:
        raise ValueError("rate must be in [0, 1]")
    if alphabet_size < 2:
        raise ValueError("need at least 2 symbols to substitute")
    if rng is None:
        rng = np.random.default_rng(0)
    out = list(encoded)
    for i in range(len(out)):
        if rng.random() < rate:
            replacement = int(rng.integers(alphabet_size - 1))
            if replacement >= out[i]:
                replacement += 1
            out[i] = replacement
    return out


def indels(
    encoded: Sequence[int],
    rate: float,
    alphabet_size: int,
    rng: np.random.Generator | None = None,
) -> list[int]:
    """Apply random insertions and deletions, each at *rate* / 2.

    The expected length is preserved; a sequence never shrinks below
    one symbol.
    """
    if not 0.0 <= rate <= 1.0:
        raise ValueError("rate must be in [0, 1]")
    if alphabet_size < 1:
        raise ValueError("alphabet_size must be positive")
    if rng is None:
        rng = np.random.default_rng(0)
    out: list[int] = []
    half = rate / 2.0
    for symbol in encoded:
        if rng.random() < half:
            continue  # deletion
        out.append(symbol)
        if rng.random() < half:
            out.append(int(rng.integers(alphabet_size)))  # insertion
    if not out:
        out.append(int(rng.integers(alphabet_size)))
    return out


def block_shuffle(
    encoded: Sequence[int],
    num_blocks: int,
    rng: np.random.Generator | None = None,
) -> list[int]:
    """Cut into *num_blocks* contiguous blocks and permute them.

    With ``num_blocks=2`` this is exactly the paper's ``aaaabbb`` →
    ``bbbaaaa`` rearrangement. Local statistics inside blocks are
    untouched — the signal CLUSEQ keys on — while any global alignment
    is destroyed.
    """
    if num_blocks < 1:
        raise ValueError("num_blocks must be at least 1")
    if rng is None:
        rng = np.random.default_rng(0)
    seq = list(encoded)
    if num_blocks == 1 or len(seq) < num_blocks:
        return seq
    cuts = sorted(
        int(c) for c in rng.choice(range(1, len(seq)), size=num_blocks - 1, replace=False)
    )
    blocks = []
    start = 0
    for cut in cuts + [len(seq)]:
        blocks.append(seq[start:cut])
        start = cut
    order = rng.permutation(len(blocks))
    return [symbol for index in order for symbol in blocks[int(index)]]


def corrupt_database(
    db: SequenceDatabase,
    mutation: Mutation,
    seed: int = 0,
) -> SequenceDatabase:
    """Apply *mutation* to every sequence; labels are preserved.

    *mutation* receives ``(encoded_sequence, rng)`` and returns the
    corrupted encoding.
    """
    rng = np.random.default_rng(seed)
    out = SequenceDatabase(db.alphabet)
    for index in range(len(db)):
        corrupted = mutation(list(db.encoded(index)), rng)
        out.add_sequence(db.alphabet.decode(corrupted), label=db[index].label)
    return out
