"""Sequence records and sequence databases.

A :class:`SequenceDatabase` is the unit of input for every clustering
algorithm in this library (the paper's ``Σ``). It owns

* the :class:`~repro.sequences.alphabet.Alphabet`,
* the list of :class:`SequenceRecord` objects (id, symbols, optional
  ground-truth label), and
* the *background model*: the empirical probability ``p(s)`` of
  observing each symbol at any position of any sequence, which is the
  memoryless random-generator denominator of the CLUSEQ similarity
  measure.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterable, Iterator, Sequence

import numpy as np
import numpy.typing as npt

from .alphabet import Alphabet, Symbol


@dataclass(frozen=True)
class SequenceRecord:
    """A single sequence in a database.

    Attributes
    ----------
    sid:
        A unique identifier within the database.
    symbols:
        The sequence itself as a tuple of symbols (or a string when the
        symbols are single characters).
    label:
        Optional ground-truth class (protein family, language, embedded
        cluster id, …). ``None`` marks an unlabelled sequence; the
        reserved label :data:`OUTLIER_LABEL` marks known noise.
    """

    sid: int
    symbols: tuple[Symbol, ...]
    label: str | None = None

    def __len__(self) -> int:
        return len(self.symbols)

    def __iter__(self) -> Iterator[Symbol]:
        return iter(self.symbols)

    def as_string(self) -> str:
        """The sequence as a plain string (symbols must be strings)."""
        return "".join(str(s) for s in self.symbols)


#: Ground-truth label reserved for sequences that are known outliers.
OUTLIER_LABEL = "__outlier__"


class SequenceDatabase:
    """An in-memory database of symbol sequences.

    Parameters
    ----------
    alphabet:
        The alphabet every sequence must draw its symbols from.
    records:
        Optional initial records.

    Notes
    -----
    Sequences are encoded to integer-id lists exactly once, on
    insertion; all downstream algorithms consume the encoded form via
    :meth:`encoded`.
    """

    def __init__(
        self,
        alphabet: Alphabet,
        records: Iterable[SequenceRecord] | None = None,
    ) -> None:
        self.alphabet = alphabet
        self._records: list[SequenceRecord] = []
        self._encoded: list[list[int]] = []
        self._symbol_counts = np.zeros(alphabet.size, dtype=np.int64)
        if records is not None:
            for record in records:
                self.add_record(record)

    # -- construction ----------------------------------------------------------

    @classmethod
    def from_sequences(
        cls,
        sequences: Iterable[Sequence[Symbol]],
        labels: Iterable[str | None] | None = None,
        alphabet: Alphabet | None = None,
    ) -> "SequenceDatabase":
        """Build a database from raw sequences.

        If *alphabet* is omitted it is inferred from the sequences
        (symbols ordered by first appearance).
        """
        sequences = [tuple(seq) for seq in sequences]
        if alphabet is None:
            alphabet = Alphabet.from_sequences(sequences)
        if labels is None:
            label_list: list[str | None] = [None] * len(sequences)
        else:
            label_list = list(labels)
            if len(label_list) != len(sequences):
                raise ValueError(
                    f"{len(sequences)} sequences but {len(label_list)} labels"
                )
        db = cls(alphabet)
        for i, (seq, label) in enumerate(zip(sequences, label_list)):
            db.add_record(SequenceRecord(sid=i, symbols=seq, label=label))
        return db

    @classmethod
    def from_strings(
        cls,
        strings: Iterable[str],
        labels: Iterable[str | None] | None = None,
        alphabet: Alphabet | None = None,
    ) -> "SequenceDatabase":
        """Build a database of character sequences from plain strings."""
        return cls.from_sequences([tuple(s) for s in strings], labels, alphabet)

    def add_record(self, record: SequenceRecord) -> None:
        """Append *record*, encoding it against the database alphabet."""
        if len(record) == 0:
            raise ValueError(f"sequence {record.sid} is empty")
        encoded = self.alphabet.encode(record.symbols)
        self._records.append(record)
        self._encoded.append(encoded)
        np.add.at(self._symbol_counts, encoded, 1)

    def add_sequence(
        self, symbols: Sequence[Symbol], label: str | None = None
    ) -> SequenceRecord:
        """Append a new sequence, assigning the next free id."""
        record = SequenceRecord(sid=len(self._records), symbols=tuple(symbols), label=label)
        self.add_record(record)
        return record

    # -- core protocol ---------------------------------------------------------

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[SequenceRecord]:
        return iter(self._records)

    def __getitem__(self, index: int) -> SequenceRecord:
        return self._records[index]

    def __repr__(self) -> str:
        return (
            f"SequenceDatabase({len(self)} sequences, "
            f"alphabet size {self.alphabet.size}, "
            f"total length {self.total_length})"
        )

    # -- views -----------------------------------------------------------------

    def encoded(self, index: int) -> list[int]:
        """The integer-encoded form of the sequence at *index*."""
        return self._encoded[index]

    def iter_encoded(self) -> Iterator[tuple[int, list[int]]]:
        """Iterate over ``(index, encoded_sequence)`` pairs."""
        return iter(enumerate(self._encoded))

    @property
    def records(self) -> tuple[SequenceRecord, ...]:
        return tuple(self._records)

    @property
    def labels(self) -> list[str | None]:
        """Ground-truth labels, index-aligned with the records."""
        return [r.label for r in self._records]

    def distinct_labels(self, include_outliers: bool = False) -> list[str]:
        """Distinct non-``None`` labels, in first-appearance order."""
        seen: dict[str, None] = {}
        for record in self._records:
            if record.label is None:
                continue
            if record.label == OUTLIER_LABEL and not include_outliers:
                continue
            seen.setdefault(record.label, None)
        return list(seen.keys())

    # -- statistics --------------------------------------------------------------

    @property
    def total_length(self) -> int:
        """Sum of all sequence lengths (the paper's root count)."""
        return int(self._symbol_counts.sum())

    @property
    def average_length(self) -> float:
        """Mean sequence length (0.0 for an empty database)."""
        if not self._records:
            return 0.0
        return self.total_length / len(self._records)

    def length_range(self) -> tuple[int, int]:
        """``(min, max)`` sequence length; ``(0, 0)`` when empty."""
        if not self._records:
            return (0, 0)
        lengths = [len(r) for r in self._records]
        return (min(lengths), max(lengths))

    def symbol_counts(self) -> npt.NDArray[np.int64]:
        """Occurrence count of each symbol id across the whole database."""
        return self._symbol_counts.copy()

    def background_probabilities(self, smoothing: float = 0.0) -> npt.NDArray[np.float64]:
        """Empirical probability ``p(s)`` of each symbol (the paper's
        memoryless background model).

        Parameters
        ----------
        smoothing:
            Additive (Laplace) pseudo-count applied to every symbol.
            With the default 0.0 unseen symbols get probability 0; pass
            a small positive value when the similarity measure must be
            defined for symbols absent from the database.
        """
        if smoothing < 0:
            raise ValueError("smoothing must be non-negative")
        counts = self._symbol_counts.astype(np.float64) + smoothing
        total = counts.sum()
        if total == 0:
            raise ValueError("cannot compute background of an empty database")
        return counts / total

    # -- subsets ------------------------------------------------------------------

    def subset(self, indices: Iterable[int]) -> "SequenceDatabase":
        """A new database containing the records at *indices*.

        Record ids are preserved so results on the subset can be mapped
        back to the parent database.
        """
        db = SequenceDatabase(self.alphabet)
        for i in indices:
            db.add_record(self._records[i])
        return db

    def without_outliers(self) -> "SequenceDatabase":
        """A copy excluding records labelled :data:`OUTLIER_LABEL`."""
        keep = [i for i, r in enumerate(self._records) if r.label != OUTLIER_LABEL]
        return self.subset(keep)
