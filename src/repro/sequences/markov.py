"""Fixed- and variable-order Markov sources over finite alphabets.

These are the *generative* counterparts of the probabilistic suffix
tree: the synthetic experiments in the paper embed clusters whose
sequences "are all generated according to the same probabilistic
suffix tree" (§6.4). A :class:`MarkovSource` holds conditional
next-symbol distributions keyed by a bounded-length context and can
sample sequences from them; :func:`random_markov_source` draws a
random source, which is how embedded clusters are created.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np
import numpy.typing as npt

Context = tuple[int, ...]


class MarkovSource:
    """A variable-order Markov sequence generator.

    Parameters
    ----------
    alphabet_size:
        Number of distinct symbol ids (``0 .. alphabet_size-1``).
    order:
        Maximum context length used when sampling the next symbol.
    transitions:
        Mapping from context tuple (most recent symbol last) to a
        probability vector over the next symbol. Must contain the empty
        context ``()`` which seeds generation and serves as fallback.

    Notes
    -----
    When the current context has no entry, progressively shorter
    suffixes are tried, ending at the empty context — the sampling
    analogue of the paper's *longest significant suffix* rule.
    """

    def __init__(
        self,
        alphabet_size: int,
        order: int,
        transitions: dict[Context, npt.NDArray[np.float64]],
    ) -> None:
        if alphabet_size <= 0:
            raise ValueError("alphabet_size must be positive")
        if order < 0:
            raise ValueError("order must be non-negative")
        if () not in transitions:
            raise ValueError("transitions must define the empty context ()")
        self.alphabet_size = alphabet_size
        self.order = order
        self._transitions: dict[Context, npt.NDArray[np.float64]] = {}
        for context, probs in transitions.items():
            vec = np.asarray(probs, dtype=np.float64)
            if vec.shape != (alphabet_size,):
                raise ValueError(
                    f"context {context}: expected vector of length "
                    f"{alphabet_size}, got shape {vec.shape}"
                )
            if np.any(vec < 0):
                raise ValueError(f"context {context}: negative probability")
            total = vec.sum()
            if total <= 0:
                raise ValueError(f"context {context}: probabilities sum to 0")
            self._transitions[tuple(context)] = vec / total

    @property
    def contexts(self) -> list[Context]:
        """All contexts with an explicit distribution."""
        return list(self._transitions.keys())

    def distribution_for(self, context: Sequence[int]) -> npt.NDArray[np.float64]:
        """Next-symbol distribution for *context* (longest-suffix lookup)."""
        context = tuple(context)[-self.order :] if self.order else ()
        while True:
            dist = self._transitions.get(context)
            if dist is not None:
                return dist
            if not context:  # pragma: no cover - () is always present
                raise RuntimeError("empty context missing")
            context = context[1:]

    def sample(
        self, length: int, rng: np.random.Generator | None = None
    ) -> list[int]:
        """Sample one sequence of exactly *length* symbols.

        Deterministic when *rng* is omitted: a fixed seed-0 generator
        is created per call.
        """
        if length < 0:
            raise ValueError("length must be non-negative")
        if rng is None:
            rng = np.random.default_rng(0)
        out: list[int] = []
        symbol_ids = np.arange(self.alphabet_size)
        for _ in range(length):
            dist = self.distribution_for(out)
            out.append(int(rng.choice(symbol_ids, p=dist)))
        return out

    def sample_many(
        self,
        count: int,
        mean_length: int,
        rng: np.random.Generator | None = None,
        length_jitter: float = 0.2,
        min_length: int = 2,
    ) -> list[list[int]]:
        """Sample *count* sequences with lengths around *mean_length*.

        Lengths are drawn from a normal distribution with standard
        deviation ``length_jitter * mean_length`` and clamped at
        *min_length*, matching the "1000 symbols on average" phrasing
        of the paper's synthetic workloads.
        """
        if count < 0:
            raise ValueError("count must be non-negative")
        if rng is None:
            rng = np.random.default_rng(0)
        sigma = max(length_jitter, 0.0) * mean_length
        lengths = rng.normal(mean_length, sigma, size=count)
        return [
            self.sample(max(min_length, int(round(length))), rng)
            for length in lengths
        ]

    def log_likelihood(self, sequence: Sequence[int]) -> float:
        """Log-probability of *sequence* under this source.

        Returns ``-inf`` when any step has probability 0.
        """
        total = 0.0
        seq = list(sequence)
        for i, symbol in enumerate(seq):
            p = self.distribution_for(seq[:i])[symbol]
            if p <= 0.0:
                return float("-inf")
            total += float(np.log(p))
        return total


def _dirichlet_rows(
    rng: np.random.Generator, rows: int, size: int, concentration: float
) -> npt.NDArray[np.float64]:
    """Draw *rows* probability vectors from a symmetric Dirichlet."""
    return rng.dirichlet(np.full(size, concentration), size=rows)


def random_markov_source(
    alphabet_size: int,
    order: int = 2,
    rng: np.random.Generator | None = None,
    concentration: float = 0.2,
    context_fraction: float = 1.0,
    max_contexts: int = 4096,
) -> MarkovSource:
    """Draw a random :class:`MarkovSource`, used to embed clusters.

    Parameters
    ----------
    alphabet_size:
        Number of symbols.
    order:
        Context length of the source.
    rng:
        Random generator (a fixed seed-0 generator if omitted, so
        rng-less calls are deterministic).
    concentration:
        Symmetric Dirichlet concentration for each next-symbol
        distribution. Small values (< 1) produce *peaked* distributions,
        i.e. strongly characteristic clusters; large values approach the
        uniform background, making clusters hard to separate.
    context_fraction:
        Fraction of the ``alphabet_size**order`` full-order contexts to
        assign explicit distributions (the rest fall back to shorter
        suffixes). Capped by *max_contexts* to keep generation cheap
        for large alphabets.
    """
    if not 0.0 <= context_fraction <= 1.0:
        raise ValueError("context_fraction must be within [0, 1]")
    if rng is None:
        rng = np.random.default_rng(0)
    transitions: dict[Context, npt.NDArray[np.float64]] = {}
    transitions[()] = rng.dirichlet(np.full(alphabet_size, 1.0))

    if order >= 1:
        # Explicit order-1 contexts keep the source characteristic even
        # when higher-order contexts are subsampled.
        rows = _dirichlet_rows(rng, alphabet_size, alphabet_size, concentration)
        for s in range(alphabet_size):
            transitions[(s,)] = rows[s]

    if order >= 2:
        full = alphabet_size**order
        n_contexts = min(int(round(full * context_fraction)), max_contexts, full)
        if n_contexts > 0:
            chosen = rng.choice(full, size=n_contexts, replace=False)
            rows = _dirichlet_rows(rng, n_contexts, alphabet_size, concentration)
            for row, code in zip(rows, chosen):
                context = []
                value = int(code)
                for _ in range(order):
                    context.append(value % alphabet_size)
                    value //= alphabet_size
                transitions[tuple(context)] = row
    return MarkovSource(alphabet_size, order, transitions)


def uniform_source(alphabet_size: int) -> MarkovSource:
    """A memoryless uniform source — the generator used for outliers."""
    return MarkovSource(
        alphabet_size,
        order=0,
        transitions={(): np.full(alphabet_size, 1.0 / alphabet_size)},
    )
