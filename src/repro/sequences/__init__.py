"""Sequence substrate: alphabets, databases, I/O and workload generators."""

from .alphabet import AMINO_ACIDS, NUCLEOTIDES, Alphabet, AlphabetError
from .database import OUTLIER_LABEL, SequenceDatabase, SequenceRecord
from .generators import (
    SyntheticDataset,
    SyntheticSpec,
    generate_clustered_database,
    generate_two_cluster_toy,
    inject_outliers,
)
from .io import (
    SequenceFormatError,
    read_fasta,
    read_labelled_text,
    write_fasta,
    write_labelled_text,
)
from .markov import MarkovSource, random_markov_source, uniform_source
from .mutations import block_shuffle, corrupt_database, indels, point_mutations

__all__ = [
    "AMINO_ACIDS",
    "NUCLEOTIDES",
    "Alphabet",
    "AlphabetError",
    "OUTLIER_LABEL",
    "SequenceDatabase",
    "SequenceRecord",
    "SyntheticDataset",
    "SyntheticSpec",
    "generate_clustered_database",
    "generate_two_cluster_toy",
    "inject_outliers",
    "SequenceFormatError",
    "read_fasta",
    "read_labelled_text",
    "write_fasta",
    "write_labelled_text",
    "MarkovSource",
    "random_markov_source",
    "uniform_source",
    "block_shuffle",
    "corrupt_database",
    "indels",
    "point_mutations",
]
