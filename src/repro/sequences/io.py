"""Reading and writing sequence databases.

Two disk formats are supported:

* **FASTA** — the standard biological-sequence format. Family labels
  can be carried in the header (``>id family`` or ``>id |family=...|``).
* **Labelled text** — one sequence per line, optionally prefixed with
  ``label<TAB>``; used by the language-clustering experiments.
"""

from __future__ import annotations

import os
from collections.abc import Iterator
from typing import TextIO, Union

from .alphabet import Alphabet
from .database import SequenceDatabase

#: Acceptable read/write targets (typing.Union: evaluated at runtime).
PathOrFile = Union[str, "os.PathLike[str]", TextIO]


class SequenceFormatError(ValueError):
    """Raised when an input file cannot be parsed."""


def _open_for_read(source: PathOrFile) -> tuple[TextIO, bool]:
    """Return ``(file, should_close)`` for a path or an open handle."""
    if hasattr(source, "read"):
        return source, False  # type: ignore[return-value]
    return open(source, encoding="utf-8"), True  # type: ignore[arg-type]


def _open_for_write(target: PathOrFile) -> tuple[TextIO, bool]:
    if hasattr(target, "write"):
        return target, False  # type: ignore[return-value]
    return open(target, "w", encoding="utf-8"), True  # type: ignore[arg-type]


# -- FASTA ----------------------------------------------------------------------


def iter_fasta(source: PathOrFile) -> Iterator[tuple[str, str]]:
    """Yield ``(header, sequence)`` pairs from a FASTA file.

    Sequence lines are concatenated and whitespace is stripped; the
    leading ``>`` is removed from headers. Raises
    :class:`SequenceFormatError` on content before the first header or
    on a header with no sequence.
    """
    handle, should_close = _open_for_read(source)
    try:
        header: str | None = None
        chunks: list[str] = []
        for lineno, raw in enumerate(handle, start=1):
            line = raw.strip()
            if not line:
                continue
            if line.startswith(">"):
                if header is not None:
                    if not chunks:
                        raise SequenceFormatError(
                            f"FASTA record {header!r} has no sequence"
                        )
                    yield header, "".join(chunks)
                header = line[1:].strip()
                chunks = []
            else:
                if header is None:
                    raise SequenceFormatError(
                        f"line {lineno}: sequence data before first '>' header"
                    )
                chunks.append(line)
        if header is not None:
            if not chunks:
                raise SequenceFormatError(f"FASTA record {header!r} has no sequence")
            yield header, "".join(chunks)
    finally:
        if should_close:
            handle.close()


def parse_fasta_header(header: str) -> tuple[str, str | None]:
    """Split a FASTA header into ``(name, label)``.

    The label is the second whitespace-separated token when present:
    ``"P12345 globin"`` → ``("P12345", "globin")``.
    """
    parts = header.split(None, 1)
    if not parts:
        return "", None
    name = parts[0]
    label = parts[1].strip() if len(parts) > 1 else None
    return name, label or None


def read_fasta(
    source: PathOrFile, alphabet: Alphabet | None = None
) -> SequenceDatabase:
    """Read a FASTA file into a :class:`SequenceDatabase`.

    The second header token, when present, becomes the record label.
    """
    sequences: list[str] = []
    labels: list[str | None] = []
    for header, seq in iter_fasta(source):
        _, label = parse_fasta_header(header)
        sequences.append(seq)
        labels.append(label)
    if not sequences:
        raise SequenceFormatError("FASTA input contains no records")
    return SequenceDatabase.from_strings(sequences, labels, alphabet)


def write_fasta(
    db: SequenceDatabase, target: PathOrFile, line_width: int = 70
) -> None:
    """Write *db* as FASTA; labels are stored as the second header token."""
    if line_width <= 0:
        raise ValueError("line_width must be positive")
    handle, should_close = _open_for_write(target)
    try:
        for record in db:
            label = f" {record.label}" if record.label else ""
            handle.write(f">seq{record.sid}{label}\n")
            text = record.as_string()
            for start in range(0, len(text), line_width):
                handle.write(text[start : start + line_width] + "\n")
    finally:
        if should_close:
            handle.close()


# -- labelled text ----------------------------------------------------------------


def read_labelled_text(
    source: PathOrFile, alphabet: Alphabet | None = None
) -> SequenceDatabase:
    """Read a labelled-text file: ``label<TAB>sequence`` per line.

    Lines without a tab are treated as unlabelled sequences; blank
    lines and ``#`` comments are skipped.
    """
    sequences: list[str] = []
    labels: list[str | None] = []
    handle, should_close = _open_for_read(source)
    try:
        for raw in handle:
            line = raw.rstrip("\n")
            if not line.strip() or line.lstrip().startswith("#"):
                continue
            if "\t" in line:
                label, seq = line.split("\t", 1)
                labels.append(label.strip() or None)
            else:
                seq = line
                labels.append(None)
            seq = seq.strip()
            if not seq:
                raise SequenceFormatError("labelled-text line has empty sequence")
            sequences.append(seq)
    finally:
        if should_close:
            handle.close()
    if not sequences:
        raise SequenceFormatError("labelled-text input contains no sequences")
    return SequenceDatabase.from_strings(sequences, labels, alphabet)


def write_labelled_text(db: SequenceDatabase, target: PathOrFile) -> None:
    """Write *db* as ``label<TAB>sequence`` lines (tab omitted if unlabelled)."""
    handle, should_close = _open_for_write(target)
    try:
        for record in db:
            if record.label is not None:
                handle.write(f"{record.label}\t{record.as_string()}\n")
            else:
                handle.write(record.as_string() + "\n")
    finally:
        if should_close:
            handle.close()
