"""Synthetic sequence-database generators.

The paper's §6.2–§6.4 experiments use synthetic databases with a known
number of *embedded clusters* — each cluster's sequences are drawn from
one randomly-chosen probabilistic source — plus a percentage of
memoryless-random *outliers*. :func:`generate_clustered_database`
reproduces that workload generator (scaled to laptop sizes) and is the
input of every scalability/sensitivity benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from .alphabet import Alphabet
from .database import OUTLIER_LABEL, SequenceDatabase
from .markov import MarkovSource, random_markov_source, uniform_source


@dataclass(frozen=True)
class SyntheticSpec:
    """Parameters of a synthetic clustered workload.

    Mirrors the knobs of the paper's generator: number of sequences,
    number of embedded clusters, average sequence length, alphabet
    size, and outlier fraction. *concentration* and *order* control how
    characteristic each embedded cluster is (see
    :func:`~repro.sequences.markov.random_markov_source`).
    """

    num_sequences: int = 500
    num_clusters: int = 10
    avg_length: int = 100
    alphabet_size: int = 20
    outlier_fraction: float = 0.05
    order: int = 2
    concentration: float = 0.15
    length_jitter: float = 0.2
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_sequences <= 0:
            raise ValueError("num_sequences must be positive")
        if self.num_clusters <= 0:
            raise ValueError("num_clusters must be positive")
        if self.avg_length < 2:
            raise ValueError("avg_length must be at least 2")
        if self.alphabet_size <= 1:
            raise ValueError("alphabet_size must be at least 2")
        if not 0.0 <= self.outlier_fraction < 1.0:
            raise ValueError("outlier_fraction must be in [0, 1)")


@dataclass
class SyntheticDataset:
    """A generated database plus the sources that produced it."""

    database: SequenceDatabase
    spec: SyntheticSpec
    sources: list[MarkovSource] = field(default_factory=list)

    @property
    def cluster_labels(self) -> list[str]:
        """Labels of the embedded clusters (excludes the outlier label)."""
        return [f"cluster{i}" for i in range(self.spec.num_clusters)]


def generate_clustered_database(
    spec: SyntheticSpec | None = None, **overrides: Any
) -> SyntheticDataset:
    """Generate a synthetic clustered sequence database.

    Either pass a full :class:`SyntheticSpec` or individual keyword
    overrides, e.g. ``generate_clustered_database(num_clusters=50)``.

    Cluster sizes are balanced up to rounding; each clustered sequence
    is labelled ``cluster<i>`` and every outlier is labelled
    :data:`~repro.sequences.database.OUTLIER_LABEL` so downstream
    metrics can score against ground truth.
    """
    if spec is None:
        spec = SyntheticSpec(**overrides)
    elif overrides:
        raise TypeError("pass either a spec or keyword overrides, not both")

    rng = np.random.default_rng(spec.seed)
    num_outliers = int(round(spec.num_sequences * spec.outlier_fraction))
    num_clustered = spec.num_sequences - num_outliers
    if num_clustered < spec.num_clusters:
        raise ValueError(
            f"cannot embed {spec.num_clusters} clusters in "
            f"{num_clustered} clustered sequences"
        )

    sources = [
        random_markov_source(
            spec.alphabet_size,
            order=spec.order,
            rng=rng,
            concentration=spec.concentration,
        )
        for _ in range(spec.num_clusters)
    ]

    # Balanced sizes: distribute the remainder over the first clusters.
    base, extra = divmod(num_clustered, spec.num_clusters)
    sizes = [base + (1 if i < extra else 0) for i in range(spec.num_clusters)]

    alphabet = Alphabet.generic(spec.alphabet_size)
    db = SequenceDatabase(alphabet)
    for cluster_id, (source, size) in enumerate(zip(sources, sizes)):
        for encoded in source.sample_many(
            size, spec.avg_length, rng=rng, length_jitter=spec.length_jitter
        ):
            db.add_sequence(alphabet.decode(encoded), label=f"cluster{cluster_id}")

    noise = uniform_source(spec.alphabet_size)
    for encoded in noise.sample_many(
        num_outliers, spec.avg_length, rng=rng, length_jitter=spec.length_jitter
    ):
        db.add_sequence(alphabet.decode(encoded), label=OUTLIER_LABEL)

    return SyntheticDataset(database=db, spec=spec, sources=sources)


def generate_two_cluster_toy(
    size_per_cluster: int = 30,
    length: int = 40,
    seed: int = 7,
) -> SequenceDatabase:
    """A tiny two-cluster character database for docs, tests and demos.

    Cluster ``ab`` strongly favours alternating ``abab…`` runs; cluster
    ``cd`` favours ``cdcd…`` runs; both include some cross-talk noise
    so the clusters are distinguishable but not trivially disjoint.
    """
    rng = np.random.default_rng(seed)
    ab = MarkovSource(
        4,
        order=1,
        transitions={
            (): np.array([0.45, 0.45, 0.05, 0.05]),
            (0,): np.array([0.1, 0.8, 0.05, 0.05]),
            (1,): np.array([0.8, 0.1, 0.05, 0.05]),
            (2,): np.array([0.4, 0.4, 0.1, 0.1]),
            (3,): np.array([0.4, 0.4, 0.1, 0.1]),
        },
    )
    cd = MarkovSource(
        4,
        order=1,
        transitions={
            (): np.array([0.05, 0.05, 0.45, 0.45]),
            (0,): np.array([0.1, 0.1, 0.4, 0.4]),
            (1,): np.array([0.1, 0.1, 0.4, 0.4]),
            (2,): np.array([0.05, 0.05, 0.1, 0.8]),
            (3,): np.array([0.05, 0.05, 0.8, 0.1]),
        },
    )
    alphabet = Alphabet("abcd")
    db = SequenceDatabase(alphabet)
    for encoded in ab.sample_many(size_per_cluster, length, rng=rng):
        db.add_sequence(alphabet.decode(encoded), label="ab")
    for encoded in cd.sample_many(size_per_cluster, length, rng=rng):
        db.add_sequence(alphabet.decode(encoded), label="cd")
    return db


def inject_outliers(
    db: SequenceDatabase,
    fraction: float,
    seed: int = 0,
    avg_length: int | None = None,
) -> SequenceDatabase:
    """Return a copy of *db* with uniform-random outliers appended.

    *fraction* is relative to the resulting database size — e.g. 0.10
    makes outliers 10 % of the returned database, matching how the
    paper states outlier percentages. Outlier lengths default to the
    average length of *db*.
    """
    if not 0.0 <= fraction < 1.0:
        raise ValueError("fraction must be in [0, 1)")
    rng = np.random.default_rng(seed)
    # n_out / (n + n_out) = fraction  =>  n_out = n * fraction / (1 - fraction)
    num_outliers = int(round(len(db) * fraction / (1.0 - fraction)))
    mean_length = avg_length or max(2, int(round(db.average_length)))
    noise = uniform_source(db.alphabet.size)

    out = SequenceDatabase(db.alphabet)
    for record in db:
        out.add_record(record)
    for encoded in noise.sample_many(num_outliers, mean_length, rng=rng):
        out.add_sequence(db.alphabet.decode(encoded), label=OUTLIER_LABEL)
    return out
