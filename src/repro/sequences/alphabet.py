"""Alphabets: finite symbol sets with stable integer encodings.

Every hot loop in this library (probabilistic suffix trees, the
similarity dynamic program, the baseline models) works on sequences of
small integers. An :class:`Alphabet` owns the bijection between the
user-facing symbols (single characters or arbitrary hashable tokens)
and the integer ids ``0 .. size-1``.

The encoding is *stable*: symbol ids are assigned in the order symbols
were first registered, so serialized models remain valid as long as
they are used with the alphabet they were built with.
"""

from __future__ import annotations

import string
from collections.abc import Hashable, Iterable, Iterator

Symbol = Hashable
EncodedSequence = list[int]

#: The 20 standard amino acids, by one-letter code.
AMINO_ACIDS = "ACDEFGHIKLMNPQRSTVWY"

#: The 4 DNA nucleotides.
NUCLEOTIDES = "ACGT"


class AlphabetError(ValueError):
    """Raised when a symbol or id is not part of an alphabet."""


class Alphabet:
    """A finite set of symbols with a stable integer encoding.

    Parameters
    ----------
    symbols:
        The symbols in the alphabet, in id order. Duplicates are
        rejected because they would make the encoding ambiguous.

    Examples
    --------
    >>> ab = Alphabet("ab")
    >>> ab.encode("abba")
    [0, 1, 1, 0]
    >>> ab.decode([0, 1, 1, 0])
    ('a', 'b', 'b', 'a')
    """

    __slots__ = ("_symbols", "_index")

    def __init__(self, symbols: Iterable[Symbol]) -> None:
        self._symbols: tuple[Symbol, ...] = tuple(symbols)
        self._index: dict[Symbol, int] = {}
        for i, sym in enumerate(self._symbols):
            if sym in self._index:
                raise AlphabetError(f"duplicate symbol {sym!r} in alphabet")
            self._index[sym] = i
        if not self._symbols:
            raise AlphabetError("an alphabet must contain at least one symbol")

    # -- construction helpers -------------------------------------------------

    @classmethod
    def from_sequences(cls, sequences: Iterable[Iterable[Symbol]]) -> "Alphabet":
        """Build an alphabet from every distinct symbol in *sequences*.

        Symbols are ordered by first appearance, which keeps encodings
        deterministic for a fixed input order.
        """
        seen: dict[Symbol, None] = {}
        for seq in sequences:
            for sym in seq:
                if sym not in seen:
                    seen[sym] = None
        return cls(seen.keys())

    @classmethod
    def protein(cls) -> "Alphabet":
        """The 20 standard amino acids."""
        return cls(AMINO_ACIDS)

    @classmethod
    def dna(cls) -> "Alphabet":
        """The 4 DNA nucleotides."""
        return cls(NUCLEOTIDES)

    @classmethod
    def lowercase(cls) -> "Alphabet":
        """The 26 lowercase ASCII letters (used by the language datasets)."""
        return cls(string.ascii_lowercase)

    @classmethod
    def generic(cls, size: int) -> "Alphabet":
        """A synthetic alphabet ``s0, s1, …`` of the requested *size*.

        For sizes up to 26 the symbols are single lowercase letters so
        that encoded/decoded sequences stay readable; beyond that the
        symbols are strings ``s<i>``.
        """
        if size <= 0:
            raise AlphabetError("alphabet size must be positive")
        if size <= 26:
            return cls(string.ascii_lowercase[:size])
        return cls(f"s{i}" for i in range(size))

    # -- core protocol ---------------------------------------------------------

    def __len__(self) -> int:
        return len(self._symbols)

    def __iter__(self) -> Iterator[Symbol]:
        return iter(self._symbols)

    def __contains__(self, symbol: Symbol) -> bool:
        return symbol in self._index

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Alphabet):
            return NotImplemented
        return self._symbols == other._symbols

    def __hash__(self) -> int:
        return hash(self._symbols)

    def __repr__(self) -> str:
        if len(self._symbols) <= 8:
            inner = ", ".join(repr(s) for s in self._symbols)
        else:
            head = ", ".join(repr(s) for s in self._symbols[:4])
            inner = f"{head}, … ({len(self._symbols)} symbols)"
        return f"Alphabet({inner})"

    @property
    def symbols(self) -> tuple[Symbol, ...]:
        """The symbols, in id order."""
        return self._symbols

    @property
    def size(self) -> int:
        """Number of distinct symbols (``n`` in the paper)."""
        return len(self._symbols)

    # -- encoding --------------------------------------------------------------

    def id_of(self, symbol: Symbol) -> int:
        """Return the integer id of *symbol*.

        Raises
        ------
        AlphabetError
            If *symbol* is not in the alphabet.
        """
        try:
            return self._index[symbol]
        except KeyError:
            raise AlphabetError(f"symbol {symbol!r} not in alphabet") from None

    def symbol_of(self, symbol_id: int) -> Symbol:
        """Return the symbol with integer id *symbol_id*."""
        if not 0 <= symbol_id < len(self._symbols):
            raise AlphabetError(
                f"symbol id {symbol_id} out of range for alphabet of size {self.size}"
            )
        return self._symbols[symbol_id]

    def encode(self, sequence: Iterable[Symbol]) -> EncodedSequence:
        """Encode an iterable of symbols into a list of integer ids."""
        index = self._index
        try:
            return [index[sym] for sym in sequence]
        except KeyError as exc:
            raise AlphabetError(f"symbol {exc.args[0]!r} not in alphabet") from None

    def decode(self, ids: Iterable[int]) -> tuple[Symbol, ...]:
        """Decode a sequence of integer ids back into symbols."""
        return tuple(self.symbol_of(i) for i in ids)

    def decode_to_string(self, ids: Iterable[int]) -> str:
        """Decode integer ids into a string (symbols must be strings)."""
        return "".join(str(self.symbol_of(i)) for i in ids)

    def is_valid(self, sequence: Iterable[Symbol]) -> bool:
        """Whether every symbol of *sequence* belongs to this alphabet."""
        return all(sym in self._index for sym in sequence)
