"""Similarity-threshold adjustment via histogram valley detection (§4.6).

During each iteration CLUSEQ already computes the similarity of every
(sequence, cluster) combination. Their distribution typically shows a
mass of low similarities (non-members) falling away quickly, then a
long flat tail of genuine members — and the *valley* between the two
regimes is a natural similarity threshold.

The paper locates the valley as the histogram point where the curve
makes the "sharpest turn": for every bucket ``i``, fit a least-squares
regression line to the left part ``[1..i]`` and the right part
``[i..n]`` of the histogram and pick the ``i`` maximising the absolute
difference of the two slopes. Both slopes for all ``i`` are computed
from prefix/suffix sums, keeping the whole search ``O(n)``.

Similarities span many orders of magnitude, so the histogram is built
over **log similarity** (with an upper quantile clip so a single member
with astronomical similarity cannot stretch the domain); the returned
threshold is converted back to linear scale.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from collections.abc import Callable, Sequence

import numpy as np
import numpy.typing as npt

from ..obs import get_logger, get_registry

_logger = get_logger("core.threshold")


def _record_valley_search(method: str, result: "ValleyResult" | None) -> None:
    """Telemetry for one valley search (shared by all estimators)."""
    registry = get_registry()
    if registry.enabled:
        registry.counter("threshold.valley_searches", method=method).inc()
        if result is None:
            registry.counter("threshold.valley_misses", method=method).inc()
        else:
            registry.series("threshold.valley_log", method=method).append(
                result.log_threshold
            )
    if _logger.isEnabledFor(10):  # logging.DEBUG
        if result is None:
            _logger.debug("valley search failed", extra={"method": method})
        else:
            _logger.debug(
                "valley found",
                extra={
                    "method": method,
                    "log_threshold": result.log_threshold,
                    "bucket_index": result.bucket_index,
                    "slope_difference": result.slope_difference,
                },
            )


@dataclass(frozen=True)
class ValleyResult:
    """Outcome of a valley search on a similarity histogram."""

    threshold: float  # linear-scale t̂
    log_threshold: float
    bucket_index: int
    slope_difference: float
    bin_centers: npt.NDArray[np.float64]
    counts: npt.NDArray[np.float64]


def build_histogram(
    log_similarities: Sequence[float],
    buckets: int = 100,
    upper_quantile: float = 0.99,
) -> tuple[npt.NDArray[np.float64], npt.NDArray[np.float64]]:
    """Histogram of log similarities as ``(bin_centers, counts)``
    — the §4.6 distribution whose valley locates the threshold.

    The domain runs from the minimum value to the *upper_quantile*
    quantile; values above the clip are **dropped**. They are member
    similarities many orders of magnitude past any plausible valley,
    and folding them into the last bucket would plant a phantom spike
    there that distorts the right-hand regression line.
    """
    if buckets < 3:
        raise ValueError("need at least 3 buckets")
    if not 0.0 < upper_quantile <= 1.0:
        raise ValueError("upper_quantile must be in (0, 1]")
    values = np.asarray(
        [v for v in log_similarities if math.isfinite(v)], dtype=np.float64
    )
    if values.size == 0:
        raise ValueError("no finite similarity values to histogram")
    low = float(values.min())
    high = float(np.quantile(values, upper_quantile))
    if high <= low:
        high = low + 1.0
    kept = values[values <= high]
    counts, edges = np.histogram(kept, bins=buckets, range=(low, high))
    centers = (edges[:-1] + edges[1:]) / 2.0
    return centers, counts.astype(np.float64)


def _regression_slopes(x: npt.NDArray[np.float64], y: npt.NDArray[np.float64]) -> tuple[npt.NDArray[np.float64], npt.NDArray[np.float64]]:
    """Left and right regression slopes at every split point.

    ``left[i]`` is the slope of the least-squares line through points
    ``0..i`` (inclusive); ``right[i]`` through points ``i..n-1``. Both
    are computed from cumulative sums in ``O(n)``. Degenerate fits
    (fewer than 2 points or zero x-variance) yield ``nan``.
    """
    n = x.size
    cx = np.cumsum(x)
    cy = np.cumsum(y)
    cxy = np.cumsum(x * y)
    cxx = np.cumsum(x * x)

    counts_left = np.arange(1, n + 1, dtype=np.float64)
    num_left = cxy - cx * cy / counts_left
    den_left = cxx - cx * cx / counts_left
    with np.errstate(divide="ignore", invalid="ignore"):
        left = np.where(np.abs(den_left) > 1e-12, num_left / den_left, np.nan)

    sx, sy, sxy, sxx = cx[-1], cy[-1], cxy[-1], cxx[-1]
    # suffix sums over i..n-1: total minus prefix up to i-1
    px = np.concatenate(([0.0], cx[:-1]))
    py = np.concatenate(([0.0], cy[:-1]))
    pxy = np.concatenate(([0.0], cxy[:-1]))
    pxx = np.concatenate(([0.0], cxx[:-1]))
    counts_right = np.arange(n, 0, -1, dtype=np.float64)
    rx = sx - px
    ry = sy - py
    rxy = sxy - pxy
    rxx = sxx - pxx
    num_right = rxy - rx * ry / counts_right
    den_right = rxx - rx * rx / counts_right
    with np.errstate(divide="ignore", invalid="ignore"):
        right = np.where(np.abs(den_right) > 1e-12, num_right / den_right, np.nan)
    return left, right


def find_valley(
    log_similarities: Sequence[float],
    buckets: int = 100,
    upper_quantile: float = 0.99,
    min_observations: int = 20,
) -> ValleyResult | None:
    """Locate the §4.6 histogram valley and return the implied
    threshold.

    Returns ``None`` when there is not enough data for a meaningful
    fit (fewer than *min_observations* finite values, or no interior
    split point with valid regressions on both sides) — the caller then
    simply skips the threshold adjustment this iteration.
    """
    result = _find_valley_regression(
        log_similarities, buckets, upper_quantile, min_observations
    )
    _record_valley_search("regression", result)
    return result


def _find_valley_regression(
    log_similarities: Sequence[float],
    buckets: int,
    upper_quantile: float,
    min_observations: int,
) -> ValleyResult | None:
    finite = [v for v in log_similarities if math.isfinite(v)]
    if len(finite) < min_observations:
        return None
    centers, counts = build_histogram(finite, buckets, upper_quantile)
    n = centers.size
    if n < 3:
        return None
    left, right = _regression_slopes(centers, counts)

    best_index = -1
    best_diff = -math.inf
    # Interior points only (paper: i = 2 .. n-1, 1-based).
    for i in range(1, n - 1):
        if math.isnan(left[i]) or math.isnan(right[i]):
            continue
        diff = abs(left[i] - right[i])
        if diff > best_diff:
            best_diff = diff
            best_index = i
    if best_index < 0:
        return None
    log_t = float(centers[best_index])
    return ValleyResult(
        threshold=math.exp(log_t) if log_t < 700 else math.inf,
        log_threshold=log_t,
        bucket_index=best_index,
        slope_difference=best_diff,
        bin_centers=centers,
        counts=counts,
    )


def find_valley_otsu(
    log_similarities: Sequence[float],
    buckets: int = 100,
    upper_quantile: float = 0.995,
    min_observations: int = 20,
) -> ValleyResult | None:
    """Otsu's method on the log-similarity histogram.

    An alternative valley estimator to the paper's regression-slope
    heuristic. The regression heuristic locates the sharpest turn of a
    monotonically declining histogram, which on data with a hard
    similarity margin (like the paper's synthetic workloads) coincides
    with the member/non-member boundary. On data where member
    similarities sit far above the non-member mass — typical once
    cluster models mature, because the predict probability compounds
    per symbol — the sharpest turn hugs the non-member spike and badly
    underestimates the boundary. Otsu's criterion (maximise the
    between-class variance of the two sides of the split) instead lands
    in the gap between the two modes, wherever it is.

    Same return contract as :func:`find_valley`.
    """
    result = _find_valley_otsu(
        log_similarities, buckets, upper_quantile, min_observations
    )
    _record_valley_search("otsu", result)
    return result


def _find_valley_otsu(
    log_similarities: Sequence[float],
    buckets: int,
    upper_quantile: float,
    min_observations: int,
) -> ValleyResult | None:
    finite = [v for v in log_similarities if math.isfinite(v)]
    if len(finite) < min_observations:
        return None
    centers, counts = build_histogram(finite, buckets, upper_quantile)
    total = counts.sum()
    if total <= 0:
        return None
    weights = counts / total
    cum_w = np.cumsum(weights)
    cum_mean = np.cumsum(weights * centers)
    grand_mean = cum_mean[-1]
    with np.errstate(divide="ignore", invalid="ignore"):
        between = (grand_mean * cum_w - cum_mean) ** 2 / (cum_w * (1.0 - cum_w))
    between[~np.isfinite(between)] = -math.inf
    # Exclude the extreme ends so both sides keep some mass.
    between[0] = between[-1] = -math.inf
    best_index = int(np.argmax(between))
    if not math.isfinite(between[best_index]):
        return None
    log_t = float(centers[best_index])
    return ValleyResult(
        threshold=math.exp(log_t) if log_t < 700 else math.inf,
        log_threshold=log_t,
        bucket_index=best_index,
        slope_difference=float(between[best_index]),
        bin_centers=centers,
        counts=counts,
    )


#: Valley-estimator registry used by the engine's ``valley_method``.
VALLEY_METHODS: dict[str, Callable[..., ValleyResult | None]] = {
    "regression": find_valley,
    "otsu": find_valley_otsu,
}


def blend_threshold(current_t: float, valley_t: float) -> float:
    """The paper's conservative update ``t ← (t + t̂) / 2``."""
    if current_t <= 0 or valley_t <= 0:
        raise ValueError("thresholds must be positive")
    return (current_t + valley_t) / 2.0


def thresholds_converged(current_t: float, valley_t: float, tolerance: float = 0.01) -> bool:
    """The paper's stop rule: ``t`` and ``t̂`` within *tolerance* (1 %)."""
    if current_t <= 0 or valley_t <= 0:
        raise ValueError("thresholds must be positive")
    return abs(current_t - valley_t) / max(current_t, valley_t) < tolerance
