"""Cluster consolidation (paper §4.5).

Successive seed generation can create clusters that heavily overlap —
e.g. when two sequences from the same true cluster are both drawn as
seeds. Consolidation dismisses clusters that are "covered" by others:
clusters are examined in ascending size order, and any cluster whose
*unique* members (sequences belonging to no larger cluster) number
fewer than a threshold is removed. Surviving clusters therefore differ
substantially from each other.
"""

from __future__ import annotations

from collections.abc import Sequence

from ..obs import get_logger, get_registry
from .cluster import Cluster

_logger = get_logger("core.consolidation")


def consolidate(
    clusters: Sequence[Cluster],
    min_unique_members: int,
    dissolve_covered: bool = True,
) -> tuple[list[Cluster], list[Cluster]]:
    """Apply the paper's consolidation procedure.

    Parameters
    ----------
    clusters:
        The current cluster collection.
    min_unique_members:
        A cluster survives only if at least this many of its members
        belong to no other retained cluster. The paper suggests the
        significance threshold ``c`` for this value.
    dissolve_covered:
        When ``True`` (the default) the examination runs **largest
        first** and a cluster — regardless of size — is dismissed when
        its members are covered by the union of the *other* retained
        clusters. The paper's ascending-size pass (``False``) can never
        remove an over-merged "mixture" cluster: being the largest, it
        is examined last, after every pure cluster it covers has
        already been dismissed — so the mixture survives and the pure
        clusters die. The descending pass dissolves mixtures once purer
        clusters exist while leaving genuinely distinct clusters
        untouched (they keep unique members). See DESIGN.md.

    Returns
    -------
    (retained, removed):
        The surviving clusters (original relative order preserved) and
        the dismissed ones.

    Notes
    -----
    * Uniqueness is evaluated against retained clusters only, so
      removing one cluster cannot be justified by another cluster that
      is itself removed.
    * Empty clusters are always dismissed — a cluster that attracted no
      sequences carries no model worth keeping.
    """
    if min_unique_members < 0:
        raise ValueError("min_unique_members must be non-negative")

    removed: list[Cluster] = []
    removed_ids: set[int] = set()

    for cluster in clusters:
        if cluster.size == 0:
            removed.append(cluster)
            removed_ids.add(cluster.cluster_id)

    live = [cl for cl in clusters if cl.cluster_id not in removed_ids]
    if dissolve_covered:
        # Largest first; ties broken by id for determinism.
        order = sorted(live, key=lambda cl: (-cl.size, cl.cluster_id))
        for cluster in order:
            others = [
                other
                for other in order
                if other is not cluster and other.cluster_id not in removed_ids
            ]
            if not others:
                break  # never dissolve the last remaining cluster
            unique = cluster.unique_members(others)
            if len(unique) < min_unique_members:
                removed.append(cluster)
                removed_ids.add(cluster.cluster_id)
    else:
        # The paper's §4.5 pass: ascending size, uniqueness against the
        # retained larger clusters only.
        order = sorted(live, key=lambda cl: (cl.size, cl.cluster_id))
        for position, cluster in enumerate(order):
            larger = [
                other
                for other in order[position + 1 :]
                if other.cluster_id not in removed_ids
            ]
            unique = cluster.unique_members(larger)
            if len(unique) < min_unique_members:
                removed.append(cluster)
                removed_ids.add(cluster.cluster_id)

    retained = [cl for cl in clusters if cl.cluster_id not in removed_ids]
    registry = get_registry()
    if registry.enabled:
        registry.counter("consolidation.passes").inc()
        registry.counter("consolidation.dismissed").inc(len(removed))
    if removed and _logger.isEnabledFor(10):  # logging.DEBUG
        _logger.debug(
            "dismissed clusters",
            extra={
                "dismissed": sorted(cl.cluster_id for cl in removed),
                "retained": len(retained),
            },
        )
    return retained, removed


def overlap_fraction(a: Cluster, b: Cluster) -> float:
    """Jaccard overlap between two clusters' member sets.

    A diagnostic aid for inspecting how much consolidation is needed;
    not part of the algorithm itself.
    """
    members_a, members_b = a.members, b.members
    union = members_a | members_b
    if not union:
        return 0.0
    return len(members_a & members_b) / len(union)
