"""Saving and loading fitted clusterings.

A fitted :class:`~repro.core.cluseq.ClusteringResult` is a deployable
model — its cluster PSTs classify new sequences via
:meth:`~repro.core.cluseq.ClusteringResult.predict` — so it needs to
survive the process that trained it. Everything is plain JSON: the
cluster trees (via the PST's own serialization), memberships, the
background model, the converged threshold and the run parameters.

The alphabet is stored when its symbols are strings (the common case,
and what the CLI produces); for arbitrary hashable tokens pass
``alphabet=None`` and keep the alphabet alongside the file — it is
needed to encode new sequences either way.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict
from typing import Any, TextIO, Union

import numpy as np

from ..sequences.alphabet import Alphabet
from .cluseq import CluseqParams, ClusteringResult, IterationStats
from .cluster import Cluster, Membership
from .pst import ProbabilisticSuffixTree

#: Acceptable save/load targets (typing.Union: evaluated at runtime).
PathOrFile = Union[str, "os.PathLike[str]", TextIO]

#: Schema version embedded in every file, for forward compatibility.
FORMAT_VERSION = 1


def result_to_dict(
    result: ClusteringResult, alphabet: "Alphabet | None" = None
) -> dict[str, Any]:
    """A JSON-serializable snapshot of a fitted clustering.

    Captures the full §4 end state: every cluster's PST (§3's model),
    the final similarity threshold and the membership map, so
    classification can resume without refitting.

    Pass the training *alphabet* to embed it (symbols must be strings);
    :func:`load_result` then returns it alongside the result via
    :func:`load_result_with_alphabet`.
    """
    clusters: list[dict[str, Any]] = []
    for cluster in result.clusters:
        clusters.append(
            {
                "cluster_id": cluster.cluster_id,
                "seed_index": cluster.seed_index,
                "created_at_iteration": cluster.created_at_iteration,
                "pst": cluster.pst.to_dict(),
                "members": [
                    {
                        "sequence_index": m.sequence_index,
                        "log_similarity": m.log_similarity,
                        "best_start": m.best_start,
                        "best_end": m.best_end,
                    }
                    for m in cluster._members.values()
                ],
            }
        )
    encoded_alphabet = None
    if alphabet is not None:
        symbols = list(alphabet.symbols)
        if not all(isinstance(symbol, str) for symbol in symbols):
            raise ValueError(
                "only alphabets with string symbols can be embedded; "
                "pass alphabet=None and persist it separately"
            )
        encoded_alphabet = symbols
    return {
        "format_version": FORMAT_VERSION,
        "alphabet": encoded_alphabet,
        "params": asdict(result.params),
        "background": [float(p) for p in result.background],
        "final_log_threshold": result.final_log_threshold,
        "elapsed_seconds": result.elapsed_seconds,
        "converged": result.converged,
        "assignments": {
            str(index): sorted(ids) for index, ids in result.assignments.items()
        },
        "clusters": clusters,
        "history": [asdict(stats) for stats in result.history],
    }


def result_from_dict(data: dict[str, Any]) -> ClusteringResult:
    """Rebuild a :class:`ClusteringResult` from :func:`result_to_dict`.

    Inverse of the §4-state snapshot; restores cluster PSTs,
    memberships and the final threshold.
    """
    version = data.get("format_version")
    if version != FORMAT_VERSION:
        raise ValueError(
            f"unsupported clustering file version {version!r}; "
            f"this build reads version {FORMAT_VERSION}"
        )
    clusters: list[Cluster] = []
    for payload in data["clusters"]:
        cluster = Cluster(
            cluster_id=payload["cluster_id"],
            pst=ProbabilisticSuffixTree.from_dict(payload["pst"]),
            seed_index=payload["seed_index"],
            created_at_iteration=payload.get("created_at_iteration", 0),
        )
        for member in payload["members"]:
            cluster.set_member(
                Membership(
                    sequence_index=member["sequence_index"],
                    log_similarity=member["log_similarity"],
                    best_start=member["best_start"],
                    best_end=member["best_end"],
                )
            )
        clusters.append(cluster)
    history = [IterationStats(**stats) for stats in data.get("history", [])]
    return ClusteringResult(
        clusters=clusters,
        assignments={
            int(index): set(ids) for index, ids in data["assignments"].items()
        },
        params=CluseqParams(**data["params"]),
        background=np.asarray(data["background"], dtype=np.float64),
        final_log_threshold=data["final_log_threshold"],
        history=history,
        elapsed_seconds=data.get("elapsed_seconds", 0.0),
        converged=data.get("converged", False),
    )


def save_result(
    result: ClusteringResult,
    target: PathOrFile,
    alphabet: "Alphabet | None" = None,
) -> None:
    """Write a fitted clustering (§4 end state) as JSON.

    Optionally embeds the training alphabet so a later ``classify``
    run can encode raw sequences identically.
    """
    payload = result_to_dict(result, alphabet)
    if hasattr(target, "write"):
        json.dump(payload, target)  # type: ignore[arg-type]
        return
    with open(target, "w", encoding="utf-8") as handle:  # type: ignore[arg-type]
        json.dump(payload, handle)


def _read_payload(source: PathOrFile) -> dict[str, Any]:
    if hasattr(source, "read"):
        payload = json.load(source)  # type: ignore[arg-type]
    else:
        with open(source, encoding="utf-8") as handle:  # type: ignore[arg-type]
            payload = json.load(handle)
    if not isinstance(payload, dict):
        raise ValueError("clustering file must contain a JSON object")
    return payload


def load_result(source: PathOrFile) -> ClusteringResult:
    """Read a fitted clustering (§4 end state) written by
    :func:`save_result`."""
    return result_from_dict(_read_payload(source))


def load_result_with_alphabet(
    source: PathOrFile,
) -> tuple[ClusteringResult, Alphabet | None]:
    """Read ``(result, alphabet)`` from a §4-state snapshot.

    The alphabet is ``None`` when the file does not embed one.
    """
    payload = _read_payload(source)
    result = result_from_dict(payload)
    symbols = payload.get("alphabet")
    alphabet = Alphabet(symbols) if symbols else None
    return result, alphabet
