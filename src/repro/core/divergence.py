"""Distribution-difference measures from the paper's §2.

Before introducing the predict-probability similarity, the paper
discusses the classical ways to compare two conditional probability
distributions — the **variational distance**

    V(P₁, P₂) = Σ_σ |P₁(σ) − P₂(σ)|

and the (symmetrised Kullback-Leibler) **J-divergence**

    J(P₁, P₂) = Σ_σ (P₁(σ) − P₂(σ)) · log(P₁(σ)/P₂(σ))

— and rejects them because evaluating them over all segments up to
length L costs O(|ℑ|^L). This module implements them anyway: as vector
measures for probability vectors, and as *model* measures between two
PSTs where the sum runs only over contexts actually materialised in
the trees (the paper's "significant portion of the CPD"), weighted by
observed context frequency. That turns the intractable full sum into
the tractable empirical one, and lets tests confirm that clusters
CLUSEQ separates are exactly those whose CPDs diverge.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np
import numpy.typing as npt

from .pst import ProbabilisticSuffixTree

_EPS = 1e-12


def variational_distance(p: Sequence[float], q: Sequence[float]) -> float:
    """``Σ |p_i − q_i|`` over two probability vectors (range [0, 2]).

    One of the §2 distribution-difference measures the paper surveys
    before settling on its similarity ratio.
    """
    p_arr = np.asarray(p, dtype=np.float64)
    q_arr = np.asarray(q, dtype=np.float64)
    if p_arr.shape != q_arr.shape:
        raise ValueError(f"shape mismatch: {p_arr.shape} vs {q_arr.shape}")
    return float(np.abs(p_arr - q_arr).sum())


def kl_divergence(p: Sequence[float], q: Sequence[float]) -> float:
    """``Σ p_i log(p_i/q_i)`` with epsilon flooring (finite, ≥ 0).

    The §2 relative-entropy measure; building block of the
    symmetrised :func:`j_divergence`.
    """
    p_arr = np.asarray(p, dtype=np.float64) + _EPS
    q_arr = np.asarray(q, dtype=np.float64) + _EPS
    if p_arr.shape != q_arr.shape:
        raise ValueError(f"shape mismatch: {p_arr.shape} vs {q_arr.shape}")
    p_arr = p_arr / p_arr.sum()
    q_arr = q_arr / q_arr.sum()
    return float((p_arr * np.log(p_arr / q_arr)).sum())


def j_divergence(p: Sequence[float], q: Sequence[float]) -> float:
    """The paper's symmetrised KL: ``J = KL(p‖q) + KL(q‖p)``."""
    return kl_divergence(p, q) + kl_divergence(q, p)


def _context_weights(
    pst: ProbabilisticSuffixTree, max_context: int
) -> dict[tuple[int, ...], float]:
    """Observed contexts (labels up to *max_context*) → frequency weight."""
    weights: dict[tuple[int, ...], float] = {}
    total = 0.0
    for label, node in pst.iter_nodes():
        if len(label) > max_context:
            continue
        if node.next_total == 0:
            continue
        weights[label] = float(node.next_total)
        total += node.next_total
    if total <= 0:
        return {(): 1.0}
    return {label: weight / total for label, weight in weights.items()}


def pst_divergence(
    a: ProbabilisticSuffixTree,
    b: ProbabilisticSuffixTree,
    max_context: int = 2,
    measure: str = "variational",
) -> float:
    """Empirical CPD difference between two PST models.

    For every context materialised in either tree (up to *max_context*
    symbols), compare the two next-symbol distributions with the chosen
    *measure* and average, weighting by how often each context occurs
    (averaged over the two models' own context frequencies). This is
    the paper's §2 comparison restricted to the observed — rather than
    the exponential — context space.
    """
    if a.alphabet_size != b.alphabet_size:
        raise ValueError("cannot compare PSTs over different alphabets")
    measures = {
        "variational": variational_distance,
        "kl": kl_divergence,
        "j": j_divergence,
    }
    if measure not in measures:
        raise ValueError(f"measure must be one of {tuple(measures)}")
    distance = measures[measure]

    weights_a = _context_weights(a, max_context)
    weights_b = _context_weights(b, max_context)
    contexts = set(weights_a) | set(weights_b)
    total_weight = 0.0
    accumulated = 0.0
    for context in contexts:
        weight = (weights_a.get(context, 0.0) + weights_b.get(context, 0.0)) / 2
        if weight <= 0:
            continue
        vec_a = a.probability_vector(list(context))
        vec_b = b.probability_vector(list(context))
        accumulated += weight * distance(vec_a, vec_b)
        total_weight += weight
    if total_weight <= 0:
        return 0.0
    return accumulated / total_weight


def pairwise_pst_divergence(
    psts: Sequence[ProbabilisticSuffixTree],
    max_context: int = 2,
    measure: str = "variational",
) -> npt.NDArray[np.float64]:
    """Symmetric matrix of :func:`pst_divergence` over a model list.

    Quantifies how separable the embedded clusters of the paper's
    §6 synthetic workloads are from one another.
    """
    n = len(psts)
    matrix = np.zeros((n, n), dtype=np.float64)
    for i in range(n):
        for j in range(i + 1, n):
            d = pst_divergence(psts[i], psts[j], max_context, measure)
            matrix[i, j] = matrix[j, i] = d
    return matrix
