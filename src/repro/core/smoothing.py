"""Adjusted probability estimation (paper §5.2).

A small cluster's empirical conditional distribution often assigns
probability 0 to symbols never observed after a context, which zeroes
out the whole predict probability ``P(σ)``. The paper's fix reserves a
total mass of ``n · p_min`` and shares it across all ``n`` symbols:

    P̂(s | ctx) = (1 − n · p_min) · P(s | ctx) + p_min

so every symbol keeps at least ``p_min`` probability while the adjusted
vector still sums to 1. The adjustment is applied on the fly during
similarity estimation, exactly as the paper prescribes.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np
import numpy.typing as npt


def validate_p_min(alphabet_size: int, p_min: float) -> None:
    """Validate that *p_min* is a usable §5.2 smoothing floor.

    Requires ``0 ≤ p_min`` and ``n · p_min < 1`` (with equality allowed
    only in the degenerate single-symbol case); otherwise the adjusted
    probabilities would be negative or the vector could not sum to 1.
    """
    if p_min < 0:
        raise ValueError("p_min must be non-negative")
    if alphabet_size * p_min >= 1.0 and p_min > 0.0:
        raise ValueError(
            f"p_min={p_min} too large for alphabet of size {alphabet_size}: "
            f"need alphabet_size * p_min < 1"
        )


def default_p_min(alphabet_size: int, scale: float = 1e-3) -> float:
    """A conservative default §5.2 floor: ``scale / alphabet_size``.

    Keeps the reserved mass ``n · p_min = scale`` independent of the
    alphabet size, so smoothing perturbs observed probabilities by at
    most 0.1 % with the default *scale*.
    """
    if alphabet_size <= 0:
        raise ValueError("alphabet_size must be positive")
    if scale < 0 or scale >= 1:
        raise ValueError("scale must be in [0, 1)")
    return scale / alphabet_size


def adjust_probability(p: float, alphabet_size: int, p_min: float) -> float:
    """Apply the paper's adjustment to a single probability entry."""
    if p_min <= 0.0:
        return p
    return (1.0 - alphabet_size * p_min) * p + p_min


def adjust_vector(probs: Sequence[float], p_min: float) -> npt.NDArray[np.float64]:
    """Apply the §5.2 adjustment to a full probability vector.

    The vector length is taken as the alphabet size ``n``.
    """
    vec = np.asarray(probs, dtype=np.float64)
    if p_min <= 0.0:
        return vec.copy()
    n = vec.shape[0]
    validate_p_min(n, p_min)
    return (1.0 - n * p_min) * vec + p_min
