"""Multi-domain sequence segmentation against fitted clusters.

The paper motivates the segment-maximising similarity measure with
multi-domain sequences: "different portions of a sequence may subsume
to different CPDs, especially when the sequence is long. (For example,
a protein may belong to multiple domains.)" (§2). The clustering
itself only records one best segment per (sequence, cluster); this
module completes the picture by *annotating* a sequence: a dynamic
program assigns every position to the cluster that models it best — or
to background — producing a domain decomposition.

Model
-----
For each position ``i`` and cluster ``S`` we have the log ratio
``x_i(S) = log P_S(s_i | ctx) − log p(s_i)`` (the similarity DP's per-
symbol score). A labelling ``ℓ_1 … ℓ_l`` with labels in
{clusters} ∪ {background} scores

    Σ_i x_i(ℓ_i) − switch_penalty · #(label changes)

where background positions score 0 (the memoryless model is the
reference). The penalty keeps domains contiguous; the optimum is found
with a Viterbi-style DP in ``O(l · k)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence
from typing import TYPE_CHECKING

import numpy as np
import numpy.typing as npt

from .cluseq import ClusteringResult
from .similarity import log_symbol_ratios

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from ..sequences.alphabet import Alphabet

#: Label used for positions best explained by the background model.
BACKGROUND = None


@dataclass(frozen=True)
class Domain:
    """One annotated region of a sequence.

    ``cluster_id`` is ``None`` for background regions. ``score`` is the
    summed log ratio of the region under its label (0 for background).
    """

    start: int
    end: int  # half-open
    cluster_id: int | None
    score: float

    @property
    def length(self) -> int:
        return self.end - self.start


def segment_sequence(
    result: ClusteringResult,
    encoded: Sequence[int],
    switch_penalty: float = 8.0,
    min_domain_score: float = 2.0,
) -> list[Domain]:
    """Decompose *encoded* into cluster domains and background.

    Realizes the paper's §2 observation that "a protein may belong to
    multiple domains": the per-position log ratios that drive the §4.3
    similarity are reused as domain evidence.

    Parameters
    ----------
    result:
        A fitted clustering whose cluster PSTs act as domain models.
    encoded:
        The sequence to annotate, encoded with the training alphabet.
    switch_penalty:
        Log-score cost of each label change. Higher values produce
        fewer, longer domains; roughly, a domain must beat background
        by this much to be worth opening.
    min_domain_score:
        Domains whose total score falls below this are folded into
        background in a final pass (they would be noise annotations).

    Returns
    -------
    A list of :class:`Domain` covering ``[0, len(encoded))`` exactly,
    in order, with no two adjacent domains sharing a label.
    """
    if len(encoded) == 0:
        raise ValueError("cannot segment an empty sequence")
    if switch_penalty < 0:
        raise ValueError("switch_penalty must be non-negative")

    clusters = result.clusters
    labels: list[int | None] = [BACKGROUND] + [c.cluster_id for c in clusters]
    length = len(encoded)

    # Per-position scores: background row is 0, one row per cluster.
    scores = np.zeros((len(labels), length), dtype=np.float64)
    for row, cluster in enumerate(clusters, start=1):
        scores[row] = log_symbol_ratios(cluster.pst, encoded, result.background)

    # Viterbi over labels with a constant switching penalty.
    best = scores[:, 0].copy()
    back: list[npt.NDArray[np.int64]] = []
    for i in range(1, length):
        stay = best
        jump = best.max() - switch_penalty
        choose_jump = jump > stay
        pointer = np.where(choose_jump, int(np.argmax(best)), np.arange(len(labels)))
        best = np.where(choose_jump, jump, stay) + scores[:, i]
        back.append(pointer)

    # Trace back the optimal labelling.
    state = int(np.argmax(best))
    path = [state]
    for pointer in reversed(back):
        state = int(pointer[state])
        path.append(state)
    path.reverse()

    # Collapse the per-position path into domains.
    domains: list[Domain] = []
    start = 0
    for i in range(1, length + 1):
        if i == length or path[i] != path[start]:
            label = labels[path[start]]
            score = float(scores[path[start], start:i].sum())
            domains.append(Domain(start=start, end=i, cluster_id=label, score=score))
            start = i

    # Fold weak domains into background and merge adjacent backgrounds.
    folded: list[Domain] = []
    for domain in domains:
        if domain.cluster_id is not BACKGROUND and domain.score < min_domain_score:
            domain = Domain(domain.start, domain.end, BACKGROUND, 0.0)
        if (
            folded
            and folded[-1].cluster_id is BACKGROUND
            and domain.cluster_id is BACKGROUND
        ):
            previous = folded.pop()
            domain = Domain(previous.start, domain.end, BACKGROUND, 0.0)
        folded.append(domain)
    return folded


def domain_summary(
    domains: Sequence[Domain],
    alphabet: Alphabet | None = None,
    encoded: Sequence[int] | None = None,
) -> str:
    """Human-readable one-line-per-domain report of a §2-style
    multi-domain decomposition."""
    lines: list[str] = []
    for domain in domains:
        label = (
            "background"
            if domain.cluster_id is BACKGROUND
            else f"cluster {domain.cluster_id}"
        )
        text = ""
        if alphabet is not None and encoded is not None:
            fragment = alphabet.decode_to_string(
                encoded[domain.start : min(domain.end, domain.start + 12)]
            )
            ellipsis = "…" if domain.length > 12 else ""
            text = f"  {fragment}{ellipsis}"
        lines.append(
            f"[{domain.start:4d}, {domain.end:4d})  {label:<12s} "
            f"score {domain.score:8.1f}{text}"
        )
    return "\n".join(lines)
