"""Multiprocessing fan-out for the (sequence × cluster) scoring matrix.

The re-examination phase (§4.2) scores every sequence against every
cluster. With ``--workers N`` the vectorized backend chunks that matrix
by sequence block and prescores chunks on a ``ProcessPoolExecutor``;
the driving loop then *commits* the prescored pairs sequentially,
falling back to an in-process rescore for any pair whose cluster model
absorbed a segment after the prescore snapshot (see
``CLUSEQ._recluster_vectorized``). Results are therefore identical to
single-process runs — workers only change where the arithmetic happens.

Workers never receive ``PSTNode`` trees: the pickled payload is the
self-contained :class:`~repro.core.backends.flatten.FlattenedPST`
arrays plus the encoded sequence chunk, so IPC cost is a few dense
arrays per chunk, not a pointer graph.
"""

from __future__ import annotations

import time
from concurrent.futures import Future, ProcessPoolExecutor
from collections.abc import Sequence

import numpy as np
import numpy.typing as npt

from ...obs import record_foreign_span
from ..similarity import SimilarityResult, _safe_exp
from .flatten import FlattenedPST
from .vectorized import (
    gather_log_ratios,
    kadane_rows,
    pad_sequences,
    stack_flats,
    walk_states,
)

#: (log_similarity, best_start, best_end, whole_sequence_log) — the raw
#: wire form of one scored pair, cheap to pickle back from a worker.
RawScore = tuple[float, int, int, float]


def score_matrix_raw(
    flats: Sequence[FlattenedPST],
    sequences: Sequence[Sequence[int]],
    log_bg: npt.NDArray[np.float64],
) -> list[list[RawScore]]:
    """Tree-major raw §4.2 score matrix; runs inside worker processes."""
    if not flats or not sequences:
        return [[] for _ in flats]
    stacked = stack_flats(list(flats))
    rows: list[Sequence[int]] = []
    row_flats = np.empty(len(flats) * len(sequences), dtype=np.intp)
    cursor = 0
    for tree_index in range(len(flats)):
        for seq in sequences:
            rows.append(seq)
            row_flats[cursor] = tree_index
            cursor += 1
    padded, lengths = pad_sequences(rows)
    states = walk_states(stacked, padded, row_flats)
    ratios = gather_log_ratios(stacked, log_bg, padded, states)
    batch = kadane_rows(ratios, lengths)
    width = len(sequences)
    out: list[list[RawScore]] = []
    for tree_index in range(len(flats)):
        row_scores: list[RawScore] = []
        for column in range(width):
            row = tree_index * width + column
            row_scores.append(
                (
                    float(batch.log_z[row]),
                    int(batch.best_start[row]),
                    int(batch.best_end[row]),
                    float(batch.whole[row]),
                )
            )
        out.append(row_scores)
    return out


def _score_chunk_timed(
    flats: Sequence[FlattenedPST],
    sequences: Sequence[Sequence[int]],
    log_bg: npt.NDArray[np.float64],
) -> tuple[list[list[RawScore]], float, float]:
    """Worker entry point: the raw matrix plus its wall/CPU seconds.

    The timing is measured inside the worker process (the only place
    that can see it) and shipped home with the scores so the parent can
    stitch a ``backend.worker_chunk`` span onto the live trace when one
    is being exported; see §4.2 for the re-examination fan-out itself.
    """
    wall_start = time.perf_counter()
    cpu_start = time.process_time()
    raw = score_matrix_raw(flats, sequences, log_bg)
    return (
        raw,
        time.perf_counter() - wall_start,
        time.process_time() - cpu_start,
    )


def raw_to_result(raw: RawScore) -> SimilarityResult:
    """Inflate a wire-form score back into the paper's
    :class:`SimilarityResult` (§4.3)."""
    log_z, best_start, best_end, whole = raw
    return SimilarityResult(
        similarity=_safe_exp(log_z),
        log_similarity=log_z,
        best_start=best_start,
        best_end=best_end,
        whole_sequence_log=whole,
    )


class ScoringPool:
    """A lazy process pool prescoring matrix chunks.

    The executor spawns on first use and must be released with
    :meth:`close` (the CLUSEQ fit loop does so in a ``finally``).
    ``workers`` ≤ 0 is rejected — callers decide between pool and
    in-process scoring before constructing one.
    """

    def __init__(self, workers: int) -> None:
        if workers < 1:
            raise ValueError("workers must be at least 1 for a ScoringPool")
        self.workers = workers
        self._executor: ProcessPoolExecutor | None = None

    def _pool(self) -> ProcessPoolExecutor:
        if self._executor is None:
            self._executor = ProcessPoolExecutor(max_workers=self.workers)
        return self._executor

    def prescore_matrix(
        self,
        flats: Sequence[FlattenedPST],
        sequences: Sequence[Sequence[int]],
        log_bg: npt.NDArray[np.float64],
        trace: tuple[str, str] | None = None,
    ) -> list[list[RawScore]]:
        """Tree-major raw matrix of *sequences* against *flats*.

        Sequence blocks are distributed across the pool; the caller is
        responsible for validating every pair against current model
        versions before trusting it (models may mutate after the
        snapshot the flats represent).

        *trace* is an optional ``(trace_id, parent_span_id)`` pair (from
        :func:`repro.obs.current_trace_context`): when given, each
        worker chunk's timing is stitched onto that trace as a finished
        ``backend.worker_chunk`` span when its result is committed.
        """
        if not flats or not sequences:
            return [[] for _ in flats]
        block = max(1, -(-len(sequences) // self.workers))
        futures: list[Future[tuple[list[list[RawScore]], float, float]]] = []
        chunk_rows: list[int] = []
        pool = self._pool()
        for start in range(0, len(sequences), block):
            chunk = list(sequences[start : start + block])
            chunk_rows.append(len(chunk))
            futures.append(
                pool.submit(_score_chunk_timed, list(flats), chunk, log_bg)
            )
        out: list[list[RawScore]] = [[] for _ in flats]
        for index, future in enumerate(futures):
            partial, wall_seconds, cpu_seconds = future.result()
            if trace is not None:
                record_foreign_span(
                    "backend.worker_chunk",
                    wall_seconds,
                    cpu_seconds,
                    trace_id=trace[0],
                    parent_id=trace[1],
                    attrs={
                        "chunk": index,
                        "rows": chunk_rows[index],
                        "trees": len(flats),
                    },
                )
            for tree_index, scores in enumerate(partial):
                out[tree_index].extend(scores)
        return out

    def close(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=True, cancel_futures=True)
            self._executor = None

    def __enter__(self) -> "ScoringPool":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
