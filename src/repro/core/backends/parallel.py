"""Multiprocessing fan-out for the (sequence × cluster) scoring matrix.

The re-examination phase (§4.2) scores every sequence against every
cluster. With ``--workers N`` the vectorized backend splits the padded
sequence block into per-worker column ranges and prescores them on a
``ProcessPoolExecutor``; the driving loop then *commits* the prescored
pairs sequentially, rescoring any pair whose cluster model absorbed a
segment after the prescore snapshot (see
``CLUSEQ._recluster_vectorized``). Results are therefore identical to
single-process runs — workers only change where the arithmetic happens.

Wire format: workers receive a tuple of
:class:`~repro.core.backends.shm.SharedFlatSpec` (segment name + array
layout per tree — a few hundred bytes), the padded ``int32`` column
slice, its lengths, and the background log vector. The model tables
themselves travel through ``multiprocessing.shared_memory`` segments
published once per (tree, version) by the pool's
:class:`~repro.core.backends.shm.ShmFlatStore`; workers attach and
rebuild zero-copy views instead of unpickling, and cache both the
attachment and the prepared stack keyed by segment names, so steady
state ships only sequence columns. Workers return the scored arrays
(``log_z`` / bounds / whole), which the parent stitches back into one
:class:`~repro.core.backends.vectorized.ScoreMatrixResult`.
"""

from __future__ import annotations

import time
import weakref
from concurrent.futures import Future, ProcessPoolExecutor
from collections.abc import Sequence

import numpy as np
import numpy.typing as npt

from ...obs import get_registry, record_foreign_span
from ..similarity import SimilarityResult, _safe_exp
from .flatten import FlattenedPST
from .shm import SharedFlatSpec, ShmFlatStore, attach_flat, specs_for
from .vectorized import (
    PreparedStack,
    ScoreMatrixResult,
    pad_sequences,
    prepare_stack,
    score_matrix_stacked,
    stack_flats,
)

#: (log_similarity, best_start, best_end, whole_sequence_log) — the raw
#: wire form of one scored pair. Retained for tests and external
#: callers that want a pickle-cheap scalar representation.
RawScore = tuple[float, int, int, float]

#: One worker chunk's reply: the four (trees × columns) score arrays
#: plus (wall seconds, CPU seconds, attach seconds) measured in-worker.
ChunkReply = tuple[
    npt.NDArray[np.float64],
    npt.NDArray[np.int64],
    npt.NDArray[np.int64],
    npt.NDArray[np.float64],
    float,
    float,
    float,
]

#: Worker-side caches: segment attachments keyed by segment name, and
#: prepared stacks keyed by (segment names, background bytes). Bounded
#: jointly — both index into the same mapped segments, so they are
#: cleared together (dropping the views is what lets a parent-unlinked
#: segment's memory actually go away).
_WORKER_FLATS: dict[str, tuple[object, FlattenedPST]] = {}
_WORKER_PREPS: dict[tuple[object, ...], PreparedStack] = {}
_WORKER_CACHE_MAX = 128


def _worker_flat(spec: SharedFlatSpec) -> FlattenedPST:
    cached = _WORKER_FLATS.get(spec.name)
    if cached is not None:
        return cached[1]
    if len(_WORKER_FLATS) >= _WORKER_CACHE_MAX:
        _worker_detach_all()
    shm, flat = attach_flat(spec)
    _WORKER_FLATS[spec.name] = (shm, flat)
    return flat


def _worker_detach_all() -> None:
    """Drop every cached attachment and derived stack, releasing maps."""
    _WORKER_PREPS.clear()
    flats = list(_WORKER_FLATS.values())
    _WORKER_FLATS.clear()
    for shm, _flat in flats:
        try:
            shm.close()  # type: ignore[attr-defined]
        except BufferError:  # pragma: no cover - a view still outstanding
            pass


def _worker_prep(
    specs: Sequence[SharedFlatSpec], log_bg: npt.NDArray[np.float64]
) -> tuple[PreparedStack, float]:
    """Prepared stack for *specs* (cached) and the attach seconds paid."""
    key: tuple[object, ...] = (
        tuple(spec.name for spec in specs),
        log_bg.tobytes(),
    )
    cached = _WORKER_PREPS.get(key)
    if cached is not None:
        return cached, 0.0
    started = time.perf_counter()
    flats = [_worker_flat(spec) for spec in specs]
    attach_seconds = time.perf_counter() - started
    prep = prepare_stack(stack_flats(flats), log_bg)
    if len(_WORKER_PREPS) >= _WORKER_CACHE_MAX:
        _WORKER_PREPS.clear()
    _WORKER_PREPS[key] = prep
    return prep, attach_seconds


def _score_chunk_shm(
    specs: tuple[SharedFlatSpec, ...],
    padded: npt.NDArray[np.int32],
    lengths: npt.NDArray[np.int32],
    log_bg: npt.NDArray[np.float64],
) -> ChunkReply:
    """Worker entry point: score one padded column slice vs all trees.

    Timings are measured inside the worker (the only place that can see
    them) and shipped home so the parent can stitch a
    ``backend.worker_chunk`` span onto the live trace and account the
    shm attach cost (``backend.shm.attach_seconds``).
    """
    wall_start = time.perf_counter()
    cpu_start = time.process_time()
    prep, attach_seconds = _worker_prep(specs, log_bg)
    matrix = score_matrix_stacked(prep, padded, lengths)
    return (
        matrix.log_z,
        matrix.best_start,
        matrix.best_end,
        matrix.whole,
        time.perf_counter() - wall_start,
        time.process_time() - cpu_start,
        attach_seconds,
    )


def _probe_task() -> int:
    """Trivial round-trip task for :meth:`ScoringPool.probe`."""
    return 42


def score_matrix_raw(
    flats: Sequence[FlattenedPST],
    sequences: Sequence[Sequence[int]],
    log_bg: npt.NDArray[np.float64],
) -> list[list[RawScore]]:
    """Tree-major raw §4.2 score matrix, computed in-process.

    The scalar wire form predates the shared-memory path; it remains
    the reference shape for differential tests of the worker protocol.
    """
    if not flats or not sequences:
        return [[] for _ in flats]
    prep = prepare_stack(stack_flats(list(flats)), log_bg)
    padded, lengths = pad_sequences(sequences)
    matrix = score_matrix_stacked(prep, padded, lengths)
    out: list[list[RawScore]] = []
    for tree_index in range(matrix.trees):
        row_scores: list[RawScore] = []
        for column in range(matrix.columns):
            row_scores.append(
                (
                    float(matrix.log_z[tree_index, column]),
                    int(matrix.best_start[tree_index, column]),
                    int(matrix.best_end[tree_index, column]),
                    float(matrix.whole[tree_index, column]),
                )
            )
        out.append(row_scores)
    return out


def raw_to_result(raw: RawScore) -> SimilarityResult:
    """Inflate a wire-form score back into the paper's
    :class:`SimilarityResult` (§4.3)."""
    log_z, best_start, best_end, whole = raw
    return SimilarityResult(
        similarity=_safe_exp(log_z),
        log_similarity=log_z,
        best_start=best_start,
        best_end=best_end,
        whole_sequence_log=whole,
    )


class _PoolResources:
    """Executor + shm store owned by one :class:`ScoringPool`.

    Split out so the pool's ``weakref.finalize`` callback can close
    both without holding a reference to the pool itself (a bound method
    of the pool would keep it alive and the finalizer would never run).
    """

    def __init__(self) -> None:
        self.executor: ProcessPoolExecutor | None = None
        self.store = ShmFlatStore()

    def ensure_executor(self, workers: int) -> ProcessPoolExecutor:
        if self.executor is None:
            self.executor = ProcessPoolExecutor(max_workers=workers)
        return self.executor

    def close(self) -> None:
        if self.executor is not None:
            self.executor.shutdown(wait=True, cancel_futures=True)
            self.executor = None
        self.store.close()


class ScoringPool:
    """A lazy process pool prescoring matrix column ranges.

    The executor spawns on first use. :meth:`close` is idempotent, the
    context-manager form calls it, and a ``weakref.finalize`` hook
    closes the executor *and unlinks every shared-memory segment* even
    when a caller forgets — segments in ``/dev/shm`` must never outlive
    the pool. ``workers`` ≤ 0 is rejected — callers decide between pool
    and in-process scoring before constructing one.
    """

    def __init__(self, workers: int) -> None:
        if workers < 1:
            raise ValueError("workers must be at least 1 for a ScoringPool")
        self.workers = workers
        self._resources = _PoolResources()
        self._finalizer = weakref.finalize(self, self._resources.close)

    @property
    def closed(self) -> bool:
        return not self._finalizer.alive

    def prescore_matrix(
        self,
        flats: Sequence[FlattenedPST],
        padded: npt.NDArray[np.int32],
        lengths: npt.NDArray[np.int32],
        log_bg: npt.NDArray[np.float64],
        trace: tuple[str, str] | None = None,
    ) -> ScoreMatrixResult:
        """Raw score matrix of the padded sequence block vs *flats*.

        Columns are split into one contiguous range per worker; each
        range ships as (specs, padded slice, lengths slice) and comes
        back as score arrays that are stitched into the full matrix.
        The caller must treat the result as a snapshot and validate
        every pair against current model versions before trusting it.

        *trace* is an optional ``(trace_id, parent_span_id)`` pair (from
        :func:`repro.obs.current_trace_context`): when given, each
        worker chunk's timing is stitched onto that trace as a finished
        ``backend.worker_chunk`` span when its result is committed.
        """
        if self.closed:
            raise RuntimeError("ScoringPool is closed")
        trees = len(flats)
        columns = int(padded.shape[0])
        if trees == 0 or columns == 0:
            shape = (trees, columns)
            return ScoreMatrixResult(
                log_z=np.zeros(shape, dtype=np.float64),
                best_start=np.zeros(shape, dtype=np.int64),
                best_end=np.zeros(shape, dtype=np.int64),
                whole=np.zeros(shape, dtype=np.float64),
            )
        specs = tuple(specs_for(self._resources.store, flats))
        try:
            block = max(1, -(-columns // self.workers))
            executor = self._resources.ensure_executor(self.workers)
            futures: list[tuple[int, int, Future[ChunkReply]]] = []
            for start in range(0, columns, block):
                stop = min(start + block, columns)
                futures.append(
                    (
                        start,
                        stop,
                        executor.submit(
                            _score_chunk_shm,
                            specs,
                            padded[start:stop],
                            lengths[start:stop],
                            log_bg,
                        ),
                    )
                )
            log_z = np.empty((trees, columns), dtype=np.float64)
            best_start = np.empty((trees, columns), dtype=np.int64)
            best_end = np.empty((trees, columns), dtype=np.int64)
            whole = np.empty((trees, columns), dtype=np.float64)
            attach_total = 0.0
            for index, (start, stop, future) in enumerate(futures):
                (
                    part_z,
                    part_start,
                    part_end,
                    part_whole,
                    wall_seconds,
                    cpu_seconds,
                    attach_seconds,
                ) = future.result()
                log_z[:, start:stop] = part_z
                best_start[:, start:stop] = part_start
                best_end[:, start:stop] = part_end
                whole[:, start:stop] = part_whole
                attach_total += attach_seconds
                if trace is not None:
                    record_foreign_span(
                        "backend.worker_chunk",
                        wall_seconds,
                        cpu_seconds,
                        trace_id=trace[0],
                        parent_id=trace[1],
                        attrs={
                            "chunk": index,
                            "rows": stop - start,
                            "trees": trees,
                            "attach_seconds": attach_seconds,
                        },
                    )
            registry = get_registry()
            if registry.enabled and attach_total > 0.0:
                registry.counter("backend.shm.attaches").inc()
                registry.timer("backend.shm.attach_seconds").record(
                    attach_total
                )
            return ScoreMatrixResult(
                log_z=log_z,
                best_start=best_start,
                best_end=best_end,
                whole=whole,
            )
        finally:
            for flat in flats:
                self._resources.store.release(flat)

    def prescore_lists(
        self,
        flats: Sequence[FlattenedPST],
        sequences: Sequence[Sequence[int]],
        log_bg: npt.NDArray[np.float64],
        trace: tuple[str, str] | None = None,
    ) -> list[list[RawScore]]:
        """Tree-major :data:`RawScore` lists over the pool (test shape)."""
        if not flats or not sequences:
            return [[] for _ in flats]
        padded, lengths = pad_sequences(sequences)
        matrix = self.prescore_matrix(
            flats, padded, lengths, log_bg, trace=trace
        )
        return [
            [
                (
                    float(matrix.log_z[tree, column]),
                    int(matrix.best_start[tree, column]),
                    int(matrix.best_end[tree, column]),
                    float(matrix.whole[tree, column]),
                )
                for column in range(matrix.columns)
            ]
            for tree in range(matrix.trees)
        ]

    def reset(self) -> None:
        """Replace a broken executor (and its segments) with a fresh one.

        A ``ProcessPoolExecutor`` whose worker died (OOM kill, segfault)
        is permanently broken: every later submit raises
        ``BrokenProcessPool``. A long-running server cannot treat that
        as fatal, so ``reset()`` tears down the executor *and* the shm
        store (workers cached attachments into the dead processes;
        republishing is cheaper than reasoning about stale maps) and
        arms a fresh lazy pair. Raises ``RuntimeError`` on a closed
        pool — closed means the owner is done, not recovering.
        """
        if self.closed:
            raise RuntimeError("cannot reset a closed ScoringPool")
        self._finalizer.detach()
        self._resources.close()
        self._resources = _PoolResources()
        self._finalizer = weakref.finalize(self, self._resources.close)

    def probe(self, timeout: float = 30.0) -> bool:
        """Round-trip a trivial task through a worker; False if broken.

        Spawns the executor if it has not started yet (a truthful probe
        must exercise the real worker path). Returns ``False`` on a
        closed pool, a broken executor, or a probe that times out.
        """
        if self.closed:
            return False
        try:
            executor = self._resources.ensure_executor(self.workers)
            return executor.submit(_probe_task).result(timeout=timeout) == 42
        except Exception:
            return False

    def close(self) -> None:
        """Release the executor and unlink every segment (idempotent)."""
        self._finalizer()

    def __enter__(self) -> "ScoringPool":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


__all__ = [
    "ChunkReply",
    "RawScore",
    "ScoringPool",
    "raw_to_result",
    "score_matrix_raw",
]
