"""Backend selection and the caching batch scorer.

Two scoring backends exist:

* ``reference`` — the normative per-pair implementation in
  :mod:`repro.core.similarity`, a direct transcription of the paper.
* ``vectorized`` — the flattened-array batch kernel of
  :mod:`repro.core.backends.vectorized`, bit-identical to the reference
  (same floats, same segment bounds), just restructured for throughput.

``auto`` resolves to ``vectorized``: because the backends agree
bit-for-bit, the faster one is always safe to prefer. ``reference``
remains selectable both as the ground truth for differential tests and
as the fallback if a deployment ever needs to rule the array path out.

:class:`PstBatchScorer` is the working interface: it owns the
background log vector, caches each tree's flattened export keyed by the
tree's mutation version, caches the *prepared* stacked table set
(sentinel walk table + log-ratio table, see
:class:`~repro.core.backends.vectorized.PreparedStack`) for repeated
calls against the same tree group, and emits per-backend
counters/timers through the active metrics registry. Every scoring
entry point routes through one full-matrix kernel invocation.
"""

from __future__ import annotations

import time
from collections.abc import Sequence

import numpy as np
import numpy.typing as npt

from ...obs import current_trace_context, get_profiler, get_registry
from ..pst import ProbabilisticSuffixTree
from ..similarity import SimilarityResult
from .flatten import FlattenedPST
from .parallel import ScoringPool
from .vectorized import (
    PreparedStack,
    ScoreMatrixResult,
    kadane_columns,
    log_background,
    matrix_from_batch,
    pad_sequences,
    prepare_stack,
    gather_ratios_matrix,
    stack_flats,
    walk_states_matrix,
)

#: Recognized backend names (CLI / params / stream config).
BACKENDS = ("auto", "reference", "vectorized")


def _observe_segment_lengths(matrix: ScoreMatrixResult) -> None:
    """Record every pair's §4.3 segment length in one binned merge.

    A per-pair ``observe()`` loop costs more than the scoring kernel it
    instruments; binning with ``searchsorted`` (the vectorized twin of
    the histogram's ``bisect_left`` rule) keeps the telemetry contract
    at batch speed.
    """
    registry = get_registry()
    segment_lengths = registry.histogram("similarity.segment_length")
    spans = (matrix.best_end - matrix.best_start).ravel()
    if not spans.size:
        return
    bins = np.searchsorted(
        np.asarray(segment_lengths.bounds), spans, side="left"
    )
    counts = np.bincount(bins, minlength=len(segment_lengths.bounds) + 1)
    segment_lengths.merge_binned(
        counts.tolist(),
        int(spans.size),
        float(spans.sum()),
        float(spans.min()),
        float(spans.max()),
    )


def resolve_backend(name: str) -> str:
    """Map a requested backend name to a concrete one.

    Both backends implement the paper's SIM measure (§2/§4.3) exactly.

    ``auto`` picks ``vectorized``; the two backends are bit-identical,
    so auto-selection can never change results, only speed.
    """
    if name not in BACKENDS:
        raise ValueError(f"backend must be one of {BACKENDS}, got {name!r}")
    if name == "auto":
        return "vectorized"
    return name


class PstBatchScorer:
    """Batch scorer over flattened PSTs, result-identical to reference.

    One instance per (background, run): the scorer validates every
    cached flat against its tree's current mutation version on each
    call, so interleaving scoring with ``add_sequence`` /
    ``decay_counts`` / pruning is safe — a mutated tree is transparently
    re-flattened, never scored stale.
    """

    def __init__(self, background: npt.NDArray[np.float64]) -> None:
        self._background = np.asarray(background, dtype=np.float64)
        self._log_bg = log_background(self._background)
        # Stack cache: the trees are held by strong reference and
        # revalidated by identity + version, never by id() alone — an
        # id can be reused by a new tree once the old one is collected.
        self._stack_psts: tuple[ProbabilisticSuffixTree, ...] = ()
        self._stack_versions: tuple[int, ...] = ()
        self._stack: PreparedStack | None = None
        # Single-tree cache for the many-vs-one (calibration) shape, so
        # repeated columns against one reference tree don't thrash the
        # multi-tree stack cache above.
        self._single_pst: ProbabilisticSuffixTree | None = None
        self._single_version = -1
        self._single: PreparedStack | None = None

    @property
    def background(self) -> npt.NDArray[np.float64]:
        return self._background

    @property
    def log_bg(self) -> npt.NDArray[np.float64]:
        """Background log vector (reference ``math.log`` convention)."""
        return self._log_bg

    def _check_alphabet(self, pst: ProbabilisticSuffixTree) -> None:
        if self._background.shape != (pst.alphabet_size,):
            raise ValueError(
                f"background must have length {pst.alphabet_size}, "
                f"got shape {self._background.shape}"
            )

    def flat_for(self, pst: ProbabilisticSuffixTree) -> FlattenedPST:
        """Current flat export of *pst* (cached on the tree per version)."""
        self._check_alphabet(pst)
        if pst._flat_cache is None:
            started = time.perf_counter()
            flat = pst.flattened()
            registry = get_registry()
            if registry.enabled:
                registry.timer("backend.flatten_seconds").record(
                    time.perf_counter() - started
                )
            return flat
        return pst.flattened()

    def _stack_for(
        self, psts: Sequence[ProbabilisticSuffixTree]
    ) -> PreparedStack:
        flats = [self.flat_for(pst) for pst in psts]
        versions = tuple(flat.version for flat in flats)
        fresh = (
            self._stack is None
            or len(psts) != len(self._stack_psts)
            or versions != self._stack_versions
            or any(a is not b for a, b in zip(psts, self._stack_psts))
        )
        prof = get_profiler()
        if fresh:
            if prof.enabled:
                prof.cache_miss("stack")
            self._stack = prepare_stack(stack_flats(flats), self._log_bg)
            self._stack_psts = tuple(psts)
            self._stack_versions = versions
            registry = get_registry()
            if registry.enabled:
                registry.counter("backend.stack_rebuilds").inc()
        elif prof.enabled:
            prof.cache_hit("stack")
        assert self._stack is not None
        return self._stack

    def _single_for(self, pst: ProbabilisticSuffixTree) -> PreparedStack:
        flat = self.flat_for(pst)
        prof = get_profiler()
        if (
            self._single is None
            or pst is not self._single_pst
            or flat.version != self._single_version
        ):
            if prof.enabled:
                prof.cache_miss("stack")
            self._single = prepare_stack(stack_flats([flat]), self._log_bg)
            self._single_pst = pst
            self._single_version = flat.version
        elif prof.enabled:
            prof.cache_hit("stack")
        assert self._single is not None
        return self._single

    def _score_matrix_arrays(
        self, prep: PreparedStack, sequences: Sequence[Sequence[int]]
    ) -> ScoreMatrixResult:
        """One full-matrix kernel call: all of *prep*'s trees × *sequences*."""
        started = time.perf_counter()
        prof = get_profiler()
        trees = int(prep.stacked.roots.shape[0])
        if prof.enabled:
            # Per-kernel timings for the profiler; the untimed branch
            # below is the hot default and stays call-for-call
            # identical to the pre-profiler code.
            with prof.kernel("pad"):
                padded, lengths = pad_sequences(sequences)
            with prof.kernel("walk"):
                states = walk_states_matrix(prep, padded)
            with prof.kernel("gather"):
                ratios = gather_ratios_matrix(prep, padded, states)
            with prof.kernel("kadane"):
                flat = kadane_columns(
                    ratios.reshape(padded.shape[1], trees * padded.shape[0]),
                    np.tile(lengths, trees),
                )
            matrix = matrix_from_batch(flat, trees, padded.shape[0])
        else:
            padded, lengths = pad_sequences(sequences)
            states = walk_states_matrix(prep, padded)
            ratios = gather_ratios_matrix(prep, padded, states)
            flat = kadane_columns(
                ratios.reshape(padded.shape[1], trees * padded.shape[0]),
                np.tile(lengths, trees),
            )
            matrix = matrix_from_batch(flat, trees, padded.shape[0])
        registry = get_registry()
        if registry.enabled:
            pairs = trees * len(sequences)
            registry.counter("backend.batch_calls").inc()
            registry.counter("backend.batch_rows").inc(pairs)
            registry.timer("backend.score_seconds").record(
                time.perf_counter() - started
            )
            # Parity with the reference scorer's per-call counters so
            # observability consumers see one coherent trace whichever
            # backend ran (see docs/OBSERVABILITY.md).
            registry.counter("similarity.calls").inc(pairs)
            registry.counter("similarity.dp_cells").inc(
                int(lengths.sum()) * trees
            )
            _observe_segment_lengths(matrix)
        return matrix

    def score_one_vs_many(
        self,
        psts: Sequence[ProbabilisticSuffixTree],
        encoded: Sequence[int],
    ) -> list[SimilarityResult]:
        """Score one sequence against several trees (re-examination row)."""
        if len(encoded) == 0:
            raise ValueError("cannot score an empty sequence")
        if not psts:
            return []
        prep = self._stack_for(psts)
        return self._score_matrix_arrays(prep, [encoded]).column(0)

    def score_many_vs_one(
        self,
        pst: ProbabilisticSuffixTree,
        sequences: Sequence[Sequence[int]],
    ) -> list[SimilarityResult]:
        """Score many sequences against one tree (calibration column)."""
        if not sequences:
            return []
        prep = self._single_for(pst)
        return self._score_matrix_arrays(prep, sequences).row(0)

    def score_matrix_full(
        self,
        psts: Sequence[ProbabilisticSuffixTree],
        sequences: Sequence[Sequence[int]],
    ) -> ScoreMatrixResult:
        """Full (tree × sequence) matrix in array form, one kernel call.

        The preferred shape for the §4.2 driving loops: read ``log_z``
        for the join test, materialize result objects only for joins.
        """
        if not psts or not sequences:
            shape = (len(psts), len(sequences))
            return ScoreMatrixResult(
                log_z=np.zeros(shape, dtype=np.float64),
                best_start=np.zeros(shape, dtype=np.int64),
                best_end=np.zeros(shape, dtype=np.int64),
                whole=np.zeros(shape, dtype=np.float64),
            )
        prep = self._stack_for(psts)
        return self._score_matrix_arrays(prep, sequences)

    def score_matrix(
        self,
        psts: Sequence[ProbabilisticSuffixTree],
        sequences: Sequence[Sequence[int]],
    ) -> list[list[SimilarityResult]]:
        """Full (tree × sequence) score matrix as nested result lists."""
        return self.score_matrix_full(psts, sequences).to_lists()

    def prescore_matrix(
        self,
        psts: Sequence[ProbabilisticSuffixTree],
        sequences: Sequence[Sequence[int]],
        pool: "ScoringPool | None" = None,
    ) -> ScoreMatrixResult:
        """Score a (tree × sequence) chunk, optionally on a worker pool.

        With *pool* the padded sequence block is fanned out to worker
        processes that attach the flats' shared-memory segments (see
        :mod:`repro.core.backends.shm`); without, this is
        :meth:`score_matrix_full`. Either way the caller must treat the
        result as a *snapshot*: pairs against a tree that mutates
        afterwards must be rescored before being committed.
        """
        if pool is None or not psts or not sequences:
            return self.score_matrix_full(psts, sequences)
        flats = [self.flat_for(pst) for pst in psts]
        padded, lengths = pad_sequences(sequences)
        matrix = pool.prescore_matrix(
            flats, padded, lengths, self._log_bg,
            trace=current_trace_context(),
        )
        registry = get_registry()
        if registry.enabled:
            pairs = len(psts) * len(sequences)
            cells = int(lengths.sum()) * len(psts)
            registry.counter("backend.parallel_chunks").inc()
            registry.counter("backend.batch_rows").inc(pairs)
            registry.counter("similarity.calls").inc(pairs)
            registry.counter("similarity.dp_cells").inc(cells)
            _observe_segment_lengths(matrix)
        return matrix

    def forget(self) -> None:
        """Drop the stack caches (releases references to cached trees)."""
        self._stack_psts = ()
        self._stack_versions = ()
        self._stack = None
        self._single_pst = None
        self._single_version = -1
        self._single = None
