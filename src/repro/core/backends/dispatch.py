"""Backend selection and the caching batch scorer.

Two scoring backends exist:

* ``reference`` — the normative per-pair implementation in
  :mod:`repro.core.similarity`, a direct transcription of the paper.
* ``vectorized`` — the flattened-array batch kernel of
  :mod:`repro.core.backends.vectorized`, bit-identical to the reference
  (same floats, same segment bounds), just restructured for throughput.

``auto`` resolves to ``vectorized``: because the backends agree
bit-for-bit, the faster one is always safe to prefer. ``reference``
remains selectable both as the ground truth for differential tests and
as the fallback if a deployment ever needs to rule the array path out.

:class:`PstBatchScorer` is the working interface: it owns the
background log vector, caches each tree's flattened export keyed by the
tree's mutation version, caches the stacked table set for repeated
one-vs-many calls against the same tree group, and emits per-backend
counters/timers through the active metrics registry.
"""

from __future__ import annotations

import time
from collections.abc import Sequence

import numpy as np
import numpy.typing as npt

from ...obs import current_trace_context, get_profiler, get_registry
from ..pst import ProbabilisticSuffixTree
from ..similarity import SimilarityResult
from .flatten import FlattenedPST
from .parallel import ScoringPool, raw_to_result
from .vectorized import (
    KadaneBatchResult,
    StackedFlats,
    gather_log_ratios,
    kadane_rows,
    log_background,
    pad_sequences,
    results_from_batch,
    stack_flats,
    walk_states,
)

#: Recognized backend names (CLI / params / stream config).
BACKENDS = ("auto", "reference", "vectorized")


def resolve_backend(name: str) -> str:
    """Map a requested backend name to a concrete one.

    Both backends implement the paper's SIM measure (§2/§4.3) exactly.

    ``auto`` picks ``vectorized``; the two backends are bit-identical,
    so auto-selection can never change results, only speed.
    """
    if name not in BACKENDS:
        raise ValueError(f"backend must be one of {BACKENDS}, got {name!r}")
    if name == "auto":
        return "vectorized"
    return name


class PstBatchScorer:
    """Batch scorer over flattened PSTs, result-identical to reference.

    One instance per (background, run): the scorer validates every
    cached flat against its tree's current mutation version on each
    call, so interleaving scoring with ``add_sequence`` /
    ``decay_counts`` / pruning is safe — a mutated tree is transparently
    re-flattened, never scored stale.
    """

    def __init__(self, background: npt.NDArray[np.float64]) -> None:
        self._background = np.asarray(background, dtype=np.float64)
        self._log_bg = log_background(self._background)
        # Stack cache: the trees are held by strong reference and
        # revalidated by identity + version, never by id() alone — an
        # id can be reused by a new tree once the old one is collected.
        self._stack_psts: tuple[ProbabilisticSuffixTree, ...] = ()
        self._stack_versions: tuple[int, ...] = ()
        self._stack: StackedFlats | None = None

    @property
    def background(self) -> npt.NDArray[np.float64]:
        return self._background

    @property
    def log_bg(self) -> npt.NDArray[np.float64]:
        """Background log vector (reference ``math.log`` convention)."""
        return self._log_bg

    def _check_alphabet(self, pst: ProbabilisticSuffixTree) -> None:
        if self._background.shape != (pst.alphabet_size,):
            raise ValueError(
                f"background must have length {pst.alphabet_size}, "
                f"got shape {self._background.shape}"
            )

    def flat_for(self, pst: ProbabilisticSuffixTree) -> FlattenedPST:
        """Current flat export of *pst* (cached on the tree per version)."""
        self._check_alphabet(pst)
        if pst._flat_cache is None:
            started = time.perf_counter()
            flat = pst.flattened()
            registry = get_registry()
            if registry.enabled:
                registry.timer("backend.flatten_seconds").record(
                    time.perf_counter() - started
                )
            return flat
        return pst.flattened()

    def _stack_for(
        self, psts: Sequence[ProbabilisticSuffixTree]
    ) -> StackedFlats:
        flats = [self.flat_for(pst) for pst in psts]
        versions = tuple(flat.version for flat in flats)
        fresh = (
            self._stack is None
            or len(psts) != len(self._stack_psts)
            or versions != self._stack_versions
            or any(a is not b for a, b in zip(psts, self._stack_psts))
        )
        prof = get_profiler()
        if fresh:
            if prof.enabled:
                prof.cache_miss("stack")
            self._stack = stack_flats(flats)
            self._stack_psts = tuple(psts)
            self._stack_versions = versions
            registry = get_registry()
            if registry.enabled:
                registry.counter("backend.stack_rebuilds").inc()
        elif prof.enabled:
            prof.cache_hit("stack")
        assert self._stack is not None
        return self._stack

    def _score_rows(
        self,
        stacked: StackedFlats,
        sequences: Sequence[Sequence[int]],
        row_flats: npt.NDArray[np.intp],
    ) -> list[SimilarityResult]:
        started = time.perf_counter()
        prof = get_profiler()
        if prof.enabled:
            # Per-kernel timings for the profiler; the untimed branch
            # below is the hot default and stays call-for-call
            # identical to the pre-profiler code.
            with prof.kernel("pad"):
                padded, lengths = pad_sequences(sequences)
            with prof.kernel("walk"):
                states = walk_states(stacked, padded, row_flats)
            with prof.kernel("gather"):
                ratios = gather_log_ratios(stacked, self._log_bg, padded, states)
            with prof.kernel("kadane"):
                batch: KadaneBatchResult = kadane_rows(ratios, lengths)
        else:
            padded, lengths = pad_sequences(sequences)
            states = walk_states(stacked, padded, row_flats)
            ratios = gather_log_ratios(stacked, self._log_bg, padded, states)
            batch = kadane_rows(ratios, lengths)
        results = results_from_batch(batch)
        registry = get_registry()
        if registry.enabled:
            registry.counter("backend.batch_calls").inc()
            registry.counter("backend.batch_rows").inc(len(results))
            registry.timer("backend.score_seconds").record(
                time.perf_counter() - started
            )
            # Parity with the reference scorer's per-call counters so
            # observability consumers see one coherent trace whichever
            # backend ran (see docs/OBSERVABILITY.md).
            registry.counter("similarity.calls").inc(len(results))
            registry.counter("similarity.dp_cells").inc(int(lengths.sum()))
            segment_lengths = registry.histogram("similarity.segment_length")
            for result in results:
                segment_lengths.observe(result.best_end - result.best_start)
        return results

    def score_one_vs_many(
        self,
        psts: Sequence[ProbabilisticSuffixTree],
        encoded: Sequence[int],
    ) -> list[SimilarityResult]:
        """Score one sequence against several trees (re-examination row)."""
        if len(encoded) == 0:
            raise ValueError("cannot score an empty sequence")
        if not psts:
            return []
        stacked = self._stack_for(psts)
        row_flats = np.arange(len(psts), dtype=np.intp)
        return self._score_rows(stacked, [encoded] * len(psts), row_flats)

    def score_many_vs_one(
        self,
        pst: ProbabilisticSuffixTree,
        sequences: Sequence[Sequence[int]],
    ) -> list[SimilarityResult]:
        """Score many sequences against one tree (calibration column)."""
        if not sequences:
            return []
        stacked = stack_flats([self.flat_for(pst)])
        row_flats = np.zeros(len(sequences), dtype=np.intp)
        return self._score_rows(stacked, sequences, row_flats)

    def score_matrix(
        self,
        psts: Sequence[ProbabilisticSuffixTree],
        sequences: Sequence[Sequence[int]],
    ) -> list[list[SimilarityResult]]:
        """Full (tree × sequence) score matrix in one batched call."""
        if not psts or not sequences:
            return [[] for _ in psts]
        stacked = self._stack_for(psts)
        rows: list[Sequence[int]] = []
        row_flats = np.empty(len(psts) * len(sequences), dtype=np.intp)
        cursor = 0
        for tree_index in range(len(psts)):
            for seq in sequences:
                rows.append(seq)
                row_flats[cursor] = tree_index
                cursor += 1
        flat_results = self._score_rows(stacked, rows, row_flats)
        width = len(sequences)
        return [
            flat_results[tree_index * width : (tree_index + 1) * width]
            for tree_index in range(len(psts))
        ]

    def prescore_matrix(
        self,
        psts: Sequence[ProbabilisticSuffixTree],
        sequences: Sequence[Sequence[int]],
        pool: "ScoringPool | None" = None,
    ) -> list[list[SimilarityResult]]:
        """Score a (tree × sequence) chunk, optionally on a worker pool.

        With *pool* the flats are shipped to worker processes; without,
        this is :meth:`score_matrix`. Either way the caller must treat
        the result as a *snapshot*: pairs against a tree that mutates
        afterwards must be rescored before being committed.
        """
        if pool is None:
            return self.score_matrix(psts, sequences)
        if not psts or not sequences:
            return [[] for _ in psts]
        flats = [self.flat_for(pst) for pst in psts]
        raw_matrix = pool.prescore_matrix(
            flats, sequences, self._log_bg, trace=current_trace_context()
        )
        results = [
            [raw_to_result(raw) for raw in row] for row in raw_matrix
        ]
        registry = get_registry()
        if registry.enabled:
            pairs = len(psts) * len(sequences)
            cells = sum(len(seq) for seq in sequences) * len(psts)
            registry.counter("backend.parallel_chunks").inc()
            registry.counter("backend.batch_rows").inc(pairs)
            registry.counter("similarity.calls").inc(pairs)
            registry.counter("similarity.dp_cells").inc(cells)
            segment_lengths = registry.histogram("similarity.segment_length")
            for row in results:
                for result in row:
                    segment_lengths.observe(result.best_end - result.best_start)
        return results

    def forget(self) -> None:
        """Drop the stack cache (releases references to cached trees)."""
        self._stack_psts = ()
        self._stack_versions = ()
        self._stack = None
