"""Flattened array form of a probabilistic suffix tree.

The reference scorer walks ``PSTNode`` objects — a pointer-chasing dict
lookup per context symbol per position. The vectorized backend instead
consumes this module's :class:`FlattenedPST`: the *walkable* subtree
(the root plus every chain-significant node, i.e. nodes reachable from
the root through children whose ``count`` is at least the significance
threshold ``c``) laid out as flat arrays:

* a CSR-style child table (``child_offsets`` / ``child_symbols`` /
  ``child_rows``) over significant children only,
* a suffix-link table — in a reversed-sequence trie the structural
  parent *is* the suffix link (the parent's label is the child's label
  minus its oldest symbol), so ``suffix_links`` doubles as the parent
  array,
* a dense ``(nodes × alphabet)`` transition table for the prediction
  walk (−1 where no significant child exists), and
* a precomputed ``(nodes × alphabet)`` table of **log conditional
  probabilities** ``log P_S(s | label)``. Subtracting the background
  log vector yields the per-node ``log P_S − log P^r`` ratio vectors
  the SIM dynamic program consumes (the subtraction lives in the
  scorer because the background is a per-call argument, not a tree
  property).

Bit-exactness
-------------
The reference implementation computes every log with ``math.log`` on
scalars. ``np.log`` differs from ``math.log`` by one ulp on a small
fraction of inputs, which would be enough to flip near-tie segment
bounds and, transitively, clustering decisions. The export therefore
computes the probability table with numpy (the arithmetic —
``count/total`` and the §5.2 smoothing affine map — is IEEE-identical
to the scalar reference) but takes logs via ``math.log`` applied once
per *distinct* probability value, memoized across exports. The result:
every entry of ``log_probs`` is bit-identical to what the reference
walk would compute, so the vectorized backend reproduces reference
scores exactly, not merely within a tolerance.

Only nodes reachable through significant children are exported: the
reference prediction walk (`ProbabilisticSuffixTree.prediction_node`)
can never enter any other node, so insignificant subtrees — kept in
the tree because they may *become* significant — are dead weight for
scoring and would bloat the dense tables.

Exports are cached on the tree keyed by its mutation
:attr:`~repro.core.pst.ProbabilisticSuffixTree.version`; call
``pst.flattened()`` rather than :func:`flatten_pst` directly unless
you explicitly want an uncached build.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np
import numpy.typing as npt

from ...obs import get_registry
from ..pst import ProbabilisticSuffixTree, PSTNode
from ..similarity import _LOG_ZERO

#: Memoized ``math.log`` over probability values. Probabilities are
#: ratios of small integer counts (plus the smoothing affine map), so
#: distinct values recur heavily across exports; memoizing makes
#: re-flattening a mutated tree cheap. Bounded defensively — adversarial
#: float churn could otherwise grow it without limit.
_LOG_MEMO: dict[float, float] = {}
_LOG_MEMO_MAX = 1 << 20


def _exact_log(value: float) -> float:
    """``math.log`` with the reference's zero convention, memoized."""
    if value <= 0.0:
        return _LOG_ZERO
    cached = _LOG_MEMO.get(value)
    if cached is None:
        if len(_LOG_MEMO) >= _LOG_MEMO_MAX:  # pragma: no cover - defensive
            _LOG_MEMO.clear()
        cached = math.log(value)
        _LOG_MEMO[value] = cached
    return cached


@dataclass(frozen=True)
class FlattenedPST:
    """Array export of one PST's walkable (chain-significant) subtree.

    Row 0 is always the root. All arrays are read-only views from the
    scorer's perspective: a mutated tree gets a fresh export (compare
    :attr:`version` against the tree's current version).
    """

    alphabet_size: int
    max_depth: int
    significance_threshold: int
    p_min: float
    #: The tree's mutation version this export was built from.
    version: int
    #: Label length per row (0 for the root).
    depths: npt.NDArray[np.int32]
    #: Row of the node labelled with this row's label minus its oldest
    #: symbol — the suffix link, which in a reversed trie is simply the
    #: structural parent. −1 for the root.
    suffix_links: npt.NDArray[np.int32]
    #: CSR over significant children: row ``r``'s children live at
    #: ``child_symbols[child_offsets[r]:child_offsets[r+1]]`` /
    #: ``child_rows[...]``.
    child_offsets: npt.NDArray[np.int32]
    child_symbols: npt.NDArray[np.int32]
    child_rows: npt.NDArray[np.int32]
    #: Dense walk table: ``transitions[r, s]`` is the row of the child
    #: of ``r`` along context symbol ``s``, or −1 when that child is
    #: missing or insignificant (the prediction walk stops there).
    transitions: npt.NDArray[np.int32]
    #: ``log_probs[r, s] = log P_S(s | label(r))``, bit-identical to the
    #: reference's ``math.log`` path (see module docstring).
    log_probs: npt.NDArray[np.float64]

    @property
    def node_count(self) -> int:
        return int(self.depths.shape[0])

    def log_ratio_table(
        self, log_background: npt.NDArray[np.float64]
    ) -> npt.NDArray[np.float64]:
        """Per-node ``log P_S − log P^r`` ratio vectors.

        *log_background* must already use the reference convention
        (``math.log`` per entry, ``_LOG_ZERO`` for zero mass).
        """
        result: npt.NDArray[np.float64] = self.log_probs - log_background[None, :]
        return result


def _probability_rows(
    nodes: list[PSTNode], alphabet_size: int, p_min: float
) -> npt.NDArray[np.float64]:
    """The (smoothed) next-symbol distribution per node, reference-exact.

    Mirrors the inner estimate of ``similarity.log_symbol_ratios``: an
    observation-free node gets the uniform fallback *without* smoothing;
    otherwise raw count ratios pass through the §5.2 affine adjustment
    when ``p_min > 0``. Every operation is a single IEEE op on the same
    operands as the scalar reference, so the rows are bit-identical.
    """
    counts = np.zeros((len(nodes), alphabet_size), dtype=np.float64)
    row_index: list[int] = []
    symbol_index: list[int] = []
    values: list[int] = []
    for row, node in enumerate(nodes):
        for symbol, count in node.next_counts.items():
            row_index.append(row)
            symbol_index.append(symbol)
            values.append(count)
    if row_index:
        counts[row_index, symbol_index] = values
    # Counts are small integers, exact in float64, so the row sums equal
    # the reference's integer ``next_total`` exactly and each division
    # is the identical IEEE op on identical operands.
    totals = counts.sum(axis=1)
    # Counts are non-negative integers, so "< 0.5" is an exact zero test
    # (CLQ003 forbids float ``==`` in core, and rightly so elsewhere).
    empty = totals < 0.5
    probs: npt.NDArray[np.float64] = counts / np.where(empty, 1.0, totals)[:, None]
    if p_min > 0.0:
        probs = (1.0 - alphabet_size * p_min) * probs + p_min
    probs[empty] = 1.0 / alphabet_size
    return probs


def _exact_log_table(
    probs: npt.NDArray[np.float64],
) -> npt.NDArray[np.float64]:
    """Elementwise ``math.log`` (reference convention) via unique values."""
    flat = probs.ravel()
    unique, inverse = np.unique(flat, return_inverse=True)
    logs = np.fromiter(
        (_exact_log(value) for value in unique.tolist()),
        dtype=np.float64,
        count=unique.shape[0],
    )
    table: npt.NDArray[np.float64] = logs[inverse].reshape(probs.shape)
    return table


def flatten_pst(pst: ProbabilisticSuffixTree) -> FlattenedPST:
    """Export the walkable subtree of *pst* as a :class:`FlattenedPST`.

    The export captures exactly what the paper's §4.3 scoring walk can
    observe: the root, every chain-significant node, and their (smoothed)
    next-symbol log distributions.
    """
    threshold = pst.significance_threshold
    alphabet_size = pst.alphabet_size

    # Breadth-first enumeration of the walkable set: the root plus every
    # node reachable through children with count ≥ c. BFS order keeps
    # parents before children, which makes row assignment one pass.
    nodes: list[PSTNode] = [pst.root]
    depths: list[int] = [0]
    suffix_links: list[int] = [-1]
    edges: list[list[tuple[int, int]]] = [[]]  # per row: (symbol, child row)
    cursor = 0
    while cursor < len(nodes):
        node = nodes[cursor]
        for symbol, child in node.children.items():
            if child.count < threshold:
                continue
            child_row = len(nodes)
            nodes.append(child)
            depths.append(depths[cursor] + 1)
            suffix_links.append(cursor)
            edges.append([])
            edges[cursor].append((symbol, child_row))
        cursor += 1

    count = len(nodes)
    transitions = np.full((count, alphabet_size), -1, dtype=np.int32)
    child_offsets = np.zeros(count + 1, dtype=np.int32)
    flat_symbols: list[int] = []
    flat_rows: list[int] = []
    for row, row_edges in enumerate(edges):
        row_edges.sort()
        for symbol, child_row in row_edges:
            transitions[row, symbol] = child_row
            flat_symbols.append(symbol)
            flat_rows.append(child_row)
        child_offsets[row + 1] = len(flat_symbols)

    probs = _probability_rows(nodes, alphabet_size, pst.p_min)
    log_probs = _exact_log_table(probs)

    registry = get_registry()
    if registry.enabled:
        registry.counter("backend.flatten_builds").inc()
        registry.counter("backend.flatten_nodes").inc(count)

    return FlattenedPST(
        alphabet_size=alphabet_size,
        max_depth=pst.max_depth,
        significance_threshold=threshold,
        p_min=pst.p_min,
        version=pst.version,
        depths=np.asarray(depths, dtype=np.int32),
        suffix_links=np.asarray(suffix_links, dtype=np.int32),
        child_offsets=child_offsets,
        child_symbols=np.asarray(flat_symbols, dtype=np.int32),
        child_rows=np.asarray(flat_rows, dtype=np.int32),
        transitions=transitions,
        log_probs=log_probs,
    )
