"""Shared-memory publishing of flattened PSTs for worker processes.

The first multiprocessing fan-out pickled every
:class:`~repro.core.backends.flatten.FlattenedPST` into every chunk
submission — the model tables were serialized, shipped and rebuilt per
chunk, which made ``workers>0`` *slower* than in-process scoring. This
module replaces that wire format: the parent publishes each flat's
arrays once into a ``multiprocessing.shared_memory`` segment, and
workers receive only a :class:`SharedFlatSpec` — segment name, array
shapes/dtypes/offsets, tree version — from which they rebuild the flat
as zero-copy numpy views over the mapped segment.

Lifecycle
---------
Segments are owned by the parent's :class:`ShmFlatStore`, keyed by the
identity of the published flat (one flat object exists per (tree,
version) — a mutated tree exports a *new* flat, so version invalidation
is object identity):

* :meth:`ShmFlatStore.pin` publishes on first sight (or reuses the
  live segment) and bumps the segment's refcount for the duration of an
  in-flight prescore.
* :meth:`ShmFlatStore.release` drops the refcount; a segment that was
  marked stale while in flight is unlinked at zero.
* :meth:`ShmFlatStore.sync` marks every segment whose flat is no longer
  in the working set as stale — segments of mutated or dismissed trees
  are unlinked as soon as (and no earlier than) their refcount allows.
* :meth:`ShmFlatStore.close` unlinks everything unconditionally; it is
  idempotent and hooked to the owning pool's finalizer, so segments
  never outlive the pool even when ``close()`` is forgotten.

Unlinking only removes the name: workers that still hold a mapping keep
it until they drop their views, which is exactly the POSIX contract the
refcounts piggyback on. Pool workers share the parent's
``multiprocessing.resource_tracker`` process, so a worker's attach is a
no-op duplicate registration and the parent's unlink clears the single
tracker entry — neither side may unregister on its own, or the other's
bookkeeping breaks.

Segment names are deterministic (``cluseq-<pid>-<counter>``): the
repo's seeded-randomness rule (CLQ002) applies to infrastructure too,
and deterministic names make ``/dev/shm`` hygiene testable.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from multiprocessing.shared_memory import SharedMemory
from collections.abc import Iterable, Sequence

import numpy as np

from ...obs import get_profiler, get_registry
from .flatten import FlattenedPST

#: FlattenedPST array fields shipped through a segment, in layout order.
ARRAY_FIELDS = (
    "depths",
    "suffix_links",
    "child_offsets",
    "child_symbols",
    "child_rows",
    "transitions",
    "log_probs",
)

#: Segment offsets are rounded up to this alignment so every array view
#: starts on a float64-safe boundary.
_ALIGN = 16

#: Monotonic per-process counter for deterministic segment names.
_SEGMENT_COUNTER = 0


@dataclass(frozen=True)
class SharedFlatSpec:
    """The wire form of one published flat: everything a worker needs
    to rebuild the :class:`FlattenedPST` as views over the segment.

    Pickles to a few hundred bytes regardless of model size — the
    whole point of the shared-memory path.
    """

    name: str
    version: int
    alphabet_size: int
    max_depth: int
    significance_threshold: int
    p_min: float
    #: Per array field: (field name, byte offset, shape, dtype string).
    arrays: tuple[tuple[str, int, tuple[int, ...], str], ...]
    nbytes: int


def _layout(
    flat: FlattenedPST,
) -> tuple[tuple[tuple[str, int, tuple[int, ...], str], ...], int]:
    """Aligned (field, offset, shape, dtype) layout and total byte size."""
    metas: list[tuple[str, int, tuple[int, ...], str]] = []
    offset = 0
    for field in ARRAY_FIELDS:
        array = getattr(flat, field)
        offset = -(-offset // _ALIGN) * _ALIGN
        metas.append((field, offset, tuple(array.shape), array.dtype.str))
        offset += int(array.nbytes)
    return tuple(metas), max(offset, 1)


def _segment_name() -> str:
    global _SEGMENT_COUNTER
    name = f"cluseq-{os.getpid()}-{_SEGMENT_COUNTER}"
    _SEGMENT_COUNTER += 1
    return name


def _create_segment(size: int) -> SharedMemory:
    """A fresh named segment; skips names a crashed run left behind."""
    while True:
        try:
            return SharedMemory(name=_segment_name(), create=True, size=size)
        except FileExistsError:  # pragma: no cover - stale leftover name
            continue


def publish_flat(flat: FlattenedPST) -> tuple[SharedMemory, SharedFlatSpec]:
    """Copy *flat*'s arrays into a fresh segment; returns (segment, spec).

    Published once per (tree, version), the segment serves every §4.2
    re-examination chunk scored against that model. The caller owns the
    segment (close + unlink). Use a :class:`ShmFlatStore` unless you
    are writing lifecycle tests.
    """
    metas, total = _layout(flat)
    shm = _create_segment(total)
    for field, offset, shape, dtype in metas:
        source = getattr(flat, field)
        count = int(np.prod(shape)) if shape else 0
        view = np.frombuffer(
            shm.buf, dtype=np.dtype(dtype), count=count, offset=offset
        ).reshape(shape)
        view[...] = source
        del view  # release the buffer export before any close()
    spec = SharedFlatSpec(
        name=shm.name,
        version=flat.version,
        alphabet_size=flat.alphabet_size,
        max_depth=flat.max_depth,
        significance_threshold=flat.significance_threshold,
        p_min=flat.p_min,
        arrays=metas,
        nbytes=total,
    )
    return shm, spec


def attach_flat(spec: SharedFlatSpec) -> tuple[SharedMemory, FlattenedPST]:
    """Map *spec*'s segment and rebuild the flat as zero-copy views.

    The worker-side half of the §4.2 prescore fan-out: the returned
    arrays are read-only views over the mapped segment — nothing is
    deserialized. The caller must keep the returned ``SharedMemory``
    referenced for as long as the flat is in use and drop both together
    (the worker-side cache in :mod:`repro.core.backends.parallel` does).
    """
    shm = SharedMemory(name=spec.name)
    views: dict[str, np.ndarray] = {}
    for field, offset, shape, dtype in spec.arrays:
        count = int(np.prod(shape)) if shape else 0
        array = np.frombuffer(
            shm.buf, dtype=np.dtype(dtype), count=count, offset=offset
        ).reshape(shape)
        array.flags.writeable = False
        views[field] = array
    flat = FlattenedPST(
        alphabet_size=spec.alphabet_size,
        max_depth=spec.max_depth,
        significance_threshold=spec.significance_threshold,
        p_min=spec.p_min,
        version=spec.version,
        **views,
    )
    return shm, flat


class _Entry:
    """One published segment's lifecycle state."""

    __slots__ = ("flat", "shm", "spec", "refcount", "stale")

    def __init__(
        self, flat: FlattenedPST, shm: SharedMemory, spec: SharedFlatSpec
    ) -> None:
        self.flat = flat
        self.shm = shm
        self.spec = spec
        self.refcount = 0
        self.stale = False


class ShmFlatStore:
    """Parent-side registry of published flats, refcount-managed.

    Entries hold a strong reference to their flat, so the ``id(flat)``
    key cannot be reused while the entry lives — identity *is* the
    (tree, version) key, because every tree mutation exports a fresh
    flat object.
    """

    def __init__(self) -> None:
        self._entries: dict[int, _Entry] = {}

    # -- introspection (tests, metrics) -----------------------------------

    @property
    def segment_names(self) -> list[str]:
        return [entry.spec.name for entry in self._entries.values()]

    @property
    def total_bytes(self) -> int:
        return sum(entry.spec.nbytes for entry in self._entries.values())

    def refcount_of(self, flat: FlattenedPST) -> int:
        entry = self._entries.get(id(flat))
        if entry is None or entry.flat is not flat:
            return 0
        return entry.refcount

    # -- lifecycle ---------------------------------------------------------

    def pin(self, flat: FlattenedPST) -> SharedFlatSpec:
        """Publish (or reuse) *flat*'s segment and pin it for a chunk."""
        entry = self._entries.get(id(flat))
        registry = get_registry()
        if entry is not None and entry.flat is flat:
            entry.stale = False
            entry.refcount += 1
            if registry.enabled:
                registry.counter("backend.shm.reuses").inc()
            return entry.spec
        started = time.perf_counter()
        prof = get_profiler()
        if prof.enabled:
            with prof.kernel("shm_publish"):
                shm, spec = publish_flat(flat)
        else:
            shm, spec = publish_flat(flat)
        entry = _Entry(flat, shm, spec)
        entry.refcount = 1
        self._entries[id(flat)] = entry
        if registry.enabled:
            registry.counter("backend.shm.publishes").inc()
            registry.timer("backend.shm.publish_seconds").record(
                time.perf_counter() - started
            )
            registry.gauge("backend.shm.segments").set(len(self._entries))
            registry.gauge("backend.shm.bytes").set(self.total_bytes)
        return entry.spec

    def release(self, flat: FlattenedPST) -> None:
        """Unpin *flat*'s segment; unlink it if it went stale in flight."""
        entry = self._entries.get(id(flat))
        if entry is None or entry.flat is not flat:
            return
        entry.refcount = max(0, entry.refcount - 1)
        if entry.stale and entry.refcount == 0:
            self._unlink(id(flat))

    def sync(self, flats: Iterable[FlattenedPST]) -> None:
        """Retain exactly *flats*; stale segments unlink when unpinned.

        This is the version-bump invalidation point: a mutated tree's
        new flat is absent from the store (published on next pin)
        and its old flat is absent from *flats* (marked stale here).
        """
        keep = {id(flat) for flat in flats}
        for key in list(self._entries):
            if key in keep:
                continue
            entry = self._entries[key]
            entry.stale = True
            if entry.refcount == 0:
                self._unlink(key)

    def close(self) -> None:
        """Unlink every segment. Idempotent; refcounts are moot —
        this is final teardown (pool shutdown or finalizer)."""
        for key in list(self._entries):
            self._unlink(key)

    def _unlink(self, key: int) -> None:
        entry = self._entries.pop(key, None)
        if entry is None:
            return
        entry.shm.close()
        entry.shm.unlink()
        registry = get_registry()
        if registry.enabled:
            registry.counter("backend.shm.unlinks").inc()
            registry.gauge("backend.shm.segments").set(len(self._entries))
            registry.gauge("backend.shm.bytes").set(self.total_bytes)


def specs_for(
    store: ShmFlatStore, flats: Sequence[FlattenedPST]
) -> list[SharedFlatSpec]:
    """Sync the store to *flats* and pin a spec per flat.

    One call per §4.2 prescore chunk: exactly the current cluster
    models stay published. Pair with one :meth:`ShmFlatStore.release`
    per flat once the prescore they pin is fully collected.
    """
    store.sync(flats)
    return [store.pin(flat) for flat in flats]
