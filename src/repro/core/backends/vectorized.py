"""Vectorized batch SIM kernel over flattened PSTs.

Scores many (sequence, tree) pairs at once in three stages, each
bit-identical to the reference implementation in
``repro.core.similarity``:

1. **Context walk** (:func:`walk_states`) — for every position of every
   row, the paper's longest-significant-suffix lookup, run as at most
   ``max_depth`` *depth steps*: step ``d`` advances every still-walking
   position along its ``d``-th preceding symbol through the dense
   transition table. Integer gathers only, so exact trivially.
2. **Ratio gather** — per-position ``log X_i = log P_S(s_i|ctx) −
   log p(s_i)`` read from the flat tree's precomputed log-ratio table.
   The table entries are ``math.log``-exact (see
   :mod:`repro.core.backends.flatten`), and the subtraction is the same
   single IEEE op the reference performs.
3. **X/Y/Z scan** (:func:`kadane_rows`) — the log-domain Kadane DP with
   the reference's exact update and tie rules. Two interchangeable
   implementations: a per-row Python loop (cheapest for a handful of
   rows) and a masked numpy scan over all rows at once (cheapest from a
   few dozen rows up). Both perform, per row, the identical sequence of
   float64 additions and comparisons as the reference loop, so the
   choice never affects results — only wall clock.

Rows are independent (no barrier between stages per row), and rows may
point at *different* trees: stack the flats' tables with
:func:`stack_flats` and hand each row its root offset.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from collections.abc import Sequence

import numpy as np
import numpy.typing as npt

from ..similarity import _LOG_ZERO, SimilarityResult, _safe_exp
from .flatten import FlattenedPST

#: Row count from which the masked numpy X/Y/Z scan beats the per-row
#: Python loop. The scan costs a fixed ~8 numpy calls per position
#: regardless of row count; the Python loop costs ~8 scalar ops per
#: position per row. Crossover measured on the fig6 workload shapes.
KADANE_NUMPY_MIN_ROWS = 24


def log_background(
    background: npt.NDArray[np.float64],
) -> npt.NDArray[np.float64]:
    """Background log vector ``log P^r`` (§2's ratio denominator).

    ``math.log`` per entry (not ``np.log`` — one-ulp differences would
    break bit-parity with the reference), ``_LOG_ZERO`` for zero mass.
    """
    values = [
        math.log(p) if p > 0 else _LOG_ZERO for p in background.tolist()
    ]
    return np.asarray(values, dtype=np.float64)


def pad_sequences(
    sequences: Sequence[Sequence[int]],
) -> tuple[npt.NDArray[np.int32], npt.NDArray[np.int32]]:
    """Pack variable-length sequences into the −1-padded matrix the
    batched §4.3 scan consumes."""
    lengths = np.asarray([len(seq) for seq in sequences], dtype=np.int32)
    if lengths.size and int(lengths.min()) == 0:
        raise ValueError("cannot score an empty sequence")
    width = int(lengths.max()) if lengths.size else 0
    padded = np.full((len(sequences), width), -1, dtype=np.int32)
    for row, seq in enumerate(sequences):
        padded[row, : len(seq)] = np.asarray(seq, dtype=np.int32)
    return padded, lengths


@dataclass(frozen=True)
class StackedFlats:
    """Several flats' tables concatenated row-wise for one batch call.

    ``transitions`` child rows are rebased so each flat's rows index
    into the stacked tables; ``roots`` holds each flat's root row.
    """

    transitions: npt.NDArray[np.int32]
    log_probs: npt.NDArray[np.float64]
    roots: npt.NDArray[np.int32]
    max_depths: npt.NDArray[np.int32]
    alphabet_size: int


def stack_flats(flats: Sequence[FlattenedPST]) -> StackedFlats:
    """Concatenate flats into one table set (see :class:`StackedFlats`)
    so one batch call can score rows against different cluster PSTs —
    the shape of the paper's §4.2 re-examination matrix."""
    if not flats:
        raise ValueError("need at least one flattened tree to stack")
    alphabet_size = flats[0].alphabet_size
    for flat in flats:
        if flat.alphabet_size != alphabet_size:
            raise ValueError("all stacked trees must share one alphabet")
    if len(flats) == 1:
        flat = flats[0]
        return StackedFlats(
            transitions=flat.transitions,
            log_probs=flat.log_probs,
            roots=np.zeros(1, dtype=np.int32),
            max_depths=np.asarray([flat.max_depth], dtype=np.int32),
            alphabet_size=alphabet_size,
        )
    roots = np.zeros(len(flats), dtype=np.int32)
    rebased: list[npt.NDArray[np.int32]] = []
    offset = 0
    for index, flat in enumerate(flats):
        roots[index] = offset
        table = flat.transitions
        rebased.append(
            np.where(table >= 0, table + np.int32(offset), np.int32(-1))
        )
        offset += flat.node_count
    return StackedFlats(
        transitions=np.concatenate(rebased, axis=0),
        log_probs=np.concatenate([flat.log_probs for flat in flats], axis=0),
        roots=roots,
        max_depths=np.asarray(
            [flat.max_depth for flat in flats], dtype=np.int32
        ),
        alphabet_size=alphabet_size,
    )


def walk_states(
    stacked: StackedFlats,
    padded: npt.NDArray[np.int32],
    row_flats: npt.NDArray[np.intp],
) -> npt.NDArray[np.int32]:
    """Prediction-node row per (row, position) — the paper's walk, batched.

    ``row_flats[r]`` names which stacked flat row ``r`` scores against.
    Positions beyond a row's length keep that row's root (their ratios
    are masked out downstream).
    """
    batch, width = padded.shape
    roots = stacked.roots[row_flats]
    states = np.broadcast_to(roots[:, None], (batch, width)).astype(np.int32)
    if width == 0:
        return states
    depth_caps = stacked.max_depths[row_flats]
    max_depth = int(depth_caps.max())
    transitions = stacked.transitions
    walking_base = padded >= 0
    walking = walking_base.copy()
    for depth in range(1, min(max_depth, width) + 1):
        # The d-th preceding symbol of every position: the sequence
        # shifted right by d, −1 where no such symbol exists.
        context = np.full((batch, width), -1, dtype=np.int32)
        context[:, depth:] = padded[:, : width - depth]
        candidates = walking & (context >= 0) & (depth <= depth_caps)[:, None]
        next_states = transitions[states, np.maximum(context, 0)]
        step = candidates & (next_states >= 0)
        states = np.where(step, next_states, states)
        walking = step
        if not walking.any():
            break
    return states


def gather_log_ratios(
    stacked: StackedFlats,
    log_bg: npt.NDArray[np.float64],
    padded: npt.NDArray[np.int32],
    states: npt.NDArray[np.int32],
) -> npt.NDArray[np.float64]:
    """Per-position ``log X_i`` (the §4.3 per-symbol factors) for every
    row; entries beyond a row's length are garbage and must be masked
    by the caller."""
    symbols = np.maximum(padded, 0)
    log_probs = stacked.log_probs[states, symbols]
    ratios: npt.NDArray[np.float64] = log_probs - log_bg[symbols]
    return ratios


@dataclass(frozen=True)
class KadaneBatchResult:
    """Per-row outcome of the batched X/Y/Z scan."""

    log_z: npt.NDArray[np.float64]
    best_start: npt.NDArray[np.int64]
    best_end: npt.NDArray[np.int64]
    whole: npt.NDArray[np.float64]


def _kadane_rows_python(
    ratios: npt.NDArray[np.float64], lengths: npt.NDArray[np.int32]
) -> KadaneBatchResult:
    batch = ratios.shape[0]
    out_z = np.empty(batch, dtype=np.float64)
    out_start = np.empty(batch, dtype=np.int64)
    out_end = np.empty(batch, dtype=np.int64)
    out_whole = np.empty(batch, dtype=np.float64)
    for row in range(batch):
        values = ratios[row, : int(lengths[row])].tolist()
        log_y = values[0]
        y_start = 0
        log_z = log_y
        best_start, best_end = 0, 1
        whole = values[0]
        for i in range(1, len(values)):
            x = values[i]
            whole += x
            if log_y + x >= x:
                log_y += x
            else:
                log_y = x
                y_start = i
            if log_y > log_z:
                log_z = log_y
                best_start, best_end = y_start, i + 1
        out_z[row] = log_z
        out_start[row] = best_start
        out_end[row] = best_end
        out_whole[row] = whole
    return KadaneBatchResult(out_z, out_start, out_end, out_whole)


def _kadane_rows_numpy(
    ratios: npt.NDArray[np.float64], lengths: npt.NDArray[np.int32]
) -> KadaneBatchResult:
    batch, width = ratios.shape
    x0 = ratios[:, 0].copy()
    log_y = x0.copy()
    y_start = np.zeros(batch, dtype=np.int64)
    log_z = x0.copy()
    best_start = np.zeros(batch, dtype=np.int64)
    best_end = np.ones(batch, dtype=np.int64)
    whole = x0.copy()
    for i in range(1, width):
        active = i < lengths
        if not active.any():
            break
        x = ratios[:, i]
        extended = log_y + x
        whole = np.where(active, whole + x, whole)
        keep = extended >= x
        log_y = np.where(active, np.where(keep, extended, x), log_y)
        y_start = np.where(active & ~keep, i, y_start)
        improved = active & (log_y > log_z)
        log_z = np.where(improved, log_y, log_z)
        best_start = np.where(improved, y_start, best_start)
        best_end = np.where(improved, i + 1, best_end)
    return KadaneBatchResult(log_z, best_start, best_end, whole)


def kadane_rows(
    ratios: npt.NDArray[np.float64], lengths: npt.NDArray[np.int32]
) -> KadaneBatchResult:
    """The §4.3 X/Y/Z scan over every row of *ratios*.

    Per row, both implementations execute the identical float64
    operation sequence as ``similarity()`` — update rule
    ``Y ← Y·X if log Y + log X ≥ log X else X`` (ties extend) and
    strict-improvement Z tracking — so results are bit-identical to the
    reference, whichever implementation the row count selects.
    """
    if ratios.shape[0] >= KADANE_NUMPY_MIN_ROWS:
        return _kadane_rows_numpy(ratios, lengths)
    return _kadane_rows_python(ratios, lengths)


def results_from_batch(batch: KadaneBatchResult) -> list[SimilarityResult]:
    """Materialize the §4.3 :class:`SimilarityResult` objects from a
    batch scan."""
    out: list[SimilarityResult] = []
    for row in range(batch.log_z.shape[0]):
        log_z = float(batch.log_z[row])
        out.append(
            SimilarityResult(
                similarity=_safe_exp(log_z),
                log_similarity=log_z,
                best_start=int(batch.best_start[row]),
                best_end=int(batch.best_end[row]),
                whole_sequence_log=float(batch.whole[row]),
            )
        )
    return out
