"""Vectorized batch SIM kernel over flattened PSTs.

Scores many (sequence, tree) pairs at once in three stages, each
bit-identical to the reference implementation in
``repro.core.similarity``:

1. **Context walk** (:func:`walk_states`) — for every position of every
   row, the paper's longest-significant-suffix lookup, run as at most
   ``max_depth`` *depth steps*: step ``d`` advances every still-walking
   position along its ``d``-th preceding symbol through the dense
   transition table. Integer gathers only, so exact trivially.
2. **Ratio gather** — per-position ``log X_i = log P_S(s_i|ctx) −
   log p(s_i)`` read from the flat tree's precomputed log-ratio table.
   The table entries are ``math.log``-exact (see
   :mod:`repro.core.backends.flatten`), and the subtraction is the same
   single IEEE op the reference performs.
3. **X/Y/Z scan** (:func:`kadane_rows`) — the log-domain Kadane DP with
   the reference's exact update and tie rules. Two interchangeable
   implementations: a per-row Python loop (cheapest for a handful of
   rows) and a masked numpy scan over all rows at once (cheapest from a
   few dozen rows up). Both perform, per row, the identical sequence of
   float64 additions and comparisons as the reference loop, so the
   choice never affects results — only wall clock.

Rows are independent (no barrier between stages per row), and rows may
point at *different* trees: stack the flats' tables with
:func:`stack_flats` and hand each row its root offset.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from collections.abc import Sequence

import numpy as np
import numpy.typing as npt

from ..similarity import _LOG_ZERO, SimilarityResult, _safe_exp
from .flatten import FlattenedPST

#: Row count from which the masked numpy X/Y/Z scan beats the per-row
#: Python loop. The scan costs a fixed ~8 numpy calls per position
#: regardless of row count; the Python loop costs ~8 scalar ops per
#: position per row. Crossover measured on the fig6 workload shapes.
KADANE_NUMPY_MIN_ROWS = 24


def log_background(
    background: npt.NDArray[np.float64],
) -> npt.NDArray[np.float64]:
    """Background log vector ``log P^r`` (§2's ratio denominator).

    ``math.log`` per entry (not ``np.log`` — one-ulp differences would
    break bit-parity with the reference), ``_LOG_ZERO`` for zero mass.
    """
    values = [
        math.log(p) if p > 0 else _LOG_ZERO for p in background.tolist()
    ]
    return np.asarray(values, dtype=np.float64)


def pad_sequences(
    sequences: Sequence[Sequence[int]],
) -> tuple[npt.NDArray[np.int32], npt.NDArray[np.int32]]:
    """Pack variable-length sequences into the −1-padded matrix the
    batched §4.3 scan consumes."""
    lengths = np.asarray([len(seq) for seq in sequences], dtype=np.int32)
    if lengths.size and int(lengths.min()) == 0:
        raise ValueError("cannot score an empty sequence")
    width = int(lengths.max()) if lengths.size else 0
    if lengths.size and int(lengths.min()) == width:
        # Equal lengths: no padding to write — one C-level conversion
        # of the whole block instead of a per-row copy loop.
        return np.asarray(sequences, dtype=np.int32).reshape(
            len(sequences), width
        ), lengths
    padded = np.full((len(sequences), width), -1, dtype=np.int32)
    for row, seq in enumerate(sequences):
        padded[row, : len(seq)] = np.asarray(seq, dtype=np.int32)
    return padded, lengths


@dataclass(frozen=True)
class StackedFlats:
    """Several flats' tables concatenated row-wise for one batch call.

    ``transitions`` child rows are rebased so each flat's rows index
    into the stacked tables; ``roots`` holds each flat's root row.
    """

    transitions: npt.NDArray[np.int32]
    log_probs: npt.NDArray[np.float64]
    roots: npt.NDArray[np.int32]
    max_depths: npt.NDArray[np.int32]
    alphabet_size: int


def stack_flats(flats: Sequence[FlattenedPST]) -> StackedFlats:
    """Concatenate flats into one table set (see :class:`StackedFlats`)
    so one batch call can score rows against different cluster PSTs —
    the shape of the paper's §4.2 re-examination matrix."""
    if not flats:
        raise ValueError("need at least one flattened tree to stack")
    alphabet_size = flats[0].alphabet_size
    for flat in flats:
        if flat.alphabet_size != alphabet_size:
            raise ValueError("all stacked trees must share one alphabet")
    if len(flats) == 1:
        flat = flats[0]
        return StackedFlats(
            transitions=flat.transitions,
            log_probs=flat.log_probs,
            roots=np.zeros(1, dtype=np.int32),
            max_depths=np.asarray([flat.max_depth], dtype=np.int32),
            alphabet_size=alphabet_size,
        )
    roots = np.zeros(len(flats), dtype=np.int32)
    rebased: list[npt.NDArray[np.int32]] = []
    offset = 0
    for index, flat in enumerate(flats):
        roots[index] = offset
        table = flat.transitions
        rebased.append(
            np.where(table >= 0, table + np.int32(offset), np.int32(-1))
        )
        offset += flat.node_count
    return StackedFlats(
        transitions=np.concatenate(rebased, axis=0),
        log_probs=np.concatenate([flat.log_probs for flat in flats], axis=0),
        roots=roots,
        max_depths=np.asarray(
            [flat.max_depth for flat in flats], dtype=np.int32
        ),
        alphabet_size=alphabet_size,
    )


def walk_states(
    stacked: StackedFlats,
    padded: npt.NDArray[np.int32],
    row_flats: npt.NDArray[np.intp],
) -> npt.NDArray[np.int32]:
    """Prediction-node row per (row, position) — the paper's walk, batched.

    ``row_flats[r]`` names which stacked flat row ``r`` scores against.
    Positions beyond a row's length keep that row's root (their ratios
    are masked out downstream).
    """
    batch, width = padded.shape
    roots = stacked.roots[row_flats]
    states = np.broadcast_to(roots[:, None], (batch, width)).astype(np.int32)
    if width == 0:
        return states
    depth_caps = stacked.max_depths[row_flats]
    max_depth = int(depth_caps.max())
    transitions = stacked.transitions
    walking_base = padded >= 0
    walking = walking_base.copy()
    for depth in range(1, min(max_depth, width) + 1):
        # The d-th preceding symbol of every position: the sequence
        # shifted right by d, −1 where no such symbol exists.
        context = np.full((batch, width), -1, dtype=np.int32)
        context[:, depth:] = padded[:, : width - depth]
        candidates = walking & (context >= 0) & (depth <= depth_caps)[:, None]
        next_states = transitions[states, np.maximum(context, 0)]
        step = candidates & (next_states >= 0)
        states = np.where(step, next_states, states)
        walking = step
        if not walking.any():
            break
    return states


def gather_log_ratios(
    stacked: StackedFlats,
    log_bg: npt.NDArray[np.float64],
    padded: npt.NDArray[np.int32],
    states: npt.NDArray[np.int32],
) -> npt.NDArray[np.float64]:
    """Per-position ``log X_i`` (the §4.3 per-symbol factors) for every
    row; entries beyond a row's length are garbage and must be masked
    by the caller."""
    symbols = np.maximum(padded, 0)
    log_probs = stacked.log_probs[states, symbols]
    ratios: npt.NDArray[np.float64] = log_probs - log_bg[symbols]
    return ratios


@dataclass(frozen=True)
class KadaneBatchResult:
    """Per-row outcome of the batched X/Y/Z scan."""

    log_z: npt.NDArray[np.float64]
    best_start: npt.NDArray[np.int64]
    best_end: npt.NDArray[np.int64]
    whole: npt.NDArray[np.float64]


def _kadane_rows_python(
    ratios: npt.NDArray[np.float64], lengths: npt.NDArray[np.int32]
) -> KadaneBatchResult:
    batch = ratios.shape[0]
    out_z = np.empty(batch, dtype=np.float64)
    out_start = np.empty(batch, dtype=np.int64)
    out_end = np.empty(batch, dtype=np.int64)
    out_whole = np.empty(batch, dtype=np.float64)
    for row in range(batch):
        values = ratios[row, : int(lengths[row])].tolist()
        log_y = values[0]
        y_start = 0
        log_z = log_y
        best_start, best_end = 0, 1
        whole = values[0]
        for i in range(1, len(values)):
            x = values[i]
            whole += x
            if log_y + x >= x:
                log_y += x
            else:
                log_y = x
                y_start = i
            if log_y > log_z:
                log_z = log_y
                best_start, best_end = y_start, i + 1
        out_z[row] = log_z
        out_start[row] = best_start
        out_end[row] = best_end
        out_whole[row] = whole
    return KadaneBatchResult(out_z, out_start, out_end, out_whole)


def _kadane_rows_numpy(
    ratios: npt.NDArray[np.float64], lengths: npt.NDArray[np.int32]
) -> KadaneBatchResult:
    # Column-major working copy: scan step i then reads one contiguous
    # (batch,)-row instead of a strided column of the row-major input.
    return _kadane_columns_numpy(np.ascontiguousarray(ratios.T), lengths)


def _kadane_columns_numpy(
    columns: npt.NDArray[np.float64], lengths: npt.NDArray[np.int32]
) -> KadaneBatchResult:
    width, batch = columns.shape
    if int(lengths.min()) == width:
        # Equal-lengths fast path: no padded entries exist, so the pad
        # mask is all-False — the whole-sequence view is the columns
        # themselves and no −inf fill is needed. Same float values,
        # same op order, minus three full-size array passes.
        masked_whole = columns
    else:
        pad = np.arange(width, dtype=np.int64)[:, None] >= lengths[None, :]
        # Padding becomes 0 for the whole-sequence sum and −inf for the
        # Y/Z updates: a −inf running segment extends to −inf forever
        # (ties extend) and can never strictly improve the finite best,
        # so rows past their length keep exactly the state they ended
        # with — no per-step active mask needed. Real ratios are finite
        # (the log-zero convention is a large negative constant, not
        # −inf). Fresh merges, not in-place fills: *columns* may be a
        # view of the caller's ratio cube.
        masked_whole = np.where(pad, 0.0, columns)
        columns = np.where(pad, -np.inf, columns)
    whole = masked_whole[0].copy()
    # Record the Y trajectory instead of tracking Z (or the segment
    # starts) inside the loop, and recover both afterwards:
    #
    # * Z — the §4.3 strict-improvement rule keeps the FIRST step
    #   attaining the maximal Y, which is exactly ``np.argmax``'s tie
    #   rule, so one argmax over the history replaces the per-step Z
    #   bookkeeping, on identical float values.
    # * the value update — ``extended if extended >= x else x`` is
    #   value-equal to ``maximum(extended, x)`` (on a tie both arms
    #   hold the same float, and no NaNs exist here), so the scan body
    #   shrinks to one add and one maximum per step, writing straight
    #   into the history row.
    # * the segment starts — a restart at step *i* is ``extended < x``,
    #   recomputable after the scan from the stored ``H[i-1]`` and the
    #   same ``x`` (the identical IEEE add gives the identical rounded
    #   value), so one vectorized pass plus a running
    #   ``maximum.accumulate`` of restart positions rebuilds what the
    #   in-loop start tracking would have recorded.
    log_y_history = np.empty((width, batch))
    log_y_history[0] = columns[0]
    for i in range(1, width):
        x = columns[i]
        cur = log_y_history[i]
        np.add(log_y_history[i - 1], x, out=cur)
        np.maximum(cur, x, out=cur)
        whole += masked_whole[i]
    best_i = np.argmax(log_y_history, axis=0)
    rows = np.arange(batch)
    log_z = log_y_history[best_i, rows]
    if width > 1:
        # Positions fit int16 for any realistic width — halves the
        # restart-table bandwidth; indices never touch the float math.
        start_dtype = (
            np.int16 if width <= np.iinfo(np.int16).max else np.int64
        )
        extended = log_y_history[:-1] + columns[1:]
        stopped = extended < columns[1:]
        restarts = np.zeros((width, batch), dtype=start_dtype)
        restarts[1:] = stopped * np.arange(
            1, width, dtype=start_dtype
        )[:, None]
        latest_restart = np.maximum.accumulate(restarts, axis=0)
        best_start = latest_restart[best_i, rows].astype(np.int64)
    else:
        best_start = np.zeros(batch, dtype=np.int64)
    best_end = best_i + 1
    return KadaneBatchResult(log_z, best_start, best_end, whole)


def kadane_rows(
    ratios: npt.NDArray[np.float64], lengths: npt.NDArray[np.int32]
) -> KadaneBatchResult:
    """The §4.3 X/Y/Z scan over every row of *ratios*.

    Per row, both implementations execute the identical float64
    operation sequence as ``similarity()`` for the Y recurrence —
    update rule ``Y ← Y·X if log Y + log X ≥ log X else X`` (ties
    extend) — and recover the same Z as strict-improvement tracking
    (the numpy path via a first-occurrence argmax over the recorded Y
    trajectory), so results are bit-identical to the reference,
    whichever implementation the row count selects.
    """
    if ratios.shape[0] >= KADANE_NUMPY_MIN_ROWS:
        return _kadane_rows_numpy(ratios, lengths)
    return _kadane_rows_python(ratios, lengths)


def kadane_columns(
    columns: npt.NDArray[np.float64], lengths: npt.NDArray[np.int32]
) -> KadaneBatchResult:
    """Column-major twin of :func:`kadane_rows` — the §4.3 X/Y/Z scan.

    *columns* is ``(width, rows)`` with position leading — the layout
    the matrix kernel's gather emits natively — so the scan starts
    immediately with no transpose copy. Same per-row float64 op
    sequence, same results, as :func:`kadane_rows`.
    """
    if columns.shape[1] >= KADANE_NUMPY_MIN_ROWS:
        return _kadane_columns_numpy(columns, lengths)
    return _kadane_rows_python(np.ascontiguousarray(columns.T), lengths)


def results_from_batch(batch: KadaneBatchResult) -> list[SimilarityResult]:
    """Materialize the §4.3 :class:`SimilarityResult` objects from a
    batch scan."""
    out: list[SimilarityResult] = []
    for row in range(batch.log_z.shape[0]):
        log_z = float(batch.log_z[row])
        out.append(
            SimilarityResult(
                similarity=_safe_exp(log_z),
                log_similarity=log_z,
                best_start=int(batch.best_start[row]),
                best_end=int(batch.best_end[row]),
                whole_sequence_log=float(batch.whole[row]),
            )
        )
    return out


# -- full-matrix kernel -------------------------------------------------------
#
# The §4.2 re-examination scores *every* sequence against *every*
# cluster. The row-list kernel above pads each (tree, sequence) pair as
# its own row — the sequence data is replicated per tree and the walk
# runs over trees × sequences × width entries even though the padded
# sequence block is shared. The matrix kernel below pads the sequence
# block once, walks a (trees, sequences, width) state cube against a
# sentinel-extended transition table, gathers from a precomputed
# log-ratio table, and hands the cube to the same Kadane scan — one
# invocation for the whole matrix, bit-identical per pair to the
# row-list path (and therefore to the reference).

#: Fraction of still-walking (tree, sequence, position) entries below
#: which the matrix walk switches from dense full-cube stepping to
#: index-compacted stepping over just the active entries. Contexts die
#: off geometrically with depth, so deep steps touch a tiny active set.
#: A compacted step costs several passes over the active set versus one
#: freeze-encoded gather for a dense step, so compaction only pays once
#: the survivor fraction is well under half — 0.25 measured fastest on
#: the fig6 workload (survivors ≈ 0.9 / 0.47 / 0.07 by depth).
WALK_COMPACT_FRACTION = 0.25

#: Size cap for the pair-step walk table (columns grow as the alphabet
#: squared). 32 MiB covers every realistic CLUSEQ alphabet with room
#: to spare while keeping a pathological alphabet from allocating a
#: gigabyte table nobody can cache.
WALK_PAIR_TABLE_MAX_BYTES = 32 * 1024 * 1024


@dataclass(frozen=True)
class PreparedStack:
    """A stacked table set preprocessed for full-matrix scoring.

    Built once per (tree set, version set) by :func:`prepare_stack` and
    cached by the scorer; both derived tables are pure per-entry
    transforms of the stacked tables, so they inherit the stack's
    validity (same identity + version key).
    """

    stacked: StackedFlats
    #: Freeze-encoded transition table of shape
    #: ``(freeze_offset + nodes, A+1)``. Rows ``0..nodes-1`` are the
    #: live nodes: entry ``[n, a]`` is the child for symbol ``a``, or —
    #: where the walk must stop (no child, or the sentinel last column
    #: that a −1 context symbol fancy-indexes) — node ``n``'s *frozen
    #: twin* ``freeze_offset + n``. Rows from ``nodes`` up are the
    #: frozen twins (plus the unreachable power-of-two gap) and map
    #: every symbol to themselves. A dense walk step is therefore ONE
    #: gather with no masks, no ``where`` and no alive bookkeeping:
    #: stopped walks self-loop on their twin, remembering the deepest
    #: live node, which :func:`walk_states_matrix` decodes at the end
    #: with one bitwise AND (the offset is a power of two).
    walk_table: npt.NDArray[np.intp]
    #: Pair-step closure of ``walk_table``: entry
    #: ``[n, a * (A+1) + b]`` is two transitions in one —
    #: ``walk_table[walk_table[n, a], b]`` — so the dense walk covers
    #: two context depths per gather. The freeze encoding composes
    #: unchanged: a walk that stops on the first symbol lands on its
    #: frozen twin, whose row self-loops through the second. ``None``
    #: when the squared-alphabet table would outgrow
    #: :data:`WALK_PAIR_TABLE_MAX_BYTES` (the walk then takes single
    #: steps only).
    walk_table2: "npt.NDArray[np.intp] | None"
    #: Power-of-two frozen-twin base: states ``>= freeze_offset`` are
    #: stopped; ``state & (freeze_offset - 1)`` recovers the node.
    freeze_offset: int
    #: ``log_probs − log_bg`` per (node, symbol) — the same single IEEE
    #: subtraction the per-position gather performs, hoisted out of the
    #: hot path so the gather is one table read.
    ratio_table: npt.NDArray[np.float64]

    @property
    def nodes(self) -> int:
        """Live node count of ``walk_table``."""
        return int(self.walk_table.shape[0]) - self.freeze_offset


def prepare_stack(
    stacked: StackedFlats, log_bg: npt.NDArray[np.float64]
) -> PreparedStack:
    """Derive the freeze-encoded walk table and ratio table for *stacked*.

    The walk table encodes the §2 maximal-context lookup; the ratio
    table pre-subtracts the §4.3 background log so the per-position
    gather is one table read.
    """
    nodes = stacked.transitions.shape[0]
    alphabet = stacked.alphabet_size
    # Smallest power of two >= nodes, so the end-of-walk decode is a
    # single bitwise AND instead of a masked subtract.
    offset = 1 << max(nodes - 1, 0).bit_length()
    # The table is intp (numpy's native fancy-index dtype): gathers
    # with intp index arrays skip the internal index-conversion pass,
    # and each step's output is then already intp for the next step.
    walk_table = np.empty((offset + nodes, alphabet + 1), dtype=np.intp)
    frozen_ids = np.arange(offset, offset + nodes, dtype=np.intp)
    live = walk_table[:nodes]
    live[:, :-1] = np.where(
        stacked.transitions >= 0, stacked.transitions, frozen_ids[:, None]
    )
    live[:, -1] = frozen_ids
    # Self-loops for the twins and the never-indexed pow2 gap rows.
    walk_table[nodes:] = np.arange(
        nodes, offset + nodes, dtype=np.intp
    )[:, None]
    # Pair-step closure: one row-gather composes every two-symbol
    # transition, frozen twins included (their self-loop rows absorb
    # the second symbol). Skipped when the (A+1)² column count would
    # blow the size cap — correctness never depends on it.
    rows = offset + nodes
    pair_cols = (alphabet + 1) * (alphabet + 1)
    walk_table2: npt.NDArray[np.intp] | None = None
    if rows * pair_cols * walk_table.itemsize <= WALK_PAIR_TABLE_MAX_BYTES:
        walk_table2 = walk_table[walk_table.reshape(-1)].reshape(
            rows, pair_cols
        )
    ratio_table: npt.NDArray[np.float64] = (
        stacked.log_probs - log_bg[None, :]
    )
    return PreparedStack(
        stacked=stacked,
        walk_table=walk_table,
        walk_table2=walk_table2,
        freeze_offset=offset,
        ratio_table=ratio_table,
    )


def walk_states_matrix(
    prep: PreparedStack, padded: npt.NDArray[np.int32]
) -> npt.NDArray[np.intp]:
    """Prediction-node cube ``(width, trees, sequences)`` for every pair.

    The §2 maximal-context walk as :func:`walk_states` performs it, run
    over the full cube with the sequence block padded once. Depth caps
    need no explicit check: a node at its tree's maximum depth exports
    no children, so its transition row is all −1 and the walk stops
    there naturally.

    The cube is *column-major* — position is the leading axis — so the
    downstream ratio gather emits, with no transpose copy, exactly the
    position-leading layout the batched Kadane scan consumes.

    The dense phase leans on the freeze encoding of
    :attr:`PreparedStack.walk_table`: a stopped walk lands on its
    node's frozen twin (``state >= freeze_offset``) and self-loops
    there, so each depth is a single fancy gather with no alive mask
    and no ``where`` merge — and with the pair-step closure
    :attr:`PreparedStack.walk_table2` available, one gather covers two
    depths at once. Once the still-walking set has thinned past
    :data:`WALK_COMPACT_FRACTION`, the loop switches to
    index-compacted stepping over the surviving entries only; a final
    decode maps frozen twins back to the prediction node they preserve.
    """
    stacked = prep.stacked
    trees = int(stacked.roots.shape[0])
    batch, width = padded.shape
    states = np.broadcast_to(
        stacked.roots[None, :, None], (width, trees, batch)
    ).astype(np.intp)
    if width == 0 or batch == 0 or trees == 0:
        return states
    walk_table = prep.walk_table
    offset = prep.freeze_offset
    max_depth = int(stacked.max_depths.max())
    total = trees * batch * width
    # Everything indexing in the loop is intp: gathers with intp index
    # arrays skip numpy's internal index-conversion pass over the cube.
    # ``padded_w[p, s]`` is sequence *s*'s symbol at position *p*.
    padded_w = np.ascontiguousarray(padded.T, dtype=np.intp)
    roots = stacked.roots.astype(np.intp)
    active: npt.NDArray[np.intp] | None = None
    flat_states = states.reshape(-1)
    seq_at = pos_at = np.zeros(0, dtype=np.intp)
    context = np.empty((width, batch), dtype=np.intp)
    context_b = np.empty((width, batch), dtype=np.intp)
    sentinel = np.intp(stacked.alphabet_size)
    pair_base = np.intp(stacked.alphabet_size + 1)
    plane = trees * batch
    limit = min(max_depth, width)
    depth = 1
    while depth <= limit:
        if active is None:
            # Dense step. At depth 1 every state is its tree's root, so
            # index with the (1, trees, 1) root plane directly — fancy
            # indexing broadcasts it without materializing the cube.
            index = roots[None, :, None] if depth == 1 else states
            if prep.walk_table2 is not None and depth + 1 <= limit:
                # Pair step: ONE gather advances two context depths.
                # Each position's (d, d+1)-th preceding symbols fold
                # into one column index ``a·(A+1) + b``; the explicit
                # sentinel value replaces the −1 wrap, which does not
                # compose for pairs.
                context[:depth] = sentinel
                context[depth:] = padded_w[: width - depth]
                context_b[: depth + 1] = sentinel
                context_b[depth + 1:] = padded_w[: width - depth - 1]
                context *= pair_base
                context += context_b
                states = prep.walk_table2[index, context[:, None, :]]
                depth += 2
            else:
                # Single step: the d-th preceding symbol, −1 (→
                # sentinel last column) where none exists. Stopped
                # walks self-loop on their frozen twin.
                context[:depth] = -1
                context[depth:] = padded_w[: width - depth]
                states = walk_table[index, context[:, None, :]]
                depth += 1
            live = states < offset
            remaining = int(np.count_nonzero(live))
            if remaining == 0:
                break
            if remaining <= WALK_COMPACT_FRACTION * total:
                flat_states = states.reshape(-1)
                active = np.flatnonzero(live.reshape(-1))
                pos_at = active // plane
                seq_at = active % batch
        else:
            # Compacted step: gather contexts for the surviving flat
            # indices only and advance them in place. Writing the
            # frozen twin back is exactly the stop bookkeeping — the
            # final decode recovers the node.
            has_context = pos_at >= depth
            context_at = np.where(
                has_context,
                padded_w[np.maximum(pos_at - depth, 0), seq_at],
                np.intp(-1),
            )
            next_at = walk_table[flat_states[active], context_at]
            flat_states[active] = next_at
            live_at = next_at < offset
            active = active[live_at]
            depth += 1
            if active.size == 0:
                break
            pos_at = pos_at[live_at]
            seq_at = seq_at[live_at]
    # Decode frozen twins back to the prediction node they preserve:
    # the offset is a power of two, so one bitwise AND clears it.
    if max_depth > 0:
        states &= np.intp(offset - 1)
    return states


def gather_ratios_matrix(
    prep: PreparedStack,
    padded: npt.NDArray[np.int32],
    states: npt.NDArray[np.intp],
) -> npt.NDArray[np.float64]:
    """Per-position ``log X_i`` cube (§4.3) for the matrix walk's *states*.

    Same ``(width, trees, sequences)`` layout as *states*: flattening
    the trailing axes yields the position-leading matrix the batched
    Kadane scan reads column by column, with no transpose copy.
    Entries beyond a sequence's length are garbage and masked by the
    Kadane scan's length handling, exactly as in the row-list path.
    """
    symbols_w = np.ascontiguousarray(
        np.maximum(padded, 0).T, dtype=np.intp
    )
    ratios: npt.NDArray[np.float64] = prep.ratio_table[
        states, symbols_w[:, None, :]
    ]
    return ratios


@dataclass(frozen=True)
class ScoreMatrixResult:
    """The §4.2 re-examination matrix in array form.

    Axis 0 is the tree (cluster), axis 1 the sequence column. The
    driving loops read ``log_z`` directly for the join test and
    materialize a :class:`SimilarityResult` only for pairs that join —
    the matrix is the wire format, objects are built on demand.
    """

    log_z: npt.NDArray[np.float64]
    best_start: npt.NDArray[np.int64]
    best_end: npt.NDArray[np.int64]
    whole: npt.NDArray[np.float64]

    @property
    def trees(self) -> int:
        return int(self.log_z.shape[0])

    @property
    def columns(self) -> int:
        return int(self.log_z.shape[1])

    def result(self, tree: int, column: int) -> SimilarityResult:
        """Materialize one pair's :class:`SimilarityResult`."""
        log_z = float(self.log_z[tree, column])
        return SimilarityResult(
            similarity=_safe_exp(log_z),
            log_similarity=log_z,
            best_start=int(self.best_start[tree, column]),
            best_end=int(self.best_end[tree, column]),
            whole_sequence_log=float(self.whole[tree, column]),
        )

    def column(self, column: int) -> list[SimilarityResult]:
        """One sequence's results against every tree, in tree order."""
        return [self.result(tree, column) for tree in range(self.trees)]

    def row(self, tree: int) -> list[SimilarityResult]:
        """One tree's results against every sequence, in column order."""
        return [self.result(tree, column) for column in range(self.columns)]

    def to_lists(self) -> list[list[SimilarityResult]]:
        """Tree-major nested lists (the legacy ``score_matrix`` shape)."""
        return [self.row(tree) for tree in range(self.trees)]


def matrix_from_batch(
    batch: KadaneBatchResult, trees: int, columns: int
) -> ScoreMatrixResult:
    """Reshape a flat tree-major Kadane batch into §4.2 matrix form."""
    return ScoreMatrixResult(
        log_z=batch.log_z.reshape(trees, columns),
        best_start=batch.best_start.reshape(trees, columns),
        best_end=batch.best_end.reshape(trees, columns),
        whole=batch.whole.reshape(trees, columns),
    )


def score_matrix_stacked(
    prep: PreparedStack,
    padded: npt.NDArray[np.int32],
    lengths: npt.NDArray[np.int32],
) -> ScoreMatrixResult:
    """Score the full §4.2 (trees × sequences) matrix in one invocation.

    Per pair this is the identical walk → gather → scan op sequence as
    the row-list kernel (the ratio-table read fuses the same single
    subtraction), so every entry is bit-identical to the reference
    scorer.
    """
    trees = int(prep.stacked.roots.shape[0])
    batch, width = padded.shape
    states = walk_states_matrix(prep, padded)
    ratios = gather_ratios_matrix(prep, padded, states)
    flat = kadane_columns(
        ratios.reshape(width, trees * batch), np.tile(lengths, trees)
    )
    return matrix_from_batch(flat, trees, batch)
