"""Scoring backends: flattened-array batch kernels for the SIM measure.

See docs/PERFORMANCE.md for the architecture. The ``reference``
backend (``repro.core.similarity``) is the normative transcription of
the paper; the ``vectorized`` backend here reproduces it bit-for-bit
from flattened PST arrays, batched over many (sequence, tree) pairs,
with an optional multiprocessing fan-out for the re-examination
scoring matrix.
"""

from .dispatch import BACKENDS, PstBatchScorer, resolve_backend
from .flatten import FlattenedPST, flatten_pst
from .parallel import ScoringPool
from .shm import SharedFlatSpec, ShmFlatStore, attach_flat, publish_flat
from .vectorized import (
    KADANE_NUMPY_MIN_ROWS,
    KadaneBatchResult,
    PreparedStack,
    ScoreMatrixResult,
    StackedFlats,
    kadane_columns,
    kadane_rows,
    pad_sequences,
    prepare_stack,
    score_matrix_stacked,
    stack_flats,
    walk_states,
    walk_states_matrix,
)

__all__ = [
    "BACKENDS",
    "KADANE_NUMPY_MIN_ROWS",
    "FlattenedPST",
    "KadaneBatchResult",
    "PreparedStack",
    "PstBatchScorer",
    "ScoreMatrixResult",
    "ScoringPool",
    "SharedFlatSpec",
    "ShmFlatStore",
    "StackedFlats",
    "attach_flat",
    "flatten_pst",
    "kadane_columns",
    "kadane_rows",
    "pad_sequences",
    "prepare_stack",
    "publish_flat",
    "resolve_backend",
    "score_matrix_stacked",
    "stack_flats",
    "walk_states",
    "walk_states_matrix",
]
