"""Scoring backends: flattened-array batch kernels for the SIM measure.

See docs/PERFORMANCE.md for the architecture. The ``reference``
backend (``repro.core.similarity``) is the normative transcription of
the paper; the ``vectorized`` backend here reproduces it bit-for-bit
from flattened PST arrays, batched over many (sequence, tree) pairs,
with an optional multiprocessing fan-out for the re-examination
scoring matrix.
"""

from .dispatch import BACKENDS, PstBatchScorer, resolve_backend
from .flatten import FlattenedPST, flatten_pst
from .parallel import ScoringPool
from .vectorized import (
    KADANE_NUMPY_MIN_ROWS,
    KadaneBatchResult,
    StackedFlats,
    kadane_rows,
    pad_sequences,
    stack_flats,
    walk_states,
)

__all__ = [
    "BACKENDS",
    "KADANE_NUMPY_MIN_ROWS",
    "FlattenedPST",
    "KadaneBatchResult",
    "PstBatchScorer",
    "ScoringPool",
    "StackedFlats",
    "flatten_pst",
    "kadane_rows",
    "pad_sequences",
    "resolve_backend",
    "stack_flats",
    "walk_states",
]
