"""Probabilistic suffix trees (PSTs).

The PST is the paper's §3 data structure: a suffix-tree variant built
over *reversed* sequences where every node carries

* ``count`` — the number of occurrences of the node's label (a segment,
  read in original orientation) in the cluster, and
* a next-symbol counter from which the conditional probability vector
  ``P(s | label)`` is derived.

Because the similarity measure only ever conditions on the last
``max_depth`` symbols (the *short memory* property), the tree is a
bounded-depth trie: inserting a sequence of length ``l`` walks at most
``max_depth`` ancestors per position, i.e. ``O(l · max_depth)`` total.

Locating the *longest significant suffix* of a context — the heart of
the paper's prediction procedure — is a single root-to-leaf walk along
the reversed context that stops before the first insignificant node.

Example
-------
>>> from repro.core.pst import ProbabilisticSuffixTree
>>> pst = ProbabilisticSuffixTree(alphabet_size=2, max_depth=3,
...                               significance_threshold=2)
>>> pst.add_sequence([0, 1, 0, 1, 0, 1, 0])
>>> round(pst.probability(1, [0]), 2)   # P(b | a) with a=0, b=1
1.0
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterator, Sequence
from typing import TYPE_CHECKING, Any

import numpy as np
import numpy.typing as npt

from ..obs import get_profiler, get_registry
from .smoothing import adjust_probability, validate_p_min

if TYPE_CHECKING:
    from .backends.flatten import FlattenedPST

#: Rough per-node memory footprint used to translate the paper's
#: megabyte budgets into node budgets (children dict + counters).
APPROX_BYTES_PER_NODE = 200


class PSTNode:
    """A node of the probabilistic suffix tree.

    Attributes
    ----------
    children:
        Maps a symbol id to the child node; following the edge
        *prepends* that symbol to the node label (the tree is built
        over reversed sequences).
    count:
        Occurrences of the node label in the cluster (the paper's
        ``C``).
    next_counts:
        Maps a symbol id ``s`` to the number of times ``s`` was
        observed immediately after the node label.
    """

    __slots__ = ("children", "count", "next_counts")

    def __init__(self) -> None:
        self.children: dict[int, "PSTNode"] = {}
        self.count: int = 0
        self.next_counts: dict[int, int] = {}

    @property
    def next_total(self) -> int:
        """Total next-symbol observations at this node."""
        return sum(self.next_counts.values())

    def subtree_size(self) -> int:
        """Number of nodes in the subtree rooted here (inclusive)."""
        total = 1
        stack = list(self.children.values())
        while stack:
            node = stack.pop()
            total += 1
            stack.extend(node.children.values())
        return total


@dataclass(frozen=True)
class PSTStats:
    """A one-walk structural summary of a PST.

    Produced by :meth:`ProbabilisticSuffixTree.stats`; the observability
    gauges and the PST-size experiments read tree state through this
    instead of walking node internals.
    """

    node_count: int
    significant_nodes: int
    max_depth: int
    #: Nodes per label length, index 0 = the root.
    depth_histogram: tuple[int, ...]
    #: Sum of node counts over the whole tree — the total occurrence
    #: mass the model has accumulated (grows with every insertion,
    #: shrinks when pruning discards subtrees).
    total_occurrence_mass: int
    sequences_added: int
    total_symbols: int
    approx_memory_bytes: int

    def to_dict(self) -> dict[str, Any]:
        return {
            "node_count": self.node_count,
            "significant_nodes": self.significant_nodes,
            "max_depth": self.max_depth,
            "depth_histogram": list(self.depth_histogram),
            "total_occurrence_mass": self.total_occurrence_mass,
            "sequences_added": self.sequences_added,
            "total_symbols": self.total_symbols,
            "approx_memory_bytes": self.approx_memory_bytes,
        }


class ProbabilisticSuffixTree:
    """The paper's probabilistic suffix tree, with incremental updates.

    Parameters
    ----------
    alphabet_size:
        Number of distinct symbol ids (``n`` in the paper).
    max_depth:
        Maximum context length ``L`` retained (short-memory bound).
    significance_threshold:
        The paper's ``c``: a node is *significant* when its count is at
        least this value. Only significant nodes participate in
        prediction; insignificant nodes are kept (until pruned) because
        they may become significant as the cluster grows (§5.1).
    p_min:
        Smoothing floor for the adjusted probability estimation (§5.2).
        ``0.0`` disables smoothing.
    max_nodes:
        Optional node budget; exceeding it triggers pruning (§5.1).
        ``None`` means unbounded.
    prune_strategy:
        Strategy name forwarded to :func:`repro.core.pruning.prune_to`
        when the budget is hit.
    """

    def __init__(
        self,
        alphabet_size: int,
        max_depth: int = 6,
        significance_threshold: int = 30,
        p_min: float = 0.0,
        max_nodes: int | None = None,
        prune_strategy: str = "paper",
    ) -> None:
        if alphabet_size <= 0:
            raise ValueError("alphabet_size must be positive")
        if max_depth < 1:
            raise ValueError("max_depth must be at least 1")
        if significance_threshold < 1:
            raise ValueError("significance_threshold must be at least 1")
        if max_nodes is not None and max_nodes < 1:
            raise ValueError("max_nodes must be positive when set")
        validate_p_min(alphabet_size, p_min)
        self.alphabet_size = alphabet_size
        self.max_depth = max_depth
        self.significance_threshold = significance_threshold
        self.p_min = p_min
        self.max_nodes = max_nodes
        self.prune_strategy = prune_strategy
        self.root = PSTNode()
        self._node_count = 1
        self._sequences_added = 0
        # Monotone mutation counter; the flattened array export (and any
        # cache keyed on it) is valid only while the version is unchanged.
        self._version = 0
        self._flat_cache: "FlattenedPST | None" = None

    # -- construction ------------------------------------------------------------

    @classmethod
    def from_sequences(
        cls, sequences: Sequence[Sequence[int]], **kwargs: Any
    ) -> "ProbabilisticSuffixTree":
        """Build a PST from already-encoded sequences."""
        pst = cls(**kwargs)
        for seq in sequences:
            pst.add_sequence(seq)
        return pst

    def add_sequence(self, encoded: Sequence[int]) -> None:
        """Insert one encoded sequence (or segment) into the tree.

        Every position contributes its next-symbol observation to the
        (at most ``max_depth``) context nodes preceding it; a final
        walk from the sequence end updates occurrence counts for
        segments that end the sequence, so ``count`` reflects *all*
        occurrences of a label, exactly as in a suffix tree.
        """
        length = len(encoded)
        if length == 0:
            return
        # Validate the whole sequence before touching any count: a
        # mid-insert ValueError must not leave the tree half-mutated
        # (and the caches stale) for a caller that catches it.
        for symbol in encoded:
            if not 0 <= symbol < self.alphabet_size:
                raise ValueError(
                    f"symbol id {symbol} out of range "
                    f"(alphabet size {self.alphabet_size})"
                )
        max_depth = self.max_depth
        root = self.root
        root.count += length
        root_next = root.next_counts

        for i in range(length):
            symbol = encoded[i]
            root_next[symbol] = root_next.get(symbol, 0) + 1
            node = root
            lowest = i - max_depth
            j = i - 1
            while j >= 0 and j >= lowest:
                context_symbol = encoded[j]
                child = node.children.get(context_symbol)
                if child is None:
                    child = PSTNode()
                    node.children[context_symbol] = child
                    self._node_count += 1
                child.count += 1
                child.next_counts[symbol] = child.next_counts.get(symbol, 0) + 1
                node = child
                j -= 1

        # Terminal contexts: segments ending exactly at the sequence end
        # occur but precede no symbol; count them without next-symbol
        # observations so node counts equal true occurrence counts.
        node = root
        j = length - 1
        while j >= 0 and j >= length - max_depth:
            context_symbol = encoded[j]
            child = node.children.get(context_symbol)
            if child is None:
                child = PSTNode()
                node.children[context_symbol] = child
                self._node_count += 1
            child.count += 1
            node = child
            j -= 1

        self._sequences_added += 1
        self._invalidate()
        if self.max_nodes is not None and self._node_count > self.max_nodes:
            from .pruning import prune_to

            prune_to(self, self.max_nodes, strategy=self.prune_strategy)

    def merge_counts(self, other: "ProbabilisticSuffixTree") -> int:
        """Fold *other*'s observation counts into this tree, in place.

        The merge is a node-by-node sum over the union of the two
        tries: matching contexts add their ``count`` and
        ``next_counts``; contexts present only in *other* are created
        (up to this tree's ``max_depth``). This generalizes the
        paper's §4.5 overlap-driven consolidation to cluster PSTs that
        were trained on disjoint shards of a stream: merging two trees
        built from sequence sets A and B yields exactly the tree that
        would have been built from A ∪ B (for shared depths), so a
        cross-shard merge is equivalent to having routed both partitions
        to one shard. The post-merge prune keeps the merged model
        parsimonious ("Approximate learning of parsimonious Bayesian
        context trees", PAPERS.md) rather than letting merged tries
        grow without bound.

        Returns the number of nodes created. Deterministic: children
        are visited in sorted symbol order, so repeated merges of the
        same pair produce bit-identical trees.
        """
        if other.alphabet_size != self.alphabet_size:
            raise ValueError(
                f"alphabet size mismatch: {self.alphabet_size} != "
                f"{other.alphabet_size}"
            )
        created = 0
        stack: list[tuple[PSTNode, PSTNode, int]] = [(self.root, other.root, 0)]
        while stack:
            mine, theirs, depth = stack.pop()
            mine.count += theirs.count
            for symbol in sorted(theirs.next_counts):
                mine.next_counts[symbol] = (
                    mine.next_counts.get(symbol, 0) + theirs.next_counts[symbol]
                )
            if depth >= self.max_depth:
                continue
            # Reverse-sorted push: LIFO pop then visits symbols in
            # ascending order, keeping node-creation order deterministic.
            for symbol in sorted(theirs.children, reverse=True):
                child = mine.children.get(symbol)
                if child is None:
                    child = PSTNode()
                    mine.children[symbol] = child
                    self._node_count += 1
                    created += 1
                stack.append((child, theirs.children[symbol], depth + 1))
        self._sequences_added += other._sequences_added
        self._invalidate()
        if self.max_nodes is not None and self._node_count > self.max_nodes:
            from .pruning import prune_to

            prune_to(self, self.max_nodes, strategy=self.prune_strategy)
        return created

    # -- lookup --------------------------------------------------------------------

    def node_for(self, segment: Sequence[int]) -> PSTNode | None:
        """Exact lookup: the node labelled *segment*, or ``None``.

        The walk consumes *segment* back-to-front because edges prepend
        symbols (reversed-sequence tree).
        """
        node = self.root
        for symbol in reversed(list(segment)):
            node = node.children.get(symbol)
            if node is None:
                return None
        return node

    def count_of(self, segment: Sequence[int]) -> int:
        """Occurrence count of *segment* (0 when absent or too long)."""
        if len(segment) > self.max_depth:
            return 0
        node = self.node_for(segment)
        return node.count if node is not None else 0

    def is_significant(self, segment: Sequence[int]) -> bool:
        """Whether *segment* is a significant segment (count ≥ c)."""
        if len(segment) == 0:
            return True
        return self.count_of(segment) >= self.significance_threshold

    def prediction_node(self, context: Sequence[int]) -> PSTNode:
        """The paper's prediction node of *context*.

        Walks from the root along the reversed context, advancing only
        while the child exists and is significant; the node reached is
        labelled with the longest significant suffix of *context*
        (possibly the root, whose label is the empty segment).
        """
        node = self.root
        threshold = self.significance_threshold
        start = max(0, len(context) - self.max_depth)
        for i in range(len(context) - 1, start - 1, -1):
            child = node.children.get(context[i])
            if child is None or child.count < threshold:
                break
            node = child
        return node

    def longest_significant_suffix(self, context: Sequence[int]) -> tuple[int, ...]:
        """The longest significant suffix of *context* as a tuple of ids."""
        node = self.root
        threshold = self.significance_threshold
        depth = 0
        start = max(0, len(context) - self.max_depth)
        for i in range(len(context) - 1, start - 1, -1):
            child = node.children.get(context[i])
            if child is None or child.count < threshold:
                break
            node = child
            depth += 1
        return tuple(context[len(context) - depth :])

    def probability(self, symbol: int, context: Sequence[int]) -> float:
        """Estimate ``P(symbol | context)`` via the prediction node.

        Applies the adjusted probability estimation (§5.2) when
        ``p_min > 0``. Falls back to the uniform distribution if the
        prediction node has no next-symbol observations at all (an
        empty tree).
        """
        node = self.prediction_node(context)
        total = node.next_total
        if total == 0:
            return 1.0 / self.alphabet_size
        raw = node.next_counts.get(symbol, 0) / total
        return adjust_probability(raw, self.alphabet_size, self.p_min)

    def probability_vector(self, context: Sequence[int]) -> npt.NDArray[np.float64]:
        """The full (smoothed) next-symbol distribution given *context*."""
        node = self.prediction_node(context)
        return self.node_probability_vector(node)

    def node_probability_vector(self, node: PSTNode) -> npt.NDArray[np.float64]:
        """The (smoothed) probability vector stored at *node*."""
        vec = np.zeros(self.alphabet_size, dtype=np.float64)
        total = node.next_total
        if total == 0:
            vec[:] = 1.0 / self.alphabet_size
            return vec
        for symbol, count in node.next_counts.items():
            vec[symbol] = count / total
        if self.p_min > 0.0:
            vec = (1.0 - self.alphabet_size * self.p_min) * vec + self.p_min
        return vec

    # -- flattened export --------------------------------------------------------------

    def _invalidate(self) -> None:
        """Record a mutation: bump the version, drop the flat export."""
        self._version += 1
        self._flat_cache = None

    @property
    def version(self) -> int:
        """Mutation counter; increments on every change to the tree.

        Anything derived from tree state (most importantly the
        :meth:`flattened` array export) is valid exactly as long as the
        version it was built from still matches.
        """
        return self._version

    def flattened(self) -> "FlattenedPST":
        """The array-form export of this tree (cached per version).

        Built lazily by :func:`repro.core.backends.flatten.flatten_pst`
        and invalidated automatically by ``add_sequence``,
        ``decay_counts`` and pruning. The vectorized scoring backend
        consumes this instead of walking ``PSTNode`` objects.
        """
        prof = get_profiler()
        if self._flat_cache is None or self._flat_cache.version != self._version:
            from .backends.flatten import flatten_pst

            if prof.enabled:
                prof.cache_miss("flat")
                with prof.kernel("flatten"):
                    self._flat_cache = flatten_pst(self)
            else:
                self._flat_cache = flatten_pst(self)
        elif prof.enabled:
            prof.cache_hit("flat")
        return self._flat_cache

    # -- traversal / stats -----------------------------------------------------------

    def iter_nodes(self) -> Iterator[tuple[tuple[int, ...], PSTNode]]:
        """Depth-first iteration over ``(label, node)`` pairs.

        Labels are in original (unreversed) orientation; the root has
        the empty label.
        """
        stack: list[tuple[tuple[int, ...], PSTNode]] = [((), self.root)]
        while stack:
            label, node = stack.pop()
            yield label, node
            for symbol, child in node.children.items():
                stack.append(((symbol,) + label, child))

    @property
    def node_count(self) -> int:
        """Total number of nodes, root included."""
        return self._node_count

    @property
    def sequences_added(self) -> int:
        """How many sequences/segments have been inserted."""
        return self._sequences_added

    @property
    def total_symbols(self) -> int:
        """Sum of inserted sequence lengths (the root count)."""
        return self.root.count

    def significant_node_count(self) -> int:
        """Number of nodes with count ≥ the significance threshold."""
        threshold = self.significance_threshold
        return sum(1 for _, node in self.iter_nodes() if node.count >= threshold)

    def depth(self) -> int:
        """Length of the longest label currently in the tree."""
        best = 0
        for label, _ in self.iter_nodes():
            if len(label) > best:
                best = len(label)
        return best

    def approx_memory_bytes(self) -> int:
        """Rough memory footprint, for the PST-size experiments."""
        return self._node_count * APPROX_BYTES_PER_NODE

    def stats(self) -> PSTStats:
        """Structural summary (node count, depths, occurrence mass).

        One depth-first walk, so ``O(nodes)``; suitable for
        per-iteration telemetry but not per-symbol hot loops.
        """
        threshold = self.significance_threshold
        node_count = 0
        significant = 0
        mass = 0
        depth_counts: list[int] = []
        stack: list[tuple[PSTNode, int]] = [(self.root, 0)]
        while stack:
            node, depth = stack.pop()
            node_count += 1
            mass += node.count
            if node.count >= threshold:
                significant += 1
            while len(depth_counts) <= depth:
                depth_counts.append(0)
            depth_counts[depth] += 1
            for child in node.children.values():
                stack.append((child, depth + 1))
        return PSTStats(
            node_count=node_count,
            significant_nodes=significant,
            max_depth=len(depth_counts) - 1,
            depth_histogram=tuple(depth_counts),
            total_occurrence_mass=mass,
            sequences_added=self._sequences_added,
            total_symbols=self.root.count,
            approx_memory_bytes=node_count * APPROX_BYTES_PER_NODE,
        )

    def __repr__(self) -> str:
        return (
            f"ProbabilisticSuffixTree(nodes={self._node_count}, "
            f"depth≤{self.max_depth}, c={self.significance_threshold}, "
            f"sequences={self._sequences_added}, "
            f"symbols={self.total_symbols})"
        )

    # -- maintenance -------------------------------------------------------------------

    def decay_counts(self, factor: float, min_count: int = 1) -> int:
        """Exponentially decay every count in the tree (streaming drift).

        Multiplies each node's occurrence count — and its next-symbol
        counters — by *factor* (``0 < factor ≤ 1``), flooring to
        integers, then discards any subtree whose root count falls
        below *min_count* via :meth:`_forget_subtree`. Flooring
        preserves the suffix-trie invariant ``child.count ≤
        parent.count`` (a longer label never occurs more often than
        its suffix), so discarded nodes always take their entire
        subtree with them and the tree stays structurally consistent.

        This is the streaming counterpart of the paper's §5.1 pruning:
        instead of forgetting under a *memory* budget, the model
        forgets under a *time* budget, so cluster PSTs track concept
        drift instead of fossilizing around historical counts.
        Repeated decay with no intervening insertions can only shrink
        the significant-node set (counts are non-increasing under
        flooring), never grow it.

        Returns the number of nodes removed. ``factor >= 1`` is a
        no-op returning 0; probability vectors remain normalized
        because they are re-derived from the scaled counts.
        """
        if factor <= 0.0 or factor > 1.0:
            raise ValueError("decay factor must be in (0, 1]")
        if min_count < 1:
            raise ValueError("min_count must be at least 1")
        if factor >= 1.0:
            return 0
        self._invalidate()

        def scale(value: int) -> int:
            return int(value * factor)

        removed = 0
        root = self.root
        root.count = scale(root.count)
        stack = [root]
        while stack:
            node = stack.pop()
            for symbol, counts in list(node.next_counts.items()):
                scaled = scale(counts)
                if scaled <= 0:
                    del node.next_counts[symbol]
                else:
                    node.next_counts[symbol] = scaled
            for symbol in list(node.children):
                child = node.children[symbol]
                new_count = scale(child.count)
                if new_count < min_count:
                    removed += self._forget_subtree(node, symbol)
                    continue
                child.count = new_count
                stack.append(child)
        registry = get_registry()
        if registry.enabled:
            registry.counter("pst.decay_events").inc()
            registry.counter("pst.decay_pruned_nodes").inc(removed)
        return removed

    def _forget_subtree(self, parent: PSTNode, symbol: int) -> int:
        """Detach and discount the child subtree at ``parent.children[symbol]``.

        Returns the number of nodes removed. Used by the pruning
        strategies; counts stored elsewhere in the tree are untouched
        (pruning loses information, it does not rescale it).
        """
        if symbol not in parent.children:
            return 0
        self._invalidate()
        child = parent.children.pop(symbol)
        removed = child.subtree_size()
        self._node_count -= removed
        return removed

    def recount_nodes(self) -> int:
        """Recompute the cached node count from the tree (debug aid).

        Deliberately does not bump ``_version``: the flat export never
        reads ``_node_count``, and recounting changes no count the
        caches are built from — it only repairs the bookkeeping gauge.
        """
        self._node_count = self.root.subtree_size()  # cluseq: ignore[CLQ007]
        return self._node_count

    # -- sampling ----------------------------------------------------------------------

    def sample(
        self, length: int, rng: np.random.Generator | None = None
    ) -> list[int]:
        """Generate a sequence of *length* symbols from this PST.

        Sampling follows exactly the prediction procedure used for
        scoring, so a cluster's PST can act as its generative model
        (how the paper builds its synthetic workloads). Deterministic
        when *rng* is omitted: a fixed seed-0 generator is created per
        call.
        """
        if length < 0:
            raise ValueError("length must be non-negative")
        if rng is None:
            rng = np.random.default_rng(0)
        out: list[int] = []
        ids = np.arange(self.alphabet_size)
        for _ in range(length):
            vec = self.probability_vector(out[-self.max_depth :])
            total = vec.sum()
            if total <= 0:  # pragma: no cover - defensive
                vec = np.full(self.alphabet_size, 1.0 / self.alphabet_size)
            else:
                vec = vec / total
            out.append(int(rng.choice(ids, p=vec)))
        return out

    # -- serialization -------------------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """A JSON-serializable snapshot of the tree."""

        def encode(node: PSTNode) -> dict[str, Any]:
            return {
                "count": node.count,
                "next": {str(s): c for s, c in node.next_counts.items()},
                "children": {
                    str(s): encode(child) for s, child in node.children.items()
                },
            }

        return {
            "alphabet_size": self.alphabet_size,
            "max_depth": self.max_depth,
            "significance_threshold": self.significance_threshold,
            "p_min": self.p_min,
            "max_nodes": self.max_nodes,
            "prune_strategy": self.prune_strategy,
            "sequences_added": self._sequences_added,
            "root": encode(self.root),
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "ProbabilisticSuffixTree":
        """Rebuild a tree from :meth:`to_dict` output."""
        pst = cls(
            alphabet_size=data["alphabet_size"],
            max_depth=data["max_depth"],
            significance_threshold=data["significance_threshold"],
            p_min=data.get("p_min", 0.0),
            max_nodes=data.get("max_nodes"),
            prune_strategy=data.get("prune_strategy", "paper"),
        )

        def decode(payload: dict[str, Any]) -> PSTNode:
            node = PSTNode()
            node.count = payload["count"]
            node.next_counts = {int(s): c for s, c in payload["next"].items()}
            node.children = {
                int(s): decode(child) for s, child in payload["children"].items()
            }
            return node

        pst.root = decode(data["root"])
        pst._sequences_added = data.get("sequences_added", 0)
        pst.recount_nodes()
        pst._invalidate()
        return pst
