"""The CLUSEQ clustering algorithm (paper §4).

One :class:`CLUSEQ` run iterates four phases until the clustering is
stable:

1. **New cluster generation** (§4.1) — seed ``k_n`` fresh single-
   sequence clusters from the unclustered pool (``k_n = k`` on the
   first iteration, then ``k' · f`` with growth factor
   ``f = max(k'_n − k'_c, 0) / k'_n``; see DESIGN.md for why the
   denominator is ``k'_n``).
2. **Sequence reclustering** (§4.2–§4.4) — score every sequence against
   every cluster with the similarity DP; a sequence joins each cluster
   whose similarity reaches the threshold ``t`` (clusters may overlap),
   and each newly-joined cluster absorbs the sequence's best-scoring
   segment into its PST.
3. **Cluster consolidation** (§4.5) — dismiss clusters covered by
   larger ones.
4. **Threshold adjustment** (§4.6, optional) — move ``t`` halfway
   towards the valley ``t̂`` of the similarity histogram.

The run terminates when an iteration changes neither the number of
clusters nor any sequence's membership (or at ``max_iterations``).

Thresholds are handled in log scale throughout: similarities span
hundreds of orders of magnitude, so the paper's arithmetic blend
``t ← (t + t̂)/2`` is applied to ``log t`` (a geometric mean in linear
scale) and the 1 % convergence test becomes ``|log t − log t̂| < 0.01``,
i.e. the thresholds agree within 1 % as a ratio.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from functools import partial
from collections.abc import Callable, Sequence
from typing import Any

import numpy as np
import numpy.typing as npt

from ..obs import (
    MetricsRegistry,
    get_logger,
    get_profiler,
    get_registry,
    span,
    use_registry,
)
from ..sequences.database import SequenceDatabase
from ..typing import PSTFactory
from .backends import (
    BACKENDS,
    PstBatchScorer,
    ScoreMatrixResult,
    ScoringPool,
    resolve_backend,
)
from .cluster import Cluster, Membership
from .pst import APPROX_BYTES_PER_NODE
from .consolidation import consolidate
from .seeding import build_seed_pst, select_seeds
from .similarity import SimilarityResult, similarity
from .smoothing import default_p_min
from .threshold import VALLEY_METHODS

#: Valid sequence-examination orders for the reclustering phase (§6.3).
ORDERINGS = ("fixed", "random", "cluster")

#: Sequences prescored per chunk by the vectorized reclustering path.
PRESCORE_CHUNK = 32

#: When more than this fraction of a prescored chunk had to be rescored
#: (its cluster absorbed a segment after the snapshot), the iteration is
#: absorb-heavy and batch prescoring wastes work — the rest of the
#: iteration falls back to serial scoring. Deterministic: the decision
#: depends only on join counts, never on wall clock.
STALE_SWITCH_FRACTION = 0.35

_logger = get_logger("core.cluseq")


@dataclass
class CluseqParams:
    """Tunable parameters of a CLUSEQ run.

    The three inputs of the paper's algorithm are *k* (initial cluster
    count), *significance_threshold* (``c``) and *similarity_threshold*
    (initial ``t``); the rest are engineering knobs the paper fixes in
    prose (sample multiplier, PST memory budget, smoothing, ordering).
    """

    k: int = 1
    significance_threshold: int = 30
    similarity_threshold: float = 1.2
    max_depth: int = 6
    sample_multiplier: int = 5
    adjust_threshold: bool = True
    calibrate_threshold: bool = True
    max_iterations: int = 25
    max_nodes: int | None = None
    prune_strategy: str = "paper"
    p_min: float | None = None
    ordering: str = "fixed"
    min_unique_members: int | None = None
    dissolve_covered: bool = True
    rebuild_each_iteration: bool = True
    histogram_buckets: int = 100
    valley_method: str = "regression"
    calibration_method: str = "max"
    seed: int = 0
    #: Scoring backend: ``reference`` (normative per-pair loops),
    #: ``vectorized`` (flattened-array batch kernel, bit-identical
    #: results) or ``auto`` (currently the vectorized backend).
    backend: str = "auto"
    #: Worker processes for prescoring the re-examination scoring
    #: matrix (vectorized backend only); 0 keeps everything in-process.
    #: Results are identical for any worker count.
    workers: int = 0

    def __post_init__(self) -> None:
        if self.k < 1:
            raise ValueError("k must be at least 1")
        if self.significance_threshold < 1:
            raise ValueError("significance_threshold must be at least 1")
        if self.similarity_threshold <= 0:
            raise ValueError("similarity_threshold must be positive")
        if self.max_depth < 1:
            raise ValueError("max_depth must be at least 1")
        if self.sample_multiplier < 1:
            raise ValueError("sample_multiplier must be at least 1")
        if self.max_iterations < 1:
            raise ValueError("max_iterations must be at least 1")
        if self.ordering not in ORDERINGS:
            raise ValueError(f"ordering must be one of {ORDERINGS}")
        if self.valley_method not in VALLEY_METHODS:
            raise ValueError(
                f"valley_method must be one of {tuple(VALLEY_METHODS)}"
            )
        if (
            self.calibration_method != "max"
            and self.calibration_method not in VALLEY_METHODS
        ):
            raise ValueError(
                "calibration_method must be 'max' or one of "
                f"{tuple(VALLEY_METHODS)}"
            )
        if self.backend not in BACKENDS:
            raise ValueError(f"backend must be one of {BACKENDS}")
        if self.workers < 0:
            raise ValueError("workers must be non-negative")

    def resolved_min_unique(self) -> int:
        """The consolidation threshold (defaults to ``c``, per the paper)."""
        if self.min_unique_members is not None:
            return self.min_unique_members
        return self.significance_threshold


@dataclass(frozen=True)
class IterationStats:
    """What one CLUSEQ iteration did, for history/diagnostics."""

    iteration: int
    new_clusters: int
    clusters_before_consolidation: int
    clusters_removed: int
    clusters_after: int
    unclustered: int
    membership_changes: int
    threshold: float
    log_threshold: float
    valley: float | None
    elapsed_seconds: float
    #: Symbols scored during this iteration's reclustering phase —
    #: the deterministic counterpart of wall time, ∝ N · k' · l̄ (the
    #: paper's §4.7 per-iteration cost model).
    reclustering_work: int = 0
    #: Whether this iteration triggered the paper's stability exit
    #: (same clustering as the previous iteration, threshold settled).
    #: ``True`` only ever on the final history entry.
    stable: bool = False


@dataclass(frozen=True)
class IterationSnapshot:
    """Per-iteration engine state handed to observer hooks.

    Hooks receive one snapshot after each completed iteration —
    including the terminating one — so external observers (progress
    bars, live dashboards, convergence monitors) can watch cluster
    counts, threshold trajectory and PST growth without re-deriving
    them from internals.
    """

    stats: IterationStats
    #: Current members per live cluster id.
    cluster_sizes: dict[int, int]
    #: Current PST node count per live cluster id.
    pst_node_counts: dict[int, int]
    log_threshold: float

    @property
    def total_pst_nodes(self) -> int:
        return sum(self.pst_node_counts.values())


#: Signature of a per-iteration observer hook.
IterationHook = Callable[[IterationSnapshot], None]


@dataclass
class ClusteringResult:
    """Outcome of one CLUSEQ run.

    ``assignments`` maps each sequence index to the ids of every
    cluster it belongs to (CLUSEQ clusters can overlap); ``labels()``
    flattens that to one primary cluster per sequence for evaluation.
    """

    clusters: list[Cluster]
    assignments: dict[int, set[int]]
    params: CluseqParams
    background: npt.NDArray[np.float64]
    final_log_threshold: float
    history: list[IterationStats] = field(default_factory=list)
    elapsed_seconds: float = 0.0
    #: ``True`` when the run exited through the paper's stability rule,
    #: ``False`` when it was cut off at ``max_iterations``. Either way
    #: the final iteration's stats are the last ``history`` entry.
    converged: bool = False

    @property
    def final_threshold(self) -> float:
        """Final ``t`` in linear scale (``inf`` if beyond float range)."""
        if self.final_log_threshold > 709:
            return math.inf
        return math.exp(self.final_log_threshold)

    @property
    def num_clusters(self) -> int:
        return len(self.clusters)

    @property
    def total_reclustering_work(self) -> int:
        """Total symbols scored across all reclustering phases.

        A deterministic, machine-independent cost measurement
        (∝ M · N · k' · l̄, the paper's §4.7 total); the scalability
        benchmarks assert on this rather than contention-prone wall
        time.
        """
        return sum(stats.reclustering_work for stats in self.history)

    @property
    def iterations(self) -> int:
        return len(self.history)

    def cluster_by_id(self, cluster_id: int) -> Cluster:
        for cluster in self.clusters:
            if cluster.cluster_id == cluster_id:
                return cluster
        raise KeyError(f"no cluster with id {cluster_id}")

    def labels(self) -> list[int | None]:
        """Primary cluster id per sequence (``None`` for outliers).

        The primary cluster of a sequence is the member cluster with
        the highest recorded log-similarity.
        """
        size = max(self.assignments.keys(), default=-1) + 1
        out: list[int | None] = [None] * size
        for index, cluster_ids in self.assignments.items():
            best_id: int | None = None
            best_log = -math.inf
            for cid in cluster_ids:
                membership = self.cluster_by_id(cid).membership_of(index)
                if membership is not None and membership.log_similarity > best_log:
                    best_log = membership.log_similarity
                    best_id = cid
            out[index] = best_id
        return out

    def outliers(self) -> list[int]:
        """Indices of sequences assigned to no cluster."""
        return [index for index, ids in sorted(self.assignments.items()) if not ids]

    def score_sequence(self, encoded: Sequence[int]) -> dict[int, SimilarityResult]:
        """Score a (possibly unseen) encoded sequence against every cluster."""
        return {
            cluster.cluster_id: similarity(cluster.pst, encoded, self.background)
            for cluster in self.clusters
        }

    def predict(self, encoded: Sequence[int]) -> int | None:
        """Best cluster for an encoded sequence, or ``None`` (outlier).

        Uses the run's final similarity threshold.
        """
        scores = self.score_sequence(encoded)
        if not scores:
            return None
        best_id, best = max(scores.items(), key=lambda kv: kv[1].log_similarity)
        if best.log_similarity >= self.final_log_threshold:
            return best_id
        return None

    def next_sequence_index(self) -> int:
        """Smallest index that collides with no recorded sequence.

        Scans the assignment map *and* every cluster's membership (plus
        seed indices): a model loaded from disk may carry members that
        are absent from a trimmed assignment map, and appending at
        ``max(assignments) + 1`` alone would silently overwrite one of
        their membership records.
        """
        top = max(self.assignments.keys(), default=-1)
        for cluster in self.clusters:
            top = max(top, cluster.seed_index, max(cluster.members, default=-1))
        return top + 1

    def assign_and_absorb(
        self,
        encoded: Sequence[int],
        *,
        index: int | None = None,
        log_threshold: float | None = None,
    ) -> int | None:
        """Incrementally add one new sequence to the fitted clustering.

        The streaming counterpart of ``fit``: the sequence is scored
        against every cluster; if its best similarity clears the final
        threshold it joins that cluster, the cluster's PST absorbs its
        best-scoring segment (§4.4) and the assignment map grows by one
        entry. Returns the cluster id, or ``None`` when the sequence is
        an outlier (which is also recorded).

        *index* pins the sequence index explicitly (the streaming
        engine allocates its own); when omitted a safe non-colliding
        index is chosen via :meth:`next_sequence_index`, which stays
        correct after a persistence round-trip. *log_threshold*
        overrides the run's final threshold for this one decision.

        This performs no re-iteration — existing memberships are left
        untouched — so it suits append-only deployment; rerun ``fit``
        periodically if the data distribution drifts.
        """
        if len(encoded) == 0:
            raise ValueError("cannot assign an empty sequence")
        new_index = self.next_sequence_index() if index is None else index
        log_t = (
            self.final_log_threshold if log_threshold is None else log_threshold
        )
        best: tuple[int, SimilarityResult] | None = None
        for cluster in self.clusters:
            result = similarity(cluster.pst, encoded, self.background)
            if best is None or result.log_similarity > best[1].log_similarity:
                best = (cluster.cluster_id, result)
        if best is None or best[1].log_similarity < log_t:
            self.assignments[new_index] = set()
            return None
        best_id, best_result = best
        cluster = self.cluster_by_id(best_id)
        cluster.set_member(
            Membership(
                sequence_index=new_index,
                log_similarity=best_result.log_similarity,
                best_start=best_result.best_start,
                best_end=best_result.best_end,
            )
        )
        cluster.absorb_segment(
            list(encoded[best_result.best_start : best_result.best_end])
        )
        self.assignments[new_index] = {best_id}
        return best_id

    def summary(self) -> str:
        """A short human-readable report of the run.

        The iteration count, the final iteration's timing and the
        membership-change trail all come from ``history``, which both
        exit paths (stability and ``max_iterations``) populate for
        every executed iteration, the terminating one included.
        """
        sizes = sorted((c.size for c in self.clusters), reverse=True)
        exit_reason = "converged" if self.converged else "hit max_iterations"
        last = self.history[-1] if self.history else None
        last_part = (
            f"; last iter {last.elapsed_seconds:.2f}s, "
            f"{last.membership_changes} membership changes"
            if last is not None
            else ""
        )
        return (
            f"CLUSEQ: {self.num_clusters} clusters after {self.iterations} "
            f"iterations ({self.elapsed_seconds:.2f}s, {exit_reason}); "
            f"final t={self.final_threshold:.4g}; "
            f"{len(self.outliers())} outliers; sizes={sizes}{last_part}"
        )


class CLUSEQ:
    """The CLUSEQ clustering engine.

    Parameters
    ----------
    params:
        The run parameters (or pass them as keyword overrides).
    hooks:
        Optional per-iteration observer callbacks; each receives an
        :class:`IterationSnapshot` after every completed iteration.
        Use :meth:`add_hook` to register more later.
    registry:
        Optional :class:`~repro.obs.MetricsRegistry` activated for the
        duration of :meth:`fit`; when omitted the process-wide active
        registry is used (the no-op one unless the application enabled
        collection).

    Example
    -------
    >>> from repro import CLUSEQ, CluseqParams, generate_two_cluster_toy
    >>> db = generate_two_cluster_toy()
    >>> params = CluseqParams(k=2, significance_threshold=2,
    ...                       min_unique_members=3, seed=1)
    >>> result = CLUSEQ(params).fit(db)
    >>> result.num_clusters >= 1
    True
    """

    def __init__(
        self,
        params: CluseqParams | None = None,
        hooks: Sequence[IterationHook] | None = None,
        registry: MetricsRegistry | None = None,
        **overrides: Any,
    ) -> None:
        if params is None:
            params = CluseqParams(**overrides)
        elif overrides:
            raise TypeError("pass either params or keyword overrides, not both")
        self.params = params
        self.hooks: list[IterationHook] = list(hooks or [])
        self.registry: MetricsRegistry | None = registry

    def add_hook(self, hook: IterationHook) -> "CLUSEQ":
        """Register a per-iteration observer; returns ``self`` for chaining."""
        self.hooks.append(hook)
        return self

    # -- public API -------------------------------------------------------------

    def fit(self, db: SequenceDatabase) -> ClusteringResult:
        """Cluster every sequence of *db* and return the result."""
        if self.registry is not None:
            with use_registry(self.registry):
                with span("cluseq"):
                    return self._fit(db)
        with span("cluseq"):
            return self._fit(db)

    def _fit(self, db: SequenceDatabase) -> ClusteringResult:
        if len(db) == 0:
            raise ValueError("cannot cluster an empty database")
        params = self.params
        rng = np.random.default_rng(params.seed)
        alphabet_size = db.alphabet.size
        p_min = (
            params.p_min
            if params.p_min is not None
            else default_p_min(alphabet_size)
        )
        background = db.background_probabilities()
        encoded = [db.encoded(i) for i in range(len(db))]

        # Backend selection. The vectorized scorer is bit-identical to
        # the reference loops, so this choice can never change the
        # clustering — only how fast scores are produced.
        backend = resolve_backend(params.backend)
        scorer = PstBatchScorer(background) if backend == "vectorized" else None
        if scorer is not None and params.workers > 0:
            # The context manager guarantees executor shutdown and
            # shared-memory segment unlink on every exit path.
            with ScoringPool(params.workers) as pool:
                return self._fit_loop(
                    db, encoded, background, p_min, rng, scorer, pool
                )
        return self._fit_loop(db, encoded, background, p_min, rng, scorer, None)

    def _fit_loop(
        self,
        db: SequenceDatabase,
        encoded: list[list[int]],
        background: npt.NDArray[np.float64],
        p_min: float,
        rng: np.random.Generator,
        scorer: PstBatchScorer | None,
        pool: ScoringPool | None,
    ) -> ClusteringResult:
        """The §4 iteration loop proper, scoring backend already resolved."""
        params = self.params
        pst_factory = partial(
            build_seed_pst,
            alphabet_size=db.alphabet.size,
            max_depth=params.max_depth,
            significance_threshold=params.significance_threshold,
            p_min=p_min,
            max_nodes=params.max_nodes,
            prune_strategy=params.prune_strategy,
        )

        clusters: list[Cluster] = []
        assignments: dict[int, set[int]] = {i: set() for i in range(len(db))}
        # Consecutive iterations each sequence has spent unclustered.
        # Sequences with long streaks behave like outliers: greedy
        # min-max selection would keep choosing them as seeds (they are
        # maximally dissimilar from everything) and waste the iteration.
        unclustered_streak: dict[int, int] = {i: 0 for i in range(len(db))}
        history: list[IterationStats] = []
        log_t = math.log(params.similarity_threshold)
        log_t_floor = 0.0
        valley_finder = VALLEY_METHODS[params.valley_method]
        threshold_converged = not params.adjust_threshold
        next_cluster_id = 0
        k_n = params.k
        prev_snapshot: (
            tuple[tuple[int, ...], tuple[tuple[int, ...], ...]] | None
        ) = None
        run_start = time.perf_counter()

        for iteration in range(params.max_iterations):
            iter_start = time.perf_counter()

            # -- phase 1: new cluster generation ---------------------------------
            with span("seed"):
                unclustered = [i for i, ids in assignments.items() if not ids]
                # While the similarity threshold is still being adjusted,
                # keep seeds flowing from the unclustered pool: sequences
                # ejected by a rising t must be able to found new clusters,
                # otherwise an early over-merge is irreversible. The floor
                # scales with the pool because greedy min-max selection
                # favours outliers (they are maximally dissimilar), so with
                # a large pool a single seed per iteration is usually
                # wasted on noise.
                requested = k_n
                if requested == 0 and unclustered and not threshold_converged:
                    requested = max(1, len(unclustered) // 20)
                # Prefer recently-ejected sequences as seed candidates; a
                # sequence unclustered for many consecutive iterations is
                # most likely a genuine outlier, not an undiscovered
                # cluster. Fall back to the full pool when the filter would
                # empty it (e.g. the first iterations).
                fresh = [i for i in unclustered if unclustered_streak[i] <= 3]
                candidates = fresh if fresh else unclustered
                seeds = select_seeds(
                    candidates=candidates,
                    encoded_lookup=lambda i: encoded[i],
                    existing_clusters=clusters,
                    background=background,
                    count=min(requested, len(unclustered)),
                    sample_multiplier=params.sample_multiplier,
                    rng=rng,
                    pst_factory=pst_factory,
                )
                for choice in seeds:
                    clusters.append(
                        Cluster(
                            cluster_id=next_cluster_id,
                            pst=pst_factory(encoded[choice.sequence_index]),
                            seed_index=choice.sequence_index,
                            created_at_iteration=iteration,
                        )
                    )
                    next_cluster_id += 1
                n_new = len(seeds)

            # -- iteration-0 threshold calibration ---------------------------------
            # Committing memberships with a grossly under-set initial t
            # merges everything into one irreversible mixture cluster
            # before the paper's end-of-iteration adjustment can react.
            # A dry scoring pass against the fresh seed models lets the
            # valley heuristic pick the starting t; Table 6 shows the
            # final t should not depend on the initial one anyway.
            if (
                iteration == 0
                and params.adjust_threshold
                and params.calibrate_threshold
                and clusters
            ):
                with span("calibrate"):
                    calibrated = self._calibrate_initial_threshold(
                        db, clusters, encoded, background, pst_factory, rng,
                        scorer,
                    )
                if calibrated is not None:
                    log_t = calibrated
                    # Permanent floor: separation between a cluster and
                    # foreign sequences only improves as models mature,
                    # so any later valley estimate *below* the one seen
                    # against the pristine single-seed models is an
                    # artefact (half-grown patchwork models compress
                    # the similarity scale). Following it down is the
                    # irreversible everything-merges failure mode.
                    log_t_floor = log_t

            # -- phase 2: sequence reclustering ------------------------------------
            with span("recluster"):
                order = self._examination_order(len(db), clusters, assignments, rng)
                all_log_sims: list[float] = []
                membership_changes = 0
                reclustering_work = 0
                if scorer is not None:
                    membership_changes, reclustering_work = (
                        self._recluster_vectorized(
                            order,
                            encoded,
                            clusters,
                            assignments,
                            unclustered_streak,
                            background,
                            log_t,
                            all_log_sims,
                            scorer,
                            pool,
                        )
                    )
                else:
                    for index in order:
                        seq = encoded[index]
                        results = [
                            similarity(cluster.pst, seq, background)
                            for cluster in clusters
                        ]
                        reclustering_work += len(seq) * len(clusters)
                        if self._commit_examination(
                            index,
                            seq,
                            clusters,
                            [r.log_similarity for r in results],
                            results.__getitem__,
                            log_t,
                            assignments,
                            unclustered_streak,
                            all_log_sims,
                        ):
                            membership_changes += 1

            # -- phase 3: consolidation ----------------------------------------------
            with span("consolidate"):
                before = len(clusters)
                clusters, removed = consolidate(
                    clusters,
                    params.resolved_min_unique(),
                    dissolve_covered=params.dissolve_covered,
                )
                if removed:
                    removed_ids = {cluster.cluster_id for cluster in removed}
                    for index, ids in assignments.items():
                        if ids & removed_ids:
                            assignments[index] = ids - removed_ids
                n_removed = len(removed)

            if params.rebuild_each_iteration:
                with span("rebuild"):
                    self._rebuild_cluster_models(clusters, encoded, pst_factory)

            # -- phase 4: threshold adjustment ------------------------------------------
            valley_linear: float | None = None
            threshold_moved = False
            if params.adjust_threshold and not threshold_converged:
                with span("adjust_threshold"):
                    valley = valley_finder(
                        all_log_sims, buckets=params.histogram_buckets
                    )
                if valley is not None:
                    valley_linear = valley.threshold
                    if abs(log_t - valley.log_threshold) < 0.01:
                        threshold_converged = True
                    else:
                        # Blend in log scale (geometric mean). Clamp at
                        # max(1, calibration floor): t ≥ 1 is the
                        # paper's lower bound, and the calibration floor
                        # guards against artefact valleys from immature
                        # models (see the calibration comment above).
                        blended = (log_t + valley.log_threshold) / 2.0
                        new_log_t = max(blended, log_t_floor, 0.0)
                        threshold_moved = abs(new_log_t - log_t) > 1e-12
                        log_t = new_log_t

            # -- growth factor & termination ---------------------------------------------
            if n_new > 0:
                growth = max(n_new - n_removed, 0) / n_new
            else:
                growth = 0.0
            k_n = int(round(len(clusters) * growth))

            # The paper terminates when "the clustering produced by the
            # current iteration remains the same as that of the previous
            # iteration" — compared *after* consolidation, so a seed
            # cluster that was immediately dismissed does not count as a
            # change. While t is still converging the run continues even
            # if memberships momentarily repeat.
            snapshot = (
                tuple(sorted(cluster.cluster_id for cluster in clusters)),
                tuple(
                    tuple(sorted(assignments[i])) for i in range(len(db))
                ),
            )
            stable = (
                prev_snapshot is not None
                and snapshot == prev_snapshot
                and not threshold_moved
            )
            prev_snapshot = snapshot

            # History is appended *after* the termination logic so the
            # final iteration — on either exit path (stability here,
            # max_iterations via loop exhaustion) — records its full
            # elapsed time, its membership-change count and whether it
            # was the stable one.
            stats = IterationStats(
                iteration=iteration,
                new_clusters=n_new,
                clusters_before_consolidation=before,
                clusters_removed=n_removed,
                clusters_after=len(clusters),
                unclustered=sum(1 for ids in assignments.values() if not ids),
                membership_changes=membership_changes,
                threshold=math.exp(log_t) if log_t < 709 else math.inf,
                log_threshold=log_t,
                valley=valley_linear,
                elapsed_seconds=time.perf_counter() - iter_start,
                reclustering_work=reclustering_work,
                stable=stable,
            )
            history.append(stats)
            self._observe_iteration(stats, clusters, log_t)
            if stable:
                break

        converged = bool(history) and history[-1].stable
        registry = get_registry()
        if registry.enabled:
            registry.gauge("cluseq.iterations").set(len(history))
            registry.gauge("cluseq.final_clusters").set(len(clusters))
            registry.gauge("cluseq.final_log_threshold").set(log_t)
            registry.gauge("cluseq.converged").set(1.0 if converged else 0.0)
            total_nodes = 0
            for cluster in clusters:
                tree_stats = cluster.pst.stats()
                total_nodes += tree_stats.node_count
                registry.histogram(
                    "pst.final_depth", buckets=tuple(range(1, 17))
                ).observe(tree_stats.max_depth)
                registry.histogram("pst.final_nodes").observe(
                    tree_stats.node_count
                )
            registry.gauge("cluseq.final_pst_nodes").set(total_nodes)
        _logger.info(
            "run finished",
            extra={
                "iterations": len(history),
                "clusters": len(clusters),
                "converged": converged,
                "log_threshold": log_t,
            },
        )
        return ClusteringResult(
            clusters=clusters,
            assignments=assignments,
            params=params,
            background=background,
            final_log_threshold=log_t,
            history=history,
            elapsed_seconds=time.perf_counter() - run_start,
            converged=converged,
        )

    # -- internals ------------------------------------------------------------------

    def _observe_iteration(
        self, stats: IterationStats, clusters: list[Cluster], log_t: float
    ) -> None:
        """Per-iteration telemetry: metrics series, one log line, hooks.

        The ``cluseq.iteration.*`` series grow by exactly one entry per
        iteration, so their lengths always equal ``len(history)`` —
        the trajectory the threshold/cluster-count plots need.
        """
        registry = get_registry()
        prof = get_profiler()
        want_snapshot = bool(self.hooks)
        if registry.enabled or prof.enabled or want_snapshot:
            pst_nodes = {
                cluster.cluster_id: cluster.pst.node_count for cluster in clusters
            }
        if prof.enabled:
            # Per-iteration model-size and process-memory trajectory
            # (§6's scalability story needs both axes: time *and* space).
            total_nodes = sum(pst_nodes.values())
            prof.gauge("model.clusters", stats.clusters_after)
            prof.gauge("model.pst_nodes", total_nodes)
            prof.gauge("model.approx_bytes", total_nodes * APPROX_BYTES_PER_NODE)
            prof.series("iteration.pst_nodes", total_nodes)
            peak_rss = prof.sample_memory()
            if peak_rss is not None:
                prof.series("iteration.peak_rss_bytes", peak_rss)
        if registry.enabled:
            registry.series("cluseq.iteration.clusters").append(stats.clusters_after)
            registry.series("cluseq.iteration.unclustered").append(stats.unclustered)
            registry.series("cluseq.iteration.log_threshold").append(
                stats.log_threshold
            )
            registry.series("cluseq.iteration.membership_changes").append(
                stats.membership_changes
            )
            registry.series("cluseq.iteration.pst_nodes").append(
                sum(pst_nodes.values())
            )
            registry.counter("cluseq.clusters_seeded").inc(stats.new_clusters)
            registry.counter("cluseq.clusters_dismissed").inc(stats.clusters_removed)
            registry.counter("cluseq.reclustering_work").inc(
                stats.reclustering_work
            )
        if _logger.isEnabledFor(20):  # logging.INFO
            _logger.info(
                "iteration %d: %d clusters, %d unclustered",
                stats.iteration,
                stats.clusters_after,
                stats.unclustered,
                extra={
                    "iteration": stats.iteration,
                    "clusters": stats.clusters_after,
                    "unclustered": stats.unclustered,
                    "membership_changes": stats.membership_changes,
                    "log_threshold": stats.log_threshold,
                    "elapsed_seconds": round(stats.elapsed_seconds, 6),
                },
            )
        if want_snapshot:
            snapshot = IterationSnapshot(
                stats=stats,
                cluster_sizes={
                    cluster.cluster_id: cluster.size for cluster in clusters
                },
                pst_node_counts=pst_nodes,
                log_threshold=log_t,
            )
            for hook in self.hooks:
                hook(snapshot)

    @staticmethod
    def _commit_examination(
        index: int,
        seq: list[int],
        clusters: list[Cluster],
        log_sims: Sequence[float],
        result_for: Callable[[int], SimilarityResult],
        log_t: float,
        assignments: dict[int, set[int]],
        unclustered_streak: dict[int, int],
        all_log_sims: list[float],
    ) -> bool:
        """Apply one sequence's §4.2–§4.4 examination outcome.

        *log_sims* holds the sequence's log-SIM against each cluster,
        in cluster order; *result_for* materializes the full result
        (with segment bounds) for a cluster position and is called only
        for clusters the sequence actually joins. Joins are the sparse
        outcome, so the vectorized path never builds result objects for
        the dense reject majority. Shared by the reference and
        vectorized paths — the join rule, the segment absorption and
        the bookkeeping are the semantics both backends must agree on.
        Returns whether the sequence's membership set changed.
        """
        joined: list[tuple[Cluster, SimilarityResult]] = []
        for position, cluster in enumerate(clusters):
            log_sim = log_sims[position]
            all_log_sims.append(log_sim)
            if log_sim >= log_t:
                joined.append((cluster, result_for(position)))
        new_ids = {cluster.cluster_id for cluster, _ in joined}
        changed = new_ids != assignments[index]
        for cluster, result in joined:
            cluster.set_member(
                Membership(
                    sequence_index=index,
                    log_similarity=result.log_similarity,
                    best_start=result.best_start,
                    best_end=result.best_end,
                )
            )
            # §4.2: *each* join — including a re-join on a later
            # iteration — feeds the current best-scoring segment
            # into the cluster's PST. Re-absorption is what lets
            # a young model mature: as it improves, a member's
            # best segment extends towards the whole sequence.
            cluster.absorb_segment(seq[result.best_start : result.best_end])
        for cluster in clusters:
            if cluster.cluster_id not in new_ids:
                cluster.drop_member(index)
        assignments[index] = new_ids
        if new_ids:
            unclustered_streak[index] = 0
        else:
            unclustered_streak[index] += 1
        return changed

    def _recluster_vectorized(
        self,
        order: list[int],
        encoded: list[list[int]],
        clusters: list[Cluster],
        assignments: dict[int, set[int]],
        unclustered_streak: dict[int, int],
        background: npt.NDArray[np.float64],
        log_t: float,
        all_log_sims: list[float],
        scorer: PstBatchScorer,
        pool: ScoringPool | None,
    ) -> tuple[int, int]:
        """Phase 2 on the vectorized backend: prescore, validate, commit.

        Sequences are prescored in chunks of :data:`PRESCORE_CHUNK`
        against a snapshot of every cluster model (optionally fanned out
        to *pool* workers), then committed **sequentially** in
        examination order. A prescored pair is trusted only while its
        cluster's PST version still matches the snapshot; a cluster that
        absorbed a segment mid-chunk gets the affected pairs rescored
        in-process against its current model. The committed scores are
        therefore exactly the reference path's, join for join and
        segment for segment.

        When a chunk's stale fraction exceeds
        :data:`STALE_SWITCH_FRACTION`, prescoring is wasting its work
        (every join invalidates a column) and the remainder of the
        iteration switches to serial scoring — a deterministic,
        results-neutral speed decision.
        """
        membership_changes = 0
        reclustering_work = 0
        batch_mode = True
        registry = get_registry()
        position = 0
        while position < len(order):
            block = order[position : position + PRESCORE_CHUNK]
            position += len(block)
            if not clusters or not batch_mode:
                for index in block:
                    seq = encoded[index]
                    results = [
                        similarity(cluster.pst, seq, background)
                        for cluster in clusters
                    ]
                    reclustering_work += len(seq) * len(clusters)
                    if self._commit_examination(
                        index,
                        seq,
                        clusters,
                        [r.log_similarity for r in results],
                        results.__getitem__,
                        log_t,
                        assignments,
                        unclustered_streak,
                        all_log_sims,
                    ):
                        membership_changes += 1
                continue
            psts = [cluster.pst for cluster in clusters]
            versions = [pst.version for pst in psts]
            block_seqs = [encoded[index] for index in block]
            matrix = scorer.prescore_matrix(psts, block_seqs, pool=pool)
            # One bulk convert: reading the scalars for the join tests
            # through numpy indexing would cost a boxed float per pair.
            log_z_rows = matrix.log_z.tolist()
            stale = 0
            for offset, index in enumerate(block):
                seq = encoded[index]
                log_sims: list[float] = []
                rescored: dict[int, SimilarityResult] = {}
                for position_c, cluster in enumerate(clusters):
                    if (
                        cluster.pst is psts[position_c]
                        and cluster.pst.version == versions[position_c]
                    ):
                        log_sims.append(log_z_rows[position_c][offset])
                    else:
                        stale += 1
                        result = similarity(cluster.pst, seq, background)
                        rescored[position_c] = result
                        log_sims.append(result.log_similarity)

                def result_for(
                    position_c: int,
                    _matrix: ScoreMatrixResult = matrix,
                    _offset: int = offset,
                    _rescored: dict[int, SimilarityResult] = rescored,
                ) -> SimilarityResult:
                    fresh = _rescored.get(position_c)
                    if fresh is not None:
                        return fresh
                    return _matrix.result(position_c, _offset)

                reclustering_work += len(seq) * len(clusters)
                if self._commit_examination(
                    index,
                    seq,
                    clusters,
                    log_sims,
                    result_for,
                    log_t,
                    assignments,
                    unclustered_streak,
                    all_log_sims,
                ):
                    membership_changes += 1
            if registry.enabled and stale:
                registry.counter("backend.prescore_stale_pairs").inc(stale)
            if stale > STALE_SWITCH_FRACTION * (len(block) * len(clusters)):
                batch_mode = False
                if registry.enabled:
                    registry.counter("backend.prescore_fallbacks").inc()
        return membership_changes, reclustering_work

    def _calibrate_initial_threshold(
        self,
        db: SequenceDatabase,
        clusters: list[Cluster],
        encoded: list[list[int]],
        background: npt.NDArray[np.float64],
        pst_factory: PSTFactory,
        rng: np.random.Generator,
        scorer: PstBatchScorer | None = None,
    ) -> float | None:
        """Iteration-0 dry scoring pass picking the starting ``log t``.

        Calibrates against at least a handful of single-sequence
        models: with only one or two seeds (or a seed that happens to
        be an outlier) the dry distribution is too thin for a reliable
        valley. The extra reference models are temporary — they never
        become clusters.

        Valleys are estimated per reference model, not on the pooled
        distribution: each reference's own similarity column is a clean
        bimodal "its class vs everything else", whereas pooling across
        references (some of which may be outlier seeds with no class at
        all) smears the modes together and drags the estimate into the
        merge zone. The final calibration is the 75th percentile of the
        per-reference estimates: estimates from outlier seeds sit at
        the bottom of the spread (no class mode to find) and single
        extreme estimates at the top are domain artefacts — a
        high-but-not-max statistic sits in the usable window between
        them. Leaning high is deliberate: an over-tight starting t
        merely grows clusters more slowly, while an under-set one
        triggers the irreversible full merge.

        Returns the calibrated ``log t`` or ``None`` when no reference
        produced a valley estimate.
        """
        params = self.params
        reference_psts = [cluster.pst for cluster in clusters]
        min_references = 8
        if len(reference_psts) < min_references and len(db) > len(reference_psts):
            seeded = {cluster.seed_index for cluster in clusters}
            candidates = [i for i in range(len(db)) if i not in seeded]
            extra = rng.choice(
                np.asarray(candidates),
                size=min(
                    min_references - len(reference_psts),
                    len(candidates),
                ),
                replace=False,
            )
            reference_psts.extend(pst_factory(encoded[int(i)]) for i in extra)
        if params.calibration_method == "max":
            finders = list(VALLEY_METHODS.values())
        else:
            finders = [VALLEY_METHODS[params.calibration_method]]
        found: list[float] = []
        for pst in reference_psts:
            if scorer is not None:
                # Read-only column of the scoring matrix: the batch
                # kernel's natural shape (no absorbs can invalidate it).
                reference_sims = [
                    result.log_similarity
                    for result in scorer.score_many_vs_one(pst, encoded)
                ]
            else:
                reference_sims = [
                    similarity(pst, seq, background).log_similarity
                    for seq in encoded
                ]
            for finder in finders:
                estimate = finder(reference_sims, buckets=params.histogram_buckets)
                if estimate is not None:
                    found.append(estimate.log_threshold)
        if not found:
            return None
        calibrated = max(float(np.quantile(found, 0.75)), 0.0)
        registry = get_registry()
        if registry.enabled:
            registry.gauge("cluseq.calibrated_log_threshold").set(calibrated)
            registry.counter("cluseq.calibration_references").inc(
                len(reference_psts)
            )
        _logger.info(
            "calibrated initial threshold",
            extra={
                "log_threshold": calibrated,
                "references": len(reference_psts),
                "estimates": len(found),
            },
        )
        return calibrated

    def _examination_order(
        self,
        n_sequences: int,
        clusters: list[Cluster],
        assignments: dict[int, set[int]],
        rng: np.random.Generator,
    ) -> list[int]:
        """Sequence order for the reclustering phase (§6.3 policies).

        ``fixed`` scans by id every iteration, ``random`` draws a fresh
        permutation per iteration, and ``cluster`` examines each
        cluster's previous members consecutively before the rest (the
        policy the paper shows gets stuck in local optima).
        """
        ordering = self.params.ordering
        if ordering == "fixed":
            return list(range(n_sequences))
        if ordering == "random":
            return [int(i) for i in rng.permutation(n_sequences)]
        order: list[int] = []
        seen: set[int] = set()
        for cluster in clusters:
            for index in sorted(cluster.members):
                if index not in seen:
                    order.append(index)
                    seen.add(index)
        for index in range(n_sequences):
            if index not in seen:
                order.append(index)
        return order

    @staticmethod
    def _rebuild_cluster_models(
        clusters: list[Cluster], encoded: list[list[int]], pst_factory: PSTFactory
    ) -> None:
        """Rebuild every cluster's PST from current members' best segments.

        The optional non-paper variant (``rebuild_each_iteration``):
        discards the additive history so departed sequences stop
        influencing the model.
        """
        for cluster in clusters:
            fresh = pst_factory(encoded[cluster.seed_index])
            for membership in list(cluster._members.values()):
                segment = encoded[membership.sequence_index][
                    membership.best_start : membership.best_end
                ]
                if segment:
                    fresh.add_sequence(segment)
            cluster.pst = fresh


def cluster_sequences(
    db: SequenceDatabase, **param_overrides: Any
) -> ClusteringResult:
    """One-call convenience wrapper: ``cluster_sequences(db, k=5, ...)``.

    Runs the full §4 iteration (generation → reclustering →
    consolidation → threshold adjustment) with default parameters.
    """
    return CLUSEQ(CluseqParams(**param_overrides)).fit(db)
