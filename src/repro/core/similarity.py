"""The CLUSEQ similarity measure (paper §2 and §4.3).

The similarity of a sequence ``σ`` to a cluster ``S`` is the likelihood
ratio between predicting ``σ`` under the cluster's conditional
probability distribution and generating it with a memoryless background
process:

    sim_S(σ) = Π_i  P_S(s_i | s_1…s_{i-1}) / p(s_i)

``SIM_S(σ)`` is the maximum of ``sim`` over every *contiguous segment*
of ``σ`` (Equation 1), computed with the paper's single-scan dynamic
program:

    X_i = P_S(s_i | …) / p(s_i)
    Y_i = max(Y_{i-1} · X_i, X_i)      # best segment ending at i
    Z_i = max(Z_{i-1}, Y_i)            # best segment ending ≤ i

Everything here runs in **log domain** — the products over/underflow
``float64`` within a few hundred symbols — and only converts back at
the end (with saturation to ``inf`` where ``exp`` would overflow).

The DP also tracks *which* segment achieved the maximum, because the
CLUSEQ algorithm inserts exactly that best-scoring segment into the
cluster's PST when a sequence joins (§4.4).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from collections.abc import Sequence

import numpy as np
import numpy.typing as npt

from ..obs import get_registry
from .pst import ProbabilisticSuffixTree
from .smoothing import adjust_probability

#: log-probability assigned when an unsmoothed estimate is exactly 0;
#: finite so the DP can still rank segments, small enough to reject any
#: segment crossing the zero.
_LOG_ZERO = -700.0


@dataclass(frozen=True)
class SimilarityResult:
    """Outcome of scoring one sequence against one cluster PST.

    Attributes
    ----------
    similarity:
        ``SIM_S(σ)`` in linear scale (``math.inf`` when the log value
        exceeds the float64 exponent range).
    log_similarity:
        ``log SIM_S(σ)`` — always finite and the value to compare or
        histogram.
    best_start, best_end:
        Half-open index range ``[best_start, best_end)`` of the segment
        of σ achieving the maximum.
    whole_sequence_log:
        ``log sim_S(σ)`` of the *entire* sequence (the non-segment
        variant of the measure), useful for diagnostics.
    """

    similarity: float
    log_similarity: float
    best_start: int
    best_end: int
    whole_sequence_log: float

    @property
    def best_segment_length(self) -> int:
        return self.best_end - self.best_start

    def exceeds(self, threshold: float) -> bool:
        """Whether ``SIM ≥ threshold`` (computed safely in log scale)."""
        if threshold <= 0:
            return True
        return self.log_similarity >= math.log(threshold)


def _safe_exp(log_value: float) -> float:
    """``exp`` with saturation instead of ``OverflowError``."""
    if log_value > 709.0:
        return math.inf
    return math.exp(log_value)


def log_symbol_ratios(
    pst: ProbabilisticSuffixTree,
    encoded: Sequence[int],
    background: npt.NDArray[np.float64],
) -> list[float]:
    """Per-position log ratios ``log X_i = log P_S(s_i|ctx) − log p(s_i)``.

    These are the §4.3 per-symbol factors whose running sums the
    X/Y/Z scan maximises. The context walk is inlined (rather than calling
    ``pst.probability`` per position) because this is the hottest loop
    of the whole system: it runs once per (sequence, cluster) pair per
    iteration.
    """
    n = pst.alphabet_size
    p_min = pst.p_min
    threshold = pst.significance_threshold
    root = pst.root
    max_depth = pst.max_depth
    log_bg = [math.log(p) if p > 0 else _LOG_ZERO for p in background]

    ratios: list[float] = []
    for i, symbol in enumerate(encoded):
        node = root
        j = i - 1
        lowest = i - max_depth
        while j >= 0 and j >= lowest:
            child = node.children.get(encoded[j])
            if child is None or child.count < threshold:
                break
            node = child
            j -= 1
        total = node.next_total
        if total == 0:
            prob = 1.0 / n
        else:
            prob = node.next_counts.get(symbol, 0) / total
            if p_min > 0.0:
                prob = adjust_probability(prob, n, p_min)
        log_p = math.log(prob) if prob > 0.0 else _LOG_ZERO
        ratios.append(log_p - log_bg[symbol])
    return ratios


def similarity(
    pst: ProbabilisticSuffixTree,
    encoded: Sequence[int],
    background: npt.NDArray[np.float64],
) -> SimilarityResult:
    """Compute ``SIM_S(σ)`` with the paper's X/Y/Z dynamic program.

    Parameters
    ----------
    pst:
        The cluster's probabilistic suffix tree (model of ``S``).
    encoded:
        The sequence σ as integer symbol ids.
    background:
        Background probabilities ``p(s)`` indexed by symbol id, from
        :meth:`repro.sequences.SequenceDatabase.background_probabilities`.

    Raises
    ------
    ValueError
        If *encoded* is empty or *background* has the wrong length.
    """
    if len(encoded) == 0:
        raise ValueError("cannot score an empty sequence")
    background = np.asarray(background, dtype=np.float64)
    if background.shape != (pst.alphabet_size,):
        raise ValueError(
            f"background must have length {pst.alphabet_size}, "
            f"got shape {background.shape}"
        )

    ratios = log_symbol_ratios(pst, encoded, background)

    # Log-domain Kadane-style scan with segment tracking.
    log_y = ratios[0]
    y_start = 0
    log_z = log_y
    best_start, best_end = 0, 1
    whole = ratios[0]
    for i in range(1, len(ratios)):
        x = ratios[i]
        whole += x
        if log_y + x >= x:
            log_y += x
        else:
            log_y = x
            y_start = i
        if log_y > log_z:
            log_z = log_y
            best_start, best_end = y_start, i + 1
    # One registry check per (sequence, cluster) scoring call — never
    # per symbol — so disabled-mode overhead is a single attribute read.
    registry = get_registry()
    if registry.enabled:
        registry.counter("similarity.calls").inc()
        registry.counter("similarity.dp_cells").inc(len(ratios))
        registry.histogram("similarity.segment_length").observe(
            best_end - best_start
        )
    return SimilarityResult(
        similarity=_safe_exp(log_z),
        log_similarity=log_z,
        best_start=best_start,
        best_end=best_end,
        whole_sequence_log=whole,
    )


def whole_sequence_similarity(
    pst: ProbabilisticSuffixTree,
    encoded: Sequence[int],
    background: npt.NDArray[np.float64],
) -> float:
    """``sim_S(σ)`` over the entire sequence (§2's whole-sequence
    ratio, without the §4.3 segment maximisation)."""
    return _safe_exp(similarity(pst, encoded, background).whole_sequence_log)


def similarity_bruteforce(
    pst: ProbabilisticSuffixTree,
    encoded: Sequence[int],
    background: npt.NDArray[np.float64],
) -> tuple[float, tuple[int, int]]:
    """Reference ``O(l²)`` maximisation over all segments, for testing.

    Shares the paper's DP semantics: the per-position ratio ``X_i``
    conditions on the *full-sequence* prefix (``P_S(s_i|s_1…s_{i-1})``),
    and every contiguous segment's score is the sum of its positions'
    log ratios. Returns the best log score and its ``[start, end)``
    range — this must agree exactly with :func:`similarity`.
    """
    if len(encoded) == 0:
        raise ValueError("cannot score an empty sequence")
    background = np.asarray(background, dtype=np.float64)
    ratios = []
    for i, symbol in enumerate(encoded):
        prob = pst.probability(symbol, encoded[:i])
        log_p = math.log(prob) if prob > 0 else _LOG_ZERO
        bg = background[symbol]
        log_bg = math.log(bg) if bg > 0 else _LOG_ZERO
        ratios.append(log_p - log_bg)
    best = -math.inf
    best_range = (0, 1)
    length = len(encoded)
    for start in range(length):
        running = 0.0
        for end in range(start + 1, length + 1):
            running += ratios[end - 1]
            if running > best:
                best = running
                best_range = (start, end)
    return best, best_range


def segment_definition_similarity(
    pst: ProbabilisticSuffixTree,
    encoded: Sequence[int],
    background: npt.NDArray[np.float64],
) -> float:
    """Equation 1 evaluated literally: each segment scored standalone.

    Differs from the paper's DP only in the first ``max_depth`` symbols
    of each candidate segment, where the standalone segment has a
    shorter context than the full sequence provides. Exposed for
    analysis; CLUSEQ itself uses the DP, as the paper does.
    """
    if len(encoded) == 0:
        raise ValueError("cannot score an empty sequence")
    best = -math.inf
    length = len(encoded)
    for start in range(length):
        for end in range(start + 1, length + 1):
            result = similarity(pst, encoded[start:end], background)
            if result.whole_sequence_log > best:
                best = result.whole_sequence_log
    return best
