"""Sequence clusters: a PST model plus its current membership.

A CLUSEQ cluster is *defined by its model*: the probabilistic suffix
tree accumulates the best-scoring segments of every sequence that has
ever joined (contributions are additive and never subtracted — §4.4),
while the membership set reflects only the current iteration's
assignment. Clusters may overlap; a sequence can be a member of several
clusters at once.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterable, Sequence

from .pst import ProbabilisticSuffixTree


@dataclass
class Membership:
    """One sequence's current relationship to one cluster."""

    sequence_index: int
    log_similarity: float
    best_start: int
    best_end: int


class Cluster:
    """A sequence cluster backed by a probabilistic suffix tree.

    Parameters
    ----------
    cluster_id:
        Stable identifier, unique within one clustering run.
    pst:
        The cluster's model. For a newly-generated cluster this is the
        PST of its single seed sequence.
    seed_index:
        Database index of the seed sequence that initiated the cluster.
    created_at_iteration:
        The CLUSEQ iteration that generated this cluster (0-based).
    """

    def __init__(
        self,
        cluster_id: int,
        pst: ProbabilisticSuffixTree,
        seed_index: int,
        created_at_iteration: int = 0,
    ) -> None:
        self.cluster_id = cluster_id
        self.pst = pst
        self.seed_index = seed_index
        self.created_at_iteration = created_at_iteration
        self._members: dict[int, Membership] = {}
        self._segments_absorbed = 0

    # -- membership --------------------------------------------------------------

    @property
    def members(self) -> set[int]:
        """Indices of sequences currently assigned to this cluster."""
        return set(self._members.keys())

    @property
    def size(self) -> int:
        """Current number of member sequences."""
        return len(self._members)

    @property
    def segments_absorbed(self) -> int:
        """How many best-scoring segments have been fed into the PST."""
        return self._segments_absorbed

    def membership_of(self, sequence_index: int) -> Membership | None:
        """The membership record for *sequence_index*, or ``None``."""
        return self._members.get(sequence_index)

    def contains(self, sequence_index: int) -> bool:
        return sequence_index in self._members

    def set_member(self, membership: Membership) -> bool:
        """Record (or refresh) a membership.

        Returns ``True`` when the sequence was not already a member —
        the caller uses this to decide whether the PST needs updating.
        """
        is_new = membership.sequence_index not in self._members
        self._members[membership.sequence_index] = membership
        return is_new

    def drop_member(self, sequence_index: int) -> bool:
        """Remove a sequence from the membership set (PST untouched).

        Returns ``True`` if the sequence was a member.
        """
        return self._members.pop(sequence_index, None) is not None

    def clear_members(self) -> None:
        """Empty the membership set (used by per-iteration reassignment)."""
        self._members.clear()

    # -- model updates --------------------------------------------------------------

    def absorb_segment(self, encoded_segment: Sequence[int]) -> None:
        """Insert a joining sequence's best-scoring segment into the PST.

        This is the paper's §4.4 update rule: all suffixes of the
        (reversed) segment are added to the tree, refreshing counts and
        probability vectors along the way.
        """
        self.pst.add_sequence(encoded_segment)
        self._segments_absorbed += 1

    # -- bookkeeping ------------------------------------------------------------------

    def unique_members(self, others: Iterable["Cluster"]) -> set[int]:
        """Members of this cluster that belong to none of *others*.

        Used by cluster consolidation to decide whether this cluster is
        "covered" by larger clusters.
        """
        unique = self.members
        for other in others:
            if other is self:
                continue
            unique -= other.members
            if not unique:
                break
        return unique

    def average_log_similarity(self) -> float:
        """Mean member log-similarity (0.0 for an empty cluster)."""
        if not self._members:
            return 0.0
        return sum(m.log_similarity for m in self._members.values()) / len(
            self._members
        )

    def __repr__(self) -> str:
        return (
            f"Cluster(id={self.cluster_id}, size={self.size}, "
            f"seed={self.seed_index}, pst_nodes={self.pst.node_count})"
        )
