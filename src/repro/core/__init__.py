"""CLUSEQ core: the probabilistic suffix tree, the similarity measure
and the clustering algorithm itself."""

from .backends import (
    BACKENDS,
    FlattenedPST,
    PstBatchScorer,
    ScoringPool,
    flatten_pst,
    resolve_backend,
)
from .cluster import Cluster, Membership
from .cluseq import (
    CLUSEQ,
    CluseqParams,
    ClusteringResult,
    IterationHook,
    IterationSnapshot,
    IterationStats,
    cluster_sequences,
)
from .consolidation import consolidate, overlap_fraction
from .divergence import (
    j_divergence,
    kl_divergence,
    pairwise_pst_divergence,
    pst_divergence,
    variational_distance,
)
from .estimator import CluseqClusterer, NotFittedError
from .persistence import load_result, result_from_dict, result_to_dict, save_result
from .segmentation import BACKGROUND, Domain, domain_summary, segment_sequence
from .pruning import STRATEGIES as PRUNE_STRATEGIES
from .pruning import prune_to
from .pst import APPROX_BYTES_PER_NODE, PSTNode, PSTStats, ProbabilisticSuffixTree
from .seeding import SeedChoice, build_seed_pst, select_seeds
from .similarity import (
    SimilarityResult,
    log_symbol_ratios,
    segment_definition_similarity,
    similarity,
    similarity_bruteforce,
    whole_sequence_similarity,
)
from .smoothing import (
    adjust_probability,
    adjust_vector,
    default_p_min,
    validate_p_min,
)
from .threshold import (
    ValleyResult,
    blend_threshold,
    build_histogram,
    find_valley,
    thresholds_converged,
)

__all__ = [
    "BACKENDS",
    "FlattenedPST",
    "PstBatchScorer",
    "ScoringPool",
    "flatten_pst",
    "resolve_backend",
    "Cluster",
    "Membership",
    "CLUSEQ",
    "CluseqParams",
    "ClusteringResult",
    "IterationHook",
    "IterationSnapshot",
    "IterationStats",
    "cluster_sequences",
    "j_divergence",
    "kl_divergence",
    "pairwise_pst_divergence",
    "pst_divergence",
    "variational_distance",
    "CluseqClusterer",
    "NotFittedError",
    "load_result",
    "result_from_dict",
    "result_to_dict",
    "save_result",
    "BACKGROUND",
    "Domain",
    "domain_summary",
    "segment_sequence",
    "consolidate",
    "overlap_fraction",
    "PRUNE_STRATEGIES",
    "prune_to",
    "APPROX_BYTES_PER_NODE",
    "PSTNode",
    "PSTStats",
    "ProbabilisticSuffixTree",
    "SeedChoice",
    "build_seed_pst",
    "select_seeds",
    "SimilarityResult",
    "log_symbol_ratios",
    "segment_definition_similarity",
    "similarity",
    "similarity_bruteforce",
    "whole_sequence_similarity",
    "adjust_probability",
    "adjust_vector",
    "default_p_min",
    "validate_p_min",
    "ValleyResult",
    "blend_threshold",
    "build_histogram",
    "find_valley",
    "thresholds_converged",
]
