"""New-cluster seed selection (paper §4.1).

Each CLUSEQ iteration may generate new clusters from the unclustered
sequences. Seeds should resemble existing clusters — and each other —
as little as possible, so the paper uses a sampled greedy min-max
procedure:

1. Sample ``m`` unclustered sequences uniformly (``m = 5 · k_n`` by
   default) and build a single-sequence PST for each.
2. Repeat ``k_n`` times: score every remaining sample against all
   existing clusters *and already-chosen seeds*, take each sample's
   highest similarity, and pick the sample whose highest similarity is
   lowest.

The sampling keeps the cost at ``O(m · (m + k') · l²)`` instead of the
quadratic-in-N pairwise alternative.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from collections.abc import Sequence

import numpy as np
import numpy.typing as npt

from ..obs import get_logger, get_registry
from ..typing import EncodedLookup, PSTFactory
from .cluster import Cluster
from .pst import ProbabilisticSuffixTree
from .similarity import similarity

_logger = get_logger("core.seeding")


@dataclass(frozen=True)
class SeedChoice:
    """One selected seed and the evidence behind the choice."""

    sequence_index: int
    max_similarity_log: float  # highest log-sim to any prior cluster/seed


def build_seed_pst(
    encoded: Sequence[int],
    alphabet_size: int,
    max_depth: int,
    significance_threshold: int,
    p_min: float,
    max_nodes: int | None = None,
    prune_strategy: str = "paper",
) -> ProbabilisticSuffixTree:
    """A PST modelling a single seed sequence (§4.1's new-cluster
    initial state)."""
    pst = ProbabilisticSuffixTree(
        alphabet_size=alphabet_size,
        max_depth=max_depth,
        significance_threshold=significance_threshold,
        p_min=p_min,
        max_nodes=max_nodes,
        prune_strategy=prune_strategy,
    )
    pst.add_sequence(encoded)
    return pst


def select_seeds(
    candidates: Sequence[int],
    encoded_lookup: EncodedLookup,
    existing_clusters: Sequence[Cluster],
    background: npt.NDArray[np.float64],
    count: int,
    sample_multiplier: int,
    rng: np.random.Generator,
    pst_factory: PSTFactory,
) -> list[SeedChoice]:
    """Choose up to *count* seed sequences from *candidates*.

    Parameters
    ----------
    candidates:
        Database indices of currently-unclustered sequences.
    encoded_lookup:
        Callable mapping a database index to its encoded sequence.
    existing_clusters:
        The clusters already in play; seeds are pushed away from them.
    background:
        Background symbol probabilities for the similarity measure.
    count:
        ``k_n`` — how many seeds to select.
    sample_multiplier:
        The ``m = multiplier · k_n`` sample-size rule; the paper uses 5.
    rng:
        Random generator for the sample draw.
    pst_factory:
        Callable ``encoded -> ProbabilisticSuffixTree`` building a
        single-sequence PST (bind cluster parameters with
        ``functools.partial`` around :func:`build_seed_pst`).

    Returns fewer than *count* choices when there are not enough
    candidates.
    """
    if count <= 0 or not candidates:
        return []
    sample_size = min(len(candidates), max(count, sample_multiplier * count))
    sampled = list(
        rng.choice(np.asarray(candidates), size=sample_size, replace=False)
    )
    sampled = [int(i) for i in sampled]

    sample_psts = {i: pst_factory(encoded_lookup(i)) for i in sampled}
    reference_psts: list[ProbabilisticSuffixTree] = [
        cluster.pst for cluster in existing_clusters
    ]

    # Each sample's best log-similarity against the current references;
    # incremental: adding a seed only requires scoring remaining samples
    # against that one new reference.
    best_log: dict[int, float] = {}
    for i in sampled:
        encoded = encoded_lookup(i)
        best = -math.inf
        for pst in reference_psts:
            best = max(best, similarity(pst, encoded, background).log_similarity)
        best_log[i] = best

    chosen: list[SeedChoice] = []
    remaining = list(sampled)
    while remaining and len(chosen) < count:
        pick = min(remaining, key=lambda i: (best_log[i], i))
        chosen.append(SeedChoice(sequence_index=pick, max_similarity_log=best_log[pick]))
        remaining.remove(pick)
        new_pst = sample_psts[pick]
        for i in remaining:
            score = similarity(new_pst, encoded_lookup(i), background).log_similarity
            if score > best_log[i]:
                best_log[i] = score
    registry = get_registry()
    if registry.enabled:
        registry.counter("seeding.selections").inc()
        registry.counter("seeding.seeds_selected").inc(len(chosen))
        registry.counter("seeding.candidates_sampled").inc(sample_size)
        # Cost model of one selection round: every sample is scored
        # against k' references plus each previously chosen seed.
        registry.counter("seeding.reference_scorings").inc(
            sample_size * len(reference_psts)
            + sum(len(sampled) - i - 1 for i in range(len(chosen)))
        )
    if chosen and _logger.isEnabledFor(10):  # logging.DEBUG
        _logger.debug(
            "selected seeds",
            extra={
                "seeds": [choice.sequence_index for choice in chosen],
                "sample_size": sample_size,
                "references": len(reference_psts),
            },
        )
    return chosen
