"""A scikit-learn-style estimator facade over CLUSEQ.

:class:`CluseqClusterer` follows the familiar ``fit`` / ``predict`` /
``fit_predict`` protocol with a ``labels_`` attribute, so CLUSEQ drops
into pipelines and comparisons people already have, without adding a
scikit-learn dependency. Inputs are plain Python sequences (strings or
lists of hashable tokens); the estimator owns alphabet inference and
encoding.
"""

from __future__ import annotations

from collections.abc import Hashable, Sequence
from typing import Any

from ..sequences.alphabet import Alphabet
from ..sequences.database import SequenceDatabase
from .cluseq import CLUSEQ, CluseqParams, ClusteringResult


class NotFittedError(RuntimeError):
    """Raised when ``predict``/``labels_`` are used before ``fit``."""


class CluseqClusterer:
    """CLUSEQ with a scikit-learn-style interface.

    Parameters mirror :class:`~repro.core.cluseq.CluseqParams`; pass
    them as keyword arguments.

    Attributes
    ----------
    labels_:
        After ``fit``: one cluster id per input sequence, ``-1`` for
        outliers (the scikit-learn noise convention, as in DBSCAN).
    result_:
        The full :class:`~repro.core.cluseq.ClusteringResult`.

    Example
    -------
    >>> from repro.core.estimator import CluseqClusterer
    >>> model = CluseqClusterer(k=1, significance_threshold=2,
    ...                         min_unique_members=2, seed=0)
    >>> X = ["ababab", "bababa", "cdcdcd", "dcdcdc"] * 4
    >>> labels = model.fit_predict(X)
    >>> len(labels) == len(X)
    True
    """

    def __init__(self, **params: Any) -> None:
        self.params = CluseqParams(**params)
        self.result_: ClusteringResult | None = None
        self.alphabet_: Alphabet | None = None
        self.labels_: list[int] | None = None

    # -- protocol -----------------------------------------------------------------

    def fit(
        self,
        X: Sequence[Sequence[Hashable]],
        y: Sequence[object] | None = None,
    ) -> "CluseqClusterer":
        """Cluster the sequences in *X* (``y`` is ignored, per sklearn)."""
        if len(X) == 0:
            raise ValueError("X must contain at least one sequence")
        db = SequenceDatabase.from_sequences([tuple(x) for x in X])
        self.alphabet_ = db.alphabet
        self.result_ = CLUSEQ(self.params).fit(db)
        self.labels_ = [
            -1 if label is None else label for label in self.result_.labels()
        ]
        return self

    def fit_predict(
        self,
        X: Sequence[Sequence[Hashable]],
        y: Sequence[object] | None = None,
    ) -> list[int]:
        """``fit`` then return ``labels_``."""
        return self.fit(X, y).labels_  # type: ignore[return-value]

    def predict(self, X: Sequence[Sequence[Hashable]]) -> list[int]:
        """Assign new sequences to the fitted clusters (-1 = outlier).

        Symbols never seen during ``fit`` raise — the model has no
        probability estimates for them.
        """
        self._check_fitted()
        assert self.result_ is not None and self.alphabet_ is not None
        out: list[int] = []
        for x in X:
            encoded = self.alphabet_.encode(tuple(x))
            assignment = self.result_.predict(encoded)
            out.append(-1 if assignment is None else assignment)
        return out

    # -- conveniences ----------------------------------------------------------------

    @property
    def n_clusters_(self) -> int:
        """Number of discovered clusters."""
        self._check_fitted()
        assert self.result_ is not None
        return self.result_.num_clusters

    @property
    def threshold_(self) -> float:
        """The converged similarity threshold ``t`` (linear scale)."""
        self._check_fitted()
        assert self.result_ is not None
        return self.result_.final_threshold

    def get_params(self, deep: bool = True) -> dict[str, Any]:
        """sklearn-compatible parameter accessor."""
        from dataclasses import asdict

        return asdict(self.params)

    def set_params(self, **params: Any) -> "CluseqClusterer":
        """sklearn-compatible parameter setter (re-validates)."""
        merged = self.get_params()
        merged.update(params)
        self.params = CluseqParams(**merged)
        return self

    def _check_fitted(self) -> None:
        if self.result_ is None:
            raise NotFittedError(
                "this CluseqClusterer instance is not fitted yet; "
                "call fit() first"
            )
