"""PST node-budget pruning (paper §5.1).

When memory is limited, a probabilistic suffix tree must be cut down
once it exceeds its node budget. The paper proposes three strategies,
all implemented here:

1. ``smallest_count`` — prune the node with the smallest count first;
   such nodes are the least likely to ever become significant.
2. ``longest_label`` — prune the deepest node first; by the short
   memory property, long contexts contribute least to prediction.
3. ``expected_vector`` — prune the node whose probability vector is
   closest to its parent's ("expected"), because the parent is the
   substitute used after pruning and loses the least information. The
   paper applies this only once all insignificant nodes are gone.

``paper`` (the default) chains them the way §5.1 presents them:
insignificant nodes go first by (count asc, depth desc); if the budget
is still exceeded, significant nodes go by vector closeness to their
parent.

Pruning always removes whole subtrees (a child's label extends its
parent's, so a child can never outlive its parent in a suffix trie).
"""

from __future__ import annotations

from collections.abc import Callable, Iterable
from typing import TYPE_CHECKING

import numpy as np

from ..obs import get_logger, get_registry

_logger = get_logger("core.pruning")

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .pst import PSTNode, ProbabilisticSuffixTree

#: Valid strategy names accepted by :func:`prune_to`.
STRATEGIES = ("smallest_count", "longest_label", "expected_vector", "paper")

#: A prunable tree position: (parent node, edge symbol, child node, depth).
Candidate = tuple["PSTNode", int, "PSTNode", int]


def _candidates(pst: "ProbabilisticSuffixTree") -> list[Candidate]:
    """Every non-root node, as ``(parent, symbol, node, depth)``.

    Depth-1 nodes (single-symbol contexts) are included: the paper sets
    no floor, and the root always survives as the final fallback.
    """
    out: list[Candidate] = []
    stack: list[tuple["PSTNode", int]] = [(pst.root, 0)]
    while stack:
        node, depth = stack.pop()
        for symbol, child in node.children.items():
            out.append((node, symbol, child, depth + 1))
            stack.append((child, depth + 1))
    return out


def _vector_divergence(pst: "ProbabilisticSuffixTree", candidate: Candidate) -> float:
    """L1 (variational) distance between a node's vector and its parent's.

    This is the paper's "expectedness" test: a small distance means the
    parent predicts almost the same distribution, so pruning the child
    barely changes similarity estimates.
    """
    parent, _, child, _ = candidate
    child_vec = pst.node_probability_vector(child)
    parent_vec = pst.node_probability_vector(parent)
    return float(np.abs(child_vec - parent_vec).sum())


def _prune_by_key(
    pst: "ProbabilisticSuffixTree",
    candidates: Iterable[Candidate],
    key: Callable[[Candidate], tuple[float, float]],
    target_nodes: int,
) -> int:
    """Prune candidate subtrees in *key* order until within budget.

    Re-checks each candidate before removal (an earlier subtree removal
    may have already detached it). Returns the number of nodes removed.
    """
    removed_total = 0
    for candidate in sorted(candidates, key=key):
        if pst.node_count <= target_nodes:
            break
        parent, symbol, child, _ = candidate
        if parent.children.get(symbol) is not child:
            continue  # already gone with an ancestor's subtree
        removed_total += pst._forget_subtree(parent, symbol)
    return removed_total


def prune_to(
    pst: "ProbabilisticSuffixTree",
    max_nodes: int,
    strategy: str = "paper",
    slack: float = 0.9,
) -> int:
    """Prune *pst* down to at most ``max_nodes · slack`` nodes (§5.1).

    The *slack* factor leaves headroom so insertion does not trigger a
    prune on every new node right after hitting the budget.

    Returns the number of nodes removed. Raises ``ValueError`` for an
    unknown strategy or a budget smaller than one node.
    """
    if max_nodes < 1:
        raise ValueError("max_nodes must be positive")
    if not 0.0 < slack <= 1.0:
        raise ValueError("slack must be in (0, 1]")
    if strategy not in STRATEGIES:
        raise ValueError(f"unknown prune strategy {strategy!r}; expected {STRATEGIES}")

    target = max(1, int(max_nodes * slack))
    if pst.node_count <= target:
        return 0

    candidates = _candidates(pst)
    removed = 0

    if strategy == "smallest_count":
        removed += _prune_by_key(
            pst, candidates, key=lambda c: (c[2].count, -c[3]), target_nodes=target
        )
    elif strategy == "longest_label":
        removed += _prune_by_key(
            pst, candidates, key=lambda c: (-c[3], c[2].count), target_nodes=target
        )
    elif strategy == "expected_vector":
        removed += _prune_by_key(
            pst,
            candidates,
            key=lambda c: (_vector_divergence(pst, c), c[2].count),
            target_nodes=target,
        )
    else:  # "paper": insignificant first, then expected-vector on the rest
        threshold = pst.significance_threshold
        insignificant = [c for c in candidates if c[2].count < threshold]
        removed += _prune_by_key(
            pst, insignificant, key=lambda c: (c[2].count, -c[3]), target_nodes=target
        )
        if pst.node_count > target:
            remaining = _candidates(pst)
            removed += _prune_by_key(
                pst,
                remaining,
                key=lambda c: (_vector_divergence(pst, c), c[2].count),
                target_nodes=target,
            )
    registry = get_registry()
    if registry.enabled and removed:
        registry.counter("pst.prune_events").inc()
        registry.counter("pst.pruned_nodes").inc(removed)
        registry.histogram("pst.pruned_nodes_per_event").observe(removed)
    if removed and _logger.isEnabledFor(10):  # logging.DEBUG
        _logger.debug(
            "pruned PST",
            extra={
                "strategy": strategy,
                "removed_nodes": removed,
                "node_count": pst.node_count,
                "max_nodes": max_nodes,
            },
        )
    return removed
