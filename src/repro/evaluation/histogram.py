"""Similarity-distribution inspection helpers (the paper's Figure 3).

These utilities expose the sequence-cluster similarity histogram that
drives the threshold adjustment, for diagnostics, the ablation benches
and the documentation plots.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

import numpy as np

from ..core.cluseq import ClusteringResult
from ..core.similarity import similarity
from ..core.threshold import VALLEY_METHODS, build_histogram
from ..sequences.database import SequenceDatabase


@dataclass(frozen=True)
class SimilarityDistribution:
    """All sequence×cluster log-similarities of a fitted clustering."""

    log_similarities: np.ndarray
    member_mask: np.ndarray  # True where the pair is a current membership

    @property
    def member_values(self) -> np.ndarray:
        return self.log_similarities[self.member_mask]

    @property
    def non_member_values(self) -> np.ndarray:
        return self.log_similarities[~self.member_mask]

    def separation_margin(self) -> float | None:
        """``min(member) − max(non-member)`` log-sims, or ``None``.

        Positive values mean the two populations are linearly separable
        by a single threshold.
        """
        if self.member_values.size == 0 or self.non_member_values.size == 0:
            return None
        return float(self.member_values.min() - self.non_member_values.max())


def similarity_distribution(
    result: ClusteringResult, db: SequenceDatabase
) -> SimilarityDistribution:
    """Recompute every sequence×cluster similarity for a fitted result."""
    values: list[float] = []
    member: list[bool] = []
    for index in range(len(db)):
        encoded = db.encoded(index)
        for cluster in result.clusters:
            values.append(
                similarity(cluster.pst, encoded, result.background).log_similarity
            )
            member.append(cluster.contains(index))
    return SimilarityDistribution(
        log_similarities=np.asarray(values, dtype=np.float64),
        member_mask=np.asarray(member, dtype=bool),
    )


def histogram_series(
    log_similarities: Sequence[float], buckets: int = 50
) -> list[tuple[float, int]]:
    """``(bucket_center, count)`` pairs — the paper's Figure 3 series."""
    centers, counts = build_histogram(log_similarities, buckets=buckets)
    return [(float(x), int(y)) for x, y in zip(centers, counts)]


def valley_comparison(
    log_similarities: Sequence[float], buckets: int = 100
) -> dict[str, float | None]:
    """Valley estimate (in log scale) from every registered method."""
    out: dict[str, float | None] = {}
    for name, finder in VALLEY_METHODS.items():
        found = finder(log_similarities, buckets=buckets)
        out[name] = None if found is None else found.log_threshold
    return out
