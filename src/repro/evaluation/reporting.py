"""Plain-text table rendering and telemetry reporting for harnesses.

Every benchmark prints the rows the paper reports; this module renders
them as aligned monospace tables so the output can be diffed against
EXPERIMENTS.md. It also turns a metrics registry into the
machine-readable ``metrics`` section that the CLI's ``--metrics-out``
and the benchmark telemetry dumps write next to their results.
"""

from __future__ import annotations

import json
import os
from collections.abc import Iterable, Sequence
from typing import IO, Union

from ..obs import MetricsRegistry, get_registry

Cell = Union[str, int, float, None]

#: Schema tag stamped into every telemetry document.
TELEMETRY_SCHEMA = "repro.telemetry/v1"


def format_cell(value: Cell, float_digits: int = 3) -> str:
    """Render one table cell: floats rounded, ``None`` as a dash."""
    if value is None:
        return "-"
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        magnitude = abs(value)
        if magnitude != 0 and (magnitude >= 1e6 or magnitude < 10 ** (-float_digits)):
            return f"{value:.{float_digits}e}"
        return f"{value:.{float_digits}f}"
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Cell]],
    float_digits: int = 3,
    title: str | None = None,
) -> str:
    """Render an aligned text table with a header separator.

    Raises ``ValueError`` when a row's width differs from the header's.
    """
    rendered_rows: list[list[str]] = []
    for row in rows:
        cells = [format_cell(cell, float_digits) for cell in row]
        if len(cells) != len(headers):
            raise ValueError(
                f"row has {len(cells)} cells but table has {len(headers)} columns"
            )
        rendered_rows.append(cells)

    widths = [len(h) for h in headers]
    for cells in rendered_rows:
        for i, cell in enumerate(cells):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells)).rstrip()

    parts: list[str] = []
    if title:
        parts.append(title)
        parts.append("=" * len(title))
    parts.append(line(headers))
    parts.append(line(["-" * w for w in widths]))
    parts.extend(line(cells) for cells in rendered_rows)
    return "\n".join(parts)


def print_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Cell]],
    float_digits: int = 3,
    title: str | None = None,
) -> None:
    """Print :func:`render_table` output followed by a blank line."""
    print(render_table(headers, rows, float_digits, title))
    print()


def percent(value: float) -> str:
    """Format a fraction as a percentage string, e.g. ``0.824 → '82%'``."""
    return f"{round(value * 100)}%"


def metrics_section(
    registry: MetricsRegistry | None = None,
    extra: dict | None = None,
) -> dict:
    """A JSON-serializable telemetry document for a metrics registry.

    The document wraps :meth:`~repro.obs.MetricsRegistry.snapshot`
    with a schema tag and the package version, so files written today
    stay identifiable when the metric catalogue evolves. *extra* keys
    (run parameters, dataset shape, result rows) merge in at the top
    level under ``"context"``.
    """
    from .. import __version__
    from ..obs.metrics import _sanitize

    if registry is None:
        registry = get_registry()
    document = {
        "schema": TELEMETRY_SCHEMA,
        "version": __version__,
        # sanitized so non-finite floats become null (strict JSON)
        "metrics": _sanitize(registry.snapshot()),
    }
    if extra:
        document["context"] = extra
    return document


def write_metrics_json(
    target: str | "os.PathLike[str]" | IO[str],
    registry: MetricsRegistry | None = None,
    extra: dict | None = None,
) -> dict:
    """Write :func:`metrics_section` output to *target* as JSON.

    *target* is a path or an open text handle. Returns the document
    that was written (handy for tests and for printing a summary).
    """
    document = metrics_section(registry, extra)
    if hasattr(target, "write"):
        json.dump(document, target, indent=2, default=str)
    else:
        with open(target, "w", encoding="utf-8") as handle:
            json.dump(document, handle, indent=2, default=str)
    return document
