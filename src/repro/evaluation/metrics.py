"""Clustering-quality metrics against ground-truth labels.

The paper scores clusterings three ways:

* **Percentage of correctly labeled sequences** (Table 2) — each
  cluster is mapped to a ground-truth family and a sequence counts as
  correct when its primary cluster maps to its true family (a known
  outlier counts as correct when left unclustered).
* **Per-family precision / recall** (Tables 3 and 4) — with ``F`` the
  true member set of a family and ``F'`` the set assigned to it,
  precision is ``|F ∩ F'| / |F'|`` and recall ``|F ∩ F'| / |F|``.
* Response time, reported alongside.

Cluster→family mapping supports two strategies: ``majority`` (each
cluster maps to the family most represented among its members; several
clusters may map to one family) and ``hungarian`` (a 1:1 assignment
maximising total overlap via :func:`scipy.optimize.linear_sum_assignment`).

For completeness the module also provides standard external indices
(purity, adjusted Rand index, normalised mutual information) computed
from scratch.
"""

from __future__ import annotations

import math
from collections import Counter, defaultdict
from dataclasses import dataclass
from collections.abc import Hashable, Mapping, Sequence

import numpy as np
from scipy.optimize import linear_sum_assignment

from ..sequences.database import OUTLIER_LABEL

ClusterId = Hashable
FamilyLabel = str

#: Mapping strategies accepted by :func:`map_clusters_to_families`.
MAPPING_STRATEGIES = ("majority", "hungarian")


@dataclass(frozen=True)
class FamilyScore:
    """Precision/recall of one ground-truth family."""

    family: str
    size: int
    assigned: int
    correct: int

    @property
    def precision(self) -> float:
        """``|F ∩ F'| / |F'|`` (1.0 when nothing was assigned)."""
        if self.assigned == 0:
            return 1.0 if self.size == 0 else 0.0
        return self.correct / self.assigned

    @property
    def recall(self) -> float:
        """``|F ∩ F'| / |F|`` (1.0 for an empty family)."""
        if self.size == 0:
            return 1.0
        return self.correct / self.size

    @property
    def f1(self) -> float:
        p, r = self.precision, self.recall
        if p + r == 0:
            return 0.0
        return 2 * p * r / (p + r)


@dataclass
class EvaluationReport:
    """Full scoring of one clustering against ground truth."""

    accuracy: float
    family_scores: list[FamilyScore]
    cluster_to_family: dict[ClusterId, str | None]
    purity: float
    adjusted_rand_index: float
    normalized_mutual_information: float
    num_clusters: int
    num_sequences: int
    num_predicted_outliers: int

    @property
    def macro_precision(self) -> float:
        """Unweighted mean precision over families."""
        if not self.family_scores:
            return 0.0
        return sum(s.precision for s in self.family_scores) / len(self.family_scores)

    @property
    def macro_recall(self) -> float:
        """Unweighted mean recall over families."""
        if not self.family_scores:
            return 0.0
        return sum(s.recall for s in self.family_scores) / len(self.family_scores)

    def score_for(self, family: str) -> FamilyScore:
        for score in self.family_scores:
            if score.family == family:
                return score
        raise KeyError(f"no family {family!r} in report")


def _validate_inputs(
    true_labels: Sequence[str | None],
    predicted_clusters: Sequence[ClusterId | None],
) -> None:
    if len(true_labels) != len(predicted_clusters):
        raise ValueError(
            f"{len(true_labels)} true labels but "
            f"{len(predicted_clusters)} predictions"
        )
    if not true_labels:
        raise ValueError("cannot evaluate an empty clustering")


def contingency_table(
    true_labels: Sequence[str | None],
    predicted_clusters: Sequence[ClusterId | None],
) -> dict[ClusterId, Counter]:
    """Per-cluster counters of true labels (outliers/None excluded).

    Only sequences with a non-outlier true label *and* a predicted
    cluster contribute.
    """
    table: dict[ClusterId, Counter] = defaultdict(Counter)
    for truth, cluster in zip(true_labels, predicted_clusters):
        if cluster is None or truth is None or truth == OUTLIER_LABEL:
            continue
        table[cluster][truth] += 1
    return dict(table)


def map_clusters_to_families(
    true_labels: Sequence[str | None],
    predicted_clusters: Sequence[ClusterId | None],
    strategy: str = "majority",
) -> dict[ClusterId, str | None]:
    """Map each predicted cluster to a ground-truth family.

    ``majority``: each cluster independently maps to its most common
    member family (many clusters may share a family). ``hungarian``:
    a 1:1 assignment maximising the summed overlap; surplus clusters
    map to ``None``.
    """
    if strategy not in MAPPING_STRATEGIES:
        raise ValueError(f"strategy must be one of {MAPPING_STRATEGIES}")
    _validate_inputs(true_labels, predicted_clusters)
    table = contingency_table(true_labels, predicted_clusters)
    all_clusters = {c for c in predicted_clusters if c is not None}

    mapping: dict[ClusterId, str | None] = {c: None for c in all_clusters}
    if not table:
        return mapping

    if strategy == "majority":
        for cluster, counts in table.items():
            mapping[cluster] = counts.most_common(1)[0][0]
        return mapping

    clusters = sorted(table.keys(), key=repr)
    families = sorted({f for counts in table.values() for f in counts})
    overlap = np.zeros((len(clusters), len(families)), dtype=np.float64)
    for i, cluster in enumerate(clusters):
        for j, family in enumerate(families):
            overlap[i, j] = table[cluster].get(family, 0)
    row_ind, col_ind = linear_sum_assignment(-overlap)
    for i, j in zip(row_ind, col_ind):
        if overlap[i, j] > 0:
            mapping[clusters[i]] = families[j]
    return mapping


def accuracy_score(
    true_labels: Sequence[str | None],
    predicted_clusters: Sequence[ClusterId | None],
    mapping: Mapping[ClusterId, str | None] | None = None,
    strategy: str = "majority",
) -> float:
    """Fraction of correctly labeled sequences (the paper's Table 2).

    A sequence is correct when its cluster maps to its true family, or
    when it is a known outlier left unclustered. Sequences with no
    ground-truth label are skipped.
    """
    _validate_inputs(true_labels, predicted_clusters)
    if mapping is None:
        mapping = map_clusters_to_families(true_labels, predicted_clusters, strategy)
    correct = 0
    scored = 0
    for truth, cluster in zip(true_labels, predicted_clusters):
        if truth is None:
            continue
        scored += 1
        if truth == OUTLIER_LABEL:
            if cluster is None:
                correct += 1
        elif cluster is not None and mapping.get(cluster) == truth:
            correct += 1
    if scored == 0:
        raise ValueError("no ground-truth labels to score against")
    return correct / scored


def family_scores(
    true_labels: Sequence[str | None],
    predicted_clusters: Sequence[ClusterId | None],
    mapping: Mapping[ClusterId, str | None] | None = None,
    strategy: str = "majority",
) -> list[FamilyScore]:
    """Per-family precision/recall (the paper's Tables 3 and 4).

    ``F'`` for a family is the union of members of every cluster mapped
    to it.
    """
    _validate_inputs(true_labels, predicted_clusters)
    if mapping is None:
        mapping = map_clusters_to_families(true_labels, predicted_clusters, strategy)

    families = sorted(
        {t for t in true_labels if t is not None and t != OUTLIER_LABEL}
    )
    sizes = Counter(t for t in true_labels if t is not None and t != OUTLIER_LABEL)
    assigned: Counter = Counter()
    correct: Counter = Counter()
    for truth, cluster in zip(true_labels, predicted_clusters):
        if cluster is None:
            continue
        family = mapping.get(cluster)
        if family is None:
            continue
        assigned[family] += 1
        if truth == family:
            correct[family] += 1
    return [
        FamilyScore(
            family=family,
            size=sizes[family],
            assigned=assigned[family],
            correct=correct[family],
        )
        for family in families
    ]


def purity_score(
    true_labels: Sequence[str | None],
    predicted_clusters: Sequence[ClusterId | None],
) -> float:
    """Weighted majority purity over clusters (clustered sequences only)."""
    table = contingency_table(true_labels, predicted_clusters)
    total = sum(sum(c.values()) for c in table.values())
    if total == 0:
        return 0.0
    dominant = sum(c.most_common(1)[0][1] for c in table.values())
    return dominant / total


def _comb2(n: int) -> float:
    return n * (n - 1) / 2.0


def adjusted_rand_index(
    true_labels: Sequence[str | None],
    predicted_clusters: Sequence[ClusterId | None],
) -> float:
    """Adjusted Rand index over sequences with both a label and a cluster.

    Implemented from the standard pair-counting formulation; returns
    0.0 for degenerate inputs (a single cluster or a single family).
    """
    pairs = [
        (t, c)
        for t, c in zip(true_labels, predicted_clusters)
        if t is not None and t != OUTLIER_LABEL and c is not None
    ]
    if len(pairs) < 2:
        return 0.0
    truth_counts = Counter(t for t, _ in pairs)
    cluster_counts = Counter(c for _, c in pairs)
    joint_counts = Counter(pairs)
    sum_joint = sum(_comb2(n) for n in joint_counts.values())
    sum_truth = sum(_comb2(n) for n in truth_counts.values())
    sum_cluster = sum(_comb2(n) for n in cluster_counts.values())
    total_pairs = _comb2(len(pairs))
    if total_pairs == 0:
        return 0.0
    expected = sum_truth * sum_cluster / total_pairs
    maximum = (sum_truth + sum_cluster) / 2.0
    if maximum == expected:
        # Degenerate: all-singleton or single-block partitions. By the
        # usual convention (matching scikit-learn) identical pair
        # structures score 1.0.
        return 1.0 if sum_joint == sum_truth == sum_cluster else 0.0
    return (sum_joint - expected) / (maximum - expected)


def normalized_mutual_information(
    true_labels: Sequence[str | None],
    predicted_clusters: Sequence[ClusterId | None],
) -> float:
    """NMI (arithmetic normalisation) over labelled, clustered sequences."""
    pairs = [
        (t, c)
        for t, c in zip(true_labels, predicted_clusters)
        if t is not None and t != OUTLIER_LABEL and c is not None
    ]
    n = len(pairs)
    if n == 0:
        return 0.0
    truth_counts = Counter(t for t, _ in pairs)
    cluster_counts = Counter(c for _, c in pairs)
    joint_counts = Counter(pairs)

    def entropy(counts: Counter) -> float:
        return -sum(
            (v / n) * math.log(v / n) for v in counts.values() if v > 0
        )

    h_truth = entropy(truth_counts)
    h_cluster = entropy(cluster_counts)
    mutual = 0.0
    for (t, c), v in joint_counts.items():
        p_joint = v / n
        p_t = truth_counts[t] / n
        p_c = cluster_counts[c] / n
        mutual += p_joint * math.log(p_joint / (p_t * p_c))
    denominator = (h_truth + h_cluster) / 2.0
    if denominator <= 0:
        return 0.0
    return max(0.0, mutual / denominator)


def evaluate_clustering(
    true_labels: Sequence[str | None],
    predicted_clusters: Sequence[ClusterId | None],
    strategy: str = "majority",
) -> EvaluationReport:
    """One-call evaluation producing every metric the experiments need."""
    _validate_inputs(true_labels, predicted_clusters)
    mapping = map_clusters_to_families(true_labels, predicted_clusters, strategy)
    return EvaluationReport(
        accuracy=accuracy_score(true_labels, predicted_clusters, mapping),
        family_scores=family_scores(true_labels, predicted_clusters, mapping),
        cluster_to_family=mapping,
        purity=purity_score(true_labels, predicted_clusters),
        adjusted_rand_index=adjusted_rand_index(true_labels, predicted_clusters),
        normalized_mutual_information=normalized_mutual_information(
            true_labels, predicted_clusters
        ),
        num_clusters=len({c for c in predicted_clusters if c is not None}),
        num_sequences=len(true_labels),
        num_predicted_outliers=sum(1 for c in predicted_clusters if c is None),
    )
