"""Evaluation: metrics against ground truth, reports and diagnostics."""

from .histogram import (
    SimilarityDistribution,
    histogram_series,
    similarity_distribution,
    valley_comparison,
)
from .metrics import (
    EvaluationReport,
    FamilyScore,
    MAPPING_STRATEGIES,
    accuracy_score,
    adjusted_rand_index,
    contingency_table,
    evaluate_clustering,
    family_scores,
    map_clusters_to_families,
    normalized_mutual_information,
    purity_score,
)
from .reporting import (
    TELEMETRY_SCHEMA,
    format_cell,
    metrics_section,
    percent,
    print_table,
    render_table,
    write_metrics_json,
)
from .stability import MetricSummary, StabilityReport, stability_analysis

__all__ = [
    "SimilarityDistribution",
    "histogram_series",
    "similarity_distribution",
    "valley_comparison",
    "EvaluationReport",
    "FamilyScore",
    "MAPPING_STRATEGIES",
    "accuracy_score",
    "adjusted_rand_index",
    "contingency_table",
    "evaluate_clustering",
    "family_scores",
    "map_clusters_to_families",
    "normalized_mutual_information",
    "purity_score",
    "TELEMETRY_SCHEMA",
    "format_cell",
    "metrics_section",
    "percent",
    "print_table",
    "render_table",
    "write_metrics_json",
    "MetricSummary",
    "StabilityReport",
    "stability_analysis",
]
