"""Multi-seed stability analysis.

At the scaled-down workload sizes of this reproduction, a single CLUSEQ
run's quality moves by several points with the engine seed; any claim
about a configuration should therefore be made over a seed ensemble.
This module runs a configuration across seeds and reports
mean/std/min/max for the headline metrics — the experiment harnesses
(e.g. the §6.3 ordering study) and users tuning parameters both build
on it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from collections.abc import Sequence
from typing import Any

from ..sequences.database import SequenceDatabase
from .metrics import evaluate_clustering


@dataclass(frozen=True)
class MetricSummary:
    """Distribution of one metric over the seed ensemble."""

    name: str
    values: tuple

    @property
    def mean(self) -> float:
        return sum(self.values) / len(self.values)

    @property
    def std(self) -> float:
        mu = self.mean
        return math.sqrt(
            sum((v - mu) ** 2 for v in self.values) / len(self.values)
        )

    @property
    def minimum(self) -> float:
        return min(self.values)

    @property
    def maximum(self) -> float:
        return max(self.values)

    def __str__(self) -> str:
        return (
            f"{self.name}: {self.mean:.3f} ± {self.std:.3f} "
            f"[{self.minimum:.3f}, {self.maximum:.3f}]"
        )


@dataclass(frozen=True)
class StabilityReport:
    """Seed-ensemble summary of one CLUSEQ configuration."""

    seeds: tuple
    metrics: dict[str, MetricSummary]

    def __getitem__(self, name: str) -> MetricSummary:
        return self.metrics[name]

    def summary(self) -> str:
        lines = [f"stability over seeds {list(self.seeds)}:"]
        lines.extend(f"  {metric}" for metric in self.metrics.values())
        return "\n".join(lines)


def stability_analysis(
    db: SequenceDatabase,
    seeds: Sequence[int] = (0, 1, 2, 3, 4),
    **param_overrides: Any,
) -> StabilityReport:
    """Run CLUSEQ once per seed and summarise the metric spread.

    Keyword arguments are forwarded to
    :class:`~repro.core.cluseq.CluseqParams` (except ``seed``, which
    the ensemble controls).
    """
    from ..core.cluseq import cluster_sequences

    if not seeds:
        raise ValueError("need at least one seed")
    if "seed" in param_overrides:
        raise ValueError("seed is controlled by the ensemble; do not pass it")

    collected: dict[str, list[float]] = {
        "accuracy": [],
        "macro_precision": [],
        "macro_recall": [],
        "num_clusters": [],
        "iterations": [],
        "outlier_fraction": [],
    }
    for seed in seeds:
        result = cluster_sequences(db, seed=seed, **param_overrides)
        report = evaluate_clustering(db.labels, result.labels())
        collected["accuracy"].append(report.accuracy)
        collected["macro_precision"].append(report.macro_precision)
        collected["macro_recall"].append(report.macro_recall)
        collected["num_clusters"].append(float(result.num_clusters))
        collected["iterations"].append(float(result.iterations))
        collected["outlier_fraction"].append(
            len(result.outliers()) / len(db)
        )
    return StabilityReport(
        seeds=tuple(seeds),
        metrics={
            name: MetricSummary(name=name, values=tuple(values))
            for name, values in collected.items()
        },
    )
