"""Hidden Markov model (HMM) baseline.

A from-scratch discrete-emission HMM: scaled forward/backward, exact
log-likelihood, and Baum-Welch (EM) training over multiple sequences.
Clustering follows the classic *k-models* scheme the literature uses
for HMM-based sequence clustering:

1. Partition the sequences randomly into ``k`` groups.
2. Train one HMM per group (a few Baum-Welch sweeps).
3. Reassign every sequence to the HMM giving it the highest
   per-symbol log-likelihood.
4. Repeat until assignments stabilise.

Per-symbol normalisation in step 3 prevents long sequences from
dominating the assignment. As in the paper's Table 2, the model is
accurate but expensive — every EM sweep is ``O(N · l · states²)``.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np
import numpy.typing as npt

from ..sequences.database import SequenceDatabase
from .base import SequenceClusterer

_EPS = 1e-12


class DiscreteHMM:
    """A discrete-emission hidden Markov model.

    Parameters
    ----------
    num_states:
        Number of hidden states.
    num_symbols:
        Alphabet size of the emissions.
    seed:
        Seed for the random initialisation of the three parameter
        tables (rows are normalised probability vectors).
    """

    def __init__(self, num_states: int, num_symbols: int, seed: int = 0) -> None:
        if num_states < 1:
            raise ValueError("num_states must be at least 1")
        if num_symbols < 1:
            raise ValueError("num_symbols must be at least 1")
        self.num_states = num_states
        self.num_symbols = num_symbols
        rng = np.random.default_rng(seed)

        def random_rows(rows: int, cols: int) -> npt.NDArray[np.float64]:
            raw = rng.random((rows, cols)) + 0.1
            return raw / raw.sum(axis=1, keepdims=True)

        self.initial = random_rows(1, num_states)[0]
        self.transition = random_rows(num_states, num_states)
        self.emission = random_rows(num_states, num_symbols)

    # -- inference ---------------------------------------------------------------

    def _forward(
        self, sequence: Sequence[int]
    ) -> tuple[npt.NDArray[np.float64], npt.NDArray[np.float64]]:
        """Scaled forward pass: returns (alpha, scales)."""
        length = len(sequence)
        alpha = np.zeros((length, self.num_states))
        scales = np.zeros(length)
        alpha[0] = self.initial * self.emission[:, sequence[0]]
        scales[0] = alpha[0].sum() + _EPS
        alpha[0] /= scales[0]
        for step in range(1, length):
            alpha[step] = (alpha[step - 1] @ self.transition) * self.emission[
                :, sequence[step]
            ]
            scales[step] = alpha[step].sum() + _EPS
            alpha[step] /= scales[step]
        return alpha, scales

    def _backward(
        self, sequence: Sequence[int], scales: npt.NDArray[np.float64]
    ) -> npt.NDArray[np.float64]:
        """Scaled backward pass using the forward scales."""
        length = len(sequence)
        beta = np.zeros((length, self.num_states))
        beta[-1] = 1.0
        for step in range(length - 2, -1, -1):
            beta[step] = (
                self.transition
                @ (self.emission[:, sequence[step + 1]] * beta[step + 1])
            ) / scales[step + 1]
        return beta

    def log_likelihood(self, sequence: Sequence[int]) -> float:
        """``log P(sequence | model)``."""
        if len(sequence) == 0:
            raise ValueError("cannot score an empty sequence")
        _, scales = self._forward(sequence)
        return float(np.log(scales).sum())

    def per_symbol_log_likelihood(self, sequence: Sequence[int]) -> float:
        """Log-likelihood normalised by length (for cross-length ranking)."""
        return self.log_likelihood(sequence) / len(sequence)

    # -- training -----------------------------------------------------------------

    def fit(
        self,
        sequences: Sequence[Sequence[int]],
        iterations: int = 5,
        pseudocount: float = 1e-3,
    ) -> "DiscreteHMM":
        """Baum-Welch over multiple sequences, in place.

        *pseudocount* keeps every parameter strictly positive so no
        sequence can receive zero likelihood after training.
        """
        if not sequences:
            raise ValueError("need at least one training sequence")
        if iterations < 1:
            raise ValueError("iterations must be at least 1")
        for _ in range(iterations):
            initial_acc = np.full(self.num_states, pseudocount)
            transition_acc = np.full(
                (self.num_states, self.num_states), pseudocount
            )
            emission_acc = np.full(
                (self.num_states, self.num_symbols), pseudocount
            )
            for sequence in sequences:
                if len(sequence) == 0:
                    continue
                seq = np.asarray(sequence, dtype=np.int64)
                alpha, scales = self._forward(seq)
                beta = self._backward(seq, scales)
                gamma = alpha * beta
                gamma /= gamma.sum(axis=1, keepdims=True) + _EPS
                initial_acc += gamma[0]
                for step in range(len(seq) - 1):
                    xi = (
                        np.outer(
                            alpha[step],
                            self.emission[:, seq[step + 1]] * beta[step + 1],
                        )
                        * self.transition
                        / scales[step + 1]
                    )
                    total = xi.sum()
                    if total > 0:
                        transition_acc += xi / total * gamma[step].sum()
                np.add.at(emission_acc.T, seq, gamma)
            self.initial = initial_acc / initial_acc.sum()
            self.transition = transition_acc / transition_acc.sum(
                axis=1, keepdims=True
            )
            self.emission = emission_acc / emission_acc.sum(axis=1, keepdims=True)
        return self


class HMMClusterer(SequenceClusterer):
    """Table 2's "HMM" model: k HMMs trained with alternating EM."""

    name = "HMM"

    def __init__(
        self,
        num_states: int = 6,
        baum_welch_iterations: int = 3,
        max_rounds: int = 6,
        seed: int = 0,
    ) -> None:
        if num_states < 1:
            raise ValueError("num_states must be at least 1")
        self.num_states = num_states
        self.baum_welch_iterations = baum_welch_iterations
        self.max_rounds = max_rounds
        self.seed = seed

    def _cluster(
        self, db: SequenceDatabase, num_clusters: int
    ) -> list[int | None]:
        rng = np.random.default_rng(self.seed)
        sequences = [db.encoded(i) for i in range(len(db))]
        labels = [int(i) for i in rng.integers(num_clusters, size=len(sequences))]
        # Guarantee every cluster starts non-empty.
        for c in range(num_clusters):
            if c not in labels:
                labels[int(rng.integers(len(sequences)))] = c

        for round_index in range(self.max_rounds):
            models: list[DiscreteHMM] = []
            for c in range(num_clusters):
                members = [s for s, lab in zip(sequences, labels) if lab == c]
                if not members:
                    members = [sequences[int(rng.integers(len(sequences)))]]
                model = DiscreteHMM(
                    self.num_states,
                    db.alphabet.size,
                    seed=self.seed + 1000 * round_index + c,
                )
                model.fit(members, iterations=self.baum_welch_iterations)
                models.append(model)
            new_labels = []
            for sequence in sequences:
                scores = [m.per_symbol_log_likelihood(sequence) for m in models]
                new_labels.append(int(np.argmax(scores)))
            if new_labels == labels:
                break
            labels = new_labels
        return list(labels)
