"""Common interface for the baseline clustering models of Table 2.

Every baseline consumes a :class:`~repro.sequences.SequenceDatabase`
and produces one (optional) cluster id per sequence, so the experiment
harnesses can score CLUSEQ and all baselines with the same metrics
code.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..obs import get_logger, get_registry, span
from ..sequences.database import SequenceDatabase

_logger = get_logger("baselines")


@dataclass
class BaselineResult:
    """Outcome of one baseline run.

    ``labels[i]`` is the cluster id assigned to sequence ``i`` or
    ``None`` when the model deems it an outlier (most baselines assign
    everything).
    """

    labels: list[int | None]
    elapsed_seconds: float
    model_name: str
    extra: dict[str, object] = field(default_factory=dict)

    @property
    def num_clusters(self) -> int:
        return len({label for label in self.labels if label is not None})


class SequenceClusterer:
    """Base class for baseline clusterers.

    Subclasses implement :meth:`_cluster`; :meth:`fit_predict` wraps it
    with validation and timing.
    """

    #: Human-readable model name used in reports ("ED", "HMM", …).
    name = "baseline"

    def fit_predict(self, db: SequenceDatabase, num_clusters: int) -> BaselineResult:
        """Cluster *db* into *num_clusters* groups."""
        if len(db) == 0:
            raise ValueError("cannot cluster an empty database")
        if num_clusters < 1:
            raise ValueError("num_clusters must be at least 1")
        if num_clusters > len(db):
            raise ValueError(
                f"cannot form {num_clusters} clusters from {len(db)} sequences"
            )
        start = time.perf_counter()
        # Uniform instrumentation across every comparison model: one
        # span (and timer) per fit, labelled counters per model name —
        # so CLUSEQ-vs-baseline cost comparisons read off one registry.
        with span(f"baseline.{self.name}"):
            labels = self._cluster(db, num_clusters)
        elapsed = time.perf_counter() - start
        if len(labels) != len(db):
            raise RuntimeError(
                f"{self.name} returned {len(labels)} labels for {len(db)} sequences"
            )
        registry = get_registry()
        if registry.enabled:
            registry.counter("baseline.runs", model=self.name).inc()
            registry.timer("baseline.fit_seconds", model=self.name).record(elapsed)
            registry.gauge("baseline.clusters", model=self.name).set(
                len({label for label in labels if label is not None})
            )
        if _logger.isEnabledFor(20):  # logging.INFO
            _logger.info(
                "%s fit done",
                self.name,
                extra={
                    "model": self.name,
                    "sequences": len(db),
                    "num_clusters": num_clusters,
                    "elapsed_seconds": round(elapsed, 6),
                },
            )
        return BaselineResult(
            labels=labels,
            elapsed_seconds=elapsed,
            model_name=self.name,
        )

    def _cluster(
        self, db: SequenceDatabase, num_clusters: int
    ) -> list[int | None]:
        raise NotImplementedError
