"""k-medoids (PAM-style) clustering over a precomputed distance matrix.

The edit-distance baselines (ED and EDBO) are *distance* models with no
vector-space embedding, so they cluster with k-medoids: medoids are
actual sequences, assignment is nearest-medoid, and updates pick the
member minimising the within-cluster distance sum. Initialisation uses
the k-means++-style D² weighting for robustness.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np
import numpy.typing as npt


def validate_distance_matrix(distances: npt.NDArray[np.float64]) -> npt.NDArray[np.float64]:
    """Check shape/symmetry/diagonal and return a float64 view."""
    matrix = np.asarray(distances, dtype=np.float64)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        raise ValueError(f"distance matrix must be square, got {matrix.shape}")
    if np.any(matrix < 0):
        raise ValueError("distances must be non-negative")
    if not np.allclose(np.diag(matrix), 0.0):
        raise ValueError("distance matrix diagonal must be zero")
    if not np.allclose(matrix, matrix.T, atol=1e-9):
        raise ValueError("distance matrix must be symmetric")
    return matrix


def _dsquared_init(
    matrix: npt.NDArray[np.float64], k: int, rng: np.random.Generator
) -> list[int]:
    """k-means++-style medoid initialisation on a distance matrix."""
    n = matrix.shape[0]
    first = int(rng.integers(n))
    medoids = [first]
    closest = matrix[first].copy()
    while len(medoids) < k:
        weights = closest**2
        total = weights.sum()
        if total <= 0:
            # All remaining points coincide with a medoid; pick any
            # non-medoid deterministically.
            remaining = [i for i in range(n) if i not in medoids]
            medoids.append(remaining[0])
            continue
        choice = int(rng.choice(n, p=weights / total))
        if choice in medoids:
            order = np.argsort(-closest)
            choice = next(int(i) for i in order if int(i) not in medoids)
        medoids.append(choice)
        closest = np.minimum(closest, matrix[choice])
    return medoids


def kmedoids(
    distances: npt.NDArray[np.float64],
    num_clusters: int,
    max_iterations: int = 50,
    seed: int = 0,
) -> tuple[list[int], list[int]]:
    """Cluster points given a pairwise distance matrix.

    Returns ``(labels, medoids)`` where ``labels[i]`` is the cluster
    index of point ``i`` and ``medoids[c]`` the point index serving as
    cluster ``c``'s medoid.

    The update step is the classic alternation: assign every point to
    its nearest medoid, then re-pick each cluster's medoid as the
    member minimising the summed distance to the others, until
    assignments stop changing or *max_iterations* is reached.
    """
    matrix = validate_distance_matrix(distances)
    n = matrix.shape[0]
    if not 1 <= num_clusters <= n:
        raise ValueError(f"num_clusters must be in [1, {n}]")
    rng = np.random.default_rng(seed)

    medoids = _dsquared_init(matrix, num_clusters, rng)
    labels = np.argmin(matrix[:, medoids], axis=1)

    for _ in range(max_iterations):
        new_medoids: list[int] = []
        for c in range(num_clusters):
            members = np.flatnonzero(labels == c)
            if members.size == 0:
                # Re-seed an empty cluster with the point farthest from
                # its current medoid (splits the loosest cluster).
                distances_to_medoid = matrix[np.arange(n), np.array(medoids)[labels]]
                new_medoids.append(int(np.argmax(distances_to_medoid)))
                continue
            within = matrix[np.ix_(members, members)].sum(axis=1)
            new_medoids.append(int(members[int(np.argmin(within))]))
        new_labels = np.argmin(matrix[:, new_medoids], axis=1)
        if new_medoids == medoids and np.array_equal(new_labels, labels):
            break
        medoids = new_medoids
        labels = new_labels

    return [int(label) for label in labels], medoids


def total_within_cost(
    distances: npt.NDArray[np.float64], labels: Sequence[int], medoids: Sequence[int]
) -> float:
    """Sum of point-to-medoid distances — the k-medoids objective."""
    matrix = np.asarray(distances, dtype=np.float64)
    return float(
        sum(matrix[i, medoids[label]] for i, label in enumerate(labels))
    )
