"""Edit-distance (ED) baseline.

The classic Levenshtein distance via dynamic programming, vectorised
one row at a time with numpy. The in-row dependency of the deletion
case (``D[i][j-1] + 1``) is resolved in closed form: for candidate
costs ``c[j] = min(D[i-1][j] + 1, D[i-1][j-1] + sub)``, the final row is

    D[i][j] = min_{k ≤ j} ( c[k] + (j − k) )
            = j + cummin( c[k] − k )

computed with ``numpy.minimum.accumulate`` — the whole DP is
``O(n·m)`` cell work but only ``O(n)`` Python-level iterations.

Clustering uses k-medoids over the pairwise (optionally normalised)
distance matrix. As the paper stresses, ED captures only the global
alignment, so sequences sharing strong local features but differing
globally land far apart — its Table 2 accuracy collapses.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np
import numpy.typing as npt

from ..sequences.database import SequenceDatabase
from .base import SequenceClusterer
from .kmedoids import kmedoids


def edit_distance(a: Sequence[int], b: Sequence[int]) -> int:
    """Levenshtein distance between two encoded sequences."""
    if len(a) == 0:
        return len(b)
    if len(b) == 0:
        return len(a)
    if len(a) < len(b):
        a, b = b, a  # iterate over the longer one, vectorise the shorter
    b_arr = np.asarray(b, dtype=np.int64)
    m = b_arr.size
    offsets = np.arange(1, m + 1, dtype=np.float64)
    prev = np.arange(m + 1, dtype=np.float64)
    for i, symbol in enumerate(a, start=1):
        substitution = prev[:-1] + (b_arr != symbol)
        deletion_up = prev[1:] + 1.0
        candidate = np.minimum(substitution, deletion_up)
        # Resolve the left-to-right insertion chain in closed form.
        seed = np.concatenate(([float(i)], candidate - offsets))
        best = np.minimum.accumulate(seed)[1:] + offsets
        prev = np.concatenate(([float(i)], best))
    return int(prev[-1])


def banded_edit_distance(
    a: Sequence[int], b: Sequence[int], band: int
) -> int:
    """Edit distance restricted to a diagonal band of half-width *band*.

    An upper bound on the true distance that equals it whenever the
    optimal alignment stays within the band — the standard speedup when
    only near matches matter (e.g. verifying candidate pairs). Cost is
    ``O(max(n, m) · band)`` instead of ``O(n · m)``.
    """
    if band < 0:
        raise ValueError("band must be non-negative")
    n, m = len(a), len(b)
    if abs(n - m) > band:
        # The end point is outside the band; the in-band bound is the
        # trivial delete/insert path.
        return max(n, m)
    if n == 0 or m == 0:
        return max(n, m)
    infinity = n + m + 1
    previous = {j: j for j in range(0, min(m, band) + 1)}
    for i in range(1, n + 1):
        current = {}
        low = max(0, i - band)
        high = min(m, i + band)
        for j in range(low, high + 1):
            if j == 0:
                current[j] = i
                continue
            best = infinity
            substitution = previous.get(j - 1)
            if substitution is not None:
                best = min(best, substitution + (a[i - 1] != b[j - 1]))
            deletion = previous.get(j)
            if deletion is not None:
                best = min(best, deletion + 1)
            insertion = current.get(j - 1)
            if insertion is not None:
                best = min(best, insertion + 1)
            current[j] = best
        previous = current
    return int(previous.get(m, infinity))


def normalized_edit_distance(a: Sequence[int], b: Sequence[int]) -> float:
    """Edit distance divided by the longer length (range [0, 1]).

    Normalisation keeps k-medoids from clustering by sequence length
    when lengths vary widely.
    """
    longer = max(len(a), len(b))
    if longer == 0:
        return 0.0
    return edit_distance(a, b) / longer


def pairwise_distance_matrix(
    sequences: Sequence[Sequence[int]], normalized: bool = True
) -> npt.NDArray[np.float64]:
    """Symmetric pairwise edit-distance matrix."""
    n = len(sequences)
    matrix = np.zeros((n, n), dtype=np.float64)
    metric = normalized_edit_distance if normalized else edit_distance
    for i in range(n):
        for j in range(i + 1, n):
            d = metric(sequences[i], sequences[j])
            matrix[i, j] = matrix[j, i] = d
    return matrix


class EditDistanceClusterer(SequenceClusterer):
    """Table 2's "ED" model: edit distance + k-medoids.

    Parameters
    ----------
    normalized:
        Divide each distance by the longer sequence length.
    seed:
        Random seed for the k-medoids initialisation.
    """

    name = "ED"

    def __init__(self, normalized: bool = True, seed: int = 0) -> None:
        self.normalized = normalized
        self.seed = seed

    def _cluster(
        self, db: SequenceDatabase, num_clusters: int
    ) -> list[int | None]:
        sequences = [db.encoded(i) for i in range(len(db))]
        matrix = pairwise_distance_matrix(sequences, normalized=self.normalized)
        labels, _ = kmedoids(matrix, num_clusters, seed=self.seed)
        return list(labels)
