"""Baseline models compared against CLUSEQ in the paper's Table 2."""

from .base import BaselineResult, SequenceClusterer
from .block_edit import (
    BlockEditClusterer,
    block_edit_distance,
    longest_common_substring,
    normalized_block_edit_distance,
    pairwise_block_distance_matrix,
)
from .edit_distance import (
    EditDistanceClusterer,
    banded_edit_distance,
    edit_distance,
    normalized_edit_distance,
    pairwise_distance_matrix,
)
from .hmm import DiscreteHMM, HMMClusterer
from .kmedoids import kmedoids, total_within_cost, validate_distance_matrix
from .qgram import (
    QGramClusterer,
    cosine_similarity,
    qgram_profile,
    spherical_kmeans,
)

__all__ = [
    "BaselineResult",
    "SequenceClusterer",
    "BlockEditClusterer",
    "block_edit_distance",
    "longest_common_substring",
    "normalized_block_edit_distance",
    "pairwise_block_distance_matrix",
    "EditDistanceClusterer",
    "banded_edit_distance",
    "edit_distance",
    "normalized_edit_distance",
    "pairwise_distance_matrix",
    "DiscreteHMM",
    "HMMClusterer",
    "kmedoids",
    "total_within_cost",
    "validate_distance_matrix",
    "QGramClusterer",
    "cosine_similarity",
    "qgram_profile",
    "spherical_kmeans",
]
