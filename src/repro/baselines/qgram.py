"""q-gram baseline.

Each sequence is reduced to its bag of length-``q`` substrings (the
"words" of the keyword-based document-clustering methods the paper
discusses), weighted by term frequency and compared with cosine
similarity. Clustering is spherical k-means with k-means++-style
initialisation over the sparse profiles.

Fast but, as the paper argues, blind to the *order* of the q-grams —
which is exactly the information CLUSEQ's conditional probability
model keeps.
"""

from __future__ import annotations

import math
from collections import Counter, defaultdict
from collections.abc import Sequence

import numpy as np

from ..sequences.database import SequenceDatabase
from .base import SequenceClusterer

QGram = tuple[int, ...]
Profile = dict[QGram, float]


def qgram_profile(sequence: Sequence[int], q: int) -> Profile:
    """Term-frequency profile of all length-*q* sliding windows.

    A sequence shorter than *q* falls back to a single gram covering
    the whole sequence, so no input produces an empty profile.
    """
    if q < 1:
        raise ValueError("q must be at least 1")
    seq = tuple(sequence)
    if len(seq) == 0:
        raise ValueError("cannot profile an empty sequence")
    if len(seq) < q:
        return {seq: 1.0}
    counts = Counter(seq[i : i + q] for i in range(len(seq) - q + 1))
    total = sum(counts.values())
    return {gram: count / total for gram, count in counts.items()}


def _norm(profile: Profile) -> float:
    return math.sqrt(sum(v * v for v in profile.values()))


def cosine_similarity(a: Profile, b: Profile) -> float:
    """Cosine of two sparse q-gram profiles (0.0 when either is empty)."""
    if not a or not b:
        return 0.0
    if len(b) < len(a):
        a, b = b, a
    dot = sum(value * b.get(gram, 0.0) for gram, value in a.items())
    denom = _norm(a) * _norm(b)
    if denom == 0:
        return 0.0
    return dot / denom


def _normalize(profile: Profile) -> Profile:
    norm = _norm(profile)
    if norm == 0:
        return dict(profile)
    return {gram: value / norm for gram, value in profile.items()}


def _mean_profile(profiles: Sequence[Profile]) -> Profile:
    accumulator: dict[QGram, float] = defaultdict(float)
    for profile in profiles:
        for gram, value in profile.items():
            accumulator[gram] += value
    count = len(profiles)
    return _normalize({gram: value / count for gram, value in accumulator.items()})


def spherical_kmeans(
    profiles: Sequence[Profile],
    num_clusters: int,
    max_iterations: int = 30,
    seed: int = 0,
) -> list[int]:
    """Cosine k-means over sparse profiles; returns one label per profile."""
    n = len(profiles)
    if not 1 <= num_clusters <= n:
        raise ValueError(f"num_clusters must be in [1, {n}]")
    rng = np.random.default_rng(seed)
    unit = [_normalize(p) for p in profiles]

    # k-means++-style init on (1 - cosine) distances.
    centroids = [dict(unit[int(rng.integers(n))])]
    closest = np.array([1.0 - cosine_similarity(p, centroids[0]) for p in unit])
    while len(centroids) < num_clusters:
        weights = closest**2
        total = weights.sum()
        if total <= 0:
            index = int(rng.integers(n))
        else:
            index = int(rng.choice(n, p=weights / total))
        centroids.append(dict(unit[index]))
        distances = np.array(
            [1.0 - cosine_similarity(p, centroids[-1]) for p in unit]
        )
        closest = np.minimum(closest, distances)

    labels = [0] * n
    for _ in range(max_iterations):
        new_labels = []
        for profile in unit:
            sims = [cosine_similarity(profile, c) for c in centroids]
            new_labels.append(int(np.argmax(sims)))
        changed = new_labels != labels
        labels = new_labels
        members: dict[int, list[Profile]] = defaultdict(list)
        for label, profile in zip(labels, unit):
            members[label].append(profile)
        for c in range(num_clusters):
            if members[c]:
                centroids[c] = _mean_profile(members[c])
            else:
                # Re-seed empty clusters with the point least similar to
                # its current centroid.
                worst = int(
                    np.argmin(
                        [
                            cosine_similarity(p, centroids[label])
                            for p, label in zip(unit, labels)
                        ]
                    )
                )
                centroids[c] = dict(unit[worst])
        if not changed:
            break
    return labels


class QGramClusterer(SequenceClusterer):
    """Table 2's "q-gram" model (the paper uses ``q = 3``)."""

    name = "q-gram"

    def __init__(self, q: int = 3, seed: int = 0) -> None:
        if q < 1:
            raise ValueError("q must be at least 1")
        self.q = q
        self.seed = seed

    def _cluster(
        self, db: SequenceDatabase, num_clusters: int
    ) -> list[int | None]:
        profiles = [qgram_profile(db.encoded(i), self.q) for i in range(len(db))]
        labels = spherical_kmeans(profiles, num_clusters, seed=self.seed)
        return list(labels)
