"""Edit distance with block operations (EDBO) baseline.

Exact block edit distance is NP-hard (the paper cites Muthukrishnan &
Sahinalp), so — like every practical system — we approximate it with
greedy common-substring factoring:

1. Repeatedly find the longest common substring of the two (remaining)
   sequences; while it is at least *min_block* long, remove it from
   both and charge **one** block operation.
2. Charge the leftover symbols as per-symbol edits:
   ``max(len(rest_a), len(rest_b))``.

This preserves the property the paper introduces EDBO for: sequences
that are block rearrangements of each other (``aaaabbb`` vs
``bbbaaaa``) become cheap, while genuinely unrelated sequences stay
expensive. Greedy factoring is the standard constant-factor
approximation for block-move distances.

The longest-common-substring search is an ``O(n·m)`` dynamic program
(diagonal run lengths), vectorised one row at a time; factoring runs a
handful of such rounds per pair, which is why EDBO is by far the
slowest model in Table 2 — here as in the paper.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np
import numpy.typing as npt

from ..sequences.database import SequenceDatabase
from .base import SequenceClusterer
from .kmedoids import kmedoids


def longest_common_substring(
    a: Sequence[int], b: Sequence[int]
) -> tuple[int, int, int]:
    """Longest common substring as ``(length, start_a, start_b)``.

    Ties resolve to the match found first in row order, keeping the
    factoring deterministic. Returns ``(0, 0, 0)`` when the sequences
    share no symbol.
    """
    if not a or not b:
        return (0, 0, 0)
    b_arr = np.asarray(b, dtype=np.int64)
    prev = np.zeros(b_arr.size, dtype=np.int64)
    best_len = 0
    best_a = best_b = 0
    for i, symbol in enumerate(a):
        matches = b_arr == symbol
        current = np.zeros_like(prev)
        current[matches] = 1
        current[1:][matches[1:]] += prev[:-1][matches[1:]]
        row_best = int(current.max())
        if row_best > best_len:
            best_len = row_best
            j = int(np.argmax(current))
            best_a = i - best_len + 1
            best_b = j - best_len + 1
        prev = current
    return (best_len, best_a, best_b)


def block_edit_distance(
    a: Sequence[int],
    b: Sequence[int],
    min_block: int = 3,
    block_cost: float = 1.0,
    max_rounds: int = 64,
) -> float:
    """Approximate block edit distance via greedy factoring.

    Parameters
    ----------
    min_block:
        Shortest substring worth a block operation; shorter matches are
        cheaper to handle as per-symbol edits.
    block_cost:
        Cost charged per extracted block (the paper's "constant cost"
        for a block operation).
    max_rounds:
        Safety cap on factoring rounds.
    """
    if min_block < 1:
        raise ValueError("min_block must be at least 1")
    work_a = list(a)
    work_b = list(b)
    # Canonicalise the argument order so the distance is exactly
    # symmetric: greedy tie-breaking in the substring search would
    # otherwise let d(a, b) and d(b, a) diverge by a block or two.
    if (len(work_b), work_b) < (len(work_a), work_a):
        work_a, work_b = work_b, work_a
    cost = 0.0
    for _ in range(max_rounds):
        length, start_a, start_b = longest_common_substring(work_a, work_b)
        if length < min_block:
            break
        del work_a[start_a : start_a + length]
        del work_b[start_b : start_b + length]
        cost += block_cost
    return cost + max(len(work_a), len(work_b))


def normalized_block_edit_distance(
    a: Sequence[int], b: Sequence[int], min_block: int = 3
) -> float:
    """Block edit distance divided by the longer original length."""
    longer = max(len(a), len(b))
    if longer == 0:
        return 0.0
    return block_edit_distance(a, b, min_block=min_block) / longer


def pairwise_block_distance_matrix(
    sequences: Sequence[Sequence[int]],
    min_block: int = 3,
    normalized: bool = True,
) -> npt.NDArray[np.float64]:
    """Symmetric pairwise EDBO distance matrix."""
    n = len(sequences)
    matrix = np.zeros((n, n), dtype=np.float64)
    for i in range(n):
        for j in range(i + 1, n):
            if normalized:
                d = normalized_block_edit_distance(
                    sequences[i], sequences[j], min_block=min_block
                )
            else:
                d = block_edit_distance(
                    sequences[i], sequences[j], min_block=min_block
                )
            matrix[i, j] = matrix[j, i] = d
    return matrix


class BlockEditClusterer(SequenceClusterer):
    """Table 2's "EDBO" model: block edit distance + k-medoids."""

    name = "EDBO"

    def __init__(self, min_block: int = 3, normalized: bool = True, seed: int = 0) -> None:
        if min_block < 1:
            raise ValueError("min_block must be at least 1")
        self.min_block = min_block
        self.normalized = normalized
        self.seed = seed

    def _cluster(
        self, db: SequenceDatabase, num_clusters: int
    ) -> list[int | None]:
        sequences = [db.encoded(i) for i in range(len(db))]
        matrix = pairwise_block_distance_matrix(
            sequences, min_block=self.min_block, normalized=self.normalized
        )
        labels, _ = kmedoids(matrix, num_clusters, seed=self.seed)
        return list(labels)
