"""repro — a from-scratch reproduction of *CLUSEQ: Efficient and
Effective Sequence Clustering* (Yang & Wang, ICDE 2003).

Public API highlights
---------------------
* :class:`~repro.core.cluseq.CLUSEQ` /
  :func:`~repro.core.cluseq.cluster_sequences` — the clustering
  algorithm.
* :class:`~repro.core.pst.ProbabilisticSuffixTree` — the paper's PST.
* :class:`~repro.sequences.database.SequenceDatabase` — input data.
* :mod:`repro.baselines` — the Table 2 comparison models (edit
  distance, block edit, HMM, q-grams).
* :mod:`repro.evaluation` — precision/recall/accuracy against ground
  truth.
* :mod:`repro.datasets` — protein-family and natural-language dataset
  substitutes.
* :mod:`repro.experiments` — one harness per paper table/figure.
"""

from .core import (
    CLUSEQ,
    CluseqClusterer,
    Cluster,
    CluseqParams,
    ClusteringResult,
    IterationSnapshot,
    ProbabilisticSuffixTree,
    SimilarityResult,
    cluster_sequences,
    similarity,
)
from .obs import (
    MetricsRegistry,
    configure_logging,
    get_logger,
    get_registry,
    set_registry,
    span,
    use_registry,
)
from .sequences import (
    Alphabet,
    OUTLIER_LABEL,
    SequenceDatabase,
    SequenceRecord,
    generate_clustered_database,
    generate_two_cluster_toy,
    read_fasta,
    read_labelled_text,
)

__version__ = "1.0.0"

__all__ = [
    "CLUSEQ",
    "CluseqClusterer",
    "Cluster",
    "CluseqParams",
    "ClusteringResult",
    "IterationSnapshot",
    "ProbabilisticSuffixTree",
    "SimilarityResult",
    "cluster_sequences",
    "similarity",
    "MetricsRegistry",
    "configure_logging",
    "get_logger",
    "get_registry",
    "set_registry",
    "span",
    "use_registry",
    "Alphabet",
    "OUTLIER_LABEL",
    "SequenceDatabase",
    "SequenceRecord",
    "generate_clustered_database",
    "generate_two_cluster_toy",
    "read_fasta",
    "read_labelled_text",
    "__version__",
]
