"""Command-line interface: ``cluseq`` (or ``python -m repro``).

Subcommands
-----------
``cluster``
    Cluster a FASTA or labelled-text file and print the clusters (and,
    when ground-truth labels are present, an evaluation).
``generate``
    Write a synthetic clustered database to disk, for experimentation.
``experiment``
    Run one of the paper-reproduction harnesses by name.
``stream``
    Online clustering: consume newline-delimited sequences from a file
    or stdin through the micro-batch streaming engine, optionally with
    a durable state directory (journal + checkpoints) that ``--resume``
    recovers from after a crash.
``shard``
    Sharded online clustering: partition the stream across N
    independent streaming shards (in-process or one OS process each)
    with periodic cross-shard consolidation, per-shard durability and
    whole-topology ``--resume``. See docs/SHARDING.md.
``serve``
    Clustering-as-a-service: load a saved model (or stream checkpoint)
    into the versioned registry and serve classify/ingest/clusters
    endpoints over HTTP with micro-batched scoring and hot reload.
    See docs/SERVING.md.
``telemetry``
    Inspect a telemetry JSON snapshot (v1 or v2): summarize it as a
    table, or convert it to Prometheus text exposition.

Global observability flags (before the subcommand):

``--log-level LEVEL``
    Emit ``repro.*`` logs at LEVEL and above to stderr.
``--log-json``
    Switch those logs to JSON lines (implies ``--log-level INFO``
    unless a level was given).
``--metrics-out PATH``
    Collect metrics for the whole invocation and write the telemetry
    JSON document to PATH on exit.

``cluster`` and ``stream`` additionally accept Telemetry v2 flags:
``--telemetry-dir DIR`` (enable metrics + hot-path profiler, write a
``repro.telemetry/v2`` snapshot and a ``.prom`` exposition into DIR)
and ``--trace-out PATH`` (export spans as ``repro.trace/v1`` JSONL).
See docs/OBSERVABILITY.md.
"""

from __future__ import annotations

import argparse
import os
import sys
from collections.abc import Callable
from typing import Any

from . import __version__
from .core.backends import BACKENDS
from .core.cluseq import CLUSEQ, CluseqParams
from .evaluation.metrics import evaluate_clustering
from .evaluation.reporting import percent, print_table, write_metrics_json
from .obs import MetricsRegistry, configure_logging, use_registry
from .sequences.database import SequenceDatabase
from .sequences.generators import generate_clustered_database
from .sequences.io import read_fasta, read_labelled_text, write_labelled_text

#: experiment name → (runner, printer) import paths, resolved lazily.
EXPERIMENTS = {
    "table2": ("table2_model_comparison", "run_table2", "print_table2"),
    "table3": ("table3_protein_families", "run_table3", "print_table3"),
    "table4": ("table4_languages", "run_table4", "print_table4"),
    "table5": ("table5_initial_k", "run_table5", "print_table5"),
    "table6": ("table6_initial_t", "run_table6", "print_table6"),
    "fig3": ("fig3_similarity_histogram", "run_fig3", "print_fig3"),
    "fig4": ("fig4_pst_size", "run_fig4", "print_fig4"),
    "fig5": ("fig5_sample_size", "run_fig5", "print_fig5"),
    "fig6": ("fig6_scalability", "run_fig6", "print_fig6"),
    "ordering": ("ordering_policies", "run_ordering", "print_ordering"),
    "outliers": (
        "outlier_robustness",
        "run_outlier_robustness",
        "print_outlier_robustness",
    ),
    "modes": ("ablation_modes", "run_ablation_modes", "print_ablation_modes"),
    "pruning": ("ablation_pruning", "run_ablation_pruning", "print_ablation_pruning"),
    "smoothing": (
        "ablation_smoothing",
        "run_ablation_smoothing",
        "print_ablation_smoothing",
    ),
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="cluseq",
        description="CLUSEQ sequence clustering (ICDE 2003 reproduction)",
    )
    parser.add_argument("--version", action="version", version=__version__)
    parser.add_argument(
        "--log-level",
        metavar="LEVEL",
        default=None,
        type=lambda level: level.upper(),
        choices=("DEBUG", "INFO", "WARNING", "ERROR", "CRITICAL"),
        help="emit repro.* logs at LEVEL (DEBUG/INFO/...) to stderr",
    )
    parser.add_argument(
        "--log-json",
        action="store_true",
        help="log as JSON lines instead of human-readable text",
    )
    parser.add_argument(
        "--metrics-out",
        metavar="PATH",
        default=None,
        help="collect metrics during the run and write telemetry JSON to PATH",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    cluster = subparsers.add_parser("cluster", help="cluster a sequence file")
    cluster.add_argument("input", help="FASTA (.fa/.fasta) or labelled-text file")
    cluster.add_argument("--format", choices=("auto", "fasta", "text"), default="auto")
    cluster.add_argument("-k", type=int, default=1, help="initial cluster count")
    cluster.add_argument(
        "-c",
        "--significance",
        type=int,
        default=5,
        help="significance threshold c (paper default 30 for huge data)",
    )
    cluster.add_argument(
        "-t", "--threshold", type=float, default=1.2, help="initial similarity t"
    )
    cluster.add_argument("--max-depth", type=int, default=6, help="PST depth L")
    cluster.add_argument("--max-iterations", type=int, default=25)
    cluster.add_argument("--min-unique", type=int, default=None)
    cluster.add_argument("--seed", type=int, default=0)
    cluster.add_argument(
        "--backend",
        choices=BACKENDS,
        default="auto",
        help="scoring backend; both give bit-identical results "
        "(see docs/PERFORMANCE.md)",
    )
    cluster.add_argument(
        "--workers",
        type=int,
        default=0,
        metavar="N",
        help="prescore the re-examination matrix on N worker processes "
        "(vectorized backend only; 0 = in-process)",
    )
    cluster.add_argument(
        "--show-members", action="store_true", help="list member ids per cluster"
    )
    cluster.add_argument(
        "--save-model",
        metavar="PATH",
        default=None,
        help="write the fitted clustering (JSON) for later `classify` runs",
    )
    _add_telemetry_flags(cluster)

    classify = subparsers.add_parser(
        "classify", help="assign new sequences with a saved model"
    )
    classify.add_argument("model", help="model file written by `cluster --save-model`")
    classify.add_argument("input", help="FASTA or labelled-text file to classify")
    classify.add_argument("--format", choices=("auto", "fasta", "text"), default="auto")
    classify.add_argument(
        "--absorb",
        action="store_true",
        help="absorb each joining sequence into its cluster's PST (§4.4) "
        "instead of read-only prediction",
    )
    classify.add_argument(
        "--save-model",
        metavar="PATH",
        default=None,
        help="write the (possibly absorbed) model back out after classifying",
    )

    stream = subparsers.add_parser(
        "stream", help="online clustering of a sequence stream"
    )
    stream.add_argument(
        "input",
        help="newline-delimited sequence file, or '-' to read stdin",
    )
    start = stream.add_mutually_exclusive_group()
    start.add_argument(
        "--model",
        metavar="PATH",
        default=None,
        help="warm-start from a model written by `cluster --save-model`",
    )
    start.add_argument(
        "--alphabet",
        metavar="SYMBOLS",
        default=None,
        help="cold-start with this symbol alphabet (e.g. 'acgt')",
    )
    stream.add_argument(
        "--state-dir",
        metavar="DIR",
        default=None,
        help="durable state directory (ingest journal + checkpoints)",
    )
    stream.add_argument(
        "--resume",
        action="store_true",
        help="recover from --state-dir (checkpoint + journal replay) "
        "before ingesting",
    )
    stream.add_argument("--batch-size", type=int, default=32)
    stream.add_argument(
        "--checkpoint-every",
        type=int,
        default=16,
        metavar="BATCHES",
        help="checkpoint interval in batches (0 = only the final one)",
    )
    stream.add_argument("--pool-size", type=int, default=512)
    stream.add_argument("--reseed-every", type=int, default=4, metavar="BATCHES")
    stream.add_argument("--reseed-k", type=int, default=2)
    stream.add_argument(
        "--decay-factor",
        type=float,
        default=1.0,
        help="PST count decay multiplier per decay event (1.0 = off)",
    )
    stream.add_argument("--decay-every", type=int, default=0, metavar="BATCHES")
    stream.add_argument("--adjust-every", type=int, default=0, metavar="BATCHES")
    stream.add_argument("--consolidate-every", type=int, default=16, metavar="BATCHES")
    stream.add_argument(
        "-t", "--threshold", type=float, default=1.2,
        help="initial similarity threshold (cold start only)",
    )
    stream.add_argument(
        "-c", "--significance", type=int, default=5,
        help="significance threshold c (cold start only)",
    )
    stream.add_argument("--max-depth", type=int, default=6)
    stream.add_argument("--seed", type=int, default=0)
    stream.add_argument(
        "--backend",
        choices=BACKENDS,
        default="auto",
        help="scoring backend for the join/absorb path (bit-identical)",
    )
    stream.add_argument(
        "--no-fsync",
        action="store_true",
        help="skip per-batch journal fsync (faster, weaker durability)",
    )
    stream.add_argument(
        "--save-model",
        metavar="PATH",
        default=None,
        help="write the final clustering as a `classify`-compatible model",
    )
    _add_telemetry_flags(stream)

    shard = subparsers.add_parser(
        "shard",
        help="sharded online clustering across N streaming shards "
        "(docs/SHARDING.md)",
    )
    shard.add_argument(
        "input",
        help="newline-delimited sequence file, or '-' to read stdin",
    )
    shard.add_argument(
        "--shards", type=int, default=2, help="number of streaming shards"
    )
    shard.add_argument(
        "--router",
        choices=("hash", "pst"),
        default="hash",
        help="sequence-to-shard assignment: content hash, or best "
        "model likelihood over the last consolidation snapshot",
    )
    shard.add_argument(
        "--runner",
        choices=("inprocess", "process"),
        default=None,
        help="shard execution mode (default: inprocess, or the "
        "manifest's runner on --resume)",
    )
    shard.add_argument(
        "--alphabet",
        metavar="SYMBOLS",
        default=None,
        help="cold-start with this symbol alphabet (e.g. 'acgt')",
    )
    shard.add_argument(
        "--state-dir",
        metavar="DIR",
        default=None,
        help="durable state root (manifest + dispatch WAL + one state "
        "dir per shard)",
    )
    shard.add_argument(
        "--resume",
        action="store_true",
        help="recover every shard from --state-dir and roll the "
        "dispatch WAL forward before ingesting",
    )
    shard.add_argument(
        "--consolidate-every",
        type=int,
        default=16,
        metavar="BATCHES",
        help="global batches between cross-shard consolidation rounds "
        "(0 = never)",
    )
    shard.add_argument(
        "--merge-threshold",
        type=float,
        default=0.25,
        metavar="DIST",
        help="context-tree distance at or below which cross-shard "
        "clusters merge (range 0..2)",
    )
    shard.add_argument("--batch-size", type=int, default=32)
    shard.add_argument(
        "--checkpoint-every",
        type=int,
        default=16,
        metavar="BATCHES",
        help="per-shard checkpoint interval in shard batches",
    )
    shard.add_argument(
        "-t", "--threshold", type=float, default=1.2,
        help="initial similarity threshold (cold start only)",
    )
    shard.add_argument(
        "-c", "--significance", type=int, default=5,
        help="significance threshold c (cold start only)",
    )
    shard.add_argument("--max-depth", type=int, default=6)
    shard.add_argument("--seed", type=int, default=0)
    shard.add_argument(
        "--backend",
        choices=BACKENDS,
        default="auto",
        help="scoring backend for the join/absorb path (bit-identical)",
    )
    shard.add_argument(
        "--no-fsync",
        action="store_true",
        help="skip WAL fsyncs (faster, weaker durability)",
    )
    _add_telemetry_flags(shard)

    serve = subparsers.add_parser(
        "serve", help="serve a saved model over HTTP (docs/SERVING.md)"
    )
    serve.add_argument(
        "model",
        help="model snapshot (`cluster --save-model`), stream checkpoint, "
        "or stream state directory",
    )
    serve.add_argument(
        "--name", default="default", help="registry name for the model"
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=8777, help="listen port (0 = ephemeral)"
    )
    serve.add_argument(
        "--max-batch",
        type=int,
        default=64,
        metavar="N",
        help="flush the micro-batch once N sequences are waiting",
    )
    serve.add_argument(
        "--batch-delay-ms",
        type=float,
        default=2.0,
        metavar="MS",
        help="max milliseconds a request waits for batch-mates",
    )
    serve.add_argument(
        "--queue-size",
        type=int,
        default=256,
        metavar="N",
        help="request queue bound; beyond it classify answers 503",
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=0,
        metavar="N",
        help="score batches on N worker processes (0 = in-process)",
    )
    serve.add_argument(
        "--ready-file",
        metavar="PATH",
        default=None,
        help="write '<host> <port>' to PATH once listening (for CI/scripts)",
    )
    _add_telemetry_flags(serve)

    telemetry = subparsers.add_parser(
        "telemetry", help="inspect or convert a telemetry JSON snapshot"
    )
    telemetry.add_argument(
        "path", help="telemetry JSON written by --metrics-out/--telemetry-dir"
    )
    telemetry.add_argument(
        "--format",
        choices=("table", "prom", "json"),
        default="table",
        help="table summary (default), Prometheus text, or normalized JSON",
    )

    generate = subparsers.add_parser(
        "generate", help="write a synthetic clustered database"
    )
    generate.add_argument("output", help="labelled-text output path")
    generate.add_argument("--sequences", type=int, default=200)
    generate.add_argument("--clusters", type=int, default=10)
    generate.add_argument("--length", type=int, default=120)
    generate.add_argument("--alphabet", type=int, default=12)
    generate.add_argument("--outliers", type=float, default=0.05)
    generate.add_argument("--seed", type=int, default=0)

    experiment = subparsers.add_parser(
        "experiment", help="run a paper-reproduction harness"
    )
    experiment.add_argument("name", choices=sorted(EXPERIMENTS))

    return parser


def _add_telemetry_flags(subparser: argparse.ArgumentParser) -> None:
    """Telemetry v2 flags shared by the long-running subcommands."""
    subparser.add_argument(
        "--telemetry-dir",
        metavar="DIR",
        default=None,
        help="enable metrics + hot-path profiling and write telemetry.json "
        "(repro.telemetry/v2) and metrics.prom into DIR on exit",
    )
    subparser.add_argument(
        "--trace-out",
        metavar="PATH",
        default=None,
        help="export spans as repro.trace/v1 JSON lines to PATH",
    )


def _load_database(path: str, file_format: str) -> SequenceDatabase:
    if file_format == "auto":
        lowered = path.lower()
        file_format = (
            "fasta" if lowered.endswith((".fa", ".fasta", ".faa")) else "text"
        )
    if file_format == "fasta":
        return read_fasta(path)
    return read_labelled_text(path)


def _command_cluster(args: argparse.Namespace) -> int:
    db = _load_database(args.input, args.format)
    params = CluseqParams(
        k=args.k,
        significance_threshold=args.significance,
        similarity_threshold=args.threshold,
        max_depth=args.max_depth,
        max_iterations=args.max_iterations,
        min_unique_members=args.min_unique,
        seed=args.seed,
        backend=args.backend,
        workers=args.workers,
    )
    result = CLUSEQ(params).fit(db)
    print(result.summary())
    rows = []
    for cluster in sorted(result.clusters, key=lambda cl: -cl.size):
        rows.append(
            (
                cluster.cluster_id,
                cluster.size,
                cluster.seed_index,
                cluster.pst.node_count,
            )
        )
    print_table(["cluster", "size", "seed seq", "PST nodes"], rows)
    if args.show_members:
        for cluster in result.clusters:
            members = " ".join(str(i) for i in sorted(cluster.members))
            print(f"cluster {cluster.cluster_id}: {members}")
    if any(label is not None for label in db.labels):
        report = evaluate_clustering(db.labels, result.labels())
        print(
            f"ground truth present: accuracy {percent(report.accuracy)}, "
            f"macro P {percent(report.macro_precision)}, "
            f"macro R {percent(report.macro_recall)}"
        )
    if args.save_model:
        from .core.persistence import save_result

        save_result(result, args.save_model, alphabet=db.alphabet)
        print(f"model written to {args.save_model}")
    return 0


def _command_classify(args: argparse.Namespace) -> int:
    from .core.persistence import load_result_with_alphabet, save_result
    from .sequences.alphabet import AlphabetError

    result, alphabet = load_result_with_alphabet(args.model)
    if alphabet is None:
        print("model file does not embed an alphabet; cannot classify", flush=True)
        return 1
    db = _load_database(args.input, args.format)
    for record in db:
        try:
            encoded = alphabet.encode(record.symbols)
        except AlphabetError:
            print(f"seq{record.sid}\t<unknown symbols>")
            continue
        if args.absorb:
            assignment = result.assign_and_absorb(encoded)
        else:
            assignment = result.predict(encoded)
        label = "outlier" if assignment is None else f"cluster{assignment}"
        print(f"seq{record.sid}\t{label}")
    if args.save_model:
        save_result(result, args.save_model, alphabet=alphabet)
        print(f"model written to {args.save_model}", file=sys.stderr)
    return 0


def _recover_or_report(
    recover: "Callable[[str], Any]", state_dir: str
) -> "tuple[Any, int]":
    """Run a recover callable, mapping bad state dirs to clean errors.

    Shared by ``stream --resume`` and ``shard --resume``: a missing,
    empty or corrupt state directory prints one operator-readable line
    on stderr and exits 2 instead of surfacing a raw traceback.
    Returns ``(engine, 0)`` or ``(None, exit_code)``.
    """
    from .stream import CheckpointError, JournalError, ensure_resumable

    try:
        ensure_resumable(state_dir)
        return recover(state_dir), 0
    except (CheckpointError, JournalError) as exc:
        print(
            f"error: cannot resume from {state_dir}: {exc}", file=sys.stderr
        )
        return None, 2


def _command_stream(args: argparse.Namespace) -> int:
    from .core.persistence import load_result_with_alphabet, save_result
    from .sequences.alphabet import Alphabet
    from .stream import (
        DecayPolicy,
        StreamConfig,
        StreamingCluseq,
        batched,
        read_encoded_lines,
    )

    config = StreamConfig(
        batch_size=args.batch_size,
        pool_size=args.pool_size,
        reseed_every=args.reseed_every,
        reseed_k=args.reseed_k,
        consolidate_every=args.consolidate_every,
        adjust_every=args.adjust_every,
        decay=DecayPolicy(
            factor=args.decay_factor, every_batches=args.decay_every
        ),
        checkpoint_every=args.checkpoint_every,
        journal_fsync=not args.no_fsync,
        seed=args.seed,
        backend=args.backend,
    )
    if args.resume:
        if not args.state_dir:
            print("--resume requires --state-dir", file=sys.stderr)
            return 2
        engine, code = _recover_or_report(
            StreamingCluseq.recover, args.state_dir
        )
        if engine is None:
            return code
    elif args.model:
        result, alphabet = load_result_with_alphabet(args.model)
        engine = StreamingCluseq(
            result, config=config, alphabet=alphabet, state_dir=args.state_dir
        )
    elif args.alphabet:
        engine = StreamingCluseq.cold_start(
            alphabet=Alphabet(args.alphabet),
            similarity_threshold=args.threshold,
            significance_threshold=args.significance,
            max_depth=args.max_depth,
            config=config,
            state_dir=args.state_dir,
        )
    else:
        print(
            "pass --model, --alphabet, or --resume with --state-dir",
            file=sys.stderr,
        )
        return 2
    if engine.alphabet is None:
        print("no alphabet available; cannot encode the stream", file=sys.stderr)
        return 1
    with engine:
        if args.input == "-":
            encoded = read_encoded_lines(sys.stdin, engine.alphabet)
            for batch in batched(encoded, config.batch_size):
                engine.ingest_batch(batch)
        else:
            with open(args.input, encoding="utf-8") as handle:
                encoded = read_encoded_lines(handle, engine.alphabet)
                for batch in batched(encoded, config.batch_size):
                    engine.ingest_batch(batch)
        if args.state_dir:
            engine.checkpoint()
    stats = engine.stats()
    print_table(
        ["metric", "value"],
        [(key, value) for key, value in stats.to_dict().items()],
    )
    rows = []
    for cluster in sorted(engine.result.clusters, key=lambda cl: -cl.size):
        rows.append(
            (
                cluster.cluster_id,
                cluster.size,
                cluster.created_at_iteration,
                cluster.pst.node_count,
            )
        )
    if rows:
        print_table(["cluster", "size", "born (batch)", "PST nodes"], rows)
    if args.save_model:
        save_result(engine.result, args.save_model, alphabet=engine.alphabet)
        print(f"model written to {args.save_model}", file=sys.stderr)
    return 0


def _command_shard(args: argparse.Namespace) -> int:
    from .sequences.alphabet import Alphabet
    from .shard import ShardConfig, ShardedStreamingCluseq
    from .stream import StreamConfig, batched, read_encoded_lines

    stream_config = StreamConfig(
        batch_size=args.batch_size,
        checkpoint_every=args.checkpoint_every,
        journal_fsync=not args.no_fsync,
        seed=args.seed,
        backend=args.backend,
    )
    if args.resume:
        if not args.state_dir:
            print("--resume requires --state-dir", file=sys.stderr)
            return 2
        engine, code = _recover_or_report(
            lambda state_dir: ShardedStreamingCluseq.recover(
                state_dir, runner=args.runner
            ),
            args.state_dir,
        )
        if engine is None:
            return code
    elif args.alphabet:
        config = ShardConfig(
            shards=args.shards,
            router=args.router,
            runner=args.runner or "inprocess",
            consolidate_every=args.consolidate_every,
            merge_threshold=args.merge_threshold,
            stream=stream_config,
        )
        engine = ShardedStreamingCluseq.cold_start(
            alphabet=Alphabet(args.alphabet),
            similarity_threshold=args.threshold,
            significance_threshold=args.significance,
            max_depth=args.max_depth,
            config=config,
            state_dir=args.state_dir,
        )
    else:
        print(
            "pass --alphabet, or --resume with --state-dir",
            file=sys.stderr,
        )
        return 2
    if engine.alphabet is None:
        print(
            "state dir does not embed an alphabet; cannot encode the stream",
            file=sys.stderr,
        )
        return 1
    batch_size = engine.config.stream.batch_size
    with engine:
        if args.input == "-":
            encoded = read_encoded_lines(sys.stdin, engine.alphabet)
            for batch in batched(encoded, batch_size):
                engine.ingest_batch(batch)
        else:
            with open(args.input, encoding="utf-8") as handle:
                encoded = read_encoded_lines(handle, engine.alphabet)
                for batch in batched(encoded, batch_size):
                    engine.ingest_batch(batch)
        engine.flush()
        if args.state_dir:
            engine.checkpoint()
        # Collect before close(): process-runner workers die with it.
        stats = engine.stats()
        rows = []
        for shard, handle in enumerate(engine.handles):
            for cluster_id, size, born, nodes in handle.cluster_summaries():
                rows.append((shard, cluster_id, size, born, nodes))
    print_table(
        ["metric", "value"],
        [
            (key, value)
            for key, value in stats.to_dict().items()
            if key != "per_shard"
        ],
    )
    rows.sort(key=lambda row: (-row[2], row[0], row[1]))
    if rows:
        print_table(
            ["shard", "cluster", "size", "born (batch)", "PST nodes"], rows
        )
    return 0


def _command_serve(args: argparse.Namespace) -> int:
    import asyncio
    import contextlib
    import signal

    from .obs import get_registry
    from .serve import ModelLoadError, ModelRegistry, ServeApp

    with contextlib.ExitStack() as stack:
        # /metrics needs a live registry even when the user passed no
        # telemetry flags; install a private one rather than serving an
        # empty exposition.
        if not get_registry().enabled:
            stack.enter_context(use_registry(MetricsRegistry()))
        registry = ModelRegistry()
        try:
            registry.load(args.name, args.model)
        except ModelLoadError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1

        async def _run() -> int:
            app = ServeApp(
                registry,
                model_name=args.name,
                max_batch=args.max_batch,
                max_delay=args.batch_delay_ms / 1000.0,
                max_queue=args.queue_size,
                workers=args.workers,
            )
            stop = asyncio.Event()
            loop = asyncio.get_running_loop()
            for signum in (signal.SIGINT, signal.SIGTERM):
                try:
                    loop.add_signal_handler(signum, stop.set)
                except NotImplementedError:  # pragma: no cover - non-POSIX
                    pass
            try:
                host, port = await app.start(args.host, args.port)
                print(
                    f"serving {args.name!r} on http://{host}:{port}",
                    file=sys.stderr,
                )
                if args.ready_file:
                    with open(args.ready_file, "w", encoding="utf-8") as handle:
                        handle.write(f"{host} {port}\n")
                await stop.wait()
                print("shutting down", file=sys.stderr)
            finally:
                await app.close()
            return 0

        return asyncio.run(_run())


def _command_generate(args: argparse.Namespace) -> int:
    ds = generate_clustered_database(
        num_sequences=args.sequences,
        num_clusters=args.clusters,
        avg_length=args.length,
        alphabet_size=args.alphabet,
        outlier_fraction=args.outliers,
        seed=args.seed,
    )
    write_labelled_text(ds.database, args.output)
    print(
        f"wrote {len(ds.database)} sequences "
        f"({args.clusters} clusters, {percent(args.outliers)} outliers) "
        f"to {args.output}"
    )
    return 0


def _command_experiment(args: argparse.Namespace) -> int:
    import importlib

    module_name, runner_name, printer_name = EXPERIMENTS[args.name]
    module = importlib.import_module(f"repro.experiments.{module_name}")
    rows = getattr(module, runner_name)()
    getattr(module, printer_name)(rows)
    return 0


def _command_telemetry(args: argparse.Namespace) -> int:
    import json

    from .obs import prometheus_from_snapshot

    try:
        with open(args.path, encoding="utf-8") as handle:
            doc = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"error: cannot read {args.path}: {exc}", file=sys.stderr)
        return 1
    if not isinstance(doc, dict) or not isinstance(doc.get("metrics"), dict):
        print(
            f"error: {args.path} is not a telemetry document "
            "(expected a JSON object with a 'metrics' mapping)",
            file=sys.stderr,
        )
        return 1
    metrics = doc["metrics"]
    if args.format == "json":
        print(json.dumps(doc, indent=2, sort_keys=True))
        return 0
    if args.format == "prom":
        sys.stdout.write(prometheus_from_snapshot(metrics))
        return 0
    print(f"schema: {doc.get('schema', '?')}")
    rows = []
    for name in sorted(metrics):
        entry = metrics[name]
        if not isinstance(entry, dict):
            continue
        kind = str(entry.get("type", "?"))
        value = entry.get("value")
        if value is None:
            value = entry.get("count", "")
        rows.append([name, kind, str(value)])
    print_table(["metric", "type", "value"], rows)
    return 0


def _dispatch(args: argparse.Namespace) -> int:
    if args.command == "cluster":
        return _command_cluster(args)
    if args.command == "classify":
        return _command_classify(args)
    if args.command == "stream":
        return _command_stream(args)
    if args.command == "shard":
        return _command_shard(args)
    if args.command == "serve":
        return _command_serve(args)
    if args.command == "telemetry":
        return _command_telemetry(args)
    if args.command == "generate":
        return _command_generate(args)
    if args.command == "experiment":
        return _command_experiment(args)
    return 2  # pragma: no cover - argparse enforces the choices


def _check_out_dir(parser: argparse.ArgumentParser, flag: str, path: str) -> None:
    # Fail fast on an unwritable telemetry path rather than discovering
    # it after minutes of clustering work.
    out_dir = os.path.dirname(os.path.abspath(path))
    if not os.path.isdir(out_dir):
        parser.error(f"{flag}: directory does not exist: {out_dir}")


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    import contextlib

    parser = build_parser()
    args = parser.parse_args(argv)
    if args.log_level or args.log_json:
        configure_logging(
            level=args.log_level or "INFO", json_lines=args.log_json
        )
    telemetry_dir = getattr(args, "telemetry_dir", None)
    trace_out = getattr(args, "trace_out", None)
    if not (args.metrics_out or telemetry_dir or trace_out):
        return _dispatch(args)

    from .obs import JsonlSpanExporter, Profiler, use_profiler, use_span_exporter

    if args.metrics_out:
        _check_out_dir(parser, "--metrics-out", args.metrics_out)
    if trace_out:
        _check_out_dir(parser, "--trace-out", trace_out)

    registry: MetricsRegistry | None = None
    with contextlib.ExitStack() as stack:
        if args.metrics_out or telemetry_dir:
            registry = MetricsRegistry()
            stack.enter_context(use_registry(registry))
        if telemetry_dir:
            stack.enter_context(use_profiler(Profiler()))
        if trace_out:
            exporter = stack.enter_context(JsonlSpanExporter(trace_out))
            stack.enter_context(use_span_exporter(exporter))
        code = _dispatch(args)
    context = {"argv": list(argv) if argv is not None else sys.argv[1:]}
    if args.metrics_out and registry is not None:
        write_metrics_json(args.metrics_out, registry, extra=context)
        print(f"telemetry written to {args.metrics_out}", file=sys.stderr)
    if telemetry_dir and registry is not None:
        from .obs import write_prometheus_text, write_telemetry_json

        target = os.path.join(telemetry_dir, "telemetry.json")
        write_telemetry_json(target, registry, context=context)
        write_prometheus_text(
            os.path.join(telemetry_dir, "metrics.prom"), registry
        )
        print(f"telemetry v2 written to {telemetry_dir}", file=sys.stderr)
    if trace_out:
        print(f"trace written to {trace_out}", file=sys.stderr)
    return code


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
