"""Synthetic system-call trace dataset.

The paper's introduction lists "system traces" among the sequence data
motivating CLUSEQ. This module generates process traces over a small
system-call vocabulary, with behavioural archetypes that mirror what
intrusion-detection datasets (e.g. the UNM sendmail traces) look like:

* ``file_worker`` — open/read/write/close loops,
* ``network_daemon`` — socket/accept/recv/send cycles,
* ``compute_job`` — long mmap/brk/compute stretches with rare I/O,
* ``scanner`` — stat/open/close sweeps over many paths (an
  attack-reconnaissance-like pattern).

The archetype is the ground-truth label; a CLUSEQ user would discover
these behaviour groups unsupervised.
"""

from __future__ import annotations


import numpy as np

from ..sequences.alphabet import Alphabet
from ..sequences.database import OUTLIER_LABEL, SequenceDatabase
from ..sequences.markov import MarkovSource, uniform_source

#: The system-call vocabulary (one letter per call keeps traces compact).
SYSCALLS = {
    "o": "open",
    "r": "read",
    "w": "write",
    "c": "close",
    "s": "socket",
    "a": "accept",
    "v": "recv",
    "n": "send",
    "m": "mmap",
    "b": "brk",
    "x": "execve",
    "t": "stat",
}

#: Archetype names in generation order.
ARCHETYPES = ("file_worker", "network_daemon", "compute_job", "scanner")


def _source_for(archetype: str, alphabet: Alphabet) -> MarkovSource:
    """The order-1 behaviour model of one archetype."""
    n = alphabet.size
    index = {call: alphabet.id_of(call) for call in SYSCALLS}

    def dist(**weights: float) -> np.ndarray:
        vec = np.full(n, 0.02)
        for call, weight in weights.items():
            vec[index[call]] = weight
        return vec / vec.sum()

    if archetype == "file_worker":
        transitions = {
            (): dist(o=5.0, r=2.0),
            (index["o"],): dist(r=6.0, w=2.0),
            (index["r"],): dist(r=4.0, w=3.0, c=2.0),
            (index["w"],): dist(w=3.0, r=2.0, c=3.0),
            (index["c"],): dist(o=6.0, t=1.0),
        }
    elif archetype == "network_daemon":
        transitions = {
            (): dist(s=5.0, a=2.0),
            (index["s"],): dist(a=7.0),
            (index["a"],): dist(v=6.0, n=1.0),
            (index["v"],): dist(n=5.0, v=2.0, c=1.0),
            (index["n"],): dist(v=4.0, n=2.0, a=2.0),
            (index["c"],): dist(a=5.0, s=2.0),
        }
    elif archetype == "compute_job":
        transitions = {
            (): dist(x=3.0, m=4.0),
            (index["x"],): dist(m=6.0, b=2.0),
            (index["m"],): dist(m=5.0, b=4.0),
            (index["b"],): dist(b=5.0, m=3.0, r=0.5),
            (index["r"],): dist(m=4.0, b=3.0),
        }
    elif archetype == "scanner":
        transitions = {
            (): dist(t=6.0),
            (index["t"],): dist(t=4.0, o=3.0),
            (index["o"],): dist(c=7.0),
            (index["c"],): dist(t=6.0, o=2.0),
        }
    else:
        raise ValueError(f"unknown archetype {archetype!r}")
    return MarkovSource(n, order=1, transitions=transitions)


def make_trace_database(
    traces_per_archetype: int = 40,
    mean_length: int = 120,
    noise_fraction: float = 0.0,
    seed: int = 0,
) -> SequenceDatabase:
    """Generate the labelled system-call trace database.

    Parameters
    ----------
    traces_per_archetype:
        How many process traces each behaviour contributes.
    mean_length:
        Mean trace length in system calls.
    noise_fraction:
        Fraction of the final database that is uniform-random call
        sequences (crashed/garbled traces), labelled
        :data:`~repro.sequences.database.OUTLIER_LABEL`.
    """
    if traces_per_archetype < 1:
        raise ValueError("traces_per_archetype must be at least 1")
    if not 0.0 <= noise_fraction < 1.0:
        raise ValueError("noise_fraction must be in [0, 1)")
    rng = np.random.default_rng(seed)
    alphabet = Alphabet(SYSCALLS.keys())
    db = SequenceDatabase(alphabet)
    for archetype in ARCHETYPES:
        source = _source_for(archetype, alphabet)
        for encoded in source.sample_many(
            traces_per_archetype, mean_length, rng=rng, length_jitter=0.3
        ):
            db.add_sequence(alphabet.decode(encoded), label=archetype)
    if noise_fraction > 0.0:
        clustered = len(db)
        num_noise = int(round(clustered * noise_fraction / (1.0 - noise_fraction)))
        noise = uniform_source(alphabet.size)
        for encoded in noise.sample_many(num_noise, mean_length, rng=rng):
            db.add_sequence(alphabet.decode(encoded), label=OUTLIER_LABEL)
    return db
