"""Synthetic protein-family database (SWISS-PROT substitute).

The paper's accuracy experiments use 8 000 SWISS-PROT proteins from 30
families sized 140–900 (Table 3 names the ten largest: ig, pkinase,
globin, 7tm_1, homeobox, efhand, RuBisCO_large, …, gluts, actin, rrm).
That data requires a SWISS-PROT licence, so this module generates a
statistically equivalent substitute:

* Each family has its own order-2 Markov source over the 20 standard
  amino acids (family-specific local composition), plus
* one to three **conserved motifs** — fixed short amino-acid strings
  inserted at random offsets into every member (the "common signature /
  conserved protein regions" of the paper's introduction).

Family sizes follow the paper's Table 3 distribution, scaled by a
configurable factor so the default database stays laptop-sized. Both
signals — shared local statistics and conserved regions — are exactly
what the CLUSEQ similarity measure (and the baselines) must pick up,
so the discrimination task is preserved.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..sequences.alphabet import AMINO_ACIDS, Alphabet
from ..sequences.database import OUTLIER_LABEL, SequenceDatabase
from ..sequences.markov import MarkovSource, random_markov_source, uniform_source

#: The family names and sizes the paper reports in Table 3 (the ten it
#: shows), padded with synthetic names up to 30 families whose sizes
#: interpolate the 140–900 range.
PAPER_FAMILY_SIZES: tuple[tuple[str, int], ...] = (
    ("ig", 884),
    ("pkinase", 725),
    ("globin", 681),
    ("7tm_1", 515),
    ("homeobox", 383),
    ("efhand", 320),
    ("RuBisCO_large", 311),
    ("gluts", 144),
    ("actin", 142),
    ("rrm", 141),
)


@dataclass(frozen=True)
class ProteinFamilySpec:
    """Generation recipe of one synthetic family."""

    name: str
    size: int
    motifs: tuple[str, ...]
    mean_length: int


def _family_table(num_families: int, scale: float) -> list[tuple[str, int]]:
    """Family (name, size) pairs following the paper's distribution."""
    if num_families < 1:
        raise ValueError("num_families must be at least 1")
    if scale <= 0:
        raise ValueError("scale must be positive")
    table: list[tuple[str, int]] = []
    named = list(PAPER_FAMILY_SIZES)
    for index in range(num_families):
        if index < len(named):
            name, size = named[index]
        else:
            # Interpolate the remaining sizes across the paper's range.
            fraction = (index - len(named)) / max(1, num_families - len(named))
            size = int(round(900 - fraction * (900 - 140)))
            name = f"family{index}"
        scaled = max(4, int(round(size * scale)))
        table.append((name, scaled))
    return table


def _random_motif(rng: np.random.Generator, length: int) -> str:
    return "".join(rng.choice(list(AMINO_ACIDS), size=length))


def make_family_specs(
    num_families: int = 10,
    scale: float = 0.05,
    mean_length: int = 120,
    seed: int = 0,
) -> list[ProteinFamilySpec]:
    """Build the per-family generation recipes."""
    rng = np.random.default_rng(seed)
    specs: list[ProteinFamilySpec] = []
    for name, size in _family_table(num_families, scale):
        n_motifs = int(rng.integers(1, 4))
        motifs = tuple(
            _random_motif(rng, int(rng.integers(8, 16))) for _ in range(n_motifs)
        )
        specs.append(
            ProteinFamilySpec(
                name=name, size=size, motifs=motifs, mean_length=mean_length
            )
        )
    return specs


def _generate_member(
    source: MarkovSource,
    spec: ProteinFamilySpec,
    alphabet: Alphabet,
    rng: np.random.Generator,
) -> str:
    """One family member: background sample with motifs spliced in."""
    length = max(
        20, int(round(rng.normal(spec.mean_length, 0.15 * spec.mean_length)))
    )
    body = list(alphabet.decode(source.sample(length, rng)))
    for motif in spec.motifs:
        offset = int(rng.integers(0, max(1, len(body) - len(motif))))
        body[offset : offset + len(motif)] = list(motif)
    return "".join(body)


def make_protein_database(
    num_families: int = 10,
    scale: float = 0.05,
    mean_length: int = 120,
    outlier_fraction: float = 0.0,
    seed: int = 0,
    concentration: float = 0.3,
) -> SequenceDatabase:
    """Generate the synthetic protein-family database.

    Parameters
    ----------
    num_families:
        How many families to embed (the paper uses 30; the default 10
        matches the families Table 3 names and keeps runs fast).
    scale:
        Multiplier on the paper's family sizes (0.05 → sizes 7–44).
    mean_length:
        Mean protein length (real SWISS-PROT entries average ≈ 360;
        the default 120 trades fidelity for speed — lengths only
        rescale similarity magnitudes).
    outlier_fraction:
        Fraction of the final database that is uniform-random noise,
        labelled :data:`~repro.sequences.database.OUTLIER_LABEL`.
    concentration:
        Dirichlet concentration of the per-family background sources;
        smaller = more family-specific composition.
    """
    if not 0.0 <= outlier_fraction < 1.0:
        raise ValueError("outlier_fraction must be in [0, 1)")
    rng = np.random.default_rng(seed)
    alphabet = Alphabet.protein()
    specs = make_family_specs(num_families, scale, mean_length, seed)
    db = SequenceDatabase(alphabet)
    for spec in specs:
        source = random_markov_source(
            alphabet.size, order=2, rng=rng, concentration=concentration
        )
        for _ in range(spec.size):
            db.add_sequence(_generate_member(source, spec, alphabet, rng), spec.name)

    if outlier_fraction > 0.0:
        clustered = len(db)
        num_outliers = int(
            round(clustered * outlier_fraction / (1.0 - outlier_fraction))
        )
        noise = uniform_source(alphabet.size)
        for encoded in noise.sample_many(num_outliers, mean_length, rng=rng):
            db.add_sequence(alphabet.decode(encoded), OUTLIER_LABEL)
    return db


def family_names(db: SequenceDatabase) -> list[str]:
    """Distinct family labels of a protein database, largest first."""
    from collections import Counter

    counts = Counter(
        record.label
        for record in db
        if record.label is not None and record.label != OUTLIER_LABEL
    )
    return [name for name, _ in counts.most_common()]
