"""Natural-language sentence database (CNN / Sina / Yahoo-Japan substitute).

The paper's Table 4 clusters 600 sentences each of English, romanised
Chinese and romanised Japanese (spaces removed), plus 100 noise
sentences in other languages. The original web scrapes are gone, so
this module generates sentences from compact word/syllable inventories
that reproduce the statistical features the paper itself credits for
the results:

* **English** — a vocabulary rich in "th"/"he" digraphs and frequent
  "e" ("the", "there", "then", "with", …), the features the paper says
  make English easiest, including the "ion"/"ch"/"sh" affixes it blames
  for English↔Chinese confusion.
* **Chinese** — a pinyin syllable inventory (zh/x/q initials, -ang/-ong
  finals) with "ch"/"sh" present, per the paper's confusion analysis.
* **Japanese** — romaji with strict consonant-vowel alternation, the
  "most dominant rule" the paper describes.
* **Noise** — transliterated Russian and German word stock.

Sentences are lowercase ``a–z`` only, concatenated without spaces,
exactly as the paper preprocesses its data.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from ..sequences.alphabet import Alphabet
from ..sequences.database import OUTLIER_LABEL, SequenceDatabase

ENGLISH_WORDS = (
    "the there then they them these those with this that think through "
    "thing together whether another mother father weather leather health "
    "when where which while what who whole here we her he she sheet "
    "nation station action information education situation position "
    "attention question revolution solution relation condition election "
    "change church chance children teacher speech such much march chapter "
    "she shall share shape short should show shadow fashion mission "
    "people government president country because before between being "
    "never every under over after water later matter letter better "
    "house world work word year time life hand part place right great "
    "again against said says seem seen very even ever level general "
    "interest different important national political economic public"
).split()

CHINESE_SYLLABLES = (
    "zhong guo ren min bei jing shang hai xiang gang zhang wang li zhao "
    "chen yang huang zhou wu xu sun zhu gao lin he guo ma luo liang song "
    "xie tang han feng dong xiao cheng cao yuan deng xu fu shen zeng peng "
    "lu jiang cai jia ding wei xue fang shi jin qian tan liao zou xiong "
    "jie qiu hou shao meng qin jiang yan duan lei qian tang yin wu qiao "
    "chang sheng chun shun chuan shuang zhuang chuang zheng zhen zhan "
    "xian qing xing qiang xiang quan xuan qun yun yong ying yao you yue"
).split()

JAPANESE_SYLLABLES = (
    "ka ki ku ke ko sa shi su se so ta chi tsu te to na ni nu ne no "
    "ha hi fu he ho ma mi mu me mo ya yu yo ra ri ru re ro wa "
    "ga gi gu ge go za ji zu ze zo da de do ba bi bu be bo "
    "kya kyu kyo sha shu sho cha chu cho nya nyu nyo hya hyu hyo "
    "a i u e o n"
).split()

RUSSIAN_WORDS = (
    "moskva rossiya gorod pravda slovo narod zemlya voda khleb drug "
    "vremya zhizn rabota kniga shkola gosudarstvo prezident pravitelstvo "
    "chelovek zhenshchina muzhchina rebyonok ulitsa doroga mashina dom "
    "velikiy novyy staryy krasnyy zvezda nebo solntse luna zima leto"
).split()

GERMAN_WORDS = (
    "der die das und ist nicht ein eine mit von auf aus bei nach zu "
    "regierung deutschland wirtschaft geschichte wissenschaft "
    "entwicklung gesellschaft verantwortung geschwindigkeit "
    "freundschaft wahrheit arbeit leben wasser himmel strasse stadt "
    "zeitung sprache schule jahr zeit welt mensch frau kind haus"
).split()

#: Language name → word/syllable inventory.
LANGUAGE_INVENTORIES: dict[str, Sequence[str]] = {
    "english": ENGLISH_WORDS,
    "chinese": CHINESE_SYLLABLES,
    "japanese": JAPANESE_SYLLABLES,
}

#: Noise languages mixed into the database as outliers (paper: "100
#: sentences in other languages, e.g., Russian, German").
NOISE_INVENTORIES: dict[str, Sequence[str]] = {
    "russian": RUSSIAN_WORDS,
    "german": GERMAN_WORDS,
}


def make_sentence(
    inventory: Sequence[str],
    rng: np.random.Generator,
    min_chars: int = 40,
    max_chars: int = 90,
) -> str:
    """One sentence: words drawn (Zipf-weighted) and concatenated.

    Space characters are eliminated, as in the paper's preprocessing.
    """
    if not inventory:
        raise ValueError("inventory must not be empty")
    if min_chars < 1 or max_chars < min_chars:
        raise ValueError("need 1 <= min_chars <= max_chars")
    # Zipf-ish weighting: earlier inventory entries are more frequent.
    ranks = np.arange(1, len(inventory) + 1, dtype=np.float64)
    weights = 1.0 / ranks
    weights /= weights.sum()
    target = int(rng.integers(min_chars, max_chars + 1))
    parts: list[str] = []
    total = 0
    while total < target:
        word = inventory[int(rng.choice(len(inventory), p=weights))]
        parts.append(word)
        total += len(word)
    return "".join(parts)[:max_chars]


def make_language_database(
    sentences_per_language: int = 120,
    noise_sentences: int = 20,
    seed: int = 0,
    min_chars: int = 40,
    max_chars: int = 90,
) -> SequenceDatabase:
    """Generate the Table 4 language-clustering database.

    The paper uses 600 sentences per language and 100 noise sentences;
    the defaults scale that 5× down. Noise sentences carry the
    :data:`~repro.sequences.database.OUTLIER_LABEL` ground truth.
    """
    if sentences_per_language < 1:
        raise ValueError("sentences_per_language must be at least 1")
    if noise_sentences < 0:
        raise ValueError("noise_sentences must be non-negative")
    rng = np.random.default_rng(seed)
    alphabet = Alphabet.lowercase()
    db = SequenceDatabase(alphabet)
    for language, inventory in LANGUAGE_INVENTORIES.items():
        for _ in range(sentences_per_language):
            db.add_sequence(
                make_sentence(inventory, rng, min_chars, max_chars), language
            )
    noise_names = list(NOISE_INVENTORIES)
    for index in range(noise_sentences):
        inventory = NOISE_INVENTORIES[noise_names[index % len(noise_names)]]
        db.add_sequence(
            make_sentence(inventory, rng, min_chars, max_chars), OUTLIER_LABEL
        )
    return db
