"""Dataset substitutes for the paper's real-data experiments."""

from .languages import (
    LANGUAGE_INVENTORIES,
    NOISE_INVENTORIES,
    make_language_database,
    make_sentence,
)
from .traces import ARCHETYPES, SYSCALLS, make_trace_database
from .protein import (
    PAPER_FAMILY_SIZES,
    ProteinFamilySpec,
    family_names,
    make_family_specs,
    make_protein_database,
)

__all__ = [
    "ARCHETYPES",
    "SYSCALLS",
    "make_trace_database",
    "LANGUAGE_INVENTORIES",
    "NOISE_INVENTORIES",
    "make_language_database",
    "make_sentence",
    "PAPER_FAMILY_SIZES",
    "ProteinFamilySpec",
    "family_names",
    "make_family_specs",
    "make_protein_database",
]
