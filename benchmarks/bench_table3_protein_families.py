"""Table 3 — per-family precision/recall on the protein database.

Paper's shape: precision 75–88 %, recall 80–89 %, *consistent across
family sizes spanning 141–884* — no systematic degradation for small
families.
"""

import numpy as np
from conftest import run_once

from repro.experiments.table3_protein_families import print_table3, run_table3


def test_table3_per_family_quality(benchmark, protein_db):
    rows = run_once(benchmark, run_table3, db=protein_db)
    print_table3(rows)

    assert len(rows) == 10

    # Shape 1: quality in (or above) the paper's band on average.
    mean_precision = float(np.mean([row.precision for row in rows]))
    mean_recall = float(np.mean([row.recall for row in rows]))
    assert mean_precision >= 0.70
    assert mean_recall >= 0.70

    # Shape 2: consistency across sizes — the correlation between family
    # size and recall must not be strongly positive (small families are
    # not systematically sacrificed). The paper's own numbers have
    # essentially zero correlation.
    sizes = np.array([row.size for row in rows], dtype=float)
    recalls = np.array([row.recall for row in rows])
    if recalls.std() > 0:
        correlation = float(np.corrcoef(sizes, recalls)[0, 1])
        assert correlation > -0.9  # no pathological anti-correlation either
        assert correlation < 0.9

    # Shape 3: every family is actually discovered (nonzero recall).
    assert all(row.recall > 0.0 for row in rows)
