"""Table 5 — robustness to the initial number of clusters k.

Paper's shape (true k = 100): final cluster count 99–102 regardless of
initial k ∈ {1, 20, 100, 200}; precision/recall stable at 81–83 %.
"""

from conftest import run_once

from repro.experiments.table5_initial_k import print_table5, run_table5

TRUE_K = 10


def test_table5_initial_k_robustness(benchmark, synthetic_db):
    rows = run_once(
        benchmark,
        run_table5,
        db=synthetic_db,
        initial_ks=(1, 2, TRUE_K, 2 * TRUE_K),
        true_k=TRUE_K,
    )
    print_table5(rows, true_k=TRUE_K)

    # Shape 1: the final cluster count lands near the truth for every
    # initial k (paper: within ±2 of 100).
    for row in rows:
        assert abs(row.final_clusters - TRUE_K) <= 3, (
            f"init k={row.initial_k} ended at {row.final_clusters} clusters"
        )

    # Shape 2: the spread across initial settings is small.
    finals = [row.final_clusters for row in rows]
    assert max(finals) - min(finals) <= 3

    # Shape 3: quality is stable across initial settings (the paper's
    # 100k-scale spread is ~2 points; scaled runs wobble more).
    recalls = [row.recall for row in rows]
    precisions = [row.precision for row in rows]
    assert max(recalls) - min(recalls) <= 0.30
    assert max(precisions) - min(precisions) <= 0.35
    assert min(precisions) >= 0.55
