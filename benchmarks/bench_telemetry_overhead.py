"""Telemetry zero-overhead bench — the disabled-path cost bound.

The Telemetry v2 instrumentation threads ``prof.enabled`` /
``registry.enabled`` guards through the scoring hot path
(``PstBatchScorer._score_rows``, the stack/flat caches). This bench
verifies the contract that motivated those guards: with telemetry
fully disabled (the default), the instrumented scorer must run within
``OVERHEAD_BOUND`` (2%) of a hand-inlined, guard-free transcription of
the same kernel sequence — i.e. the pre-instrumentation timing.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_telemetry_overhead.py

Exits non-zero when the bound is violated after ``ATTEMPTS`` retries
(timing on shared CI machines is noisy; a bound this tight needs
best-of-N on both sides and a couple of attempts). Also runs under
pytest as the perf-smoke assertion.
"""

from __future__ import annotations

import sys
import time
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT) not in sys.path:
    sys.path.insert(0, str(REPO_ROOT))

from repro.core.backends import PstBatchScorer
from repro.core.backends.vectorized import (
    gather_ratios_matrix,
    kadane_columns,
    matrix_from_batch,
    pad_sequences,
    prepare_stack,
    stack_flats,
    walk_states_matrix,
)
from repro.core.pst import ProbabilisticSuffixTree
from repro.obs import NULL_PROFILER, NULL_REGISTRY, get_profiler, get_registry

#: Disabled telemetry may cost at most this fraction over the bare kernels.
OVERHEAD_BOUND = 0.02
#: Timing attempts before declaring the bound violated.
ATTEMPTS = 3
#: Repeats per attempt; both sides take the best (min) timing.
REPEATS = 30

WORKLOAD = {"alphabet": 12, "depth": 5, "significance": 3, "clusters": 6,
            "sequences": 60, "length": 80}


def build_workload():
    rng = np.random.default_rng(23)
    alphabet = WORKLOAD["alphabet"]
    psts = []
    for _ in range(WORKLOAD["clusters"]):
        pst = ProbabilisticSuffixTree(
            alphabet_size=alphabet,
            max_depth=WORKLOAD["depth"],
            significance_threshold=WORKLOAD["significance"],
        )
        for _ in range(10):
            pst.add_sequence(
                [int(s) for s in rng.integers(0, alphabet, WORKLOAD["length"])]
            )
        psts.append(pst)
    sequences = [
        [int(s) for s in rng.integers(0, alphabet, WORKLOAD["length"])]
        for _ in range(WORKLOAD["sequences"])
    ]
    background = np.full(alphabet, 1.0 / alphabet)
    return psts, sequences, background


def make_bare_runner(scorer, psts, sequences, log_bg):
    """The same kernel sequence with zero instrumentation.

    A transcription of ``score_matrix`` / ``_score_matrix_arrays`` with
    every telemetry guard deleted — the pre-instrumentation hot path:
    pad once, walk the full-matrix state cube, gather ratios, one
    batched Kadane scan over the column layout, reshape, materialize.
    The prepared stack is hoisted like the scorer's cache is.
    """
    prep = prepare_stack(
        stack_flats([pst.flattened() for pst in psts]), log_bg
    )
    trees = len(psts)

    def bare() -> None:
        padded, lengths = pad_sequences(sequences)
        batch, width = padded.shape
        states = walk_states_matrix(prep, padded)
        ratios = gather_ratios_matrix(prep, padded, states)
        flat = kadane_columns(
            ratios.reshape(width, trees * batch), np.tile(lengths, trees)
        )
        matrix = matrix_from_batch(flat, trees, batch)
        _ = matrix.to_lists()

    return bare


def measure_overhead() -> tuple[float, float, float]:
    """(bare_seconds, instrumented_seconds, overhead_fraction).

    The two variants are timed *interleaved* (bare, instrumented, bare,
    instrumented, …) taking the min of each: back-to-back blocks pick
    up systematic drift (frequency scaling, cache state) that dwarfs
    the per-call guard cost this bench is trying to measure.
    """
    assert not get_registry().enabled and not get_profiler().enabled, (
        "this bench must run with telemetry disabled"
    )
    psts, sequences, background = build_workload()
    scorer = PstBatchScorer(background)
    scorer.score_matrix(psts, sequences)  # warm flats, stack and caches
    bare_runner = make_bare_runner(scorer, psts, sequences, scorer.log_bg)
    bare_runner()
    bare = instrumented = float("inf")
    for _ in range(REPEATS):
        started = time.perf_counter()
        bare_runner()
        bare = min(bare, time.perf_counter() - started)
        started = time.perf_counter()
        scorer.score_matrix(psts, sequences)
        instrumented = min(instrumented, time.perf_counter() - started)
    return bare, instrumented, instrumented / bare - 1.0


def run(report=print) -> bool:
    assert get_registry() is NULL_REGISTRY or not get_registry().enabled
    assert get_profiler() is NULL_PROFILER or not get_profiler().enabled
    worst = None
    for attempt in range(1, ATTEMPTS + 1):
        bare, instrumented, overhead = measure_overhead()
        report(
            f"attempt {attempt}: bare {bare * 1e3:.3f} ms, "
            f"instrumented(disabled) {instrumented * 1e3:.3f} ms, "
            f"overhead {overhead * 100:+.2f}% (bound {OVERHEAD_BOUND:.0%})"
        )
        if overhead <= OVERHEAD_BOUND:
            return True
        worst = overhead
    report(
        f"FAIL: disabled-telemetry overhead {worst * 100:+.2f}% exceeds "
        f"{OVERHEAD_BOUND:.0%} after {ATTEMPTS} attempts",
    )
    return False


def test_disabled_telemetry_overhead_bounded():
    """Perf-smoke gate: telemetry off must cost ≤2% on the score path."""
    from repro.obs import use_registry

    # conftest's bench_telemetry fixture installs a live registry for
    # every bench; this one specifically measures the disabled path.
    with use_registry(None):
        assert run()


def main() -> int:
    return 0 if run() else 1


if __name__ == "__main__":
    sys.exit(main())
