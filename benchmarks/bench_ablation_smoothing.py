"""§5.2 ablation — adjusted probability estimation (smoothing).

Paper's motivation: without smoothing, a small cluster assigns
probability 0 to unseen symbols and the predict probability of any
sequence containing one collapses to 0 "no matter how high the
remaining conditional probabilities are."
"""

from conftest import run_once

from repro.experiments.ablation_smoothing import (
    measure_zero_probability_effect,
    print_ablation_smoothing,
    run_ablation_smoothing,
)

TRUE_K = 10
SCALES = (0.0, 1e-4, 1e-3, 1e-2)


def test_ablation_smoothing(benchmark, synthetic_db):
    def experiment():
        rows = run_ablation_smoothing(
            db=synthetic_db, p_min_scales=SCALES, true_k=TRUE_K
        )
        stats = measure_zero_probability_effect(
            cluster_size=4, holdout=12, avg_length=150, alphabet_size=20
        )
        return rows, stats

    rows, stats = run_once(benchmark, experiment)
    print_ablation_smoothing(rows, stats)

    # Shape 1 (the failure mode itself): the small-cluster holdout
    # measurement shows smoothing eliminating zeroed predictions.
    assert stats.fraction_zeroed_smoothed == 0.0
    assert stats.fraction_zeroed_unsmoothed >= stats.fraction_zeroed_smoothed
    assert stats.mean_log_sim_smoothed > stats.mean_log_sim_unsmoothed - 1e-9

    # Shape 2: mild smoothing does not hurt end-to-end clustering
    # relative to none (the adjustment is nearly free).
    by_scale = {row.p_min_scale: row for row in rows}
    assert by_scale[1e-3].accuracy >= by_scale[0.0].accuracy - 0.15

    # Shape 3: every setting still clusters usably — smoothing is a
    # robustness knob, not a accuracy cliff.
    for row in rows:
        assert row.accuracy >= 0.4, f"scale {row.p_min_scale}: {row.accuracy}"
