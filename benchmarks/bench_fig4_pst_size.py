"""Figure 4 — effect of the PST memory (node) budget.

Paper's shape: accuracy climbs with the per-tree budget then plateaus
(theirs at ~5 MB); response time keeps growing with the budget.
"""

import numpy as np
from conftest import run_once

from repro.experiments.fig4_pst_size import print_fig4, run_fig4

BUDGETS = (100, 250, 500, 1000, 2000, 4000)
TRUE_K = 10


def test_fig4_pst_size(benchmark, synthetic_db):
    rows = run_once(
        benchmark, run_fig4, db=synthetic_db, node_budgets=BUDGETS, true_k=TRUE_K
    )
    print_fig4(rows)

    assert [row.max_nodes for row in rows] == list(BUDGETS)
    f1 = [
        0.0
        if row.precision + row.recall == 0
        else 2 * row.precision * row.recall / (row.precision + row.recall)
        for row in rows
    ]

    # Shape 1 (the paper's robust claim, §5.1): pruning costs little —
    # even the tightest budget stays within a modest band of the best.
    # Note the scaled-down twist recorded in EXPERIMENTS.md: at this
    # workload size even ~100 nodes exceed the significant working set,
    # so the paper's rising-then-plateau left edge is not visible; what
    # remains testable is the plateau itself.
    assert min(f1) >= max(f1) - 0.30
    assert min(f1) >= 0.55

    # Shape 2: the top half of the budget range is a plateau (paper:
    # "the improvement of the accuracy is rather small" past the knee).
    top_half = f1[len(f1) // 2 :]
    assert max(top_half) - min(top_half) <= 0.15

    # Shape 3: budgets are actually enforced (the sweep is not a no-op).
    assert all(row.max_nodes == budget for row, budget in zip(rows, BUDGETS))
    assert all(np.isfinite(row.elapsed_seconds) for row in rows)
