"""Sharded-streaming scaling sweep — seq/s vs shard count.

Streams the drifting two-regime workload of
``bench_stream_throughput.py`` through :class:`ShardedStreamingCluseq`
at increasing shard counts and writes ``BENCH_SHARD.json`` (schema
``repro.bench/v1``) with one result row per (shards, runner)
configuration, ingestable by the benchtrack ledger. The intra-document
scaling gate lives in ``python -m tools.benchtrack check-shards``: an
N=2 row slower than its N=1 twin beyond tolerance fails CI.

State is kept in memory (no WAL/checkpoints) so the sweep measures
routing + clustering + consolidation, not disk bandwidth — the
durability path has its own chaos/recovery suite
(``tests/test_shard_recovery.py``).

Run standalone::

    PYTHONPATH=src python benchmarks/bench_shard_throughput.py \
        [--smoke] [--out PATH]

``--smoke`` shrinks the stream and sweeps shards {1, 2} in-process
only; the full sweep adds shards=4 and a multi-process shards=2 row.
"""

from __future__ import annotations

import argparse
import os
import platform
import sys
import time
from pathlib import Path
from typing import Any

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT) not in sys.path:
    sys.path.insert(0, str(REPO_ROOT))

from repro.shard import ShardConfig, ShardedStreamingCluseq
from repro.stream import StreamConfig, drifting_markov_stream
from tools.benchtrack.schema import write_bench_document

SCHEMA = "repro.bench/v1"
ALPHABET_SIZE = 8

#: (num_sequences, drift_at, batch_size)
FULL_SCALE = (2000, 1000, 32)
SMOKE_SCALE = (400, 200, 20)

#: (shards, runner) sweep per shape.
FULL_SWEEP = [(1, "inprocess"), (2, "inprocess"), (4, "inprocess"),
              (2, "process")]
SMOKE_SWEEP = [(1, "inprocess"), (2, "inprocess")]


def build_engine(shards: int, runner: str, batch_size: int, seed: int = 3):
    config = ShardConfig(
        shards=shards,
        router="hash",
        runner=runner,
        consolidate_every=8,
        merge_threshold=0.8,
        stream=StreamConfig(batch_size=batch_size, seed=seed),
    )
    return ShardedStreamingCluseq.cold_start(
        alphabet_size=ALPHABET_SIZE,
        similarity_threshold=10.0,
        significance_threshold=3,
        max_depth=4,
        config=config,
    )


def run_shard_workload(
    shards: int,
    runner: str,
    num_sequences: int,
    drift_at: int,
    batch_size: int,
) -> dict[str, Any]:
    """One sweep point: stream the workload through N shards."""
    stream = drifting_markov_stream(
        num_sequences,
        drift_at,
        alphabet_size=ALPHABET_SIZE,
        mean_length=60,
        concentration=0.05,
        seed=11,
    )
    engine = build_engine(shards, runner, batch_size)
    started = time.perf_counter()
    with engine:
        for sequence in stream.sequences:
            engine.ingest(sequence)
        engine.flush()
        stats = engine.stats()
    elapsed = time.perf_counter() - started
    return {
        "shards": shards,
        "runner": runner,
        "seconds": elapsed,
        "seqs_per_second": stats.sequences / elapsed,
        "sequences": stats.sequences,
        "clusters": stats.clusters,
        "consolidations": stats.consolidations,
        "cross_merges": stats.cross_merges,
        "absorbed": stats.absorbed,
    }


def run_sweep(smoke: bool) -> dict[str, Any]:
    scale = SMOKE_SCALE if smoke else FULL_SCALE
    sweep = SMOKE_SWEEP if smoke else FULL_SWEEP
    rows = []
    for shards, runner in sweep:
        row = run_shard_workload(shards, runner, *scale)
        rows.append(row)
        print(
            f"shards={row['shards']} runner={row['runner']:<9} "
            f"{row['seconds']:7.3f}s  {row['seqs_per_second']:7.0f} seq/s  "
            f"{row['clusters']} clusters, "
            f"{row['consolidations']} consolidations, "
            f"{row['cross_merges']} cross-merges"
        )
    return {
        "schema": SCHEMA,
        "bench": "shard_throughput",
        "workload": {
            "num_sequences": scale[0],
            "drift_at": scale[1],
            "batch_size": scale[2],
            "alphabet_size": ALPHABET_SIZE,
            "shape": "smoke" if smoke else "full",
        },
        "environment": {
            "cpu_count": os.cpu_count(),
            "python": platform.python_version(),
            "machine": platform.machine(),
        },
        "results": rows,
    }


def check_document(document: dict[str, Any]) -> None:
    """The shape assertions shared by pytest and the smoke runner."""
    rows = document["results"]
    assert all(row["sequences"] == document["workload"]["num_sequences"]
               for row in rows), "a sweep point dropped sequences"
    assert all(row["clusters"] >= 2 for row in rows), (
        "a sweep point failed to separate the two regimes"
    )
    multi = [row for row in rows if row["shards"] > 1]
    assert multi, "sweep has no multi-shard point"
    assert any(row["consolidations"] > 0 for row in multi), (
        "multi-shard points never consolidated — the cross-shard "
        "pass is not firing"
    )


def test_shard_scaling(benchmark, bench_document_writer):
    from conftest import run_once

    document = run_once(benchmark, run_sweep, False)
    check_document(document)
    bench_document_writer(REPO_ROOT / "BENCH_SHARD.json", document)


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(
        description="sharded streaming scaling benchmark"
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="reduced scale for CI smoke runs (shards 1 and 2 only)",
    )
    parser.add_argument(
        "--out",
        default=None,
        metavar="PATH",
        help="output JSON path (default: BENCH_SHARD.json at repo root)",
    )
    args = parser.parse_args(argv)
    document = run_sweep(args.smoke)
    check_document(document)
    out = Path(args.out) if args.out else (REPO_ROOT / "BENCH_SHARD.json")
    write_bench_document(out, document)
    print(
        f"written to {out} (shape={document['workload']['shape']}, "
        f"cpus={document['environment']['cpu_count']})"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
