"""§6.3 — effect of the sequence examination order.

Paper's shape: fixed ≈ random (82 % / 83 %), while cluster-based order
collapses (65 %) because it cannot escape local optima.

Reproduction note: the harness averages each policy over three engine
seeds (single runs wobble more than the policy effect at this scale),
and this implementation's hardened defaults largely neutralise the
cluster-order pathology — the testable residue is that cluster-based
examination never *wins*. See EXPERIMENTS.md.
"""

from conftest import run_once

from repro.experiments.ordering_policies import print_ordering, run_ordering

TRUE_K = 10


def test_ordering_policies(benchmark, synthetic_db):
    rows = run_once(benchmark, run_ordering, db=synthetic_db, true_k=TRUE_K)
    print_ordering(rows)

    by_policy = {row.ordering: row for row in rows}
    assert set(by_policy) == {"fixed", "random", "cluster"}

    # Shape 1: fixed and random are comparable (paper: 82 % vs 83 %).
    assert abs(by_policy["fixed"].accuracy - by_policy["random"].accuracy) <= 0.20

    # Shape 2: cluster-based order is never the best policy, matching
    # the paper's local-optimum analysis.
    best = max(row.accuracy for row in rows)
    assert by_policy["cluster"].accuracy <= best + 1e-9
    assert (
        by_policy["cluster"].accuracy
        <= max(by_policy["fixed"].accuracy, by_policy["random"].accuracy) + 0.02
    )

    # Shape 3: the recommended fixed order reaches the paper's band.
    assert by_policy["fixed"].accuracy >= 0.6
