"""Shared configuration for the paper-reproduction benchmarks.

Every bench regenerates one table or figure of the paper on the scaled
workloads, prints the rows in the paper's layout, and asserts the
*shape* of the result (who wins, what stays flat, where the knee is) —
absolute numbers are machine-dependent and not asserted.

Run with:  pytest benchmarks/ --benchmark-only
"""

import pytest

from repro.datasets.languages import make_language_database
from repro.datasets.protein import make_protein_database
from repro.sequences.generators import generate_clustered_database


def pytest_configure(config):
    # Benchmarks are one-shot experiment harnesses, not microbenchmarks:
    # a single round per bench keeps total wall-clock sane.
    config.option.benchmark_min_rounds = 1
    config.option.benchmark_warmup = False
    # Each bench prints the table/figure rows it regenerated; surface
    # that captured output for passing tests too, so a plain
    # `pytest benchmarks/ --benchmark-only | tee bench_output.txt`
    # records the reproduced rows alongside the timings.
    reportchars = getattr(config.option, "reportchars", "") or ""
    if "P" not in reportchars:
        config.option.reportchars = reportchars + "P"


@pytest.fixture(scope="session")
def protein_db():
    """Scaled Table 2/3 protein database (10 families, ~170 sequences)."""
    return make_protein_database(
        num_families=10, scale=0.04, mean_length=100, seed=1, concentration=0.2
    )


@pytest.fixture(scope="session")
def small_protein_db():
    """Smaller protein database for the expensive baselines (ED/EDBO/HMM)."""
    return make_protein_database(
        num_families=4, scale=0.03, mean_length=80, seed=1, concentration=0.2
    )


@pytest.fixture(scope="session")
def language_db():
    """Scaled Table 4 language database (120 sentences per language)."""
    return make_language_database(
        sentences_per_language=120, noise_sentences=20, seed=2
    )


@pytest.fixture(scope="session")
def synthetic_db():
    """Shared sensitivity-analysis workload (10 clusters, 5% outliers).

    See ``table5_initial_k.default_database`` for why the outlier
    fraction is scaled down with the workload.
    """
    return generate_clustered_database(
        num_sequences=200,
        num_clusters=10,
        avg_length=120,
        alphabet_size=12,
        outlier_fraction=0.05,
        seed=3,
    ).database


def run_once(benchmark, func, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)
