"""Shared configuration for the paper-reproduction benchmarks.

Every bench regenerates one table or figure of the paper on the scaled
workloads, prints the rows in the paper's layout, and asserts the
*shape* of the result (who wins, what stays flat, where the knee is) —
absolute numbers are machine-dependent and not asserted.

Run with:  pytest benchmarks/ --benchmark-only

Each bench additionally runs under a fresh metrics registry and, when
it collected anything, dumps the registry to
``benchmarks/telemetry/BENCH_<test>.telemetry.json`` (directory
overridable via ``BENCH_TELEMETRY_DIR``) — the machine-readable
record of per-phase timers, PST sizes and work counters that lets the
perf trajectory be compared across PRs, next to the printed tables.
"""

import os
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT) not in sys.path:
    sys.path.insert(0, str(REPO_ROOT))

from repro.datasets.languages import make_language_database
from repro.datasets.protein import make_protein_database
from repro.evaluation.reporting import write_metrics_json
from repro.obs import MetricsRegistry, use_registry
from repro.sequences.generators import generate_clustered_database
from tools.benchtrack.schema import write_bench_document  # noqa: E402


@pytest.fixture(scope="session")
def bench_document_writer():
    """The validating/stamping writer for ``repro.bench/v1`` JSONs.

    Benches that emit machine-readable result documents write them
    through this (it validates the schema and stamps git SHA +
    timestamp) so every produced file is ingestable by
    ``tools.benchtrack``.
    """
    return write_bench_document


def pytest_configure(config):
    # Benchmarks are one-shot experiment harnesses, not microbenchmarks:
    # a single round per bench keeps total wall-clock sane.
    config.option.benchmark_min_rounds = 1
    config.option.benchmark_warmup = False
    # Each bench prints the table/figure rows it regenerated; surface
    # that captured output for passing tests too, so a plain
    # `pytest benchmarks/ --benchmark-only | tee bench_output.txt`
    # records the reproduced rows alongside the timings.
    reportchars = getattr(config.option, "reportchars", "") or ""
    if "P" not in reportchars:
        config.option.reportchars = reportchars + "P"


@pytest.fixture(autouse=True)
def bench_telemetry(request):
    """Collect metrics for each bench and write a telemetry JSON dump."""
    registry = MetricsRegistry()
    with use_registry(registry):
        yield registry
    if len(registry) == 0:
        return  # bench exercised no instrumented code; nothing to record
    out_dir = Path(
        os.environ.get("BENCH_TELEMETRY_DIR", Path(__file__).parent / "telemetry")
    )
    out_dir.mkdir(parents=True, exist_ok=True)
    safe_name = request.node.name.replace("/", "_").replace("[", "_").rstrip("]")
    write_metrics_json(
        out_dir / f"BENCH_{safe_name}.telemetry.json",
        registry,
        extra={"bench": request.node.nodeid},
    )


@pytest.fixture(scope="session")
def protein_db():
    """Scaled Table 2/3 protein database (10 families, ~170 sequences)."""
    return make_protein_database(
        num_families=10, scale=0.04, mean_length=100, seed=1, concentration=0.2
    )


@pytest.fixture(scope="session")
def small_protein_db():
    """Smaller protein database for the expensive baselines (ED/EDBO/HMM)."""
    return make_protein_database(
        num_families=4, scale=0.03, mean_length=80, seed=1, concentration=0.2
    )


@pytest.fixture(scope="session")
def language_db():
    """Scaled Table 4 language database (120 sentences per language)."""
    return make_language_database(
        sentences_per_language=120, noise_sentences=20, seed=2
    )


@pytest.fixture(scope="session")
def synthetic_db():
    """Shared sensitivity-analysis workload (10 clusters, 5% outliers).

    See ``table5_initial_k.default_database`` for why the outlier
    fraction is scaled down with the workload.
    """
    return generate_clustered_database(
        num_sequences=200,
        num_clusters=10,
        avg_length=120,
        alphabet_size=12,
        outlier_fraction=0.05,
        seed=3,
    ).database


def run_once(benchmark, func, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)
