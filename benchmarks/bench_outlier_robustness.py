"""§6.1 — robustness to outliers.

Paper's shape: "the accuracy of CLUSEQ is immune to the increase of
outliers" across 1–20 % injected noise.
"""

from conftest import run_once

from repro.experiments.outlier_robustness import (
    accuracy_drop,
    print_outlier_robustness,
    run_outlier_robustness,
)

FRACTIONS = (0.01, 0.05, 0.10, 0.20)


def test_outlier_robustness(benchmark):
    rows = run_once(
        benchmark, run_outlier_robustness, fractions=FRACTIONS, true_k=10,
        num_sequences=200, seed=3,
    )
    print_outlier_robustness(rows)

    assert [row.outlier_fraction for row in rows] == list(FRACTIONS)

    # Shape 1: accuracy does not collapse from 1 % to 20 % noise. The
    # paper reports full immunity at 100 000-sequence scale; at 200
    # sequences, 20 % noise is 40 outliers against 18-member clusters
    # and the greedy seeding feels it, so the band is wider here (the
    # honest scaled-down number is recorded in EXPERIMENTS.md).
    assert accuracy_drop(rows) <= 0.40

    # Shape 2: quality stays usable at every noise level.
    for row in rows:
        assert row.accuracy >= 0.55, (
            f"accuracy {row.accuracy} at {row.outlier_fraction:.0%} outliers"
        )

    # Shape 3: the model actually rejects noise — at the highest noise
    # level a substantial number of sequences stay unclustered.
    noisiest = max(rows, key=lambda row: row.outlier_fraction)
    assert noisiest.predicted_outliers >= noisiest.true_outliers // 2
