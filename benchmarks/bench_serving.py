"""Serving-layer load benchmark — req/s, latency tails, batch occupancy.

An asyncio load generator drives ``POST /v1/classify`` against the
serve subsystem with a fixed request budget and concurrency, fires a
hot reload mid-run (the epoch swap must be invisible to clients), and
writes ``BENCH_SERVING.json`` (schema ``repro.bench/v1``) with
requests/second, p50/p99 latency, 503 counts and the dispatcher's mean
batch occupancy — the coalescing win the micro-batcher exists for.

Run standalone (self-hosting: builds a fixture model and an in-process
server)::

    PYTHONPATH=src python benchmarks/bench_serving.py \
        [--shape full|smoke] [--workers N] [--out PATH]

or against an already-running ``cluseq serve`` instance (the CI
serve-smoke job starts one with ``--ready-file``)::

    PYTHONPATH=src python benchmarks/bench_serving.py \
        --smoke --connect 127.0.0.1:8777

``--shape smoke`` (or ``--smoke``) shrinks the budget for CI and exits
non-zero when the acceptance gates fail: batch occupancy must exceed
1 (requests actually coalesced), no request may error, and the mid-run
hot swap must complete without a dropped response. The ledger-level
throughput/latency gate lives in
``python -m tools.benchtrack check-serving``.
"""

from __future__ import annotations

import argparse
import asyncio
import os
import platform
import sys
import tempfile
import time
from pathlib import Path
from typing import Any

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT) not in sys.path:
    sys.path.insert(0, str(REPO_ROOT))

from repro.serve.http import http_call
from tools.benchtrack.schema import write_bench_document

SCHEMA = "repro.bench/v1"
MODEL_NAME = "default"

#: Load shapes. ``requests`` is the total budget, ``concurrency`` the
#: simultaneous client count, ``seqs_per_request`` the batch each
#: client ships per call (server-side occupancy multiplies on top).
SHAPES = {
    "full": {"requests": 600, "concurrency": 16, "seqs_per_request": 2},
    "smoke": {"requests": 120, "concurrency": 8, "seqs_per_request": 2},
}


def build_fixture_model(target_dir: Path) -> str:
    """Fit a small two-cluster model and persist it for serving."""
    from repro.core.cluseq import CLUSEQ, CluseqParams
    from repro.core.persistence import save_result
    from repro.sequences.generators import generate_two_cluster_toy

    db = generate_two_cluster_toy(size_per_cluster=25, length=40, seed=5)
    result = CLUSEQ(
        CluseqParams(
            k=2, significance_threshold=3, similarity_threshold=1.2, seed=0
        )
    ).fit(db)
    path = target_dir / "bench_serving_model.json"
    save_result(result, str(path), alphabet=db.alphabet)
    return str(path)


def query_pool(model_path: str, count: int = 32) -> list[str]:
    """Request sequences drawn from the model's own alphabet."""
    import numpy as np

    from repro.core.persistence import load_result_with_alphabet

    _result, alphabet = load_result_with_alphabet(model_path)
    assert alphabet is not None
    rng = np.random.default_rng(31)
    symbols = list(alphabet.symbols)
    return [
        "".join(
            symbols[int(s)]
            for s in rng.integers(0, alphabet.size, int(length))
        )
        for length in rng.integers(20, 50, count)
    ]


async def run_load(
    host: str, port: int, spec: dict, queries: list[str]
) -> dict[str, Any]:
    """Drive the classify endpoint; returns raw load-side measurements."""
    total = int(spec["requests"])
    per_request = int(spec["seqs_per_request"])
    reload_at = total // 2
    latencies: list[float] = []
    epochs: set[int] = set()
    counters = {"rejected": 0, "errors": 0, "next": 0, "reloads": 0}

    async def worker() -> None:
        while True:
            index = counters["next"]
            counters["next"] += 1
            if index >= total:
                return
            if index == reload_at:
                # Hot swap under load: the epoch bump must be invisible
                # to every concurrent classify.
                reply = await http_call(
                    host, port, "POST", f"/admin/models/{MODEL_NAME}/reload"
                )
                if reply.status == 200:
                    counters["reloads"] += 1
                else:
                    counters["errors"] += 1
            batch = [
                queries[(index * per_request + i) % len(queries)]
                for i in range(per_request)
            ]
            started = time.perf_counter()
            try:
                reply = await http_call(
                    host, port, "POST", "/v1/classify", {"sequences": batch}
                )
            except (OSError, asyncio.TimeoutError):
                counters["errors"] += 1
                continue
            elapsed = time.perf_counter() - started
            if reply.status == 200:
                payload = reply.json()
                if len(payload["results"]) != per_request:
                    counters["errors"] += 1  # dropped/torn response
                    continue
                epochs.add(payload["epoch"])
                latencies.append(elapsed)
            elif reply.status == 503:
                counters["rejected"] += 1
            else:
                counters["errors"] += 1

    wall_start = time.perf_counter()
    await asyncio.gather(
        *(worker() for _ in range(int(spec["concurrency"])))
    )
    seconds = time.perf_counter() - wall_start
    stats_reply = await http_call(host, port, "GET", "/v1/stats")
    occupancy = stats_reply.json()["batching"]["mean_occupancy"]
    return {
        "seconds": seconds,
        "latencies": latencies,
        "epochs": sorted(epochs),
        "rejected": counters["rejected"],
        "errors": counters["errors"],
        "reloads": counters["reloads"],
        "batch_occupancy": occupancy,
    }


def percentile(values: list[float], fraction: float) -> float:
    ordered = sorted(values)
    if not ordered:
        return 0.0
    return ordered[min(len(ordered) - 1, int(fraction * (len(ordered) - 1)))]


async def bench_against(
    host: str, port: int, spec: dict, queries: list[str], workers: int
) -> tuple[dict[str, Any], dict[str, Any]]:
    """One measured load run -> (result row, hot-swap summary)."""
    # Warm-up outside the timed window: first-flush cache builds are
    # steady-state costs everywhere else in the repo's benches too.
    await http_call(
        host, port, "POST", "/v1/classify", {"sequences": queries[:2]}
    )
    load = await run_load(host, port, spec, queries)
    completed = len(load["latencies"])
    row = {
        "mode": "classify",
        "workers": workers,
        "seconds": load["seconds"],
        "requests": completed,
        "rejected": load["rejected"],
        "errors": load["errors"],
        "req_per_second": completed / load["seconds"],
        "p50_ms": percentile(load["latencies"], 0.50) * 1000.0,
        "p99_ms": percentile(load["latencies"], 0.99) * 1000.0,
        "batch_occupancy": load["batch_occupancy"],
    }
    swap = {
        "reloads": load["reloads"],
        "epochs_observed": load["epochs"],
    }
    return row, swap


async def self_hosted(
    spec: dict, model_path: str, workers: int
) -> tuple[dict[str, Any], dict[str, Any]]:
    from repro.serve import ModelRegistry, ServeApp

    registry = ModelRegistry()
    registry.load(MODEL_NAME, model_path)
    app = ServeApp(
        registry,
        model_name=MODEL_NAME,
        max_batch=64,
        max_delay=0.002,
        max_queue=512,
        workers=workers,
    )
    host, port = await app.start()
    try:
        return await bench_against(
            host, port, spec, query_pool(model_path), workers
        )
    finally:
        await app.close()


def run_bench(
    spec: dict,
    connect: str | None,
    model_path: str | None,
    workers: int,
) -> dict[str, Any]:
    if connect is not None:
        host, _, port_text = connect.rpartition(":")
        if not host or not port_text.isdigit():
            raise SystemExit(f"--connect expects HOST:PORT, got {connect!r}")

        async def scenario() -> tuple[dict[str, Any], dict[str, Any]]:
            port = int(port_text)
            clusters = await http_call(host, port, "GET", "/v1/clusters")
            if clusters.status != 200:
                raise SystemExit(
                    f"server at {connect} has no model loaded "
                    f"({clusters.status})"
                )
            # The CI server serves the same fixture this script builds,
            # so the fixture's alphabet matches the live model's.
            queries = query_pool(model_path or _fixture(), count=32)
            return await bench_against(host, port, spec, queries, workers)

        row, swap = asyncio.run(scenario())
    else:
        row, swap = asyncio.run(
            self_hosted(spec, model_path or _fixture(), workers)
        )
    return {
        "schema": SCHEMA,
        "bench": "serving",
        "workload": {
            key: spec[key]
            for key in ("requests", "concurrency", "seqs_per_request")
        },
        "hot_swap": swap,
        "environment": {
            "cpu_count": os.cpu_count(),
            "python": platform.python_version(),
            "machine": platform.machine(),
        },
        "results": [row],
    }


_FIXTURE_CACHE: dict[str, str] = {}


def _fixture() -> str:
    if "path" not in _FIXTURE_CACHE:
        tmp = Path(tempfile.mkdtemp(prefix="bench-serving-"))
        _FIXTURE_CACHE["path"] = build_fixture_model(tmp)
    return _FIXTURE_CACHE["path"]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--shape", choices=sorted(SHAPES), default=None,
                        help="load shape (default: full)")
    parser.add_argument("--smoke", action="store_true",
                        help="alias for --shape smoke; also enforces the "
                        "occupancy/no-error acceptance gates")
    parser.add_argument("--connect", default=None, metavar="HOST:PORT",
                        help="drive an already-running `cluseq serve` "
                        "instead of self-hosting")
    parser.add_argument("--model", default=None, metavar="PATH",
                        help="model to serve/query (default: a generated "
                        "fixture)")
    parser.add_argument("--workers", type=int, default=0, metavar="N",
                        help="worker processes for the self-hosted server "
                        "(recorded in the result row either way)")
    parser.add_argument("--out", default=None, metavar="PATH",
                        help="output JSON path (default: BENCH_SERVING.json "
                        "at the repo root)")
    args = parser.parse_args(argv)
    if args.smoke and args.shape not in (None, "smoke"):
        parser.error("--smoke conflicts with --shape " + args.shape)
    shape = args.shape or ("smoke" if args.smoke else "full")
    spec = SHAPES[shape]
    document = run_bench(spec, args.connect, args.model, args.workers)
    out = Path(args.out) if args.out else (REPO_ROOT / "BENCH_SERVING.json")
    write_bench_document(out, document)
    row = document["results"][0]
    swap = document["hot_swap"]
    print(
        f"serving workers={row['workers']}: {row['seconds']:.3f}s  "
        f"{row['req_per_second']:7.1f} req/s  "
        f"p50 {row['p50_ms']:.2f}ms  p99 {row['p99_ms']:.2f}ms  "
        f"occupancy {row['batch_occupancy']:.2f}  "
        f"rejected {row['rejected']}  errors {row['errors']}"
    )
    print(
        f"hot swap: {swap['reloads']} reload(s), "
        f"epochs observed {swap['epochs_observed']}"
    )
    print(f"written to {out} (shape={shape}, "
          f"cpus={document['environment']['cpu_count']})")
    if shape == "smoke":
        failures = []
        if row["batch_occupancy"] <= 1.0:
            failures.append(
                f"batch occupancy {row['batch_occupancy']:.2f} <= 1: "
                "requests did not coalesce"
            )
        if row["errors"]:
            failures.append(f"{row['errors']} request(s) errored")
        if not swap["reloads"]:
            failures.append("mid-run hot swap did not complete")
        if row["requests"] + row["rejected"] < spec["requests"]:
            failures.append("responses were dropped")
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        if failures:
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
