"""Backend scoring benchmark — reference vs vectorized vs workers (PR 8).

Measures the frozen-model (cluster × sequence) scoring matrix of the
fig6 scalability workload — the §4.2 re-examination shape — under each
backend and worker count, and writes ``BENCH_PR8.json`` (schema
``repro.bench/v1``) with sequences/second, pairs/second and the
speedup over the reference per configuration.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_backend_scoring.py \
        [--shape fig6|full|smoke] [--workers-sweep] [--out PATH]

``--shape smoke`` (or the legacy ``--smoke`` flag) shrinks the
workload for CI and exits non-zero if the vectorized backend is slower
than the reference — the regression gate for the perf-smoke job.
``--workers-sweep`` adds workers=1/2/4 rows over the shared-memory
pool; the parallel-vs-serial assertion itself lives in
``python -m tools.benchtrack check-parallel`` so it can be skipped on
single-core machines. ``--shape fig6`` is the large workload the PR's
≥20× single-process speedup claim is measured on.

The document records ``environment.cpu_count``: worker numbers are
meaningless without knowing how many cores the run actually had.

Also usable under pytest-benchmark (``pytest benchmarks/ -k backend``),
where the shape assertion is the same not-slower gate.
"""

from __future__ import annotations

import argparse
import os
import platform
import sys
import time
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT) not in sys.path:
    sys.path.insert(0, str(REPO_ROOT))

from repro.core.backends import PstBatchScorer, ScoringPool
from repro.core.pst import ProbabilisticSuffixTree
from repro.core.similarity import similarity
from tools.benchtrack.schema import write_bench_document

SCHEMA = "repro.bench/v1"

#: Benchmark shapes. ``full`` is the historical fig6-representative
#: point (kept so the benchtrack ledger can pair new runs against the
#: PR 5 baseline); ``fig6`` is the larger scalability point the
#: single-process speedup claim is measured on; ``smoke`` is the CI
#: gate workload.
#: ``repeats`` paces the reference (its runs are long and stable);
#: ``vec_repeats`` paces the vectorized configurations, whose runs are
#: two orders of magnitude shorter and therefore need more samples for
#: a stable best-of (a 30 ms timing window is far more exposed to a
#: shared-host neighbour than a 500 ms one).
SHAPES = {
    "fig6": {"alphabet": 12, "depth": 6, "significance": 4, "clusters": 12,
             "sequences": 400, "length": 120, "repeats": 3,
             "vec_repeats": 15},
    "full": {"alphabet": 12, "depth": 6, "significance": 4, "clusters": 10,
             "sequences": 150, "length": 100, "repeats": 3,
             "vec_repeats": 10},
    "smoke": {"alphabet": 12, "depth": 6, "significance": 4, "clusters": 4,
              "sequences": 40, "length": 60, "repeats": 2, "vec_repeats": 6},
}

#: Worker counts exercised by ``--workers-sweep`` (0 = in-process).
WORKERS_SWEEP = (0, 1, 2, 4)


def build_workload(spec: dict) -> tuple[list, list, np.ndarray]:
    """Frozen cluster PSTs, encoded sequences, and the background."""
    rng = np.random.default_rng(13)
    alphabet = spec["alphabet"]
    psts = []
    for _ in range(spec["clusters"]):
        pst = ProbabilisticSuffixTree(
            alphabet_size=alphabet,
            max_depth=spec["depth"],
            significance_threshold=spec["significance"],
        )
        weights = rng.random(alphabet) ** 2 + 1e-3
        weights /= weights.sum()
        for _ in range(12):
            pst.add_sequence(
                [int(s) for s in rng.choice(alphabet, spec["length"], p=weights)]
            )
        psts.append(pst)
    sequences = [
        [int(s) for s in rng.integers(0, alphabet, spec["length"])]
        for _ in range(spec["sequences"])
    ]
    background = np.full(alphabet, 1.0 / alphabet)
    return psts, sequences, background


def time_reference(psts, sequences, background, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        for pst in psts:
            for seq in sequences:
                similarity(pst, seq, background)
        best = min(best, time.perf_counter() - started)
    return best


def _time_prescore(scorer, psts, sequences, repeats: int, pool) -> float:
    # Warm outside the timed region, as the fit loop does: the
    # flattened exports and the prepared stack are cached across calls
    # (and, with a pool, the workers spawn and attach the shared
    # segments once) — steady-state scoring is what the driving loops
    # actually pay per iteration.
    scorer.prescore_matrix(psts, sequences[:1], pool=pool)
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        scorer.prescore_matrix(psts, sequences, pool=pool)
        best = min(best, time.perf_counter() - started)
    return best


def time_vectorized(psts, sequences, background, repeats: int,
                    workers: int) -> float:
    scorer = PstBatchScorer(background)
    if workers > 0:
        with ScoringPool(workers) as pool:
            return _time_prescore(scorer, psts, sequences, repeats, pool)
    return _time_prescore(scorer, psts, sequences, repeats, None)


def run_bench(spec: dict, workers_sweep: bool = False) -> dict:
    psts, sequences, background = build_workload(spec)
    pairs = len(psts) * len(sequences)
    worker_counts = WORKERS_SWEEP if workers_sweep else (0, 2)
    configs = [("reference", 0)]
    configs += [("vectorized", workers) for workers in worker_counts]
    results = []
    reference_seconds = None
    for backend, workers in configs:
        if backend == "reference":
            seconds = time_reference(psts, sequences, background,
                                     spec["repeats"])
            reference_seconds = seconds
        else:
            seconds = time_vectorized(psts, sequences, background,
                                      spec.get("vec_repeats",
                                               spec["repeats"]), workers)
        assert reference_seconds is not None
        results.append({
            "backend": backend,
            "workers": workers,
            "seconds": seconds,
            "pairs_per_second": pairs / seconds,
            "seqs_per_second": len(sequences) / seconds,
            "speedup": reference_seconds / seconds,
        })
    return {
        "schema": SCHEMA,
        "bench": "backend_scoring",
        "workload": {key: spec[key] for key in
                     ("alphabet", "depth", "significance", "clusters",
                      "sequences", "length")},
        "pairs": pairs,
        "environment": {
            "cpu_count": os.cpu_count(),
            "python": platform.python_version(),
            "machine": platform.machine(),
        },
        "results": results,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--shape", choices=sorted(SHAPES), default=None,
                        help="workload shape (default: full; fig6 is the "
                        "large scalability point)")
    parser.add_argument("--smoke", action="store_true",
                        help="legacy alias for --shape smoke; also fails if "
                        "vectorized is slower than the reference")
    parser.add_argument("--workers-sweep", action="store_true",
                        help="measure workers=0/1/2/4 instead of 0/2")
    parser.add_argument("--out", default=None, metavar="PATH",
                        help="output JSON path (default: BENCH_PR8.json at "
                        "the repo root)")
    args = parser.parse_args(argv)
    if args.smoke and args.shape not in (None, "smoke"):
        parser.error("--smoke conflicts with --shape " + args.shape)
    shape = args.shape or ("smoke" if args.smoke else "full")
    spec = SHAPES[shape]
    document = run_bench(spec, workers_sweep=args.workers_sweep)
    out = Path(args.out) if args.out else (REPO_ROOT / "BENCH_PR8.json")
    # Validates the repro.bench/v1 shape and stamps git SHA + timestamp
    # so the file is directly ingestable by `python -m tools.benchtrack`.
    write_bench_document(out, document)
    for row in document["results"]:
        print(
            f"{row['backend']:>10s} workers={row['workers']}: "
            f"{row['seconds']:.3f}s  "
            f"{row['pairs_per_second']:9.0f} pairs/s  "
            f"{row['seqs_per_second']:7.0f} seq/s  "
            f"{row['speedup']:5.2f}x"
        )
    print(f"written to {out} (shape={shape}, "
          f"cpus={document['environment']['cpu_count']})")
    vectorized = next(r for r in document["results"]
                      if r["backend"] == "vectorized" and r["workers"] == 0)
    if shape == "smoke" and vectorized["speedup"] < 1.0:
        print("FAIL: vectorized slower than reference on the smoke workload",
              file=sys.stderr)
        return 1
    return 0


def test_vectorized_not_slower(benchmark):
    """Perf-smoke shape assertion for the pytest-benchmark run."""
    document = benchmark.pedantic(
        run_bench, args=(SHAPES["smoke"],), rounds=1, iterations=1
    )
    vectorized = next(r for r in document["results"]
                      if r["backend"] == "vectorized" and r["workers"] == 0)
    assert vectorized["speedup"] >= 1.0, document["results"]


if __name__ == "__main__":
    sys.exit(main())
