"""Backend scoring benchmark — reference vs vectorized (PR 5).

Measures the frozen-model (cluster × sequence) scoring matrix of the
fig6 scalability workload — the §4.2 re-examination shape — under each
backend, and writes ``BENCH_PR5.json`` (schema ``repro.bench/v1``)
with sequences/second, pairs/second and the speedup over the reference
per configuration.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_backend_scoring.py [--smoke] [--out PATH]

``--smoke`` shrinks the workload for CI and exits non-zero if the
vectorized backend is slower than the reference — the regression gate
for the perf-smoke job. The full workload is the one the PR's ≥3×
speedup claim is measured on.

Also usable under pytest-benchmark (``pytest benchmarks/ -k backend``),
where the shape assertion is the same not-slower gate.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT) not in sys.path:
    sys.path.insert(0, str(REPO_ROOT))

from repro.core.backends import PstBatchScorer, ScoringPool
from repro.core.pst import ProbabilisticSuffixTree
from repro.core.similarity import similarity
from tools.benchtrack.schema import write_bench_document

SCHEMA = "repro.bench/v1"

#: The fig6-representative workload: alphabet 12, depth 6, c=4, ten
#: cluster models, 150 sequences of ~100 symbols.
FULL = {"alphabet": 12, "depth": 6, "significance": 4, "clusters": 10,
        "sequences": 150, "length": 100, "repeats": 3}
SMOKE = {"alphabet": 12, "depth": 6, "significance": 4, "clusters": 4,
         "sequences": 40, "length": 60, "repeats": 2}


def build_workload(spec: dict) -> tuple[list, list, np.ndarray]:
    """Frozen cluster PSTs, encoded sequences, and the background."""
    rng = np.random.default_rng(13)
    alphabet = spec["alphabet"]
    psts = []
    for _ in range(spec["clusters"]):
        pst = ProbabilisticSuffixTree(
            alphabet_size=alphabet,
            max_depth=spec["depth"],
            significance_threshold=spec["significance"],
        )
        weights = rng.random(alphabet) ** 2 + 1e-3
        weights /= weights.sum()
        for _ in range(12):
            pst.add_sequence(
                [int(s) for s in rng.choice(alphabet, spec["length"], p=weights)]
            )
        psts.append(pst)
    sequences = [
        [int(s) for s in rng.integers(0, alphabet, spec["length"])]
        for _ in range(spec["sequences"])
    ]
    background = np.full(alphabet, 1.0 / alphabet)
    return psts, sequences, background


def time_reference(psts, sequences, background, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        for pst in psts:
            for seq in sequences:
                similarity(pst, seq, background)
        best = min(best, time.perf_counter() - started)
    return best


def time_vectorized(psts, sequences, background, repeats: int,
                    workers: int) -> float:
    scorer = PstBatchScorer(background)
    pool = ScoringPool(workers) if workers > 0 else None
    try:
        if pool is not None:
            # Spawn + warm the workers outside the timed region, as the
            # fit loop does (the pool lives across iterations).
            scorer.prescore_matrix(psts, sequences[:1], pool=pool)
        best = float("inf")
        for _ in range(repeats):
            started = time.perf_counter()
            scorer.prescore_matrix(psts, sequences, pool=pool)
            best = min(best, time.perf_counter() - started)
        return best
    finally:
        if pool is not None:
            pool.close()


def run_bench(spec: dict) -> dict:
    psts, sequences, background = build_workload(spec)
    pairs = len(psts) * len(sequences)
    configs = [("reference", 0), ("vectorized", 0), ("vectorized", 2)]
    results = []
    reference_seconds = None
    for backend, workers in configs:
        if backend == "reference":
            seconds = time_reference(psts, sequences, background,
                                     spec["repeats"])
            reference_seconds = seconds
        else:
            seconds = time_vectorized(psts, sequences, background,
                                      spec["repeats"], workers)
        assert reference_seconds is not None
        results.append({
            "backend": backend,
            "workers": workers,
            "seconds": seconds,
            "pairs_per_second": pairs / seconds,
            "seqs_per_second": len(sequences) / seconds,
            "speedup": reference_seconds / seconds,
        })
    return {
        "schema": SCHEMA,
        "bench": "backend_scoring",
        "workload": {key: spec[key] for key in
                     ("alphabet", "depth", "significance", "clusters",
                      "sequences", "length")},
        "pairs": pairs,
        "results": results,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="small workload; fail if vectorized is slower")
    parser.add_argument("--out", default=None, metavar="PATH",
                        help="output JSON path (default: BENCH_PR5.json at "
                        "the repo root)")
    args = parser.parse_args(argv)
    spec = SMOKE if args.smoke else FULL
    document = run_bench(spec)
    out = Path(args.out) if args.out else (REPO_ROOT / "BENCH_PR5.json")
    # Validates the repro.bench/v1 shape and stamps git SHA + timestamp
    # so the file is directly ingestable by `python -m tools.benchtrack`.
    write_bench_document(out, document)
    for row in document["results"]:
        print(
            f"{row['backend']:>10s} workers={row['workers']}: "
            f"{row['seconds']:.3f}s  "
            f"{row['pairs_per_second']:9.0f} pairs/s  "
            f"{row['seqs_per_second']:7.0f} seq/s  "
            f"{row['speedup']:5.2f}x"
        )
    print(f"written to {out}")
    vectorized = next(r for r in document["results"]
                      if r["backend"] == "vectorized" and r["workers"] == 0)
    if args.smoke and vectorized["speedup"] < 1.0:
        print("FAIL: vectorized slower than reference on the smoke workload",
              file=sys.stderr)
        return 1
    return 0


def test_vectorized_not_slower(benchmark):
    """Perf-smoke shape assertion for the pytest-benchmark run."""
    document = benchmark.pedantic(
        run_bench, args=(SMOKE,), rounds=1, iterations=1
    )
    vectorized = next(r for r in document["results"]
                      if r["backend"] == "vectorized" and r["workers"] == 0)
    assert vectorized["speedup"] >= 1.0, document["results"]


if __name__ == "__main__":
    sys.exit(main())
