"""§5.1 ablation — PST pruning strategies under a tight node budget.

Paper's claim: with the proposed strategies, "little degradation of the
accuracy of the similarity estimation can be observed in practice, even
though a large number of nodes are pruned."
"""

from conftest import run_once

from repro.experiments.ablation_pruning import (
    print_ablation_pruning,
    run_ablation_pruning,
)

TRUE_K = 10
BUDGET = 400  # far below the unbounded tree sizes on this workload


def test_ablation_pruning(benchmark, synthetic_db):
    rows = run_once(
        benchmark, run_ablation_pruning, db=synthetic_db, max_nodes=BUDGET,
        true_k=TRUE_K,
    )
    print_ablation_pruning(rows)

    by_strategy = {row.strategy: row for row in rows}
    assert "unbounded" in by_strategy
    assert "paper" in by_strategy

    unbounded = by_strategy["unbounded"].accuracy

    # Shape 1 (the paper's claim): the combined "paper" policy loses
    # little accuracy despite the tight budget.
    assert by_strategy["paper"].accuracy >= unbounded - 0.20

    # Shape 2: every strategy still produces a usable clustering.
    for row in rows:
        assert row.accuracy >= 0.4, f"{row.strategy}: {row.accuracy}"

    # Shape 3: the combined policy is competitive with the best single
    # strategy (it was designed as their composition).
    singles = [
        by_strategy[name].accuracy
        for name in ("smallest_count", "longest_label", "expected_vector")
    ]
    assert by_strategy["paper"].accuracy >= max(singles) - 0.20
