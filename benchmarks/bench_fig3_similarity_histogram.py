"""Figure 3 — shape of the similarity distribution.

Paper's shape: a huge mass of low-similarity sequence-cluster
combinations declining quickly, a sparse high tail of members, and a
valley in between where the threshold belongs.
"""

import numpy as np
from conftest import run_once

from repro.experiments.fig3_similarity_histogram import print_fig3, run_fig3


def test_fig3_similarity_distribution(benchmark, synthetic_db):
    result = run_once(benchmark, run_fig3, db=synthetic_db, true_k=10)
    print_fig3(result)

    # Shape 1: non-member combinations vastly outnumber members (the
    # paper's "huge number of combinations with low similarities").
    assert result.non_member_count > 3 * result.member_count

    # Shape 2: the two populations separate — the member mass sits above
    # the bulk of the non-member mass.
    assert result.member_p10 > result.non_member_p99 - 5.0

    # Shape 3: the histogram mass is concentrated on the left (declining
    # curve): the half of buckets left of centre holds most counts.
    counts = np.array([count for _, count in result.series], dtype=float)
    left_mass = counts[: len(counts) // 2].sum()
    assert left_mass >= 0.8 * counts.sum()

    # Shape 4: the converged threshold lands in or near the boundary
    # window between the populations.
    low, high = result.boundary_window
    assert result.final_log_threshold >= low - 6.0
    assert result.final_log_threshold <= max(high, low) + 12.0
