"""Figure 6 — scalability in four dimensions.

Paper's shape, from the per-iteration complexity O(N · k' · l · L):
  (a) time linear in the number of clusters,
  (b) time linear in the number of sequences,
  (c) time mildly super-linear in the average sequence length,
  (d) time essentially flat in the alphabet size.

The assertions use the log-log slope of per-iteration time, which
removes convergence-count noise: slope ≈ 1 for (a)/(b), ≥ ~1 for (c),
≈ 0 for (d). Generous tolerances — this is a laptop, not a testbed.
"""

from conftest import run_once

from repro.experiments.fig6_scalability import (
    linear_fit,
    loglog_slope,
    print_fig6,
    run_fig6_dimension,
)


def test_fig6a_clusters(benchmark):
    rows = run_once(benchmark, run_fig6_dimension, "num_clusters")
    print_fig6({"num_clusters": rows})
    # Linear in k' with an intercept, as in the paper's straight-line
    # figure: positive slope, high linearity.
    slope, r_squared = linear_fit(rows)
    assert slope > 0, f"slope {slope}"
    assert r_squared >= 0.85, f"R² {r_squared}"


def test_fig6b_sequences(benchmark):
    rows = run_once(benchmark, run_fig6_dimension, "num_sequences")
    print_fig6({"num_sequences": rows})
    # Linear in N with an intercept.
    slope, r_squared = linear_fit(rows)
    assert slope > 0, f"slope {slope}"
    assert r_squared >= 0.85, f"R² {r_squared}"


def test_fig6c_length(benchmark):
    rows = run_once(benchmark, run_fig6_dimension, "avg_length")
    print_fig6({"avg_length": rows})
    slope = loglog_slope(rows)
    # Super-linear but moderate in l (paper: "the slope is very
    # moderate"): at least linear-ish, at most quadratic.
    assert 0.7 <= slope <= 2.2, f"slope {slope}"


def test_fig6d_alphabet(benchmark):
    rows = run_once(benchmark, run_fig6_dimension, "alphabet_size")
    print_fig6({"alphabet_size": rows})
    slope = loglog_slope(rows)
    # Flat in |Σ|: the alphabet size does not appear in the complexity.
    assert -0.6 <= slope <= 0.6, f"slope {slope}"
