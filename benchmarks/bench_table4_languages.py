"""Table 4 — clustering English / Chinese / Japanese sentences.

Paper's shape: all three languages recovered with precision and recall
in the high-70s to mid-80s; English easiest thanks to its distinctive
digraph statistics; noise sentences (other languages) stay outside.
"""

from conftest import run_once

from repro.experiments.table4_languages import print_table4, run_table4


def test_table4_language_clustering(benchmark, language_db):
    rows = run_once(benchmark, run_table4, db=language_db)
    print_table4(rows)

    by_language = {row.language: row for row in rows}
    assert set(by_language) == {"english", "chinese", "japanese"}

    # Shape 1: every language is recovered well (paper band or better —
    # our generated sentences are cleaner than scraped news text).
    for row in rows:
        assert row.precision >= 0.70, f"{row.language} precision {row.precision}"
        assert row.recall >= 0.70, f"{row.language} recall {row.recall}"

    # Shape 2: English is at least as easy as the hardest language —
    # the paper singles out its 'th'/'he' statistics.
    english_f1 = _f1(by_language["english"])
    worst_f1 = min(_f1(row) for row in rows)
    assert english_f1 >= worst_f1


def _f1(row):
    if row.precision + row.recall == 0:
        return 0.0
    return 2 * row.precision * row.recall / (row.precision + row.recall)
