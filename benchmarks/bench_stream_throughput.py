"""Streaming engine throughput on a drifting two-regime stream.

The workload replays the paper's embedded-cluster generator over time
instead of over a database: sequences come from Markov regime A, then
the generating process switches to regime B mid-stream. The engine
must (a) sustain micro-batch throughput and (b) actually *adapt* —
spawn at least one new cluster after the drift point — otherwise an
online mode is just a slow batch mode.

Reported: sequences/sec, absorb rate, cluster census before/after the
drift. Runnable standalone (CI smoke job):

    python benchmarks/bench_stream_throughput.py --smoke
"""

import argparse
import sys
import time

from repro.stream import (
    DecayPolicy,
    StreamConfig,
    StreamingCluseq,
    drifting_markov_stream,
)

ALPHABET_SIZE = 8

#: (num_sequences, drift_at, batch_size)
FULL_SCALE = (2000, 1000, 32)
SMOKE_SCALE = (400, 200, 20)


def build_engine(batch_size, seed=3):
    config = StreamConfig(
        batch_size=batch_size,
        pool_size=256,
        reseed_every=2,
        reseed_k=2,
        reseed_min_pool=8,
        consolidate_every=16,
        decay=DecayPolicy(factor=0.95, every_batches=8),
        seed=seed,
    )
    return StreamingCluseq.cold_start(
        alphabet_size=ALPHABET_SIZE,
        similarity_threshold=10.0,
        significance_threshold=3,
        max_depth=4,
        config=config,
    )


def run_stream_workload(num_sequences, drift_at, batch_size):
    """Stream the drifting workload through a cold-started engine."""
    stream = drifting_markov_stream(
        num_sequences,
        drift_at,
        alphabet_size=ALPHABET_SIZE,
        mean_length=60,
        concentration=0.05,
        seed=11,
    )
    engine = build_engine(batch_size)
    started = time.perf_counter()
    stats = engine.run(stream.sequences)
    elapsed = time.perf_counter() - started
    drift_batch = drift_at // batch_size
    spawned_after_drift = [
        cluster.cluster_id
        for cluster in engine.result.clusters
        if cluster.created_at_iteration > drift_batch
    ]
    return {
        "sequences": stats.sequences,
        "elapsed_seconds": elapsed,
        "sequences_per_second": stats.sequences / elapsed,
        "absorb_rate": stats.absorb_rate,
        "clusters": stats.clusters,
        "clusters_spawned": stats.clusters_spawned,
        "spawned_after_drift": spawned_after_drift,
        "drift_batch": drift_batch,
        "pool_size": stats.pool_size,
        "decay_pruned_nodes": stats.decay_pruned_nodes,
    }


def print_report(report):
    print(
        f"streamed {report['sequences']} sequences in "
        f"{report['elapsed_seconds']:.2f}s "
        f"({report['sequences_per_second']:.0f} seq/s)"
    )
    print(
        f"absorb rate {report['absorb_rate']:.1%}, "
        f"{report['clusters']} clusters "
        f"({report['clusters_spawned']} spawned, "
        f"{len(report['spawned_after_drift'])} after the drift at "
        f"batch {report['drift_batch']})"
    )


def check_report(report):
    """The shape assertions shared by pytest and the smoke runner."""
    assert report["spawned_after_drift"], (
        "engine never spawned a cluster after the drift point — "
        "it is not adapting to the regime switch"
    )
    assert report["absorb_rate"] >= 0.5, (
        f"absorb rate {report['absorb_rate']:.1%} — the engine is "
        "pooling most of a cleanly clusterable stream"
    )
    assert report["clusters"] >= 2


def test_stream_throughput_drifting(benchmark):
    from conftest import run_once

    report = run_once(benchmark, run_stream_workload, *FULL_SCALE)
    print_report(report)
    check_report(report)


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="streaming throughput benchmark (drifting stream)"
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="reduced scale for CI smoke runs",
    )
    args = parser.parse_args(argv)
    scale = SMOKE_SCALE if args.smoke else FULL_SCALE
    report = run_stream_workload(*scale)
    print_report(report)
    check_report(report)
    return 0


if __name__ == "__main__":
    sys.exit(main())
