"""Figure 5 — effect of the seed-sampling size m.

Paper's shape: precision/recall improve with m and plateau around
m = 5k; the response time is worst at very small m (poor initial
clusters take longer to fix) — the paper shows a valley near m = 3k.
"""

from conftest import run_once

from repro.experiments.fig5_sample_size import print_fig5, run_fig5

MULTIPLIERS = (1, 2, 3, 5, 8)
TRUE_K = 10


def test_fig5_sample_size(benchmark, synthetic_db):
    rows = run_once(
        benchmark, run_fig5, db=synthetic_db, multipliers=MULTIPLIERS,
        true_k=TRUE_K,
    )
    print_fig5(rows)

    assert [row.multiplier for row in rows] == list(MULTIPLIERS)
    by_multiplier = {row.multiplier: row for row in rows}

    def f1(row):
        if row.precision + row.recall == 0:
            return 0.0
        return 2 * row.precision * row.recall / (row.precision + row.recall)

    # Shape 1: the paper's recommended m = 5k is not materially worse
    # than any other multiplier (at 200-sequence scale the left-edge
    # rise of Figure 5a drowns in seed-sampling variance; the plateau
    # and the recommended point's quality are what remains testable).
    assert f1(by_multiplier[5]) >= f1(by_multiplier[1]) - 0.15

    # Shape 2: quality rises towards the m = 3k..5k region (Figure 5a's
    # rising-then-plateau left side).
    assert max(f1(by_multiplier[3]), f1(by_multiplier[5])) >= f1(
        by_multiplier[1]
    ) - 0.05
    assert abs(f1(by_multiplier[5]) - f1(by_multiplier[3])) <= 0.20

    # Shape 3: quality at the recommended setting is in the paper's band.
    assert f1(by_multiplier[5]) >= 0.6

    # Note: the m = 8k point is printed but not asserted — at this scale
    # a very large sample lets greedy min-max selection chase outliers
    # and the run-to-run variance dwarfs the paper's plateau (see
    # EXPERIMENTS.md).
