"""DESIGN §6.1 ablation — what each hardened default contributes.

Shape: starting from a deliberately wrong k = 1, the hardened defaults
recover a clustering near the truth; removing the iteration-0
calibration causes the irreversible everything-merges failure (the
dominant safeguard); the other switches degrade more gently.
"""

from conftest import run_once

from repro.experiments.ablation_modes import (
    print_ablation_modes,
    run_ablation_modes,
)

TRUE_K = 10


def test_ablation_modes(benchmark, synthetic_db):
    rows = run_once(
        benchmark, run_ablation_modes, db=synthetic_db, true_k=TRUE_K
    )
    print_ablation_modes(rows, true_k=TRUE_K)

    by_mode = {row.mode: row for row in rows}
    hardened = by_mode["hardened defaults"]

    # Shape 1: the hardened defaults work from a wrong k.
    assert hardened.accuracy >= 0.6
    assert abs(hardened.final_clusters - TRUE_K) <= 3

    # Shape 2: no single safeguard *improves* on the full set by a
    # wide margin — the defaults are not fighting each other.
    for mode, row in by_mode.items():
        assert row.accuracy <= hardened.accuracy + 0.15, mode

    # Shape 3: dropping calibration is the catastrophic ablation; the
    # literal configuration collapses toward one mixture cluster.
    assert by_mode["no calibration"].accuracy < hardened.accuracy
    assert by_mode["all literal"].accuracy < hardened.accuracy
    assert by_mode["all literal"].final_clusters < TRUE_K
