"""Table 2 — model comparison: CLUSEQ vs ED, EDBO, HMM, q-gram.

Paper's shape (8 000 proteins, 30 families):
  accuracy: CLUSEQ 82 % ≥ HMM 81 % ≈ EDBO 80 % > q-gram 75 % >> ED 23 %
  time:     q-gram 132 s ≈ CLUSEQ 144 s << ED 487 s << HMM 3117 s << EDBO 13754 s
"""

from conftest import run_once

from repro.experiments.table2_model_comparison import print_table2, run_table2

#: Model pairs whose ordering the paper's Table 2 establishes.
FAST_MODELS = ("CLUSEQ", "q-gram")
SLOW_MODELS = ("ED", "EDBO", "HMM")


def test_table2_model_comparison(benchmark, small_protein_db):
    rows = run_once(benchmark, run_table2, db=small_protein_db)
    print_table2(rows)
    by_model = {row.model: row for row in rows}
    assert set(by_model) == set(FAST_MODELS) | set(SLOW_MODELS)

    # Shape 1: CLUSEQ has the best (or tied-best) accuracy.
    best_accuracy = max(row.accuracy for row in rows)
    assert by_model["CLUSEQ"].accuracy >= best_accuracy - 0.10

    # Shape 2: ED's accuracy collapses relative to CLUSEQ.
    assert by_model["ED"].accuracy < by_model["CLUSEQ"].accuracy

    # Shape 3: the sequence-statistics models beat global alignment.
    assert by_model["q-gram"].accuracy > by_model["ED"].accuracy

    # Shape 4: CLUSEQ runs in q-gram-like time, far below the
    # alignment/EM baselines.
    assert (
        by_model["CLUSEQ"].elapsed_seconds
        < min(by_model[m].elapsed_seconds for m in SLOW_MODELS)
    )

    # Shape 5: EDBO is the slowest model, as in the paper.
    assert by_model["EDBO"].elapsed_seconds == max(
        row.elapsed_seconds for row in rows
    )
