"""Table 6 — robustness to the initial similarity threshold t.

Paper's shape (true t = 2): the final t converges to 1.99–2.01 for any
initial t ∈ {1.05, 1.5, 2, 3}, with quality essentially unchanged.

In this implementation the iteration-0 calibration replaces the user's
initial t, so initial-t independence holds exactly: identical final
threshold, cluster count and quality for every starting value.
"""

from conftest import run_once

from repro.experiments.table6_initial_t import (
    final_threshold_spread,
    print_table6,
    run_table6,
)

TRUE_K = 10


def test_table6_initial_t_robustness(benchmark, synthetic_db):
    rows = run_once(
        benchmark,
        run_table6,
        db=synthetic_db,
        initial_ts=(1.05, 1.5, 2.0, 3.0),
        true_k=TRUE_K,
    )
    print_table6(rows)

    # Shape 1 (the paper's headline): the final threshold does not
    # depend on the initial one.
    assert final_threshold_spread(rows) < 1e-9

    # Shape 2: the final clustering is identical across starts.
    finals = [row.final_clusters for row in rows]
    assert max(finals) == min(finals)
    precisions = [row.precision for row in rows]
    assert max(precisions) - min(precisions) < 1e-9

    # Shape 3: quality is in the paper's band.
    assert min(precisions) >= 0.6
    assert min(row.recall for row in rows) >= 0.6
