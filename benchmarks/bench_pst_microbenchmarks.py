"""Microbenchmarks of the PST and similarity hot paths.

Not a paper table — these document the raw throughput of the two
operations that dominate CLUSEQ's runtime (§4.7: each iteration is
N · k' similarity estimations plus the PST updates), so regressions in
the core loops are caught even when the end-to-end benches drift.
"""

import numpy as np
import pytest

from repro.core.pst import ProbabilisticSuffixTree
from repro.core.similarity import similarity

ALPHABET = 20
LENGTH = 500


@pytest.fixture(scope="module")
def training_data():
    rng = np.random.default_rng(0)
    return [list(rng.integers(0, ALPHABET, size=LENGTH)) for _ in range(20)]


@pytest.fixture(scope="module")
def fitted_pst(training_data):
    pst = ProbabilisticSuffixTree(
        alphabet_size=ALPHABET, max_depth=6, significance_threshold=5,
        p_min=1e-3 / ALPHABET,
    )
    for seq in training_data:
        pst.add_sequence(seq)
    return pst


def test_pst_insertion_throughput(benchmark, training_data):
    """Symbols/second inserted into a fresh PST."""

    def build():
        pst = ProbabilisticSuffixTree(
            alphabet_size=ALPHABET, max_depth=6, significance_threshold=5
        )
        for seq in training_data:
            pst.add_sequence(seq)
        return pst

    pst = benchmark(build)
    assert pst.total_symbols == 20 * LENGTH


def test_similarity_throughput(benchmark, fitted_pst, training_data):
    """One similarity estimation of a 500-symbol sequence."""
    background = np.full(ALPHABET, 1.0 / ALPHABET)
    query = training_data[0]
    result = benchmark(similarity, fitted_pst, query, background)
    assert result.log_similarity == result.log_similarity  # finite


def test_prediction_lookup_throughput(benchmark, fitted_pst, training_data):
    """Raw conditional-probability lookups (the innermost operation)."""
    query = training_data[1]

    def lookups():
        total = 0.0
        for i in range(1, len(query)):
            total += fitted_pst.probability(query[i], query[max(0, i - 6) : i])
        return total

    total = benchmark(lookups)
    assert total > 0
