"""Tests for repro.core.cluster — cluster objects and memberships."""

import pytest

from repro.core.cluster import Cluster, Membership
from repro.core.pst import ProbabilisticSuffixTree


def make_cluster(cluster_id=0, seed_index=0):
    pst = ProbabilisticSuffixTree(alphabet_size=2, max_depth=3)
    pst.add_sequence([0, 1, 0, 1])
    return Cluster(cluster_id=cluster_id, pst=pst, seed_index=seed_index)


class TestMembership:
    def test_set_member_new_vs_refresh(self):
        cluster = make_cluster()
        first = cluster.set_member(Membership(5, 10.0, 0, 4))
        again = cluster.set_member(Membership(5, 12.0, 1, 4))
        assert first is True
        assert again is False
        assert cluster.size == 1
        assert cluster.membership_of(5).log_similarity == 12.0

    def test_drop_member(self):
        cluster = make_cluster()
        cluster.set_member(Membership(3, 1.0, 0, 1))
        assert cluster.drop_member(3) is True
        assert cluster.drop_member(3) is False
        assert cluster.size == 0

    def test_contains(self):
        cluster = make_cluster()
        cluster.set_member(Membership(1, 1.0, 0, 1))
        assert cluster.contains(1)
        assert not cluster.contains(2)

    def test_clear_members(self):
        cluster = make_cluster()
        for i in range(4):
            cluster.set_member(Membership(i, 1.0, 0, 1))
        cluster.clear_members()
        assert cluster.size == 0

    def test_members_returns_copy(self):
        cluster = make_cluster()
        cluster.set_member(Membership(1, 1.0, 0, 1))
        members = cluster.members
        members.add(99)
        assert not cluster.contains(99)


class TestModelUpdates:
    def test_absorb_segment_updates_pst(self):
        cluster = make_cluster()
        nodes_before = cluster.pst.node_count
        symbols_before = cluster.pst.total_symbols
        cluster.absorb_segment([1, 1, 1, 0])
        assert cluster.pst.total_symbols == symbols_before + 4
        assert cluster.pst.node_count >= nodes_before
        assert cluster.segments_absorbed == 1


class TestUniqueMembers:
    def test_unique_against_others(self):
        a, b = make_cluster(0), make_cluster(1)
        for i in (1, 2, 3):
            a.set_member(Membership(i, 1.0, 0, 1))
        for i in (2, 3, 4):
            b.set_member(Membership(i, 1.0, 0, 1))
        assert a.unique_members([b]) == {1}
        assert b.unique_members([a]) == {4}

    def test_unique_excludes_self(self):
        a = make_cluster(0)
        a.set_member(Membership(1, 1.0, 0, 1))
        assert a.unique_members([a]) == {1}

    def test_unique_empty_when_fully_covered(self):
        a, b = make_cluster(0), make_cluster(1)
        a.set_member(Membership(1, 1.0, 0, 1))
        b.set_member(Membership(1, 1.0, 0, 1))
        b.set_member(Membership(2, 1.0, 0, 1))
        assert a.unique_members([b]) == set()


class TestStats:
    def test_average_log_similarity(self):
        cluster = make_cluster()
        cluster.set_member(Membership(1, 10.0, 0, 1))
        cluster.set_member(Membership(2, 20.0, 0, 1))
        assert cluster.average_log_similarity() == pytest.approx(15.0)

    def test_average_empty(self):
        assert make_cluster().average_log_similarity() == 0.0

    def test_repr(self):
        assert "Cluster(id=0" in repr(make_cluster())
