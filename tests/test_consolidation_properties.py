"""Property-based tests for cluster consolidation."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cluster import Cluster, Membership
from repro.core.consolidation import consolidate
from repro.core.pst import ProbabilisticSuffixTree

# A cluster layout: list of member-index sets.
layouts = st.lists(
    st.sets(st.integers(0, 15), max_size=10),
    min_size=1,
    max_size=6,
)


def build(layout):
    clusters = []
    for cid, members in enumerate(layout):
        pst = ProbabilisticSuffixTree(alphabet_size=2, max_depth=2)
        pst.add_sequence([0, 1])
        cluster = Cluster(cluster_id=cid, pst=pst, seed_index=0)
        for index in members:
            cluster.set_member(Membership(index, 1.0, 0, 1))
        clusters.append(cluster)
    return clusters


@settings(max_examples=80, deadline=None)
@given(layouts, st.integers(0, 5), st.booleans())
def test_partition_of_input(layout, min_unique, dissolve):
    """Retained + removed is exactly the input, with no duplicates."""
    clusters = build(layout)
    retained, removed = consolidate(clusters, min_unique, dissolve)
    all_ids = {c.cluster_id for c in clusters}
    retained_ids = {c.cluster_id for c in retained}
    removed_ids = {c.cluster_id for c in removed}
    assert retained_ids | removed_ids == all_ids
    assert retained_ids & removed_ids == set()
    assert len(retained) + len(removed) == len(clusters)


@settings(max_examples=80, deadline=None)
@given(layouts, st.integers(1, 5))
def test_retained_have_unique_members_dissolve(layout, min_unique):
    """Descending pass: every retained cluster keeps >= min_unique
    members not found in any other retained cluster (unless it is the
    sole survivor). Holds because each survivor was checked against a
    superset of the final retained set, and removals only grow its
    unique-member count."""
    clusters = build(layout)
    retained, _ = consolidate(clusters, min_unique, dissolve_covered=True)
    if len(retained) <= 1:
        return
    for cluster in retained:
        others = [c for c in retained if c is not cluster]
        unique = cluster.unique_members(others)
        assert len(unique) >= min_unique


@settings(max_examples=80, deadline=None)
@given(layouts, st.integers(1, 5))
def test_retained_have_unique_members_ascending(layout, min_unique):
    """Paper's ascending pass (§4.5): each retained cluster keeps
    >= min_unique members not found in any *larger* retained cluster.
    (Pairwise uniqueness against the whole retained set is NOT
    guaranteed by this pass — a smaller survivor may cover the member
    that made a larger one unique; that stronger property only holds
    for the descending ``dissolve_covered`` variant.)"""
    clusters = build(layout)
    retained, _ = consolidate(clusters, min_unique, dissolve_covered=False)
    ordered = sorted(retained, key=lambda cl: (cl.size, cl.cluster_id))
    for position, cluster in enumerate(ordered):
        larger = ordered[position + 1 :]
        if not larger:
            continue
        unique = cluster.unique_members(larger)
        assert len(unique) >= min_unique


@settings(max_examples=80, deadline=None)
@given(layouts, st.integers(0, 5), st.booleans())
def test_empty_clusters_always_removed(layout, min_unique, dissolve):
    clusters = build(layout)
    retained, _ = consolidate(clusters, min_unique, dissolve)
    for cluster in retained:
        assert cluster.size > 0


@settings(max_examples=80, deadline=None)
@given(layouts, st.integers(1, 5), st.booleans())
def test_nonoverlapping_layouts_untouched(layout, min_unique, dissolve):
    """Pairwise-disjoint clusters of sufficient size always survive."""
    # Make the layout disjoint by offsetting indices per cluster.
    disjoint = [
        {index + 100 * cid for index in members}
        for cid, members in enumerate(layout)
        if len(members) >= min_unique
    ]
    clusters = build(disjoint)
    retained, removed = consolidate(clusters, min_unique, dissolve)
    assert len(retained) == len(disjoint)
    assert removed == []


@settings(max_examples=60, deadline=None)
@given(layouts, st.integers(0, 5))
def test_deterministic(layout, min_unique):
    clusters_a = build(layout)
    clusters_b = build(layout)
    retained_a, _ = consolidate(clusters_a, min_unique)
    retained_b, _ = consolidate(clusters_b, min_unique)
    assert [c.cluster_id for c in retained_a] == [
        c.cluster_id for c in retained_b
    ]
