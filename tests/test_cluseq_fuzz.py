"""Hypothesis fuzzing of the full CLUSEQ engine.

The engine must never crash and must uphold its structural invariants
on arbitrary small databases — including adversarial shapes hypothesis
finds (all-identical sequences, singleton alphabets, extreme length
skew).
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.cluseq import cluster_sequences
from repro.sequences.database import SequenceDatabase

databases = st.lists(
    st.lists(st.integers(0, 3), min_size=1, max_size=30),
    min_size=2,
    max_size=25,
)


def to_db(raw):
    alphabet_symbols = "abcd"
    return SequenceDatabase.from_strings(
        ["".join(alphabet_symbols[v] for v in seq) for seq in raw]
    )


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(databases, st.integers(1, 3), st.integers(0, 3))
def test_engine_invariants_hold(raw, k, seed):
    db = to_db(raw)
    result = cluster_sequences(
        db,
        k=min(k, len(db)),
        significance_threshold=2,
        min_unique_members=1,
        max_iterations=5,
        seed=seed,
    )

    # 1. Every sequence has an assignment entry.
    assert set(result.assignments) == set(range(len(db)))

    # 2. Assignments reference only live clusters, and mirror the
    #    clusters' own membership sets exactly.
    live = {cluster.cluster_id for cluster in result.clusters}
    for index, ids in result.assignments.items():
        assert ids <= live
        for cluster in result.clusters:
            assert (cluster.cluster_id in ids) == cluster.contains(index)

    # 3. Labels are consistent with assignments.
    for index, label in enumerate(result.labels()):
        if label is None:
            assert result.assignments[index] == set()
        else:
            assert label in result.assignments[index]

    # 4. History is well-formed and bounded.
    assert 1 <= result.iterations <= 5
    for stats in result.history:
        assert stats.clusters_after >= 0
        assert 0 <= stats.unclustered <= len(db)

    # 5. Cluster PSTs stay structurally sound.
    for cluster in result.clusters:
        assert cluster.pst.recount_nodes() == cluster.pst.node_count


@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(databases, st.integers(0, 3))
def test_engine_deterministic(raw, seed):
    db = to_db(raw)
    kwargs = dict(
        k=1,
        significance_threshold=2,
        min_unique_members=1,
        max_iterations=4,
        seed=seed,
    )
    a = cluster_sequences(db, **kwargs)
    b = cluster_sequences(db, **kwargs)
    assert a.labels() == b.labels()
    assert a.final_log_threshold == b.final_log_threshold
