"""Tests for the experiment harnesses (small configurations).

Each harness must run end-to-end, return well-formed rows and print a
table; the *shape* assertions (who wins, what stays flat) live in the
benchmarks where full-size workloads run.
"""

import pytest

from repro.datasets.languages import make_language_database
from repro.datasets.protein import make_protein_database
from repro.experiments.ablation_pruning import (
    print_ablation_pruning,
    run_ablation_pruning,
)
from repro.experiments.ablation_smoothing import (
    measure_zero_probability_effect,
    print_ablation_smoothing,
    run_ablation_smoothing,
)
from repro.experiments.common import run_cluseq, scaled_params
from repro.experiments.fig4_pst_size import print_fig4, run_fig4
from repro.experiments.fig5_sample_size import print_fig5, run_fig5
from repro.experiments.fig6_scalability import (
    DIMENSIONS,
    loglog_slope,
    print_fig6,
    run_fig6_dimension,
)
from repro.experiments.ordering_policies import print_ordering, run_ordering
from repro.experiments.outlier_robustness import (
    accuracy_drop,
    print_outlier_robustness,
    run_outlier_robustness,
)
from repro.experiments.table2_model_comparison import (
    print_table2,
    run_table2,
)
from repro.experiments.table3_protein_families import print_table3, run_table3
from repro.experiments.table4_languages import print_table4, run_table4
from repro.experiments.table5_initial_k import print_table5, run_table5
from repro.experiments.table6_initial_t import (
    final_threshold_spread,
    print_table6,
    run_table6,
)
from repro.sequences.generators import generate_clustered_database


@pytest.fixture(scope="module")
def small_protein_db():
    return make_protein_database(
        num_families=4, scale=0.03, mean_length=80, seed=1, concentration=0.2
    )


@pytest.fixture(scope="module")
def small_synth_db():
    return generate_clustered_database(
        num_sequences=90,
        num_clusters=3,
        avg_length=80,
        alphabet_size=10,
        outlier_fraction=0.05,
        seed=5,
    ).database


class TestCommon:
    def test_run_cluseq(self, small_synth_db):
        run = run_cluseq(
            small_synth_db,
            **scaled_params(
                small_synth_db, k=3, significance_threshold=4,
                min_unique_members=3, max_iterations=10, seed=1
            ),
        )
        assert 0.0 <= run.accuracy <= 1.0
        assert run.elapsed_seconds > 0

    def test_scaled_params_overrides(self, small_synth_db):
        params = scaled_params(small_synth_db, k=7)
        assert params["k"] == 7
        assert params["significance_threshold"] >= 3


class TestTable2(object):
    def test_fast_models_only(self, small_protein_db, capsys):
        rows = run_table2(db=small_protein_db, models=["CLUSEQ", "q-gram"])
        names = [row.model for row in rows]
        assert names == ["CLUSEQ", "q-gram"]
        for row in rows:
            assert 0.0 <= row.accuracy <= 1.0
            assert row.elapsed_seconds > 0
        print_table2(rows)
        out = capsys.readouterr().out
        assert "Table 2" in out and "CLUSEQ" in out


class TestTable3:
    def test_rows_per_family(self, small_protein_db, capsys):
        rows = run_table3(db=small_protein_db)
        assert len(rows) == 4
        assert [r.size for r in rows] == sorted(
            (r.size for r in rows), reverse=True
        )
        print_table3(rows)
        assert "Table 3" in capsys.readouterr().out


class TestTable4:
    def test_language_rows(self, capsys):
        db = make_language_database(
            sentences_per_language=25, noise_sentences=5, seed=2
        )
        rows = run_table4(db=db)
        assert {r.language for r in rows} == {"english", "chinese", "japanese"}
        print_table4(rows)
        assert "Table 4" in capsys.readouterr().out


class TestTable5:
    def test_k_sweep(self, small_synth_db, capsys):
        rows = run_table5(db=small_synth_db, initial_ks=(1, 3), true_k=3)
        assert [r.initial_k for r in rows] == [1, 3]
        for row in rows:
            assert row.final_clusters >= 1
        print_table5(rows, true_k=3)
        assert "Table 5" in capsys.readouterr().out


class TestTable6:
    def test_t_sweep_calibrated_is_t_independent(self, small_synth_db, capsys):
        rows = run_table6(
            db=small_synth_db, initial_ts=(1.05, 3.0), true_k=3
        )
        assert final_threshold_spread(rows) < 1e-9
        print_table6(rows)
        assert "Table 6" in capsys.readouterr().out


class TestFig3:
    def test_distribution_report(self, small_synth_db, capsys):
        from repro.experiments.fig3_similarity_histogram import (
            print_fig3,
            run_fig3,
        )

        result = run_fig3(db=small_synth_db, true_k=3, buckets=20)
        assert len(result.series) == 20
        assert result.member_count > 0
        assert result.non_member_count > result.member_count
        assert set(result.valley_estimates) == {"regression", "otsu"}
        low, high = result.boundary_window
        assert low == result.non_member_p99
        assert high == result.member_p10
        print_fig3(result)
        out = capsys.readouterr().out
        assert "Figure 3" in out and "Valley estimates" in out


class TestFig4:
    def test_budget_sweep(self, small_synth_db, capsys):
        rows = run_fig4(db=small_synth_db, node_budgets=(100, 1000), true_k=3)
        assert [r.max_nodes for r in rows] == [100, 1000]
        print_fig4(rows)
        assert "Figure 4" in capsys.readouterr().out


class TestFig5:
    def test_multiplier_sweep(self, small_synth_db, capsys):
        rows = run_fig5(db=small_synth_db, multipliers=(1, 5), true_k=3)
        assert [r.multiplier for r in rows] == [1, 5]
        print_fig5(rows)
        assert "Figure 5" in capsys.readouterr().out


class TestFig6:
    def test_one_dimension(self, capsys):
        rows = run_fig6_dimension("num_sequences", values=(40, 80), seed=5)
        assert [r.value for r in rows] == [40, 80]
        slope = loglog_slope(rows)
        assert slope == slope  # finite, not NaN
        print_fig6({"num_sequences": rows})
        assert "scalability" in capsys.readouterr().out

    def test_invalid_dimension(self):
        with pytest.raises(ValueError):
            run_fig6_dimension("bogus")

    def test_dimensions_constant(self):
        assert DIMENSIONS == (
            "num_clusters",
            "num_sequences",
            "avg_length",
            "alphabet_size",
        )


class TestOrdering:
    def test_policies(self, small_synth_db, capsys):
        rows = run_ordering(
            db=small_synth_db, orderings=("fixed", "cluster"), true_k=3
        )
        assert [r.ordering for r in rows] == ["fixed", "cluster"]
        print_ordering(rows)
        assert "examination order" in capsys.readouterr().out


class TestOutliers:
    def test_sweep(self, capsys):
        rows = run_outlier_robustness(
            fractions=(0.05, 0.15), true_k=3, num_sequences=80, seed=5
        )
        assert len(rows) == 2
        drop = accuracy_drop(rows)
        assert -1.0 <= drop <= 1.0
        print_outlier_robustness(rows)
        assert "outliers" in capsys.readouterr().out


class TestAblations:
    def test_pruning(self, small_synth_db, capsys):
        rows = run_ablation_pruning(db=small_synth_db, max_nodes=200, true_k=3)
        strategies = [r.strategy for r in rows]
        assert strategies[0] == "unbounded"
        assert "paper" in strategies
        print_ablation_pruning(rows)
        assert "pruning" in capsys.readouterr().out

    def test_smoothing_rows(self, small_synth_db, capsys):
        rows = run_ablation_smoothing(
            db=small_synth_db, p_min_scales=(0.0, 1e-3), true_k=3
        )
        assert [r.p_min_scale for r in rows] == [0.0, 1e-3]
        stats = measure_zero_probability_effect(
            cluster_size=3, holdout=5, avg_length=80, alphabet_size=15
        )
        # The paper's point: without smoothing, small clusters zero out
        # held-out members; with smoothing they never do.
        assert stats.fraction_zeroed_smoothed == 0.0
        assert (
            stats.fraction_zeroed_unsmoothed
            >= stats.fraction_zeroed_smoothed
        )
        assert stats.mean_log_sim_smoothed >= stats.mean_log_sim_unsmoothed
        print_ablation_smoothing(rows, stats)
        assert "smoothing" in capsys.readouterr().out
