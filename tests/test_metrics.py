"""Tests for repro.evaluation.metrics."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.evaluation.metrics import (
    FamilyScore,
    accuracy_score,
    adjusted_rand_index,
    contingency_table,
    evaluate_clustering,
    family_scores,
    map_clusters_to_families,
    normalized_mutual_information,
    purity_score,
)
from repro.sequences.database import OUTLIER_LABEL

PERFECT_TRUTH = ["a", "a", "a", "b", "b", "b"]
PERFECT_PRED = [0, 0, 0, 1, 1, 1]


class TestContingency:
    def test_basic(self):
        table = contingency_table(PERFECT_TRUTH, PERFECT_PRED)
        assert table[0] == {"a": 3}
        assert table[1] == {"b": 3}

    def test_outliers_and_none_excluded(self):
        table = contingency_table(
            ["a", OUTLIER_LABEL, None, "a"], [0, 0, 0, None]
        )
        assert table == {0: {"a": 1}}


class TestMapping:
    def test_majority(self):
        truth = ["a", "a", "b", "b", "b"]
        pred = [0, 0, 0, 1, 1]
        mapping = map_clusters_to_families(truth, pred, "majority")
        assert mapping == {0: "a", 1: "b"}

    def test_majority_many_to_one(self):
        truth = ["a", "a", "a", "a"]
        pred = [0, 0, 1, 1]
        mapping = map_clusters_to_families(truth, pred, "majority")
        assert mapping == {0: "a", 1: "a"}

    def test_hungarian_one_to_one(self):
        truth = ["a", "a", "a", "a"]
        pred = [0, 0, 1, 1]
        mapping = map_clusters_to_families(truth, pred, "hungarian")
        assert sorted(v for v in mapping.values() if v) == ["a"]

    def test_hungarian_optimal_assignment(self):
        truth = ["a", "a", "b", "b", "a"]
        pred = [0, 0, 1, 1, 1]
        mapping = map_clusters_to_families(truth, pred, "hungarian")
        assert mapping == {0: "a", 1: "b"}

    def test_unknown_strategy(self):
        with pytest.raises(ValueError):
            map_clusters_to_families(["a"], [0], "bogus")

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            map_clusters_to_families(["a"], [0, 1])

    def test_unmapped_cluster_is_none(self):
        truth = [OUTLIER_LABEL, OUTLIER_LABEL]
        pred = [0, 0]
        mapping = map_clusters_to_families(truth, pred)
        assert mapping == {0: None}


class TestAccuracy:
    def test_perfect(self):
        assert accuracy_score(PERFECT_TRUTH, PERFECT_PRED) == 1.0

    def test_half_wrong(self):
        truth = ["a", "a", "b", "b"]
        pred = [0, 1, 0, 1]  # clusters split across families
        # majority: cluster0 -> a (tie broken by count order), etc.
        value = accuracy_score(truth, pred)
        assert 0.0 < value <= 1.0

    def test_outlier_correct_when_unclustered(self):
        truth = ["a", OUTLIER_LABEL]
        pred = [0, None]
        assert accuracy_score(truth, pred) == 1.0

    def test_outlier_wrong_when_clustered(self):
        truth = ["a", "a", OUTLIER_LABEL]
        pred = [0, 0, 0]
        assert accuracy_score(truth, pred) == pytest.approx(2 / 3)

    def test_unclustered_real_sequence_is_wrong(self):
        truth = ["a", "a"]
        pred = [0, None]
        assert accuracy_score(truth, pred) == 0.5

    def test_no_labels_raises(self):
        with pytest.raises(ValueError):
            accuracy_score([None, None], [0, 1])


class TestFamilyScores:
    def test_perfect_scores(self):
        scores = family_scores(PERFECT_TRUTH, PERFECT_PRED)
        assert all(s.precision == 1.0 and s.recall == 1.0 for s in scores)

    def test_partial_scores(self):
        truth = ["a", "a", "a", "b"]
        pred = [0, 0, None, 0]
        scores = {s.family: s for s in family_scores(truth, pred)}
        # cluster0 -> a; F' = {0,1,3}; correct = 2
        assert scores["a"].precision == pytest.approx(2 / 3)
        assert scores["a"].recall == pytest.approx(2 / 3)
        assert scores["b"].assigned == 0
        assert scores["b"].precision == 0.0

    def test_f1(self):
        score = FamilyScore(family="x", size=10, assigned=10, correct=5)
        assert score.f1 == pytest.approx(0.5)
        zero = FamilyScore(family="x", size=10, assigned=0, correct=0)
        assert zero.f1 == 0.0


class TestIndices:
    def test_purity_perfect(self):
        assert purity_score(PERFECT_TRUTH, PERFECT_PRED) == 1.0

    def test_purity_mixture(self):
        assert purity_score(["a", "b"], [0, 0]) == 0.5

    def test_ari_perfect(self):
        assert adjusted_rand_index(PERFECT_TRUTH, PERFECT_PRED) == pytest.approx(1.0)

    def test_ari_single_cluster(self):
        assert adjusted_rand_index(["a", "b"], [0, 0]) == 0.0

    def test_nmi_perfect(self):
        assert normalized_mutual_information(
            PERFECT_TRUTH, PERFECT_PRED
        ) == pytest.approx(1.0)

    def test_nmi_independent(self):
        truth = ["a", "b"] * 10
        pred = [0] * 20
        assert normalized_mutual_information(truth, pred) == 0.0


class TestEvaluateClustering:
    def test_full_report(self):
        report = evaluate_clustering(PERFECT_TRUTH, PERFECT_PRED)
        assert report.accuracy == 1.0
        assert report.purity == 1.0
        assert report.num_clusters == 2
        assert report.num_sequences == 6
        assert report.num_predicted_outliers == 0
        assert report.macro_precision == 1.0
        assert report.macro_recall == 1.0
        assert report.score_for("a").size == 3
        with pytest.raises(KeyError):
            report.score_for("zzz")

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            evaluate_clustering([], [])


@settings(max_examples=50, deadline=None)
@given(
    st.lists(st.sampled_from(["a", "b", "c"]), min_size=2, max_size=40),
)
def test_perfect_prediction_always_scores_one(truth):
    """Predicting the true partition yields accuracy/purity/ARI/NMI = 1
    (up to degenerate single-class cases for ARI)."""
    mapping = {"a": 0, "b": 1, "c": 2}
    pred = [mapping[t] for t in truth]
    assert accuracy_score(truth, pred) == 1.0
    assert purity_score(truth, pred) == 1.0
    if len(set(truth)) > 1:
        assert adjusted_rand_index(truth, pred) == pytest.approx(1.0)
        assert normalized_mutual_information(truth, pred) == pytest.approx(1.0)


@settings(max_examples=50, deadline=None)
@given(
    st.lists(st.sampled_from(["a", "b"]), min_size=2, max_size=30),
    st.lists(st.integers(0, 3), min_size=2, max_size=30),
)
def test_metric_ranges(truth, pred):
    if len(truth) != len(pred):
        pred = (pred * len(truth))[: len(truth)]
    assert 0.0 <= accuracy_score(truth, pred) <= 1.0
    assert 0.0 <= purity_score(truth, pred) <= 1.0
    assert -1.0 <= adjusted_rand_index(truth, pred) <= 1.0
    assert 0.0 <= normalized_mutual_information(truth, pred) <= 1.0 + 1e-9
