"""Focused tests of numerical internals.

These pin down the low-level numerics that the higher-level behaviour
rests on: the O(n) prefix/suffix regression slopes behind the valley
heuristic, the log-log slope fit behind the Figure 6 assertions, and
the log-domain guards in the similarity measure.
"""

import math

import numpy as np
import pytest

from repro.core.similarity import _LOG_ZERO, _safe_exp
from repro.core.threshold import _regression_slopes
from repro.experiments.fig6_scalability import ScalabilityRow, loglog_slope


class TestRegressionSlopes:
    def test_matches_polyfit(self, rng):
        """Every split's left/right slope equals an explicit least-
        squares fit."""
        x = np.sort(rng.uniform(0, 10, size=24))
        y = rng.uniform(0, 5, size=24)
        left, right = _regression_slopes(x, y)
        for i in range(1, 23):
            expected_left = np.polyfit(x[: i + 1], y[: i + 1], 1)[0]
            expected_right = np.polyfit(x[i:], y[i:], 1)[0]
            assert left[i] == pytest.approx(expected_left, rel=1e-6, abs=1e-9)
            assert right[i] == pytest.approx(expected_right, rel=1e-6, abs=1e-9)

    def test_single_point_is_nan(self, rng):
        x = np.array([1.0, 2.0, 3.0])
        y = np.array([1.0, 4.0, 9.0])
        left, right = _regression_slopes(x, y)
        assert math.isnan(left[0])  # one point: no slope
        assert math.isnan(right[-1])

    def test_perfect_line(self):
        x = np.linspace(0, 1, 10)
        y = 3.0 * x + 1.0
        left, right = _regression_slopes(x, y)
        assert np.allclose(left[1:], 3.0)
        assert np.allclose(right[:-1], 3.0)

    def test_degenerate_x_variance(self):
        x = np.array([2.0, 2.0, 2.0, 5.0])
        y = np.array([1.0, 2.0, 3.0, 4.0])
        left, right = _regression_slopes(x, y)
        # Splits whose side has zero x-variance yield nan, not inf.
        assert math.isnan(left[1])


class TestLogLogSlope:
    def make_rows(self, values, work, iters=None):
        iters = iters or [1] * len(values)
        return [
            ScalabilityRow(
                dimension="num_sequences",
                value=v,
                elapsed_seconds=float(w),
                iterations=i,
                accuracy=1.0,
                work=int(w * 1000),
            )
            for v, w, i in zip(values, work, iters)
        ]

    def test_linear_scaling_slope_one(self):
        rows = self.make_rows([10, 20, 40, 80], [1.0, 2.0, 4.0, 8.0])
        assert loglog_slope(rows) == pytest.approx(1.0)

    def test_flat_scaling_slope_zero(self):
        rows = self.make_rows([10, 20, 40, 80], [3.0, 3.0, 3.0, 3.0])
        assert loglog_slope(rows) == pytest.approx(0.0, abs=1e-9)

    def test_quadratic_scaling_slope_two(self):
        rows = self.make_rows([10, 20, 40], [1.0, 4.0, 16.0])
        assert loglog_slope(rows) == pytest.approx(2.0)

    def test_iteration_normalisation(self):
        """Doubling iteration counts must not change the slope."""
        rows = self.make_rows(
            [10, 20, 40], [2.0, 8.0, 32.0], iters=[2, 4, 8]
        )
        assert loglog_slope(rows) == pytest.approx(1.0)


class TestLinearFit:
    def make_rows(self, values, work, iters=None):
        from repro.experiments.fig6_scalability import ScalabilityRow

        iters = iters or [1] * len(values)
        return [
            ScalabilityRow(
                dimension="num_clusters",
                value=v,
                elapsed_seconds=float(w),
                iterations=i,
                accuracy=1.0,
                work=int(w * 1000),
            )
            for v, w, i in zip(values, work, iters)
        ]

    def test_perfect_line_with_intercept(self):
        from repro.experiments.fig6_scalability import linear_fit

        rows = self.make_rows([2, 5, 10, 20], [1.0 + 0.5 * v for v in (2, 5, 10, 20)])
        slope, r_squared = linear_fit(rows)
        # The fit runs on work units (w × 1000 in make_rows).
        assert slope == pytest.approx(500.0)
        assert r_squared == pytest.approx(1.0)

    def test_flat_line(self):
        from repro.experiments.fig6_scalability import linear_fit

        rows = self.make_rows([2, 5, 10, 20], [3.0] * 4)
        slope, r_squared = linear_fit(rows)
        assert slope == pytest.approx(0.0, abs=1e-9)
        assert r_squared == pytest.approx(1.0)  # degenerate total variance

    def test_noisy_line_r_squared_below_one(self, rng):
        from repro.experiments.fig6_scalability import linear_fit

        values = [2, 5, 10, 20, 40]
        times = [1.0 + 0.5 * v + rng.normal(0, 2.0) for v in values]
        _, r_squared = linear_fit(self.make_rows(values, times))
        assert r_squared <= 1.0


class TestLogDomainGuards:
    def test_safe_exp_normal(self):
        assert _safe_exp(0.0) == 1.0
        assert _safe_exp(1.0) == pytest.approx(math.e)

    def test_safe_exp_saturates(self):
        assert _safe_exp(710.0) == math.inf
        assert _safe_exp(10_000.0) == math.inf

    def test_safe_exp_large_but_finite(self):
        assert math.isfinite(_safe_exp(700.0))

    def test_log_zero_marker_finite(self):
        """The zero-probability marker must stay finite so the DP can
        rank segments containing a hard zero."""
        assert math.isfinite(_LOG_ZERO)
        assert _LOG_ZERO < -600
