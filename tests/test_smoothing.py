"""Tests for repro.core.smoothing — adjusted probability estimation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.smoothing import (
    adjust_probability,
    adjust_vector,
    default_p_min,
    validate_p_min,
)


class TestValidation:
    def test_zero_allowed(self):
        validate_p_min(5, 0.0)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            validate_p_min(5, -0.01)

    def test_too_large_rejected(self):
        with pytest.raises(ValueError, match="too large"):
            validate_p_min(5, 0.2)  # 5 * 0.2 = 1.0

    def test_boundary_ok(self):
        validate_p_min(5, 0.19)


class TestDefault:
    def test_scales_inversely_with_alphabet(self):
        assert default_p_min(10) == pytest.approx(1e-4)
        assert default_p_min(20) == pytest.approx(5e-5)

    def test_reserved_mass_constant(self):
        for n in (2, 10, 100):
            assert n * default_p_min(n) == pytest.approx(1e-3)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            default_p_min(0)
        with pytest.raises(ValueError):
            default_p_min(10, scale=1.5)
        with pytest.raises(ValueError):
            default_p_min(10, scale=-0.1)


class TestAdjustProbability:
    def test_zero_p_min_identity(self):
        assert adjust_probability(0.3, 4, 0.0) == 0.3

    def test_zero_probability_lifted_to_floor(self):
        assert adjust_probability(0.0, 4, 0.01) == pytest.approx(0.01)

    def test_one_probability_reduced(self):
        adjusted = adjust_probability(1.0, 4, 0.01)
        assert adjusted == pytest.approx(1.0 - 4 * 0.01 + 0.01)
        assert adjusted < 1.0

    def test_paper_formula(self):
        # P̂ = (1 - n·p_min)·P + p_min
        n, p_min, p = 5, 0.02, 0.4
        assert adjust_probability(p, n, p_min) == pytest.approx(
            (1 - n * p_min) * p + p_min
        )


class TestAdjustVector:
    def test_sums_preserved(self):
        vec = np.array([0.7, 0.3, 0.0])
        adjusted = adjust_vector(vec, 0.05)
        assert np.isclose(adjusted.sum(), 1.0)
        assert (adjusted >= 0.05 - 1e-12).all()

    def test_zero_p_min_copy(self):
        vec = np.array([0.5, 0.5])
        adjusted = adjust_vector(vec, 0.0)
        assert np.array_equal(adjusted, vec)
        adjusted[0] = 0.0
        assert vec[0] == 0.5  # original untouched

    def test_invalid_p_min_for_vector(self):
        with pytest.raises(ValueError):
            adjust_vector(np.ones(4) / 4, 0.3)


@settings(max_examples=100, deadline=None)
@given(
    st.floats(min_value=0.0, max_value=1.0),
    st.integers(min_value=1, max_value=50),
    st.floats(min_value=0.0, max_value=0.019),
)
def test_adjustment_properties(p, n, p_min):
    """Adjusted probabilities stay in [p_min, 1] and preserve order."""
    adjusted = adjust_probability(p, n, p_min)
    if p_min > 0:
        assert adjusted >= p_min - 1e-12
    assert adjusted <= 1.0 + 1e-12
    # Monotone: higher raw probability -> higher adjusted probability.
    higher = adjust_probability(min(1.0, p + 0.1), n, p_min)
    assert higher >= adjusted - 1e-12


@settings(max_examples=50, deadline=None)
@given(
    st.lists(st.floats(min_value=0, max_value=1), min_size=2, max_size=20),
    st.floats(min_value=1e-6, max_value=0.009),
)
def test_vector_adjustment_preserves_total_mass(raw, p_min):
    vec = np.asarray(raw)
    total = vec.sum()
    if total == 0:
        return
    vec = vec / total  # normalise
    adjusted = adjust_vector(vec, p_min)
    assert np.isclose(adjusted.sum(), 1.0, atol=1e-9)
