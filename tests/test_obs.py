"""Unit tests for the observability layer (``repro.obs``)."""

import io
import json
import math
import logging
import sys
import threading

import pytest

from repro.obs import (
    LOGGER_NAME,
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    JsonLinesFormatter,
    MetricsRegistry,
    NullRegistry,
    Series,
    Timer,
    configure_logging,
    current_span,
    get_logger,
    get_registry,
    iter_tree,
    reset_logging,
    set_registry,
    span,
    use_registry,
)


@pytest.fixture(autouse=True)
def _clean_obs_state():
    """Every test starts from the disabled default state."""
    set_registry(None)
    reset_logging()
    yield
    set_registry(None)
    reset_logging()


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        c = Counter()
        assert c.value == 0
        c.inc()
        c.inc(5)
        assert c.value == 6

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter().inc(-1)

    def test_to_dict(self):
        c = Counter()
        c.inc(3)
        assert c.to_dict() == {"type": "counter", "value": 3}


class TestGauge:
    def test_set_inc_dec(self):
        g = Gauge()
        g.set(10.0)
        g.inc(2)
        g.dec(5)
        assert g.value == 7.0


class TestHistogram:
    def test_bucketing_on_upper_bounds(self):
        h = Histogram(buckets=[1.0, 10.0, 100.0])
        for v in (0.5, 1.0, 5.0, 10.0, 99.0, 1000.0):
            h.observe(v)
        # bisect_left on upper bounds: a value equal to a bound lands
        # in that bound's bucket (le_1 gets both 0.5 and 1.0).
        assert h.bucket_counts == [2, 2, 1, 1]
        assert h.count == 6
        assert h.min == 0.5
        assert h.max == 1000.0
        assert h.total == pytest.approx(1115.5)
        assert h.mean == pytest.approx(1115.5 / 6)

    def test_to_dict_bucket_names(self):
        h = Histogram(buckets=[2.0, 4.0])
        h.observe(3.0)
        d = h.to_dict()
        assert d["buckets"] == {"le_2": 0, "le_4": 1, "inf": 0}
        assert d["count"] == 1

    def test_empty_histogram_has_null_extrema(self):
        d = Histogram(buckets=[1.0]).to_dict()
        assert d["min"] is None and d["max"] is None

    def test_rejects_unsorted_buckets(self):
        with pytest.raises(ValueError):
            Histogram(buckets=[3.0, 1.0])
        with pytest.raises(ValueError):
            Histogram(buckets=[1.0, 1.0])

    def test_merge_binned_equals_observe_loop(self):
        # The batched scorer's fast path: np.searchsorted(side="left")
        # is the vectorized twin of observe()'s bisect_left rule, so a
        # merged batch must leave the histogram in exactly the state an
        # observe() loop would.
        import numpy as np

        bounds = [1.0, 10.0, 100.0]
        values = [0.5, 1.0, 5.0, 10.0, 99.0, 1000.0, 1.0, 42.0]
        looped = Histogram(buckets=bounds)
        for v in values:
            looped.observe(v)
        merged = Histogram(buckets=bounds)
        bins = np.searchsorted(np.asarray(bounds), values, side="left")
        counts = np.bincount(bins, minlength=len(bounds) + 1)
        merged.merge_binned(
            counts.tolist(), len(values), float(sum(values)),
            min(values), max(values),
        )
        assert merged.bucket_counts == looped.bucket_counts
        assert merged.count == looped.count
        assert merged.total == pytest.approx(looped.total)
        assert merged.min == looped.min
        assert merged.max == looped.max
        # A second merge folds in, it does not overwrite.
        merged.merge_binned([1, 0, 0, 0], 1, 0.25, 0.25, 0.25)
        assert merged.count == looped.count + 1
        assert merged.min == 0.25

    def test_merge_binned_empty_batch_is_noop(self):
        h = Histogram(buckets=[1.0])
        h.merge_binned([0, 0], 0, 0.0, math.inf, -math.inf)
        assert h.count == 0
        assert h.to_dict()["min"] is None

    def test_merge_binned_length_mismatch_rejected(self):
        h = Histogram(buckets=[1.0, 2.0])
        with pytest.raises(ValueError):
            h.merge_binned([1, 2], 3, 1.0, 0.1, 0.9)


class TestTimer:
    def test_accumulates_wall_and_cpu(self):
        t = Timer()
        t.record(0.5, 0.25)
        t.record(1.5, 0.75)
        assert t.count == 2
        assert t.total_seconds == pytest.approx(2.0)
        assert t.total_cpu_seconds == pytest.approx(1.0)
        assert t.min == pytest.approx(0.5)
        assert t.max == pytest.approx(1.5)
        assert t.mean_seconds == pytest.approx(1.0)

    def test_rejects_negative_duration(self):
        with pytest.raises(ValueError):
            Timer().record(-0.1)


class TestSeries:
    def test_keeps_observation_order(self):
        s = Series()
        for v in (3.0, 1.0, 2.0):
            s.append(v)
        assert s.values == [3.0, 1.0, 2.0]
        assert len(s) == 3


class TestMetricsRegistry:
    def test_same_name_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")
        registry.counter("x").inc()
        registry.counter("x").inc()
        assert registry.get("x").value == 2

    def test_labels_create_distinct_instruments(self):
        registry = MetricsRegistry()
        registry.counter("runs", model="hmm").inc()
        registry.counter("runs", model="ed").inc(2)
        assert registry.get("runs", model="hmm").value == 1
        assert registry.get("runs", model="ed").value == 2
        assert "runs{model=ed}" in registry.names()
        assert "runs{model=hmm}" in registry.names()

    def test_label_order_does_not_matter(self):
        registry = MetricsRegistry()
        registry.counter("c", a="1", b="2").inc()
        assert registry.counter("c", b="2", a="1").value == 1

    def test_type_collision_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("x")

    def test_snapshot_is_json_serializable(self):
        registry = MetricsRegistry()
        registry.counter("a").inc()
        registry.gauge("b").set(1.5)
        registry.histogram("c", buckets=[1.0]).observe(0.5)
        registry.timer("d").record(0.1, 0.05)
        registry.series("e").append(2.0)
        registry.gauge("inf", kind="weird").set(float("inf"))
        doc = json.loads(registry.to_json())
        assert doc["a"] == {"type": "counter", "value": 1}
        assert doc["e"]["values"] == [2.0]
        assert doc["inf{kind=weird}"]["labels"] == {"kind": "weird"}
        # non-finite floats serialize as null rather than crashing
        assert doc["inf{kind=weird}"]["value"] is None

    def test_reset_drops_everything(self):
        registry = MetricsRegistry()
        registry.counter("x").inc()
        registry.reset()
        assert len(registry) == 0
        assert registry.get("x") is None

    def test_contains(self):
        registry = MetricsRegistry()
        registry.counter("hit", side="l")
        assert "hit" in registry
        assert "miss" not in registry

    def test_thread_safe_creation(self):
        registry = MetricsRegistry()
        barrier = threading.Barrier(4)

        def work():
            barrier.wait()
            for _ in range(250):
                registry.counter("shared").inc()

        threads = [threading.Thread(target=work) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert registry.get("shared").value == 1000


class TestNullRegistry:
    def test_disabled_and_shared_noops(self):
        null = NullRegistry()
        assert null.enabled is False
        assert null.counter("a") is null.counter("b")
        null.counter("a").inc()
        null.gauge("g").set(3)
        null.histogram("h").observe(1)
        null.timer("t").record(1.0)
        null.series("s").append(1.0)
        assert len(null) == 0
        assert null.snapshot() == {}

    def test_default_active_registry_is_null(self):
        assert get_registry() is NULL_REGISTRY
        assert get_registry().enabled is False


class TestUseRegistry:
    def test_activates_and_restores(self):
        registry = MetricsRegistry()
        with use_registry(registry) as active:
            assert active is registry
            assert get_registry() is registry
            get_registry().counter("inside").inc()
        assert get_registry() is NULL_REGISTRY
        assert registry.get("inside").value == 1

    def test_restores_on_exception(self):
        registry = MetricsRegistry()
        with pytest.raises(RuntimeError):
            with use_registry(registry):
                raise RuntimeError("boom")
        assert get_registry() is NULL_REGISTRY

    def test_none_means_disabled(self):
        outer = MetricsRegistry()
        with use_registry(outer):
            with use_registry(None):
                assert get_registry().enabled is False
            assert get_registry() is outer

    def test_set_registry_returns_previous(self):
        registry = MetricsRegistry()
        previous = set_registry(registry)
        assert previous is NULL_REGISTRY
        assert set_registry(None) is registry


class TestSpan:
    def test_measures_time_and_nests(self):
        registry = MetricsRegistry()
        with use_registry(registry):
            with span("outer") as outer:
                assert current_span() is outer
                with span("inner") as inner:
                    assert inner.path == "outer.inner"
                    assert inner.depth == 1
        assert current_span() is None
        assert outer.finished and inner.finished
        assert outer.wall_seconds >= 0.0
        assert inner.cpu_seconds >= 0.0
        # the parent's wall time covers the child's
        assert outer.wall_seconds >= inner.wall_seconds
        assert outer.children == [inner]
        assert [s.path for s in iter_tree(outer)] == ["outer", "outer.inner"]

    def test_records_timer_metrics(self):
        registry = MetricsRegistry()
        with use_registry(registry):
            for _ in range(3):
                with span("phase"):
                    pass
        timer = registry.get("span.phase")
        assert timer.count == 3
        assert timer.total_seconds >= 0.0

    def test_disabled_registry_records_nothing(self):
        with span("quiet"):
            pass
        assert len(NULL_REGISTRY) == 0

    def test_stack_unwinds_on_exception(self):
        with pytest.raises(ValueError):
            with span("a"):
                with span("b"):
                    raise ValueError("boom")
        assert current_span() is None

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            span("")

    def test_repr(self):
        with span("r") as s:
            assert "running" in repr(s)
        assert "r" in repr(s)


class TestLogging:
    def test_get_logger_namespacing(self):
        assert get_logger().name == LOGGER_NAME
        assert get_logger("core.cluseq").name == "repro.core.cluseq"
        assert get_logger("repro.core.pst").name == "repro.core.pst"

    def test_package_logger_has_null_handler(self):
        handlers = logging.getLogger(LOGGER_NAME).handlers
        assert any(isinstance(h, logging.NullHandler) for h in handlers)

    def test_noop_mode_allocates_no_log_records(self, monkeypatch):
        """With no handler configured, instrumented code must not even
        build a LogRecord — the level gate has to reject first."""
        made = []
        original = logging.Logger.makeRecord

        def counting(self, *args, **kwargs):
            made.append(args)
            return original(self, *args, **kwargs)

        monkeypatch.setattr(logging.Logger, "makeRecord", counting)
        logger = get_logger("core.cluseq")
        if logger.isEnabledFor(logging.INFO):  # the gate used in hot paths
            logger.info("should not happen")
        if logger.isEnabledFor(logging.DEBUG):
            logger.debug("should not happen")
        assert made == []

    def test_configure_logging_emits_human_lines(self):
        stream = io.StringIO()
        configure_logging(level="INFO", stream=stream)
        get_logger("core.test").info("hello %s", "world")
        text = stream.getvalue()
        assert "hello world" in text
        assert "repro.core.test" in text

    def test_configure_logging_json_lines(self):
        stream = io.StringIO()
        configure_logging(level="DEBUG", json_lines=True, stream=stream)
        get_logger("core.test").info(
            "iteration done", extra={"iteration": 3, "clusters": 7}
        )
        line = stream.getvalue().strip()
        record = json.loads(line)
        assert record["message"] == "iteration done"
        assert record["level"] == "INFO"
        assert record["logger"] == "repro.core.test"
        assert record["iteration"] == 3
        assert record["clusters"] == 7
        assert isinstance(record["ts"], float)

    def test_reconfigure_replaces_handler(self):
        first = io.StringIO()
        second = io.StringIO()
        configure_logging(stream=first)
        configure_logging(stream=second)
        get_logger("core.test").info("once")
        assert first.getvalue() == ""
        assert second.getvalue().count("once") == 1

    def test_reset_logging_silences_again(self):
        stream = io.StringIO()
        configure_logging(stream=stream)
        reset_logging()
        get_logger("core.test").info("silent")
        assert stream.getvalue() == ""

    def test_json_formatter_exception_rendering(self):
        formatter = JsonLinesFormatter()
        try:
            raise RuntimeError("kaboom")
        except RuntimeError:
            record = logging.LogRecord(
                "repro.t", logging.ERROR, __file__, 1, "failed", (),
                sys.exc_info(),
            )
        payload = json.loads(formatter.format(record))
        assert payload["message"] == "failed"
        assert "kaboom" in payload["exc_info"]


def test_import_repro_leaves_root_logger_alone():
    """``import repro`` must not install handlers on the root logger
    (library good-citizenship; run in a subprocess for a clean slate)."""
    import subprocess

    code = (
        "import logging, repro\n"
        "assert logging.getLogger().handlers == [], logging.getLogger().handlers\n"
        "assert any(isinstance(h, logging.NullHandler)\n"
        "           for h in logging.getLogger('repro').handlers)\n"
        "print('ok')\n"
    )
    proc = subprocess.run(
        [sys.executable, "-c", code], capture_output=True, text=True
    )
    assert proc.returncode == 0, proc.stderr
    assert proc.stdout.strip() == "ok"
