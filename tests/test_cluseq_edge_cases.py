"""Edge-case and robustness tests for the CLUSEQ engine."""


from repro.core.cluseq import cluster_sequences
from repro.sequences.alphabet import Alphabet
from repro.sequences.database import SequenceDatabase


def small_params(**overrides):
    base = dict(
        k=1,
        significance_threshold=2,
        min_unique_members=1,
        max_iterations=8,
        seed=0,
    )
    base.update(overrides)
    return base


class TestDegenerateInputs:
    def test_all_identical_sequences(self):
        db = SequenceDatabase.from_strings(["abab"] * 10)
        result = cluster_sequences(db, **small_params())
        # Identical sequences should end up in one cluster (or all
        # unclustered if the tiny data defeats calibration) — never in
        # several conflicting clusters.
        assert result.num_clusters <= 2

    def test_single_symbol_alphabet(self):
        db = SequenceDatabase.from_strings(["aaaa", "aaaaa", "aaa"] * 4)
        result = cluster_sequences(db, **small_params())
        # With one symbol every ratio is 1 (log 0); nothing crashes.
        assert result.iterations >= 1

    def test_two_sequences(self):
        db = SequenceDatabase.from_strings(["abababab", "cdcdcdcd"])
        result = cluster_sequences(db, **small_params())
        assert len(result.assignments) == 2

    def test_length_one_sequences(self):
        db = SequenceDatabase.from_strings(["a", "b", "a", "b"] * 3)
        result = cluster_sequences(db, **small_params())
        assert result.iterations >= 1

    def test_wildly_varying_lengths(self):
        db = SequenceDatabase.from_strings(
            ["ab" * 2, "ab" * 50, "ab" * 200, "cd" * 2, "cd" * 50, "cd" * 200]
            * 3
        )
        result = cluster_sequences(db, **small_params())
        assert len(result.assignments) == 18


class TestParameterExtremes:
    def test_huge_significance_threshold(self):
        """c larger than any count: all prediction falls back to the
        root (composition model); the run must still terminate."""
        db = SequenceDatabase.from_strings(["abab", "baba", "cdcd", "dcdc"] * 5)
        result = cluster_sequences(
            db, **small_params(significance_threshold=10_000)
        )
        assert result.iterations <= 8

    def test_max_depth_one(self):
        db = SequenceDatabase.from_strings(["abab", "baba", "cdcd", "dcdc"] * 5)
        result = cluster_sequences(db, **small_params(max_depth=1))
        assert result.iterations >= 1

    def test_k_equals_database_size(self):
        db = SequenceDatabase.from_strings(["abab", "baba", "cdcd", "dcdc"])
        result = cluster_sequences(db, **small_params(k=4))
        assert result.num_clusters <= 4

    def test_tiny_node_budget(self):
        db = SequenceDatabase.from_strings(["abab", "baba", "cdcd", "dcdc"] * 5)
        result = cluster_sequences(db, **small_params(max_nodes=5))
        for cluster in result.clusters:
            assert cluster.pst.node_count <= 5

    def test_zero_min_unique(self):
        db = SequenceDatabase.from_strings(["abab", "cdcd"] * 5)
        result = cluster_sequences(db, **small_params(min_unique_members=0))
        assert result.iterations >= 1


class TestExplicitAlphabet:
    def test_unused_symbols_in_alphabet(self):
        """Symbols present in the alphabet but absent from the data must
        not break the background model or similarity."""
        alphabet = Alphabet("abcdxyz")
        db = SequenceDatabase.from_strings(
            ["abab", "baba", "cdcd", "dcdc"] * 5, alphabet=alphabet
        )
        result = cluster_sequences(db, **small_params())
        assert result.iterations >= 1


class TestDuplicates:
    def test_duplicate_heavy_database(self):
        """Many exact duplicates (common in log data) are fine."""
        db = SequenceDatabase.from_strings(
            ["ababab"] * 15 + ["cdcdcd"] * 15 + ["ababab"] * 5
        )
        result = cluster_sequences(db, **small_params(min_unique_members=2))
        labels = result.labels()
        # Duplicates always land in the same cluster.
        first = [labels[i] for i in range(15)]
        assert len(set(first)) == 1
