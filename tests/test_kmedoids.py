"""Tests for repro.baselines.kmedoids."""

import numpy as np
import pytest

from repro.baselines.kmedoids import (
    kmedoids,
    total_within_cost,
    validate_distance_matrix,
)


def blob_matrix():
    """Two tight groups of 4 points each, far apart."""
    n = 8
    matrix = np.full((n, n), 10.0)
    np.fill_diagonal(matrix, 0.0)
    for group in ([0, 1, 2, 3], [4, 5, 6, 7]):
        for i in group:
            for j in group:
                if i != j:
                    matrix[i, j] = 1.0
    return matrix


class TestValidation:
    def test_valid_matrix(self):
        validate_distance_matrix(blob_matrix())

    def test_non_square(self):
        with pytest.raises(ValueError, match="square"):
            validate_distance_matrix(np.zeros((2, 3)))

    def test_negative(self):
        matrix = blob_matrix()
        matrix[0, 1] = matrix[1, 0] = -1
        with pytest.raises(ValueError, match="non-negative"):
            validate_distance_matrix(matrix)

    def test_nonzero_diagonal(self):
        matrix = blob_matrix()
        matrix[0, 0] = 1
        with pytest.raises(ValueError, match="diagonal"):
            validate_distance_matrix(matrix)

    def test_asymmetric(self):
        matrix = blob_matrix()
        matrix[0, 1] = 5
        with pytest.raises(ValueError, match="symmetric"):
            validate_distance_matrix(matrix)

    def test_bad_cluster_count(self):
        with pytest.raises(ValueError):
            kmedoids(blob_matrix(), 0)
        with pytest.raises(ValueError):
            kmedoids(blob_matrix(), 9)


class TestClustering:
    def test_recovers_blobs(self):
        labels, medoids = kmedoids(blob_matrix(), 2, seed=0)
        assert len(set(labels[:4])) == 1
        assert len(set(labels[4:])) == 1
        assert labels[0] != labels[4]
        assert len(medoids) == 2

    def test_medoids_are_members(self):
        labels, medoids = kmedoids(blob_matrix(), 2, seed=1)
        for c, medoid in enumerate(medoids):
            assert labels[medoid] == c

    def test_single_cluster(self):
        labels, medoids = kmedoids(blob_matrix(), 1, seed=0)
        assert set(labels) == {0}
        assert len(medoids) == 1

    def test_k_equals_n(self):
        matrix = blob_matrix()
        labels, medoids = kmedoids(matrix, 8, seed=0)
        assert sorted(set(labels)) == list(range(8))

    def test_deterministic_with_seed(self):
        a = kmedoids(blob_matrix(), 2, seed=7)
        b = kmedoids(blob_matrix(), 2, seed=7)
        assert a == b

    def test_cost_reasonable(self):
        matrix = blob_matrix()
        labels, medoids = kmedoids(matrix, 2, seed=0)
        # Perfect clustering: each point is distance ≤ 1 from its medoid.
        assert total_within_cost(matrix, labels, medoids) <= 6.0

    def test_identical_points(self):
        matrix = np.zeros((5, 5))
        labels, medoids = kmedoids(matrix, 2, seed=0)
        assert len(labels) == 5
        assert len(medoids) == 2
