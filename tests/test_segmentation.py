"""Tests for multi-domain sequence segmentation."""

import pytest

from repro.core.cluseq import cluster_sequences
from repro.core.segmentation import BACKGROUND, Domain, domain_summary, segment_sequence


@pytest.fixture(scope="module")
def fitted_toy():
    from repro.sequences.generators import generate_two_cluster_toy

    db = generate_two_cluster_toy(size_per_cluster=25, length=40, seed=7)
    result = cluster_sequences(
        db,
        k=2,
        significance_threshold=2,
        min_unique_members=3,
        max_iterations=12,
        seed=1,
    )
    return db, result


def chimera(db, left_label, right_label, length=30):
    """Concatenate a left_label-style and a right_label-style sequence."""
    left = next(r for r in db if r.label == left_label)
    right = next(r for r in db if r.label == right_label)
    return db.alphabet.encode(left.symbols[:length] + right.symbols[:length])


class TestStructure:
    def test_domains_cover_sequence(self, fitted_toy):
        db, result = fitted_toy
        encoded = db.encoded(0)
        domains = segment_sequence(result, encoded)
        assert domains[0].start == 0
        assert domains[-1].end == len(encoded)
        for a, b in zip(domains, domains[1:]):
            assert a.end == b.start
            assert a.cluster_id != b.cluster_id  # no adjacent duplicates

    def test_empty_rejected(self, fitted_toy):
        _, result = fitted_toy
        with pytest.raises(ValueError):
            segment_sequence(result, [])

    def test_negative_penalty_rejected(self, fitted_toy):
        db, result = fitted_toy
        with pytest.raises(ValueError):
            segment_sequence(result, db.encoded(0), switch_penalty=-1)

    def test_domain_length(self):
        domain = Domain(start=3, end=9, cluster_id=1, score=5.0)
        assert domain.length == 6


class TestAnnotationQuality:
    def test_pure_sequence_single_domain(self, fitted_toy):
        """A sequence drawn wholly from one behaviour is (mostly) one
        domain labelled with that behaviour's cluster."""
        db, result = fitted_toy
        majority = {}
        for cluster in result.clusters:
            labels = [db[i].label for i in cluster.members]
            majority[cluster.cluster_id] = max(set(labels), key=labels.count)

        encoded = db.encoded(0)  # an 'ab' sequence
        domains = segment_sequence(result, encoded, switch_penalty=10.0)
        labelled = [d for d in domains if d.cluster_id is not BACKGROUND]
        assert labelled, "expected at least one cluster domain"
        dominant = max(labelled, key=lambda d: d.length)
        assert majority[dominant.cluster_id] == db[0].label
        assert dominant.length >= len(encoded) // 2

    def test_chimera_gets_two_domains(self, fitted_toy):
        """A concatenated ab+cd sequence is split into domains of both
        clusters — the paper's multi-domain protein scenario."""
        db, result = fitted_toy
        majority = {}
        for cluster in result.clusters:
            labels = [db[i].label for i in cluster.members]
            majority[cluster.cluster_id] = max(set(labels), key=labels.count)

        encoded = chimera(db, "ab", "cd")
        domains = segment_sequence(result, encoded, switch_penalty=6.0)
        found = {
            majority[d.cluster_id]
            for d in domains
            if d.cluster_id is not BACKGROUND and d.length >= 8
        }
        assert {"ab", "cd"} <= found

        # And the ab domain comes before the cd domain.
        ab_domains = [
            d for d in domains
            if d.cluster_id is not BACKGROUND and majority[d.cluster_id] == "ab"
        ]
        cd_domains = [
            d for d in domains
            if d.cluster_id is not BACKGROUND and majority[d.cluster_id] == "cd"
        ]
        assert ab_domains[0].start < cd_domains[0].start

    def test_switch_penalty_reduces_domain_count(self, fitted_toy):
        db, result = fitted_toy
        encoded = chimera(db, "ab", "cd")
        cheap = segment_sequence(result, encoded, switch_penalty=0.5)
        expensive = segment_sequence(result, encoded, switch_penalty=25.0)
        assert len(expensive) <= len(cheap)

    def test_weak_domains_folded_to_background(self, fitted_toy):
        db, result = fitted_toy
        encoded = db.encoded(0)
        domains = segment_sequence(
            result, encoded, min_domain_score=10_000.0
        )
        assert all(d.cluster_id is BACKGROUND for d in domains)
        assert len(domains) == 1  # adjacent backgrounds merged


class TestSummary:
    def test_summary_renders(self, fitted_toy):
        db, result = fitted_toy
        encoded = db.encoded(0)
        domains = segment_sequence(result, encoded)
        text = domain_summary(domains, alphabet=db.alphabet, encoded=encoded)
        assert "score" in text
        assert str(domains[0].start) in text
