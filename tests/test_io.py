"""Tests for repro.sequences.io."""

import io

import pytest

from repro.sequences.database import SequenceDatabase
from repro.sequences.io import (
    SequenceFormatError,
    iter_fasta,
    parse_fasta_header,
    read_fasta,
    read_labelled_text,
    write_fasta,
    write_labelled_text,
)

FASTA = """\
>seq0 globin
MKVLA
AGHHE
>seq1
TTTWY
"""


class TestFastaReading:
    def test_iter_fasta(self):
        records = list(iter_fasta(io.StringIO(FASTA)))
        assert records == [("seq0 globin", "MKVLAAGHHE"), ("seq1", "TTTWY")]

    def test_read_fasta_labels(self):
        db = read_fasta(io.StringIO(FASTA))
        assert len(db) == 2
        assert db.labels == ["globin", None]
        assert db[0].as_string() == "MKVLAAGHHE"

    def test_parse_header(self):
        assert parse_fasta_header("id1 fam") == ("id1", "fam")
        assert parse_fasta_header("id1") == ("id1", None)
        assert parse_fasta_header("") == ("", None)

    def test_data_before_header_raises(self):
        with pytest.raises(SequenceFormatError, match="before first"):
            list(iter_fasta(io.StringIO("ACGT\n>x\nACGT\n")))

    def test_header_without_sequence_raises(self):
        with pytest.raises(SequenceFormatError, match="no sequence"):
            list(iter_fasta(io.StringIO(">only-header\n")))

    def test_empty_file_raises(self):
        with pytest.raises(SequenceFormatError, match="no records"):
            read_fasta(io.StringIO(""))

    def test_blank_lines_skipped(self):
        records = list(iter_fasta(io.StringIO(">a\n\nAC\n\nGT\n")))
        assert records == [("a", "ACGT")]


class TestFastaWriting:
    def test_roundtrip(self, tmp_path):
        db = SequenceDatabase.from_strings(["abab", "baba"], labels=["x", None])
        path = tmp_path / "out.fasta"
        write_fasta(db, path)
        back = read_fasta(path)
        assert [r.as_string() for r in back] == ["abab", "baba"]
        assert back.labels == ["x", None]

    def test_line_wrapping(self):
        db = SequenceDatabase.from_strings(["a" * 25])
        buffer = io.StringIO()
        write_fasta(db, buffer, line_width=10)
        lines = buffer.getvalue().strip().split("\n")
        assert lines[0] == ">seq0"
        assert [len(line) for line in lines[1:]] == [10, 10, 5]

    def test_invalid_line_width(self):
        db = SequenceDatabase.from_strings(["ab"])
        with pytest.raises(ValueError):
            write_fasta(db, io.StringIO(), line_width=0)


class TestLabelledText:
    def test_read(self):
        text = "x\tabab\n# comment\n\nbaba\n"
        db = read_labelled_text(io.StringIO(text))
        assert len(db) == 2
        assert db.labels == ["x", None]

    def test_empty_sequence_raises(self):
        with pytest.raises(SequenceFormatError, match="empty sequence"):
            read_labelled_text(io.StringIO("x\t \n"))

    def test_no_sequences_raises(self):
        with pytest.raises(SequenceFormatError):
            read_labelled_text(io.StringIO("# only a comment\n"))

    def test_roundtrip(self, tmp_path):
        db = SequenceDatabase.from_strings(["abab", "bb"], labels=["x", None])
        path = tmp_path / "db.txt"
        write_labelled_text(db, path)
        back = read_labelled_text(path)
        assert [r.as_string() for r in back] == ["abab", "bb"]
        assert back.labels == ["x", None]
