"""Differential fuzz: the vectorized backend against the reference SIM.

Every property runs over the same pool of ``N_CASES`` seeded random
(tree, background, sequences) scenarios — random alphabet sizes, tree
depths, significance thresholds, smoothing settings, and (for a third
of the cases) trees that have been decayed mid-life — plus a handful of
handcrafted edge scenarios (single-symbol sequences, sequences made
entirely of symbols the tree has never observed).

The contract under test is stronger than the usual "within 1e-9": the
vectorized backend is designed to be *bit-identical* to the reference
(see src/repro/core/backends/flatten.py), so the assertions demand
exact float equality for scores and exact integer equality for segment
bounds, and separately document the 1e-9 bound the public contract
promises.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.backends import (
    KADANE_NUMPY_MIN_ROWS,
    PstBatchScorer,
    flatten_pst,
    pad_sequences,
    stack_flats,
    walk_states,
)
from repro.core.backends.vectorized import (
    _kadane_rows_numpy,
    _kadane_rows_python,
    gather_log_ratios,
    log_background,
)
from repro.core.pst import ProbabilisticSuffixTree
from repro.core.similarity import (
    similarity,
    similarity_bruteforce,
)
from repro.core.smoothing import default_p_min

#: Seeded fuzz cases per property (the PR's acceptance floor is 200).
N_CASES = 220


def _random_scenario(seed: int):
    """One random (pst, background, sequences) scenario."""
    rng = np.random.default_rng(seed)
    alphabet_size = int(rng.integers(2, 11))
    max_depth = int(rng.integers(1, 6))
    significance = int(rng.integers(1, 5))
    smoothing_mode = int(rng.integers(0, 3))
    if smoothing_mode == 0:
        p_min = 0.0
    elif smoothing_mode == 1:
        p_min = default_p_min(alphabet_size)
    else:
        p_min = float(rng.uniform(0.0, 0.5 / alphabet_size))
    pst = ProbabilisticSuffixTree(
        alphabet_size=alphabet_size,
        max_depth=max_depth,
        significance_threshold=significance,
        p_min=p_min,
    )
    # Train on a biased source so the tree has real structure: some
    # symbols common, some rare, some possibly never observed.
    weights = rng.random(alphabet_size) ** 2 + 1e-3
    weights /= weights.sum()
    for _ in range(int(rng.integers(3, 11))):
        length = int(rng.integers(5, 31))
        pst.add_sequence([int(s) for s in rng.choice(alphabet_size, size=length, p=weights)])
    if seed % 3 == 0:
        # A third of the cases run against a decayed tree, as the
        # streaming engine produces.
        pst.decay_counts(float(rng.uniform(0.4, 0.95)))
    background = rng.random(alphabet_size) + 1e-3
    background /= background.sum()
    sequences = []
    for _ in range(int(rng.integers(1, 5))):
        length = int(rng.integers(1, 41))
        sequences.append(
            [int(s) for s in rng.integers(0, alphabet_size, size=length)]
        )
    return pst, background, sequences


@pytest.fixture(scope="module")
def scenarios():
    return [_random_scenario(1000 + i) for i in range(N_CASES)]


def _assert_results_equal(got, want, context: str) -> None:
    # Bit-identical by design; the public contract only promises 1e-9.
    assert got.log_similarity == want.log_similarity, context
    assert abs(got.log_similarity - want.log_similarity) <= 1e-9, context
    assert got.best_start == want.best_start, context
    assert got.best_end == want.best_end, context
    assert got.whole_sequence_log == want.whole_sequence_log, context
    assert got.similarity == want.similarity, context


class TestSimilarityAgreesWithReference:
    def test_scores_bounds_and_whole_log_match(self, scenarios):
        for case, (pst, background, sequences) in enumerate(scenarios):
            scorer = PstBatchScorer(background)
            batch = scorer.score_many_vs_one(pst, sequences)
            for seq, got in zip(sequences, batch):
                want = similarity(pst, seq, background)
                _assert_results_equal(got, want, f"case {case} seq {seq!r}")

    def test_one_vs_many_matches_per_tree_reference(self, scenarios):
        # Pair each scenario's sequence with several trees (its own plus
        # neighbours of the same alphabet size) to exercise stacking.
        by_alphabet: dict[int, list] = {}
        for pst, background, sequences in scenarios:
            by_alphabet.setdefault(pst.alphabet_size, []).append(
                (pst, background, sequences)
            )
        checked = 0
        for group in by_alphabet.values():
            psts = [pst for pst, _, _ in group]
            background = group[0][1]
            scorer = PstBatchScorer(background)
            seq = group[0][2][0]
            results = scorer.score_one_vs_many(psts, seq)
            for pst, got in zip(psts, results):
                want = similarity(pst, seq, background)
                _assert_results_equal(got, want, f"alphabet {pst.alphabet_size}")
                checked += 1
        assert checked >= N_CASES


class TestBruteforceAgreement:
    def test_vectorized_matches_bruteforce_segments(self, scenarios):
        for case, (pst, background, sequences) in enumerate(scenarios):
            scorer = PstBatchScorer(background)
            seq = min(sequences, key=len)  # O(l²) oracle: keep it short
            (got,) = scorer.score_many_vs_one(pst, [seq])
            brute_log, (brute_start, brute_end) = similarity_bruteforce(
                pst, seq, background
            )
            assert abs(got.log_similarity - brute_log) <= 1e-9, f"case {case}"
            assert (got.best_start, got.best_end) == (brute_start, brute_end), (
                f"case {case}"
            )


class TestSuffixSelection:
    def test_walk_states_selects_longest_significant_suffix(self, scenarios):
        """The batched walk lands on the reference's prediction node.

        Checked structurally: at every position the flat row's depth
        must equal the length of ``longest_significant_suffix`` of the
        position's context, and the row's label (recovered through the
        suffix links) must be that suffix.
        """
        for case, (pst, background, sequences) in enumerate(scenarios):
            flat = flatten_pst(pst)
            stacked = stack_flats([flat])
            padded, lengths = pad_sequences(sequences)
            states = walk_states(
                stacked, padded, np.zeros(len(sequences), dtype=np.intp)
            )
            for row, seq in enumerate(sequences):
                for i in range(len(seq)):
                    suffix = pst.longest_significant_suffix(seq[:i])
                    state = int(states[row, i])
                    assert int(flat.depths[state]) == len(suffix), (
                        f"case {case} row {row} pos {i}"
                    )
                    # Recover the row's label by walking suffix links up
                    # to the root; each step strips the oldest symbol,
                    # so the label accumulates newest-first.
                    label = []
                    node = state
                    while node != 0:
                        parent = int(flat.suffix_links[node])
                        start = int(flat.child_offsets[parent])
                        stop = int(flat.child_offsets[parent + 1])
                        edge = [
                            int(flat.child_symbols[k])
                            for k in range(start, stop)
                            if int(flat.child_rows[k]) == node
                        ]
                        assert len(edge) == 1
                        label.append(edge[0])
                        node = parent
                    assert tuple(label) == tuple(suffix), (
                        f"case {case} row {row} pos {i}"
                    )


class TestEdgeCases:
    def test_empty_sequence_raises_like_reference(self):
        pst = ProbabilisticSuffixTree(alphabet_size=4, max_depth=3)
        pst.add_sequence([0, 1, 2, 3])
        background = np.full(4, 0.25)
        scorer = PstBatchScorer(background)
        with pytest.raises(ValueError, match="empty sequence"):
            similarity(pst, [], background)
        with pytest.raises(ValueError, match="empty sequence"):
            scorer.score_many_vs_one(pst, [[0, 1], []])
        with pytest.raises(ValueError, match="empty sequence"):
            scorer.score_one_vs_many([pst], [])

    def test_single_symbol_sequences(self):
        for seed in range(N_CASES):
            pst, background, _ = _random_scenario(5000 + seed)
            scorer = PstBatchScorer(background)
            seq = [seed % pst.alphabet_size]
            (got,) = scorer.score_many_vs_one(pst, [seq])
            want = similarity(pst, seq, background)
            _assert_results_equal(got, want, f"seed {seed}")
            assert (got.best_start, got.best_end) == (0, 1)

    def test_all_unseen_symbols(self):
        """Sequences over symbols the tree never observed.

        The reference gives such positions the unsmoothed uniform
        fallback (or the smoothed estimate of an observed-but-skewed
        node); the vectorized path must reproduce that exactly,
        including the ``_LOG_ZERO`` convention when smoothing is off
        and the node has observations that exclude the symbol.
        """
        for seed in range(N_CASES):
            rng = np.random.default_rng(9000 + seed)
            alphabet_size = int(rng.integers(4, 9))
            unseen = alphabet_size - 1
            pst = ProbabilisticSuffixTree(
                alphabet_size=alphabet_size,
                max_depth=int(rng.integers(1, 5)),
                significance_threshold=int(rng.integers(1, 4)),
                p_min=0.0 if seed % 2 == 0 else default_p_min(alphabet_size),
            )
            for _ in range(4):
                length = int(rng.integers(5, 20))
                pst.add_sequence(
                    [int(s) for s in rng.integers(0, unseen, size=length)]
                )
            background = np.full(alphabet_size, 1.0 / alphabet_size)
            scorer = PstBatchScorer(background)
            seq = [unseen] * int(rng.integers(1, 12))
            (got,) = scorer.score_many_vs_one(pst, [seq])
            want = similarity(pst, seq, background)
            _assert_results_equal(got, want, f"seed {seed}")

    def test_mutation_invalidates_flat_export(self):
        pst = ProbabilisticSuffixTree(alphabet_size=3, max_depth=3)
        pst.add_sequence([0, 1, 2, 0, 1, 2])
        background = np.full(3, 1.0 / 3.0)
        scorer = PstBatchScorer(background)
        seq = [0, 1, 2, 0]
        (before,) = scorer.score_many_vs_one(pst, [seq])
        _assert_results_equal(
            before, similarity(pst, seq, background), "pre-mutation"
        )
        pst.add_sequence([2, 1, 0, 2, 1, 0])
        (after_add,) = scorer.score_many_vs_one(pst, [seq])
        _assert_results_equal(
            after_add, similarity(pst, seq, background), "post add_sequence"
        )
        pst.decay_counts(0.5)
        (after_decay,) = scorer.score_many_vs_one(pst, [seq])
        _assert_results_equal(
            after_decay, similarity(pst, seq, background), "post decay_counts"
        )


class TestKadaneImplementationsAgree:
    def test_python_and_numpy_scans_are_bit_identical(self):
        """Both X/Y/Z scans on the same ratio matrix, every row equal.

        The dispatcher picks by row count (KADANE_NUMPY_MIN_ROWS), so
        the two implementations must be interchangeable down to tie
        handling; generated rows include exact ties (repeated values
        and zeros) to stress the >= / > rules.
        """
        rng = np.random.default_rng(77)
        for _ in range(N_CASES):
            rows = int(rng.integers(1, 2 * KADANE_NUMPY_MIN_ROWS))
            width = int(rng.integers(1, 30))
            pool = np.array([-2.0, -0.5, 0.0, 0.5, 2.0])
            ratios = rng.choice(pool, size=(rows, width))
            lengths = rng.integers(1, width + 1, size=rows).astype(np.int32)
            a = _kadane_rows_python(ratios, lengths)
            b = _kadane_rows_numpy(ratios, lengths)
            assert np.array_equal(a.log_z, b.log_z)
            assert np.array_equal(a.best_start, b.best_start)
            assert np.array_equal(a.best_end, b.best_end)
            assert np.array_equal(a.whole, b.whole)


class TestMatrixKernelAgreement:
    """The full-matrix pipeline against the per-pair reference.

    ``score_matrix_stacked`` walks a column-major ``(width, trees,
    sequences)`` cube and runs one batched Kadane scan over all
    tree×sequence columns at once; these properties pin that pipeline
    — including the pair-step walk closure and the post-hoc segment
    reconstruction — to the reference scorer and to the row-list
    kernels it replaced.
    """

    @staticmethod
    def _grouped(scenarios):
        by_alphabet: dict[int, list] = {}
        for pst, background, sequences in scenarios:
            by_alphabet.setdefault(pst.alphabet_size, []).append(
                (pst, background, sequences)
            )
        return by_alphabet

    def test_score_matrix_full_matches_reference(self, scenarios):
        """Every matrix cell equals ``similarity`` — ragged batch."""
        checked = 0
        for group in self._grouped(scenarios).values():
            psts = [pst for pst, _, _ in group[:6]]
            background = group[0][1]
            # Ragged on purpose: pool sequences from several scenarios
            # so lengths differ within one padded block.
            sequences = [seq for _, _, seqs in group[:3] for seq in seqs]
            scorer = PstBatchScorer(background)
            matrix = scorer.score_matrix_full(psts, sequences)
            assert matrix.log_z.shape == (len(psts), len(sequences))
            for t, pst in enumerate(psts):
                for c, seq in enumerate(sequences):
                    got = matrix.result(t, c)
                    want = similarity(pst, seq, background)
                    _assert_results_equal(
                        got, want, f"alphabet {pst.alphabet_size} cell {t},{c}"
                    )
                    checked += 1
        assert checked >= N_CASES

    def test_prescore_pool_none_equals_full(self, scenarios):
        pst, background, sequences = scenarios[0]
        scorer = PstBatchScorer(background)
        full = scorer.score_matrix_full([pst], sequences)
        pre = scorer.prescore_matrix([pst], sequences, pool=None)
        assert np.array_equal(full.log_z, pre.log_z)
        assert np.array_equal(full.best_start, pre.best_start)
        assert np.array_equal(full.best_end, pre.best_end)
        assert np.array_equal(full.whole, pre.whole)

    def test_prescore_pool_equals_in_process(self, scenarios):
        """Worker count is invisible: pooled matrix bit-equals serial."""
        from repro.core.backends import ScoringPool

        groups = list(self._grouped(scenarios).values())[:3]
        with ScoringPool(2) as pool:
            for group in groups:
                psts = [pst for pst, _, _ in group[:4]]
                background = group[0][1]
                sequences = group[0][2]
                scorer = PstBatchScorer(background)
                serial = scorer.prescore_matrix(psts, sequences, pool=None)
                pooled = scorer.prescore_matrix(psts, sequences, pool=pool)
                assert np.array_equal(serial.log_z, pooled.log_z)
                assert np.array_equal(serial.best_start, pooled.best_start)
                assert np.array_equal(serial.best_end, pooled.best_end)
                assert np.array_equal(serial.whole, pooled.whole)

    def test_walk_states_matrix_matches_row_walk(self, scenarios):
        """The (width, trees, sequences) cube agrees with the row walk."""
        from repro.core.backends.vectorized import (
            prepare_stack,
            walk_states_matrix,
        )

        for group in list(self._grouped(scenarios).values())[:5]:
            psts = [pst for pst, _, _ in group[:4]]
            background = group[0][1]
            sequences = group[0][2]
            flats = [pst.flattened() for pst in psts]
            stacked = stack_flats(flats)
            prep = prepare_stack(stacked, log_background(background))
            padded, lengths = pad_sequences(sequences)
            cube = walk_states_matrix(prep, padded)
            assert cube.shape == (padded.shape[1], len(psts), len(sequences))
            for t in range(len(psts)):
                rows = walk_states(
                    stacked, padded, np.full(len(sequences), t, dtype=np.intp)
                )
                # cube is position-leading; compare against the
                # (batch, width) row layout transposed. Real positions
                # only: the row walk pins padding to the root while the
                # cube lets it drift (its ratios are masked downstream).
                transposed = cube[:, t, :].T
                for r, length in enumerate(lengths):
                    assert np.array_equal(
                        transposed[r, :length], rows[r, :length]
                    ), f"tree {t} row {r}"

    def test_pair_table_fallback_is_identical(self, scenarios):
        """walk_table2=None (over-budget closure) changes nothing."""
        import dataclasses

        from repro.core.backends.vectorized import (
            prepare_stack,
            walk_states_matrix,
        )

        for pst, background, sequences in scenarios[:40]:
            stacked = stack_flats([pst.flattened()])
            prep = prepare_stack(stacked, log_background(background))
            if prep.walk_table2 is None:
                continue
            single = dataclasses.replace(prep, walk_table2=None)
            padded, lengths = pad_sequences(sequences)
            paired_cube = walk_states_matrix(prep, padded)
            single_cube = walk_states_matrix(single, padded)
            # Real positions only: beyond a sequence's length the two
            # arms may drift apart (padding ratios are masked out).
            for r, length in enumerate(lengths):
                assert np.array_equal(
                    paired_cube[:length, :, r], single_cube[:length, :, r]
                ), f"row {r}"

    def test_kadane_columns_matches_row_scans(self):
        """Column layout ≡ row layout, numpy and python dispatch arms."""
        from repro.core.backends.vectorized import kadane_columns

        rng = np.random.default_rng(99)
        for _ in range(N_CASES):
            rows = int(rng.integers(1, 2 * KADANE_NUMPY_MIN_ROWS))
            width = int(rng.integers(1, 30))
            pool = np.array([-2.0, -0.5, 0.0, 0.5, 2.0])
            ratios = rng.choice(pool, size=(rows, width))
            lengths = rng.integers(1, width + 1, size=rows).astype(np.int32)
            want = _kadane_rows_python(ratios, lengths)
            got = kadane_columns(np.ascontiguousarray(ratios.T), lengths)
            assert np.array_equal(want.log_z, got.log_z)
            assert np.array_equal(want.best_start, got.best_start)
            assert np.array_equal(want.best_end, got.best_end)
            assert np.array_equal(want.whole, got.whole)

    def test_width_one_columns(self):
        """width=1 takes the no-restart branch: segment is [0, 1)."""
        from repro.core.backends.vectorized import kadane_columns

        columns = np.array([[-1.5, 0.0, 2.25]])
        lengths = np.ones(3, dtype=np.int32)
        batch = kadane_columns(columns, lengths)
        assert np.array_equal(batch.log_z, columns[0])
        assert np.array_equal(batch.best_start, np.zeros(3, dtype=np.int64))
        assert np.array_equal(batch.best_end, np.ones(3, dtype=np.int64))
        assert np.array_equal(batch.whole, columns[0])
