"""Tests for the repo's AST invariant checker (``tools.checkers``).

Every rule gets a firing fixture (the acceptance criterion: prove the
rule can fail), a passing fixture, and a suppression fixture. Fixture
files are written under ``tmp_path`` with a ``src/repro/...`` layout so
``module_name_for`` resolves them into the package the rules scope to.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT))

from tools.checkers import (  # noqa: E402
    Checker,
    all_rules,
    get_rule,
    iter_python_files,
)
from tools.checkers.engine import (  # noqa: E402
    is_test_code,
    module_name_for,
    parse_suppressions,
)


def check_source(tmp_path: Path, relpath: str, source: str, rule_id: str):
    """Write *source* at ``tmp_path/relpath`` and run one rule on it."""
    path = tmp_path / relpath
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(source, encoding="utf-8")
    return Checker(rules=[get_rule(rule_id)]).check_file(path)


def rule_ids(violations):
    return [v.rule_id for v in violations]


# -- engine plumbing ----------------------------------------------------------


class TestEngine:
    def test_module_name_from_src_layout(self, tmp_path):
        path = tmp_path / "src" / "repro" / "core" / "pst.py"
        assert module_name_for(path) == "repro.core.pst"

    def test_module_name_init_maps_to_package(self, tmp_path):
        path = tmp_path / "src" / "repro" / "core" / "__init__.py"
        assert module_name_for(path) == "repro.core"

    def test_test_code_detection(self):
        assert is_test_code(Path("tests/test_pst.py"))
        assert is_test_code(Path("benchmarks/bench_scaling.py"))
        assert is_test_code(Path("src/repro/conftest.py"))
        assert not is_test_code(Path("src/repro/core/pst.py"))

    def test_parse_suppressions(self):
        source = (
            "x = 1  # cluseq: ignore\n"
            "y = 2  # cluseq: ignore[CLQ002]\n"
            "z = 3  # cluseq: ignore[CLQ001, CLQ003]\n"
            "plain = 4\n"
        )
        sup = parse_suppressions(source)
        assert sup[1] is None  # bare ignore = all rules
        assert sup[2] == {"CLQ002"}
        assert sup[3] == {"CLQ001", "CLQ003"}
        assert 4 not in sup

    def test_iter_python_files_skips_pycache(self, tmp_path):
        (tmp_path / "pkg" / "__pycache__").mkdir(parents=True)
        (tmp_path / "pkg" / "a.py").write_text("x = 1\n")
        (tmp_path / "pkg" / "__pycache__" / "a.py").write_text("x = 1\n")
        found = list(iter_python_files([tmp_path]))
        assert [p.name for p in found] == ["a.py"]

    def test_all_rules_registered(self):
        assert [r.rule_id for r in all_rules()] == [
            "CLQ001",
            "CLQ002",
            "CLQ003",
            "CLQ004",
            "CLQ005",
            "CLQ006",
            "CLQ007",
            "CLQ008",
            "CLQ009",
            "CLQ010",
        ]

    def test_syntax_error_raises_checker_error(self, tmp_path):
        from tools.checkers.engine import CheckerError

        bad = tmp_path / "src" / "repro" / "core" / "broken.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("def broken(:\n")
        with pytest.raises(CheckerError):
            Checker().check_file(bad)


# -- CLQ001: import layering --------------------------------------------------


class TestImportLayering:
    def test_core_importing_experiments_fires(self, tmp_path):
        violations = check_source(
            tmp_path,
            "src/repro/core/bad.py",
            "from repro.experiments import common\n",
            "CLQ001",
        )
        assert rule_ids(violations) == ["CLQ001"]

    def test_core_relative_import_of_cli_fires(self, tmp_path):
        violations = check_source(
            tmp_path,
            "src/repro/core/bad.py",
            "from ..cli import main\n",
            "CLQ001",
        )
        assert rule_ids(violations) == ["CLQ001"]

    def test_core_importing_sequences_is_fine(self, tmp_path):
        violations = check_source(
            tmp_path,
            "src/repro/core/good.py",
            "from ..sequences.database import SequenceDatabase\nimport numpy\n",
            "CLQ001",
        )
        assert violations == []

    def test_obs_importing_numpy_fires(self, tmp_path):
        violations = check_source(
            tmp_path,
            "src/repro/obs/bad.py",
            "import numpy as np\n",
            "CLQ001",
        )
        assert rule_ids(violations) == ["CLQ001"]

    def test_obs_stdlib_and_intra_obs_is_fine(self, tmp_path):
        violations = check_source(
            tmp_path,
            "src/repro/obs/good.py",
            "import json\nimport logging\nfrom .metrics import get_registry\n",
            "CLQ001",
        )
        assert violations == []

    def test_core_importing_stream_fires(self, tmp_path):
        violations = check_source(
            tmp_path,
            "src/repro/core/bad.py",
            "from repro.stream import StreamingCluseq\n",
            "CLQ001",
        )
        assert rule_ids(violations) == ["CLQ001"]

    def test_core_relative_import_of_stream_fires(self, tmp_path):
        violations = check_source(
            tmp_path,
            "src/repro/core/bad.py",
            "from ..stream.engine import StreamingCluseq\n",
            "CLQ001",
        )
        assert rule_ids(violations) == ["CLQ001"]

    def test_stream_importing_cli_fires(self, tmp_path):
        violations = check_source(
            tmp_path,
            "src/repro/stream/bad.py",
            "from repro.cli import main\n",
            "CLQ001",
        )
        assert rule_ids(violations) == ["CLQ001"]

    def test_stream_relative_import_of_evaluation_fires(self, tmp_path):
        violations = check_source(
            tmp_path,
            "src/repro/stream/bad.py",
            "from ..evaluation.metrics import evaluate_clustering\n",
            "CLQ001",
        )
        assert rule_ids(violations) == ["CLQ001"]

    def test_stream_importing_experiments_fires(self, tmp_path):
        violations = check_source(
            tmp_path,
            "src/repro/stream/bad.py",
            "import repro.experiments.common\n",
            "CLQ001",
        )
        assert rule_ids(violations) == ["CLQ001"]

    def test_stream_allowed_layers_are_fine(self, tmp_path):
        violations = check_source(
            tmp_path,
            "src/repro/stream/good.py",
            "from ..core.cluseq import ClusteringResult\n"
            "from ..sequences.alphabet import Alphabet\n"
            "from ..obs import get_registry\n"
            "from ..typing import PSTFactory\n"
            "from .pool import OutlierPool\n"
            "import numpy as np\nimport json\n",
            "CLQ001",
        )
        assert violations == []

    def test_backends_importing_sequences_fires(self, tmp_path):
        violations = check_source(
            tmp_path,
            "src/repro/core/backends/bad.py",
            "from ...sequences.database import SequenceDatabase\n",
            "CLQ001",
        )
        assert rule_ids(violations) == ["CLQ001"]

    def test_backends_importing_stream_fires(self, tmp_path):
        # Fires twice: once as core->stream, once as backends->stream.
        violations = check_source(
            tmp_path,
            "src/repro/core/backends/bad.py",
            "import repro.stream.engine\n",
            "CLQ001",
        )
        assert rule_ids(violations) == ["CLQ001", "CLQ001"]

    def test_backends_allowed_layers_are_fine(self, tmp_path):
        violations = check_source(
            tmp_path,
            "src/repro/core/backends/good.py",
            "from ..pst import ProbabilisticSuffixTree\n"
            "from ..similarity import SimilarityResult\n"
            "from ...obs import get_registry\n"
            "from ...typing import PSTFactory\n"
            "from .flatten import FlattenedPST\n"
            "import numpy as np\nimport math\n",
            "CLQ001",
        )
        assert violations == []

    def test_core_importing_serve_fires(self, tmp_path):
        violations = check_source(
            tmp_path,
            "src/repro/core/bad.py",
            "from repro.serve import ServeApp\n",
            "CLQ001",
        )
        assert rule_ids(violations) == ["CLQ001"]

    def test_backends_importing_serve_fires(self, tmp_path):
        # Fires twice: once as core->serve, once as backends->serve.
        violations = check_source(
            tmp_path,
            "src/repro/core/backends/bad.py",
            "from ...serve.registry import ModelRegistry\n",
            "CLQ001",
        )
        assert rule_ids(violations) == ["CLQ001", "CLQ001"]

    def test_stream_importing_serve_fires(self, tmp_path):
        violations = check_source(
            tmp_path,
            "src/repro/stream/bad.py",
            "import repro.serve.app\n",
            "CLQ001",
        )
        assert rule_ids(violations) == ["CLQ001"]

    def test_serve_importing_cli_fires(self, tmp_path):
        violations = check_source(
            tmp_path,
            "src/repro/serve/bad.py",
            "from repro.cli import main\n",
            "CLQ001",
        )
        assert rule_ids(violations) == ["CLQ001"]

    def test_serve_relative_import_of_evaluation_fires(self, tmp_path):
        violations = check_source(
            tmp_path,
            "src/repro/serve/bad.py",
            "from ..evaluation.metrics import evaluate_clustering\n",
            "CLQ001",
        )
        assert rule_ids(violations) == ["CLQ001"]

    def test_serve_importing_experiments_fires(self, tmp_path):
        violations = check_source(
            tmp_path,
            "src/repro/serve/bad.py",
            "import repro.experiments.common\n",
            "CLQ001",
        )
        assert rule_ids(violations) == ["CLQ001"]

    def test_serve_allowed_layers_are_fine(self, tmp_path):
        violations = check_source(
            tmp_path,
            "src/repro/serve/good.py",
            "from ..core.cluseq import ClusteringResult\n"
            "from ..core.backends.dispatch import PstBatchScorer\n"
            "from ..stream.checkpoint import read_checkpoint\n"
            "from ..sequences.alphabet import Alphabet\n"
            "from ..obs import get_registry\n"
            "from .http import HttpServer\n"
            "import asyncio\nimport json\n",
            "CLQ001",
        )
        assert violations == []

    def test_shard_importing_cli_fires(self, tmp_path):
        violations = check_source(
            tmp_path,
            "src/repro/shard/bad.py",
            "from repro.cli import main\n",
            "CLQ001",
        )
        assert rule_ids(violations) == ["CLQ001"]

    def test_shard_relative_import_of_evaluation_fires(self, tmp_path):
        violations = check_source(
            tmp_path,
            "src/repro/shard/bad.py",
            "from ..evaluation.metrics import evaluate_clustering\n",
            "CLQ001",
        )
        assert rule_ids(violations) == ["CLQ001"]

    def test_shard_importing_serve_fires(self, tmp_path):
        violations = check_source(
            tmp_path,
            "src/repro/shard/bad.py",
            "import repro.serve.app\n",
            "CLQ001",
        )
        assert rule_ids(violations) == ["CLQ001"]

    def test_core_importing_shard_fires(self, tmp_path):
        violations = check_source(
            tmp_path,
            "src/repro/core/bad.py",
            "from repro.shard import ShardedStreamingCluseq\n",
            "CLQ001",
        )
        assert rule_ids(violations) == ["CLQ001"]

    def test_stream_importing_shard_fires(self, tmp_path):
        violations = check_source(
            tmp_path,
            "src/repro/stream/bad.py",
            "from ..shard.engine import ShardEngine\n",
            "CLQ001",
        )
        assert rule_ids(violations) == ["CLQ001"]

    def test_shard_allowed_layers_are_fine(self, tmp_path):
        violations = check_source(
            tmp_path,
            "src/repro/shard/good.py",
            "from ..stream.engine import StreamingCluseq\n"
            "from ..core.backends.flatten import FlattenedPST\n"
            "from ..sequences.alphabet import Alphabet\n"
            "from ..obs import get_registry\n"
            "from ..typing import PSTFactory\n"
            "from .router import HashRouter\n"
            "import multiprocessing\nimport json\n",
            "CLQ001",
        )
        assert violations == []

    def test_suppression_comment_silences(self, tmp_path):
        violations = check_source(
            tmp_path,
            "src/repro/core/bad.py",
            "from repro.cli import main  # cluseq: ignore[CLQ001]\n",
            "CLQ001",
        )
        assert violations == []


# -- CLQ002: determinism ------------------------------------------------------


class TestDeterminism:
    def test_unseeded_default_rng_fires(self, tmp_path):
        violations = check_source(
            tmp_path,
            "src/repro/sequences/bad.py",
            "import numpy as np\nrng = np.random.default_rng()\n",
            "CLQ002",
        )
        assert rule_ids(violations) == ["CLQ002"]

    def test_global_numpy_random_fires(self, tmp_path):
        violations = check_source(
            tmp_path,
            "src/repro/sequences/bad.py",
            "import numpy as np\nx = np.random.random()\n",
            "CLQ002",
        )
        assert rule_ids(violations) == ["CLQ002"]

    def test_stdlib_random_module_fires(self, tmp_path):
        violations = check_source(
            tmp_path,
            "src/repro/sequences/bad.py",
            "import random\nx = random.random()\n",
            "CLQ002",
        )
        assert rule_ids(violations) == ["CLQ002"]

    def test_seeded_generator_is_fine(self, tmp_path):
        violations = check_source(
            tmp_path,
            "src/repro/sequences/good.py",
            "import numpy as np\nrng = np.random.default_rng(0)\nx = rng.random()\n",
            "CLQ002",
        )
        assert violations == []

    def test_test_code_is_exempt(self, tmp_path):
        violations = check_source(
            tmp_path,
            "tests/test_whatever.py",
            "import numpy as np\nrng = np.random.default_rng()\n",
            "CLQ002",
        )
        assert violations == []

    def test_suppression_comment_silences(self, tmp_path):
        violations = check_source(
            tmp_path,
            "src/repro/sequences/bad.py",
            "import numpy as np\n"
            "rng = np.random.default_rng()  # cluseq: ignore[CLQ002]\n",
            "CLQ002",
        )
        assert violations == []


# -- CLQ003: float equality in core -------------------------------------------


class TestFloatEquality:
    def test_float_literal_equality_fires(self, tmp_path):
        violations = check_source(
            tmp_path,
            "src/repro/core/bad.py",
            "def f(x: float) -> bool:\n    return x == 0.5\n",
            "CLQ003",
        )
        assert rule_ids(violations) == ["CLQ003"]
        assert "math.isclose" in violations[0].message

    def test_division_result_equality_fires(self, tmp_path):
        violations = check_source(
            tmp_path,
            "src/repro/core/bad.py",
            "def f(a: float, b: float, c: float) -> bool:\n"
            "    return a / b != c\n",
            "CLQ003",
        )
        assert rule_ids(violations) == ["CLQ003"]

    def test_int_equality_is_fine(self, tmp_path):
        violations = check_source(
            tmp_path,
            "src/repro/core/good.py",
            "def f(n: int) -> bool:\n    return n == 3\n",
            "CLQ003",
        )
        assert violations == []

    def test_outside_core_is_exempt(self, tmp_path):
        violations = check_source(
            tmp_path,
            "src/repro/evaluation/loose.py",
            "def f(x: float) -> bool:\n    return x == 0.5\n",
            "CLQ003",
        )
        assert violations == []

    def test_suppression_comment_silences(self, tmp_path):
        violations = check_source(
            tmp_path,
            "src/repro/core/bad.py",
            "def f(x: float) -> bool:\n"
            "    return x == 0.5  # cluseq: ignore[CLQ003]\n",
            "CLQ003",
        )
        assert violations == []


# -- CLQ004: mutable defaults -------------------------------------------------


class TestMutableDefaults:
    def test_list_literal_default_fires(self, tmp_path):
        violations = check_source(
            tmp_path,
            "src/repro/core/bad.py",
            "def f(items=[]):\n    return items\n",
            "CLQ004",
        )
        assert rule_ids(violations) == ["CLQ004"]

    def test_dict_call_default_fires(self, tmp_path):
        violations = check_source(
            tmp_path,
            "src/repro/core/bad.py",
            "def f(mapping=dict()):\n    return mapping\n",
            "CLQ004",
        )
        assert rule_ids(violations) == ["CLQ004"]

    def test_kwonly_mutable_default_fires(self, tmp_path):
        violations = check_source(
            tmp_path,
            "src/repro/core/bad.py",
            "def f(*, seen=set()):\n    return seen\n",
            "CLQ004",
        )
        assert rule_ids(violations) == ["CLQ004"]

    def test_none_and_tuple_defaults_are_fine(self, tmp_path):
        violations = check_source(
            tmp_path,
            "src/repro/core/good.py",
            "def f(items=None, pair=(1, 2), name=\"x\"):\n    return items\n",
            "CLQ004",
        )
        assert violations == []

    def test_suppression_comment_silences(self, tmp_path):
        violations = check_source(
            tmp_path,
            "src/repro/core/bad.py",
            "def f(items=[]):  # cluseq: ignore[CLQ004]\n    return items\n",
            "CLQ004",
        )
        assert violations == []


# -- CLQ005: paper anchors ----------------------------------------------------


class TestPaperAnchors:
    def test_public_core_function_without_anchor_fires(self, tmp_path):
        violations = check_source(
            tmp_path,
            "src/repro/core/bad.py",
            'def score(x: float) -> float:\n    """Score a thing."""\n    return x\n',
            "CLQ005",
        )
        assert rule_ids(violations) == ["CLQ005"]

    def test_missing_docstring_fires(self, tmp_path):
        violations = check_source(
            tmp_path,
            "src/repro/core/bad.py",
            "def score(x: float) -> float:\n    return x\n",
            "CLQ005",
        )
        assert rule_ids(violations) == ["CLQ005"]

    def test_section_anchor_passes(self, tmp_path):
        violations = check_source(
            tmp_path,
            "src/repro/core/good.py",
            'def score(x: float) -> float:\n'
            '    """The paper\'s similarity measure (§4.3)."""\n'
            "    return x\n",
            "CLQ005",
        )
        assert violations == []

    def test_private_functions_exempt(self, tmp_path):
        violations = check_source(
            tmp_path,
            "src/repro/core/good.py",
            "def _helper(x: float) -> float:\n    return x\n",
            "CLQ005",
        )
        assert violations == []

    def test_methods_exempt(self, tmp_path):
        violations = check_source(
            tmp_path,
            "src/repro/core/good.py",
            "class Thing:\n"
            "    def compute(self) -> int:\n"
            '        """No anchor needed on methods."""\n'
            "        return 1\n",
            "CLQ005",
        )
        assert violations == []

    def test_outside_core_is_exempt(self, tmp_path):
        violations = check_source(
            tmp_path,
            "src/repro/evaluation/free.py",
            "def score(x: float) -> float:\n    return x\n",
            "CLQ005",
        )
        assert violations == []

    def test_suppression_comment_silences(self, tmp_path):
        violations = check_source(
            tmp_path,
            "src/repro/core/bad.py",
            "def score(x: float) -> float:  # cluseq: ignore[CLQ005]\n    return x\n",
            "CLQ005",
        )
        assert violations == []


# -- CLQ006: observability naming ---------------------------------------------


class TestObservabilityNaming:
    def test_bare_metric_name_fires(self, tmp_path):
        violations = check_source(
            tmp_path,
            "src/repro/stream/bad.py",
            "def f(registry):\n"
            '    registry.counter("hits").inc()\n',
            "CLQ006",
        )
        assert rule_ids(violations) == ["CLQ006"]

    def test_uppercase_metric_name_fires(self, tmp_path):
        violations = check_source(
            tmp_path,
            "src/repro/stream/bad.py",
            "def f(registry):\n"
            '    registry.gauge("Stream.PoolSize").set(1)\n',
            "CLQ006",
        )
        assert rule_ids(violations) == ["CLQ006"]

    def test_dotted_metric_name_is_fine(self, tmp_path):
        violations = check_source(
            tmp_path,
            "src/repro/stream/good.py",
            "def f(registry):\n"
            '    registry.counter("stream.batches").inc()\n'
            '    registry.series("stream.batch.size").append(3)\n',
            "CLQ006",
        )
        assert violations == []

    def test_fstring_prefix_checked(self, tmp_path):
        violations = check_source(
            tmp_path,
            "src/repro/obs/bad.py",
            "def f(registry, name):\n"
            '    registry.timer(f"Profile kernel {name}").record(0.1)\n',
            "CLQ006",
        )
        assert rule_ids(violations) == ["CLQ006"]

    def test_fstring_namespace_prefix_is_fine(self, tmp_path):
        violations = check_source(
            tmp_path,
            "src/repro/obs/good.py",
            "def f(registry, name):\n"
            '    registry.timer(f"profile.kernel.{name}").record(0.1)\n',
            "CLQ006",
        )
        assert violations == []

    def test_dynamic_metric_name_is_trusted(self, tmp_path):
        violations = check_source(
            tmp_path,
            "src/repro/stream/good.py",
            "def f(registry, name):\n"
            "    registry.counter(name).inc()\n",
            "CLQ006",
        )
        assert violations == []

    def test_bare_span_call_fires(self, tmp_path):
        violations = check_source(
            tmp_path,
            "src/repro/core/bad.py",
            "from ..obs import span\n"
            "def f():\n"
            '    span("seed")\n',
            "CLQ006",
        )
        assert rule_ids(violations) == ["CLQ006"]

    def test_span_as_context_manager_is_fine(self, tmp_path):
        violations = check_source(
            tmp_path,
            "src/repro/core/good.py",
            "from ..obs import span\n"
            "def f():\n"
            '    with span("seed"):\n'
            "        pass\n"
            '    with span("stream.batch") as batch_span:\n'
            "        return batch_span\n",
            "CLQ006",
        )
        assert violations == []

    def test_bad_span_name_fires(self, tmp_path):
        violations = check_source(
            tmp_path,
            "src/repro/core/bad.py",
            "from ..obs import span\n"
            "def f():\n"
            '    with span("Seed Phase"):\n'
            "        pass\n",
            "CLQ006",
        )
        assert rule_ids(violations) == ["CLQ006"]

    def test_test_code_is_exempt(self, tmp_path):
        violations = check_source(
            tmp_path,
            "tests/test_whatever.py",
            'def test_x(registry):\n    registry.counter("hits").inc()\n',
            "CLQ006",
        )
        assert violations == []

    def test_suppression_comment_silences(self, tmp_path):
        violations = check_source(
            tmp_path,
            "src/repro/stream/bad.py",
            "def f(registry):\n"
            '    registry.counter("hits").inc()  # cluseq: ignore[CLQ006]\n',
            "CLQ006",
        )
        assert violations == []


# -- CLI / meta ---------------------------------------------------------------


class TestCliAndMeta:
    def test_repo_passes_all_rules(self):
        """The shipped package must be invariant-clean (the CI gate)."""
        checker = Checker()
        violations, files_checked = checker.check_targets(
            [REPO_ROOT / "src" / "repro"]
        )
        assert files_checked > 30
        assert violations == [], "\n".join(v.render() for v in violations)

    def test_cli_exit_codes(self, tmp_path):
        bad = tmp_path / "src" / "repro" / "core" / "bad.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("def f(items=[]):\n    return items\n")
        env_cwd = str(REPO_ROOT)
        dirty = subprocess.run(
            [sys.executable, "-m", "tools.checkers", str(bad)],
            capture_output=True,
            text=True,
            cwd=env_cwd,
        )
        assert dirty.returncode == 1
        assert "CLQ004" in dirty.stdout
        clean = subprocess.run(
            [sys.executable, "-m", "tools.checkers", "src/repro"],
            capture_output=True,
            text=True,
            cwd=env_cwd,
        )
        assert clean.returncode == 0, clean.stdout + clean.stderr

    def test_cli_list_rules(self):
        proc = subprocess.run(
            [sys.executable, "-m", "tools.checkers", "--list-rules"],
            capture_output=True,
            text=True,
            cwd=str(REPO_ROOT),
        )
        assert proc.returncode == 0
        for rule_id in ("CLQ001", "CLQ002", "CLQ003", "CLQ004", "CLQ005"):
            assert rule_id in proc.stdout

    def test_select_restricts_rules(self, tmp_path):
        bad = tmp_path / "src" / "repro" / "core" / "bad.py"
        bad.parent.mkdir(parents=True)
        # CLQ004 violation only; selecting CLQ001 must pass.
        bad.write_text("def f(items=[]):\n    return items\n")
        proc = subprocess.run(
            [
                sys.executable,
                "-m",
                "tools.checkers",
                "--select",
                "CLQ001",
                str(bad),
            ],
            capture_output=True,
            text=True,
            cwd=str(REPO_ROOT),
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
