"""Invariants of ``ProbabilisticSuffixTree.decay_counts``.

Decay is the streaming engine's drift mechanism: counts are scaled by
a factor in (0, 1] and nodes falling below ``min_count`` are forgotten
subtree-and-all. These tests pin the properties the engine relies on —
probability vectors stay normalized, the significant-node set only
shrinks when no new data arrives, and the cached node bookkeeping
stays consistent with the real tree.
"""

import numpy as np
import pytest

from repro.core.pst import ProbabilisticSuffixTree
from repro.sequences.markov import random_markov_source


def build_tree(seed=0, sequences=40, length=50, alphabet_size=6, **kwargs):
    rng = np.random.default_rng(seed)
    source = random_markov_source(
        alphabet_size, order=1, rng=rng, concentration=0.1
    )
    kwargs.setdefault("max_depth", 4)
    kwargs.setdefault("significance_threshold", 3)
    kwargs.setdefault("p_min", 0.0)
    pst = ProbabilisticSuffixTree(alphabet_size=alphabet_size, **kwargs)
    for _ in range(sequences):
        pst.add_sequence(source.sample(length, rng))
    return pst


def all_contexts(pst):
    return [label for label, _ in pst.iter_nodes()]


class TestValidation:
    def test_rejects_out_of_range_factor(self):
        pst = build_tree()
        with pytest.raises(ValueError, match="factor"):
            pst.decay_counts(0.0)
        with pytest.raises(ValueError, match="factor"):
            pst.decay_counts(1.5)
        with pytest.raises(ValueError, match="factor"):
            pst.decay_counts(-0.5)

    def test_rejects_bad_min_count(self):
        pst = build_tree()
        with pytest.raises(ValueError, match="min_count"):
            pst.decay_counts(0.5, min_count=0)

    def test_factor_one_is_a_noop(self):
        pst = build_tree()
        before = pst.stats().to_dict()
        assert pst.decay_counts(1.0) == 0
        assert pst.stats().to_dict() == before


class TestProbabilityNormalization:
    def test_vectors_stay_normalized_after_decay(self):
        pst = build_tree()
        pst.decay_counts(0.7)
        for context in all_contexts(pst):
            vector = pst.probability_vector(context)
            assert np.all(vector >= 0.0)
            assert vector.sum() == pytest.approx(1.0)

    def test_vectors_stay_normalized_under_repeated_decay(self):
        pst = build_tree(p_min=0.01)
        for _ in range(5):
            pst.decay_counts(0.6, min_count=2)
            for context in all_contexts(pst):
                vector = pst.probability_vector(context)
                assert vector.sum() == pytest.approx(1.0)

    def test_single_probabilities_match_vector(self):
        pst = build_tree()
        pst.decay_counts(0.8)
        for context in all_contexts(pst)[:20]:
            vector = pst.probability_vector(context)
            for symbol in range(pst.alphabet_size):
                assert pst.probability(symbol, context) == pytest.approx(
                    vector[symbol]
                )


class TestMonotoneShrink:
    def test_significant_set_shrinks_monotonically(self):
        # With no new data, decay can only move counts down, so the
        # set of significant nodes can only lose members.
        pst = build_tree(sequences=60)
        threshold = pst.significance_threshold

        def significant_labels():
            return {
                label
                for label, node in pst.iter_nodes()
                if node.count >= threshold
            }

        previous = significant_labels()
        for _ in range(8):
            pst.decay_counts(0.75)
            current = significant_labels()
            assert current <= previous
            previous = current

    def test_node_count_never_grows_under_decay(self):
        pst = build_tree(sequences=60)
        previous = pst.node_count
        for _ in range(8):
            pst.decay_counts(0.7, min_count=2)
            assert pst.node_count <= previous
            previous = pst.node_count

    def test_counts_scale_by_floor(self):
        pst = build_tree()
        snapshot = {
            label: node.count for label, node in pst.iter_nodes()
        }
        pst.decay_counts(0.5)
        for label, node in pst.iter_nodes():
            assert node.count == int(snapshot[label] * 0.5)

    def test_decay_to_nothing_leaves_bare_root(self):
        pst = build_tree()
        for _ in range(64):
            pst.decay_counts(0.5)
            if pst.node_count == 1:
                break
        assert pst.node_count == 1
        assert pst.root.children == {}
        assert pst.root.next_counts == {}


class TestBookkeepingConsistency:
    def test_recount_agrees_after_decay_pruning(self):
        pst = build_tree(sequences=60)
        for _ in range(4):
            pst.decay_counts(0.6, min_count=2)
            cached = pst.node_count
            assert pst.recount_nodes() == cached

    def test_stats_agree_with_tree_walk_after_decay(self):
        pst = build_tree(sequences=60)
        pst.decay_counts(0.5, min_count=2)
        stats = pst.stats()
        labels = all_contexts(pst)
        assert stats.node_count == len(labels) == pst.node_count
        assert stats.significant_nodes == pst.significant_node_count()
        assert stats.total_occurrence_mass == sum(
            node.count for _, node in pst.iter_nodes()
        )
        assert stats.max_depth == pst.depth()

    def test_child_counts_stay_bounded_by_parent(self):
        # The suffix-trie invariant decay must preserve: floor-scaling
        # keeps every child count <= its parent's count.
        pst = build_tree(sequences=60)
        pst.decay_counts(0.55, min_count=1)
        stack = [pst.root]
        while stack:
            node = stack.pop()
            for child in node.children.values():
                assert child.count <= node.count
                stack.append(child)

    def test_removed_count_matches_node_delta(self):
        pst = build_tree(sequences=60)
        before = pst.node_count
        removed = pst.decay_counts(0.4, min_count=3)
        assert removed == before - pst.node_count

    def test_serialization_roundtrip_after_decay(self):
        pst = build_tree()
        pst.decay_counts(0.6, min_count=2)
        clone = ProbabilisticSuffixTree.from_dict(pst.to_dict())
        assert clone.node_count == pst.node_count
        assert clone.stats().to_dict() == pst.stats().to_dict()
