"""Versioned model registry: loading, classify fidelity, hot swap.

The load path must accept both persistence snapshots and stream
checkpoints (and classify bit-identically from either); the swap
protocol must never show a torn model — every classification maps to
exactly one epoch's expected output — and retired versions must drain
their refcounts to zero.
"""

import json
import threading
from pathlib import Path

import pytest

from repro.core.persistence import load_result_with_alphabet, save_result
from repro.serve.registry import (
    ModelLoadError,
    ModelRegistry,
    ModelVersion,
    load_model_payload,
)
from repro.sequences.generators import generate_two_cluster_toy


@pytest.fixture(scope="module")
def query_sequences():
    db = generate_two_cluster_toy(size_per_cluster=6, length=30, seed=99)
    return [list(record.symbols) for record in db]


@pytest.fixture()
def alt_model_path(tmp_path):
    """A second, differently-fitted model (for observable swaps)."""
    from repro.core.cluseq import CLUSEQ, CluseqParams

    db = generate_two_cluster_toy(size_per_cluster=16, length=30, seed=21)
    result = CLUSEQ(
        CluseqParams(
            k=2, significance_threshold=3, similarity_threshold=1.2, seed=1
        )
    ).fit(db)
    path = tmp_path / "alt_model.json"
    save_result(result, str(path), alphabet=db.alphabet)
    return str(path)


def make_checkpoint(model_path, state_dir):
    """A stream checkpoint wrapping exactly the snapshot's model state."""
    from repro.stream import StreamConfig, StreamingCluseq

    result, alphabet = load_result_with_alphabet(model_path)
    engine = StreamingCluseq(
        result,
        config=StreamConfig(batch_size=8),
        alphabet=alphabet,
        state_dir=str(state_dir),
    )
    with engine:
        engine.checkpoint()
    return state_dir


class TestLoadModelPayload:
    def test_snapshot_kind(self, serve_model_path):
        result, alphabet, kind = load_model_payload(serve_model_path)
        assert kind == "snapshot"
        assert result.clusters and alphabet.size > 0

    def test_checkpoint_kind_and_dir_resolution(self, serve_model_path, tmp_path):
        state_dir = make_checkpoint(serve_model_path, tmp_path / "state")
        # Directory resolves to its checkpoint.json...
        _result, _alphabet, kind = load_model_payload(str(state_dir))
        assert kind == "checkpoint"
        # ...and the explicit file path works too.
        _result, _alphabet, kind = load_model_payload(
            str(state_dir / "checkpoint.json")
        )
        assert kind == "checkpoint"

    def test_missing_source(self, tmp_path):
        with pytest.raises(ModelLoadError, match="no model source"):
            load_model_payload(str(tmp_path / "nope.json"))

    def test_invalid_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{{{")
        with pytest.raises(ModelLoadError, match="not valid JSON"):
            load_model_payload(str(path))

    def test_foreign_document(self, tmp_path):
        path = tmp_path / "foreign.json"
        path.write_text(json.dumps({"hello": "world"}))
        with pytest.raises(ModelLoadError, match="neither"):
            load_model_payload(str(path))

    def test_snapshot_without_alphabet(self, serve_model_path, tmp_path):
        payload = json.loads(Path(serve_model_path).read_text())
        payload.pop("alphabet")
        path = tmp_path / "no_alphabet.json"
        path.write_text(json.dumps(payload))
        with pytest.raises(ModelLoadError, match="alphabet"):
            load_model_payload(str(path))


class TestClassifyFidelity:
    def test_matches_predict_bit_identically(
        self, serve_model_path, query_sequences
    ):
        result, alphabet, kind = load_model_payload(serve_model_path)
        version = ModelVersion(
            "m", 1, result, alphabet, serve_model_path, kind
        )
        reference, _ = load_result_with_alphabet(serve_model_path)
        outcomes = version.classify_batch(query_sequences)
        for symbols, outcome in zip(query_sequences, outcomes):
            encoded = alphabet.encode(symbols)
            assert outcome is not None
            assert outcome.cluster_id == reference.predict(encoded)
            scores = reference.score_sequence(encoded)
            best = max(scores.values(), key=lambda s: s.log_similarity)
            assert outcome.log_similarity == best.log_similarity

    def test_unencodable_and_empty_marked_none(self, serve_model_path):
        result, alphabet, kind = load_model_payload(serve_model_path)
        version = ModelVersion(
            "m", 1, result, alphabet, serve_model_path, kind
        )
        good = [alphabet.decode([0])[0]] * 10
        outcomes = version.classify_batch([["§", "∆"], [], list(good)])
        assert outcomes[0] is None
        assert outcomes[1] is None
        assert outcomes[2] is not None

    def test_checkpoint_model_is_bit_identical_to_snapshot(
        self, serve_model_path, tmp_path, query_sequences
    ):
        state_dir = make_checkpoint(serve_model_path, tmp_path / "state")
        registry = ModelRegistry()
        from_snapshot = registry.load("snap", serve_model_path)
        from_checkpoint = registry.load("ckpt", str(state_dir))
        snap = from_snapshot.classify_batch(query_sequences)
        ckpt = from_checkpoint.classify_batch(query_sequences)
        for a, b in zip(snap, ckpt):
            assert a is not None and b is not None
            assert a.cluster_id == b.cluster_id
            assert a.log_similarity == b.log_similarity  # bit-identical
            assert (a.best_start, a.best_end) == (b.best_start, b.best_end)


class TestSwapProtocol:
    def test_reload_bumps_epoch_and_retires_previous(
        self, serve_model_path, alt_model_path
    ):
        registry = ModelRegistry()
        first = registry.load("default", serve_model_path)
        assert first.epoch == 1 and not first.retired
        second = registry.reload("default", source=alt_model_path)
        assert second.epoch == 2
        assert first.retired and first.drained  # no refs were held
        assert registry.get("default") is second
        # reload without a source re-reads the last one.
        third = registry.reload("default")
        assert third.epoch == 3 and third.source == alt_model_path

    def test_reload_unknown_name_raises(self, serve_model_path):
        registry = ModelRegistry()
        registry.load("default", serve_model_path)
        with pytest.raises(KeyError):
            registry.reload("ghost")

    def test_refcounts_drain_to_zero(self, serve_model_path, alt_model_path):
        registry = ModelRegistry()
        registry.load("default", serve_model_path)
        held = registry.acquire("default")
        assert held.refs == 1
        registry.reload("default", source=alt_model_path)
        assert held.retired and not held.drained
        held.release()
        assert held.refs == 0 and held.drained
        assert held.wait_drained(timeout=0)

    def test_release_without_acquire_raises(self, serve_model_path):
        registry = ModelRegistry()
        version = registry.load("default", serve_model_path)
        with pytest.raises(RuntimeError, match="release"):
            version.release()

    def test_concurrent_classify_sees_exactly_one_epoch(
        self, serve_model_path, alt_model_path, query_sequences
    ):
        """Classifications racing a reload are old-or-new, never torn.

        Expected outputs per epoch are computed up front; every scored
        batch observed by a worker thread must match one epoch's
        expectation exactly — a mixture would mean a torn model.
        """
        registry = ModelRegistry()
        registry.load("default", serve_model_path)

        def expected_for(path):
            result, alphabet, kind = load_model_payload(path)
            version = ModelVersion("x", 0, result, alphabet, path, kind)
            return [
                (o.cluster_id, o.log_similarity)
                for o in version.classify_batch(query_sequences)
            ]

        by_epoch = {1: expected_for(serve_model_path)}
        sources = [alt_model_path, serve_model_path]
        for epoch in range(2, 8):
            by_epoch[epoch] = expected_for(sources[epoch % 2])

        stop = threading.Event()
        observations = []
        errors = []

        def classify_loop():
            while not stop.is_set():
                version = registry.acquire("default")
                try:
                    outcomes = version.classify_batch(query_sequences)
                    observations.append(
                        (
                            version.epoch,
                            [
                                (o.cluster_id, o.log_similarity)
                                for o in outcomes
                            ],
                        )
                    )
                except Exception as exc:  # pragma: no cover - fail loudly
                    errors.append(exc)
                    return
                finally:
                    version.release()

        threads = [threading.Thread(target=classify_loop) for _ in range(4)]
        for thread in threads:
            thread.start()
        retired = []
        for epoch in range(2, 8):
            retired.append(registry.get("default"))
            registry.reload("default", source=sources[epoch % 2])
        stop.set()
        for thread in threads:
            thread.join(timeout=30)
        assert not errors
        assert observations
        for epoch, outcomes in observations:
            assert outcomes == by_epoch[epoch], f"torn read at epoch {epoch}"
        # Every retired generation drains once the threads are done.
        for version in retired:
            assert version.wait_drained(timeout=10)
            assert version.refs == 0
