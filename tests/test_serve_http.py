"""The serving subsystem's HTTP/1.1 wire layer.

Parser limits, keep-alive semantics, and the server loop's error
containment (handler exceptions become 500s without killing the
connection; protocol errors become 4xx and close it).
"""

import asyncio
import json

import pytest

from repro.serve.http import (
    HttpProtocolError,
    HttpResponse,
    HttpServer,
    error_response,
    http_call,
    json_response,
    parse_response,
    read_request,
)


def run(coro):
    return asyncio.run(coro)


def parse_bytes(raw, **kwargs):
    async def inner():
        reader = asyncio.StreamReader()
        reader.feed_data(raw)
        reader.feed_eof()
        return await read_request(reader, **kwargs)

    return run(inner())


class TestRequestParser:
    def test_simple_get(self):
        request = parse_bytes(b"GET /healthz?probe=1 HTTP/1.1\r\nHost: x\r\n\r\n")
        assert request.method == "GET"
        assert request.path == "/healthz"
        assert request.query == {"probe": "1"}
        assert request.headers["host"] == "x"
        assert request.body == b""
        assert request.keep_alive

    def test_post_with_body(self):
        body = json.dumps({"sequences": ["ab"]}).encode()
        raw = (
            b"POST /v1/classify HTTP/1.1\r\n"
            b"Content-Length: " + str(len(body)).encode() + b"\r\n"
            b"Connection: close\r\n\r\n" + body
        )
        request = parse_bytes(raw)
        assert request.method == "POST"
        assert request.json() == {"sequences": ["ab"]}
        assert not request.keep_alive

    def test_clean_eof_returns_none(self):
        assert parse_bytes(b"") is None

    def test_truncated_request_line(self):
        with pytest.raises(HttpProtocolError, match="truncated"):
            parse_bytes(b"GET /x HTTP/1.1")

    def test_malformed_request_line(self):
        with pytest.raises(HttpProtocolError, match="malformed"):
            parse_bytes(b"NOT-HTTP\r\n\r\n")

    def test_bad_content_length(self):
        with pytest.raises(HttpProtocolError, match="Content-Length"):
            parse_bytes(b"POST / HTTP/1.1\r\nContent-Length: nope\r\n\r\n")

    def test_negative_content_length(self):
        with pytest.raises(HttpProtocolError, match="Content-Length"):
            parse_bytes(b"POST / HTTP/1.1\r\nContent-Length: -4\r\n\r\n")

    def test_oversized_body_is_413(self):
        raw = b"POST / HTTP/1.1\r\nContent-Length: 100\r\n\r\n" + b"x" * 100
        with pytest.raises(HttpProtocolError) as excinfo:
            parse_bytes(raw, max_body=10)
        assert excinfo.value.status == 413

    def test_chunked_rejected(self):
        raw = b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"
        with pytest.raises(HttpProtocolError, match="chunked"):
            parse_bytes(raw)

    def test_malformed_header_line(self):
        with pytest.raises(HttpProtocolError, match="header"):
            parse_bytes(b"GET / HTTP/1.1\r\nno-colon-here\r\n\r\n")

    def test_empty_body_json_raises(self):
        request = parse_bytes(b"GET / HTTP/1.1\r\n\r\n")
        with pytest.raises(HttpProtocolError, match="empty"):
            request.json()

    def test_non_json_body_raises(self):
        raw = b"POST / HTTP/1.1\r\nContent-Length: 3\r\n\r\n{{{"
        with pytest.raises(HttpProtocolError, match="not JSON"):
            parse_bytes(raw).json()


class TestResponses:
    def test_json_response_roundtrip(self):
        response = json_response({"a": 1}, status=200, **{"X-Extra": "y"})
        parsed = parse_response(response.encode())
        assert parsed.status == 200
        assert parsed.json() == {"a": 1}
        assert parsed.headers["x-extra"] == "y"
        assert parsed.headers["content-type"] == "application/json"

    def test_error_response_shape(self):
        response = error_response(503, "full", **{"Retry-After": "1"})
        assert response.status == 503
        assert response.json() == {"error": "full"}
        assert response.headers["Retry-After"] == "1"

    def test_encode_connection_header(self):
        assert b"Connection: close" in HttpResponse().encode(keep_alive=False)
        assert b"Connection: keep-alive" in HttpResponse().encode(keep_alive=True)

    def test_parse_response_malformed(self):
        with pytest.raises(HttpProtocolError):
            parse_response(b"garbage\r\n\r\n")


class TestServer:
    def test_roundtrip_and_handler_error_containment(self):
        async def handler(request):
            if request.path == "/boom":
                raise RuntimeError("kaboom")
            return json_response({"path": request.path})

        async def scenario():
            server = HttpServer(handler)
            host, port = await server.start()
            try:
                ok = await http_call(host, port, "GET", "/fine")
                boom = await http_call(host, port, "GET", "/boom")
                after = await http_call(host, port, "GET", "/still-up")
            finally:
                await server.close()
            return ok, boom, after

        ok, boom, after = run(scenario())
        assert ok.status == 200 and ok.json() == {"path": "/fine"}
        assert boom.status == 500 and "kaboom" in boom.json()["error"]
        assert after.status == 200

    def test_keep_alive_serves_multiple_requests(self):
        async def handler(request):
            return json_response({"n": request.query.get("n")})

        async def scenario():
            server = HttpServer(handler)
            host, port = await server.start()
            try:
                reader, writer = await asyncio.open_connection(host, port)
                replies = []
                for n in ("1", "2"):
                    writer.write(
                        f"GET /?n={n} HTTP/1.1\r\nHost: x\r\n\r\n".encode()
                    )
                    await writer.drain()
                    head = await reader.readuntil(b"\r\n\r\n")
                    length = int(
                        [
                            line.split(b":")[1]
                            for line in head.split(b"\r\n")
                            if line.lower().startswith(b"content-length")
                        ][0]
                    )
                    body = await reader.readexactly(length)
                    replies.append(json.loads(body))
                writer.close()
                await writer.wait_closed()
            finally:
                await server.close()
            return replies

        assert run(scenario()) == [{"n": "1"}, {"n": "2"}]

    def test_protocol_error_gets_4xx_and_close(self):
        async def handler(request):  # pragma: no cover - never reached
            return json_response({})

        async def scenario():
            server = HttpServer(handler)
            host, port = await server.start()
            try:
                reader, writer = await asyncio.open_connection(host, port)
                writer.write(b"TOTALLY WRONG\r\n\r\n")
                await writer.drain()
                raw = await reader.read()
                writer.close()
                await writer.wait_closed()
            finally:
                await server.close()
            return parse_response(raw)

        response = run(scenario())
        assert response.status == 400
        assert "malformed" in response.json()["error"]

    def test_double_start_rejected(self):
        async def handler(request):  # pragma: no cover
            return json_response({})

        async def scenario():
            server = HttpServer(handler)
            await server.start()
            try:
                with pytest.raises(RuntimeError, match="already started"):
                    await server.start()
            finally:
                await server.close()

        run(scenario())
