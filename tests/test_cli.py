"""Tests for the command-line interface."""

from pathlib import Path

import pytest

from repro.cli import EXPERIMENTS, build_parser, main
from repro.sequences.database import SequenceDatabase
from repro.sequences.generators import generate_two_cluster_toy
from repro.sequences.io import write_fasta, write_labelled_text


@pytest.fixture
def toy_text_file(tmp_path):
    db = generate_two_cluster_toy(size_per_cluster=15, length=30, seed=7)
    path = tmp_path / "toy.txt"
    write_labelled_text(db, path)
    return str(path)


@pytest.fixture
def toy_fasta_file(tmp_path):
    db = SequenceDatabase.from_strings(
        ["ACGTACGTAC", "CGTACGTACG", "TTTTGGGGTT", "GGTTTTGGTT"],
        labels=["x", "x", "y", "y"],
    )
    path = tmp_path / "toy.fasta"
    write_fasta(db, path)
    return str(path)


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_cluster_defaults(self):
        args = build_parser().parse_args(["cluster", "x.txt"])
        assert args.k == 1
        assert args.significance == 5
        assert args.format == "auto"

    def test_experiment_choices(self):
        args = build_parser().parse_args(["experiment", "table2"])
        assert args.name == "table2"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "bogus"])

    def test_experiments_registry_complete(self):
        assert set(EXPERIMENTS) == {
            "table2", "table3", "table4", "table5", "table6",
            "fig3", "fig4", "fig5", "fig6", "ordering", "outliers",
            "modes", "pruning", "smoothing",
        }


class TestClusterCommand:
    def test_cluster_text_file(self, toy_text_file, capsys):
        code = main(
            [
                "cluster",
                toy_text_file,
                "-k", "2",
                "-c", "2",
                "--min-unique", "3",
                "--max-iterations", "10",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "CLUSEQ" in out
        assert "accuracy" in out  # labels present -> evaluation printed

    def test_cluster_fasta_autodetect(self, toy_fasta_file, capsys):
        code = main(
            [
                "cluster",
                toy_fasta_file,
                "-k", "2",
                "-c", "2",
                "--min-unique", "1",
                "--max-iterations", "5",
            ]
        )
        assert code == 0
        assert "cluster" in capsys.readouterr().out

    def test_show_members(self, toy_text_file, capsys):
        main(
            [
                "cluster", toy_text_file,
                "-k", "2", "-c", "2", "--min-unique", "3",
                "--max-iterations", "5", "--show-members",
            ]
        )
        assert "cluster " in capsys.readouterr().out


class TestModelPersistenceFlow:
    def test_save_and_classify(self, toy_text_file, tmp_path, capsys):
        model_path = tmp_path / "model.json"
        code = main(
            [
                "cluster", toy_text_file,
                "-k", "2", "-c", "2", "--min-unique", "3",
                "--max-iterations", "10",
                "--save-model", str(model_path),
            ]
        )
        assert code == 0
        assert model_path.exists()
        capsys.readouterr()

        code = main(["classify", str(model_path), toy_text_file])
        assert code == 0
        out = capsys.readouterr().out.strip().split("\n")
        assert len(out) == 30  # one line per sequence
        assert all("\t" in line for line in out)
        assert any("cluster" in line for line in out)

    def test_classify_model_without_alphabet(self, toy_text_file, tmp_path, capsys):
        import json

        from repro.core.cluseq import cluster_sequences
        from repro.core.persistence import result_to_dict
        from repro.sequences.io import read_labelled_text

        db = read_labelled_text(toy_text_file)
        result = cluster_sequences(
            db, k=2, significance_threshold=2, min_unique_members=3,
            max_iterations=5, seed=0,
        )
        model_path = tmp_path / "no_alphabet.json"
        model_path.write_text(json.dumps(result_to_dict(result)))
        code = main(["classify", str(model_path), toy_text_file])
        assert code == 1
        assert "alphabet" in capsys.readouterr().out


class TestClassifyAbsorb:
    def test_absorb_grows_member_counts(self, toy_text_file, tmp_path, capsys):
        from repro.core.persistence import load_result

        model_path = tmp_path / "model.json"
        main(
            [
                "cluster", toy_text_file,
                "-k", "2", "-c", "2", "--min-unique", "3",
                "--max-iterations", "10",
                "--save-model", str(model_path),
            ]
        )
        absorbed_path = tmp_path / "absorbed.json"
        capsys.readouterr()
        code = main(
            [
                "classify", str(model_path), toy_text_file,
                "--absorb", "--save-model", str(absorbed_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out.strip().split("\n")
        assert len(out) == 30
        before = load_result(model_path)
        after = load_result(absorbed_path)
        joined = sum(1 for line in out if "cluster" in line)
        assert joined > 0
        members_before = sum(c.size for c in before.clusters)
        members_after = sum(c.size for c in after.clusters)
        assert members_after == members_before + joined
        # Absorbed joiners must live at fresh indices, never overwrite.
        assert len(after.assignments) == len(before.assignments) + 30

    def test_without_absorb_model_is_untouched(
        self, toy_text_file, tmp_path, capsys
    ):
        from repro.core.persistence import load_result

        model_path = tmp_path / "model.json"
        main(
            [
                "cluster", toy_text_file,
                "-k", "2", "-c", "2", "--min-unique", "3",
                "--max-iterations", "10",
                "--save-model", str(model_path),
            ]
        )
        resaved = tmp_path / "resaved.json"
        capsys.readouterr()
        code = main(
            [
                "classify", str(model_path), toy_text_file,
                "--save-model", str(resaved),
            ]
        )
        assert code == 0
        before = load_result(model_path)
        after = load_result(resaved)
        assert len(after.assignments) == len(before.assignments)
        assert [c.size for c in after.clusters] == [
            c.size for c in before.clusters
        ]


class TestStreamCommand:
    @pytest.fixture
    def stream_file(self, tmp_path):
        from repro.stream import drifting_markov_stream

        stream = drifting_markov_stream(
            120, 60, alphabet_size=6, concentration=0.05, seed=7
        )
        symbols = "abcdef"
        path = tmp_path / "stream.txt"
        path.write_text(
            "\n".join(
                "".join(symbols[s] for s in seq) for seq in stream.sequences
            )
            + "\n"
        )
        return str(path)

    def test_parser_defaults(self):
        args = build_parser().parse_args(["stream", "-"])
        assert args.input == "-"
        assert args.batch_size == 32
        assert args.checkpoint_every == 16
        assert not args.resume

    def test_model_and_alphabet_mutually_exclusive(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["stream", "x.txt", "--model", "m.json", "--alphabet", "ab"]
            )

    def test_cold_start_requires_alphabet_or_model(self, stream_file, capsys):
        code = main(["stream", stream_file])
        assert code == 2
        assert "--model" in capsys.readouterr().err

    def test_resume_requires_state_dir(self, stream_file, capsys):
        code = main(["stream", stream_file, "--resume"])
        assert code == 2
        assert "--state-dir" in capsys.readouterr().err

    def test_cold_start_stream_run(self, stream_file, tmp_path, capsys):
        model_path = tmp_path / "streamed.json"
        code = main(
            [
                "stream", stream_file,
                "--alphabet", "abcdef",
                "--batch-size", "16",
                "-t", "10", "-c", "3", "--max-depth", "4",
                "--reseed-every", "2",
                "--save-model", str(model_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "sequences" in out
        assert "120" in out
        assert model_path.exists()

    def test_durable_run_then_resume(self, stream_file, tmp_path, capsys):
        state_dir = tmp_path / "state"
        args = [
            "stream", stream_file,
            "--alphabet", "abcdef",
            "--state-dir", str(state_dir),
            "--batch-size", "16",
            "-t", "10", "-c", "3", "--max-depth", "4",
        ]
        assert main(args) == 0
        assert (state_dir / "checkpoint.json").exists()
        assert (state_dir / "journal.jsonl").exists()
        capsys.readouterr()
        code = main(
            [
                "stream", stream_file,
                "--state-dir", str(state_dir),
                "--resume",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "240" in out  # both passes counted

    def test_resume_missing_state_dir_fails_cleanly(
        self, stream_file, tmp_path, capsys
    ):
        """Regression: --resume against a nonexistent dir used to dump
        a raw traceback; it must exit 2 with a one-line error."""
        code = main(
            [
                "stream", stream_file,
                "--state-dir", str(tmp_path / "never-created"),
                "--resume",
            ]
        )
        assert code == 2
        err = capsys.readouterr().err
        assert "cannot resume" in err
        assert "Traceback" not in err

    def test_resume_empty_state_dir_fails_cleanly(
        self, stream_file, tmp_path, capsys
    ):
        state_dir = tmp_path / "empty"
        state_dir.mkdir()
        code = main(
            [
                "stream", stream_file,
                "--state-dir", str(state_dir),
                "--resume",
            ]
        )
        assert code == 2
        err = capsys.readouterr().err
        assert "cannot resume" in err
        assert "nothing to resume" in err

    def test_stream_from_stdin(self, stream_file, capsys, monkeypatch):
        import io
        import sys as _sys

        text = Path(stream_file).read_text(encoding="utf-8")
        monkeypatch.setattr(_sys, "stdin", io.StringIO(text))
        code = main(
            [
                "stream", "-",
                "--alphabet", "abcdef",
                "--batch-size", "16",
                "-t", "10", "-c", "3", "--max-depth", "4",
            ]
        )
        assert code == 0
        assert "sequences" in capsys.readouterr().out


class TestShardCommand:
    @pytest.fixture
    def stream_file(self, tmp_path):
        from repro.stream import drifting_markov_stream

        stream = drifting_markov_stream(
            80, 40, alphabet_size=6, concentration=0.05, seed=7
        )
        symbols = "abcdef"
        path = tmp_path / "stream.txt"
        path.write_text(
            "\n".join(
                "".join(symbols[s] for s in seq) for seq in stream.sequences
            )
            + "\n"
        )
        return str(path)

    def shard_args(self, stream_file, extra=()):
        return [
            "shard", stream_file,
            "--alphabet", "abcdef",
            "--shards", "2",
            "--batch-size", "10",
            "--consolidate-every", "4",
            "--merge-threshold", "0.8",
            "-t", "10", "-c", "3", "--max-depth", "4",
            *extra,
        ]

    def test_parser_defaults(self):
        args = build_parser().parse_args(["shard", "-"])
        assert args.shards == 2
        assert args.router == "hash"
        assert args.runner is None
        assert args.consolidate_every == 16
        assert not args.resume

    def test_cold_start_requires_alphabet(self, stream_file, capsys):
        code = main(["shard", stream_file])
        assert code == 2
        assert "--alphabet" in capsys.readouterr().err

    def test_resume_requires_state_dir(self, stream_file, capsys):
        code = main(["shard", stream_file, "--resume"])
        assert code == 2
        assert "--state-dir" in capsys.readouterr().err

    def test_cold_start_shard_run(self, stream_file, capsys):
        code = main(self.shard_args(stream_file))
        assert code == 0
        out = capsys.readouterr().out
        assert "sequences" in out
        assert "80" in out
        assert "shard" in out

    def test_durable_run_then_resume(self, stream_file, tmp_path, capsys):
        state_dir = tmp_path / "state"
        args = self.shard_args(
            stream_file, ["--state-dir", str(state_dir)]
        )
        assert main(args) == 0
        assert (state_dir / "manifest.json").exists()
        assert (state_dir / "dispatch.jsonl").exists()
        assert (state_dir / "shard-00" / "checkpoint.json").exists()
        capsys.readouterr()
        code = main(
            [
                "shard", stream_file,
                "--state-dir", str(state_dir),
                "--resume",
            ]
        )
        assert code == 0
        assert "160" in capsys.readouterr().out  # both passes counted

    def test_resume_missing_state_dir_fails_cleanly(
        self, stream_file, tmp_path, capsys
    ):
        """The shard runner shares the stream command's validation."""
        code = main(
            [
                "shard", stream_file,
                "--state-dir", str(tmp_path / "never-created"),
                "--resume",
            ]
        )
        assert code == 2
        err = capsys.readouterr().err
        assert "cannot resume" in err
        assert "Traceback" not in err

    def test_process_runner_matches_inprocess_output(
        self, stream_file, capsys
    ):
        assert main(self.shard_args(stream_file)) == 0
        inproc = capsys.readouterr().out
        assert (
            main(self.shard_args(stream_file, ["--runner", "process"])) == 0
        )
        assert capsys.readouterr().out == inproc


class TestGenerateCommand:
    def test_generate_roundtrip(self, tmp_path, capsys):
        out_path = tmp_path / "synth.txt"
        code = main(
            [
                "generate", str(out_path),
                "--sequences", "30", "--clusters", "3",
                "--length", "20", "--alphabet", "6",
            ]
        )
        assert code == 0
        assert out_path.exists()
        assert "wrote 30 sequences" in capsys.readouterr().out
        lines = out_path.read_text().strip().split("\n")
        assert len(lines) == 30
        assert all("\t" in line for line in lines)


class TestObservabilityFlags:
    @pytest.fixture(autouse=True)
    def _restore_logging(self):
        yield
        from repro.obs import reset_logging

        reset_logging()

    def test_parser_accepts_global_flags(self):
        args = build_parser().parse_args(
            ["--log-level", "DEBUG", "--log-json",
             "--metrics-out", "m.json", "cluster", "x.txt"]
        )
        assert args.log_level == "DEBUG"
        assert args.log_json
        assert args.metrics_out == "m.json"

    def test_flags_default_off(self):
        args = build_parser().parse_args(["cluster", "x.txt"])
        assert args.log_level is None
        assert not args.log_json
        assert args.metrics_out is None

    def test_log_level_emits_run_logs(self, toy_text_file, capsys):
        code = main(
            ["--log-level", "INFO", "cluster", toy_text_file, "-k", "2", "-c", "2"]
        )
        assert code == 0
        err = capsys.readouterr().err
        assert "repro.core.cluseq" in err
        assert "iteration" in err

    def test_log_json_emits_json_lines(self, toy_text_file, capsys):
        import json

        code = main(
            ["--log-json", "cluster", toy_text_file, "-k", "2", "-c", "2"]
        )
        assert code == 0
        err = capsys.readouterr().err
        records = [json.loads(line) for line in err.strip().splitlines()]
        assert records, "expected at least one JSON log line"
        assert all("ts" in r and "level" in r and "logger" in r for r in records)
        assert any(r["logger"] == "repro.core.cluseq" for r in records)

    def test_no_flags_stays_silent(self, toy_text_file, capsys):
        code = main(["cluster", toy_text_file, "-k", "2", "-c", "2"])
        assert code == 0
        assert capsys.readouterr().err == ""


class TestTelemetryV2Flags:
    def test_telemetry_dir_writes_v2_and_prom(self, toy_text_file, tmp_path, capsys):
        import json

        tele_dir = tmp_path / "tele"
        tele_dir.mkdir()
        code = main(
            ["cluster", toy_text_file, "-k", "2", "-c", "2",
             "--telemetry-dir", str(tele_dir)]
        )
        assert code == 0
        doc = json.loads((tele_dir / "telemetry.json").read_text())
        assert doc["schema"] == "repro.telemetry/v2"
        # the profiler was active: kernel timings were collected
        assert doc["profile"]["kernels"]
        prom = (tele_dir / "metrics.prom").read_text()
        assert "# TYPE" in prom
        assert "telemetry v2 written to" in capsys.readouterr().err

    def test_trace_out_writes_trace(self, toy_text_file, tmp_path, capsys):
        from repro.obs import get_span_exporter, read_trace

        trace_path = tmp_path / "trace.jsonl"
        code = main(
            ["cluster", toy_text_file, "-k", "2", "-c", "2",
             "--trace-out", str(trace_path)]
        )
        assert code == 0
        header, spans = read_trace(trace_path)
        assert header["schema"] == "repro.trace/v1"
        assert any(s["path"].startswith("cluseq.") for s in spans)
        assert get_span_exporter() is None  # uninstalled after the run
        assert "trace written to" in capsys.readouterr().err

    def test_stream_telemetry_flags(self, tmp_path, capsys):
        import json

        db = generate_two_cluster_toy(size_per_cluster=12, length=25, seed=3)
        stream_path = tmp_path / "stream.txt"
        write_labelled_text(db, stream_path)
        tele_dir = tmp_path / "tele"
        tele_dir.mkdir()
        trace_path = tmp_path / "stream_trace.jsonl"
        code = main(
            ["stream", str(stream_path), "--alphabet", "ab",
             "--batch-size", "8", "-c", "2",
             "--telemetry-dir", str(tele_dir),
             "--trace-out", str(trace_path)]
        )
        assert code == 0
        doc = json.loads((tele_dir / "telemetry.json").read_text())
        assert "stream.batches" in doc["metrics"]
        from repro.obs import read_trace

        _, spans = read_trace(trace_path)
        batch_spans = [s for s in spans if s["name"] == "stream.batch"]
        assert batch_spans
        # every micro-batch rides the same engine-lifetime trace
        assert len({s["trace"] for s in batch_spans}) == 1
        capsys.readouterr()

    def test_metrics_out_still_writes_v1(self, toy_text_file, tmp_path, capsys):
        import json

        v1_path = tmp_path / "v1.json"
        tele_dir = tmp_path / "tele"
        tele_dir.mkdir()
        code = main(
            ["--metrics-out", str(v1_path),
             "cluster", toy_text_file, "-k", "2", "-c", "2",
             "--telemetry-dir", str(tele_dir)]
        )
        assert code == 0
        assert json.loads(v1_path.read_text())["schema"] == "repro.telemetry/v1"
        assert (tele_dir / "telemetry.json").exists()
        capsys.readouterr()

    def test_trace_out_unwritable_dir_fails_fast(self, toy_text_file, capsys):
        with pytest.raises(SystemExit):
            main(["cluster", toy_text_file,
                  "--trace-out", "/nonexistent-dir/trace.jsonl"])
        assert "--trace-out" in capsys.readouterr().err


class TestTelemetrySubcommand:
    def _write_v2(self, tmp_path):
        from repro.obs import MetricsRegistry, write_telemetry_json

        registry = MetricsRegistry()
        registry.counter("stream.batches").inc(5)
        return write_telemetry_json(tmp_path / "telemetry.json", registry)

    def test_table_format(self, tmp_path, capsys):
        path = self._write_v2(tmp_path)
        assert main(["telemetry", str(path)]) == 0
        out = capsys.readouterr().out
        assert "repro.telemetry/v2" in out
        assert "stream.batches" in out

    def test_prom_format(self, tmp_path, capsys):
        path = self._write_v2(tmp_path)
        assert main(["telemetry", str(path), "--format", "prom"]) == 0
        assert "repro_stream_batches_total 5" in capsys.readouterr().out

    def test_json_format_roundtrips(self, tmp_path, capsys):
        import json

        path = self._write_v2(tmp_path)
        assert main(["telemetry", str(path), "--format", "json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["metrics"]["stream.batches"]["value"] == 5

    def test_rejects_non_telemetry_file(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text('{"no": "metrics"}')
        assert main(["telemetry", str(bad)]) == 1
        assert "not a telemetry document" in capsys.readouterr().err

    def test_rejects_missing_file(self, tmp_path, capsys):
        assert main(["telemetry", str(tmp_path / "gone.json")]) == 1
        assert "cannot read" in capsys.readouterr().err
