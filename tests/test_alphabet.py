"""Tests for repro.sequences.alphabet."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sequences.alphabet import (
    AMINO_ACIDS,
    NUCLEOTIDES,
    Alphabet,
    AlphabetError,
)


class TestConstruction:
    def test_basic(self):
        ab = Alphabet("ab")
        assert ab.size == 2
        assert list(ab) == ["a", "b"]

    def test_duplicate_symbols_rejected(self):
        with pytest.raises(AlphabetError, match="duplicate"):
            Alphabet("aba")

    def test_empty_rejected(self):
        with pytest.raises(AlphabetError):
            Alphabet("")

    def test_from_sequences_orders_by_first_appearance(self):
        ab = Alphabet.from_sequences(["cab", "dab"])
        assert ab.symbols == ("c", "a", "b", "d")

    def test_protein(self):
        assert Alphabet.protein().size == 20
        assert "".join(Alphabet.protein().symbols) == AMINO_ACIDS

    def test_dna(self):
        assert "".join(Alphabet.dna().symbols) == NUCLEOTIDES

    def test_lowercase(self):
        assert Alphabet.lowercase().size == 26

    def test_generic_small_uses_letters(self):
        ab = Alphabet.generic(4)
        assert ab.symbols == ("a", "b", "c", "d")

    def test_generic_large_uses_tokens(self):
        ab = Alphabet.generic(30)
        assert ab.size == 30
        assert ab.symbols[0] == "s0"

    def test_generic_invalid_size(self):
        with pytest.raises(AlphabetError):
            Alphabet.generic(0)


class TestEncoding:
    def test_roundtrip(self):
        ab = Alphabet("xyz")
        encoded = ab.encode("zyxzy")
        assert encoded == [2, 1, 0, 2, 1]
        assert ab.decode(encoded) == ("z", "y", "x", "z", "y")

    def test_decode_to_string(self):
        ab = Alphabet("ab")
        assert ab.decode_to_string([0, 1, 1]) == "abb"

    def test_unknown_symbol_raises(self):
        ab = Alphabet("ab")
        with pytest.raises(AlphabetError, match="not in alphabet"):
            ab.encode("abc")

    def test_id_of_unknown_raises(self):
        with pytest.raises(AlphabetError):
            Alphabet("ab").id_of("q")

    def test_symbol_of_out_of_range(self):
        with pytest.raises(AlphabetError):
            Alphabet("ab").symbol_of(5)
        with pytest.raises(AlphabetError):
            Alphabet("ab").symbol_of(-1)

    def test_contains(self):
        ab = Alphabet("ab")
        assert "a" in ab
        assert "z" not in ab

    def test_is_valid(self):
        ab = Alphabet("ab")
        assert ab.is_valid("abba")
        assert not ab.is_valid("abc")


class TestEquality:
    def test_equal_alphabets(self):
        assert Alphabet("ab") == Alphabet("ab")
        assert hash(Alphabet("ab")) == hash(Alphabet("ab"))

    def test_order_matters(self):
        assert Alphabet("ab") != Alphabet("ba")

    def test_not_equal_other_type(self):
        assert Alphabet("ab") != "ab"

    def test_repr_small_and_large(self):
        assert "'a'" in repr(Alphabet("ab"))
        assert "26 symbols" in repr(Alphabet.lowercase())


@given(st.lists(st.sampled_from("abcde"), min_size=0, max_size=50))
def test_encode_decode_roundtrip_property(symbols):
    ab = Alphabet("abcde")
    assert list(ab.decode(ab.encode(symbols))) == symbols


@given(st.lists(st.integers(min_value=0, max_value=4), min_size=0, max_size=50))
def test_decode_encode_roundtrip_property(ids):
    ab = Alphabet("abcde")
    assert ab.encode(ab.decode(ids)) == ids
