"""Shared-memory segment hygiene for the parallel scoring path.

The shm module's contract (see src/repro/core/backends/shm.py) is that
segments never outlive their usefulness: publish/attach round-trips are
zero-copy and bit-exact, refcounts hold stale segments alive only while
a prescore is in flight, version bumps (new flat objects) drop the old
segments, and pool shutdown — including a simulated worker crash —
leaves nothing behind in ``/dev/shm``.
"""

from __future__ import annotations

import gc
import os
from multiprocessing.shared_memory import SharedMemory

import numpy as np
import pytest

from repro.core.backends import PstBatchScorer, ScoringPool
from repro.core.backends.parallel import score_matrix_raw
from repro.core.backends.shm import (
    ARRAY_FIELDS,
    ShmFlatStore,
    attach_flat,
    publish_flat,
    specs_for,
)
from repro.core.backends.vectorized import log_background, pad_sequences
from repro.core.pst import ProbabilisticSuffixTree


def _build_pst(seed: int = 7, alphabet: int = 6) -> ProbabilisticSuffixTree:
    rng = np.random.default_rng(seed)
    pst = ProbabilisticSuffixTree(
        alphabet_size=alphabet, max_depth=4, significance_threshold=2
    )
    for _ in range(8):
        pst.add_sequence([int(s) for s in rng.integers(0, alphabet, 40)])
    return pst


def _sequences(seed: int, count: int, alphabet: int = 6) -> list[list[int]]:
    rng = np.random.default_rng(seed)
    return [
        [int(s) for s in rng.integers(0, alphabet, int(length))]
        for length in rng.integers(5, 40, count)
    ]


def _segment_exists(name: str) -> bool:
    """Whether the named segment is still linked (attachable)."""
    try:
        shm = SharedMemory(name=name)
    except FileNotFoundError:
        return False
    shm.close()
    return True


def _dev_shm_leftovers() -> list[str]:
    """This process's cluseq segments still present in /dev/shm."""
    root = "/dev/shm"
    if not os.path.isdir(root):  # pragma: no cover - non-Linux fallback
        return []
    prefix = f"cluseq-{os.getpid()}-"
    return [n for n in os.listdir(root) if n.startswith(prefix)]


class TestPublishAttachRoundTrip:
    def test_attached_flat_is_bit_identical(self):
        flat = _build_pst().flattened()
        shm, spec = publish_flat(flat)
        try:
            worker_shm, rebuilt = attach_flat(spec)
            try:
                assert rebuilt.version == flat.version
                assert rebuilt.alphabet_size == flat.alphabet_size
                assert rebuilt.max_depth == flat.max_depth
                assert rebuilt.p_min == flat.p_min
                for field in ARRAY_FIELDS:
                    original = getattr(flat, field)
                    view = getattr(rebuilt, field)
                    assert np.array_equal(original, view)
                    assert view.dtype == original.dtype
                    # Zero-copy: the view maps the segment, read-only.
                    assert not view.flags.writeable
                    assert not view.flags.owndata
                    del view
            finally:
                # The rebuilt flat's arrays are buffer exports over the
                # mapping — drop them before closing, as the worker
                # cache does.
                del rebuilt
                worker_shm.close()
        finally:
            shm.close()
            shm.unlink()
        assert not _segment_exists(spec.name)

    def test_segment_names_are_deterministic(self):
        flat = _build_pst().flattened()
        shm_a, spec_a = publish_flat(flat)
        shm_b, spec_b = publish_flat(flat)
        try:
            prefix = f"cluseq-{os.getpid()}-"
            assert spec_a.name.startswith(prefix)
            assert spec_b.name.startswith(prefix)
            counter_a = int(spec_a.name.rsplit("-", 1)[1])
            counter_b = int(spec_b.name.rsplit("-", 1)[1])
            assert counter_b == counter_a + 1
        finally:
            for shm in (shm_a, shm_b):
                shm.close()
                shm.unlink()

    def test_spec_pickles_small(self):
        import pickle

        flat = _build_pst().flattened()
        shm, spec = publish_flat(flat)
        try:
            wire = pickle.dumps(spec)
            # The whole point of the shm path: the wire form must not
            # scale with the model tables.
            assert len(wire) < 2048
            assert len(wire) < spec.nbytes
        finally:
            shm.close()
            shm.unlink()


class TestStoreLifecycle:
    def test_pin_release_refcounts(self):
        store = ShmFlatStore()
        flat = _build_pst().flattened()
        spec = store.pin(flat)
        assert store.refcount_of(flat) == 1
        # Re-pinning the same flat reuses the segment, no republish.
        again = store.pin(flat)
        assert again.name == spec.name
        assert store.refcount_of(flat) == 2
        assert store.segment_names == [spec.name]
        store.release(flat)
        assert store.refcount_of(flat) == 1
        # Live (not stale) segments survive hitting refcount zero.
        store.release(flat)
        assert store.refcount_of(flat) == 0
        assert _segment_exists(spec.name)
        store.close()
        assert not _segment_exists(spec.name)

    def test_version_bump_drops_stale_segment(self):
        store = ShmFlatStore()
        pst = _build_pst()
        old_flat = pst.flattened()
        old_spec = store.pin(old_flat)
        store.release(old_flat)
        # Mutate the tree: the next export is a new flat object with a
        # bumped version — identity is the (tree, version) key.
        pst.add_sequence([0, 1, 2, 3])
        new_flat = pst.flattened()
        assert new_flat is not old_flat
        assert new_flat.version > old_flat.version
        specs = specs_for(store, [new_flat])
        # sync() inside specs_for marked the old segment stale; with no
        # pins in flight it is unlinked immediately.
        assert not _segment_exists(old_spec.name)
        assert [spec.version for spec in specs] == [new_flat.version]
        assert _segment_exists(specs[0].name)
        store.close()
        assert not _segment_exists(specs[0].name)

    def test_stale_segment_survives_until_unpinned(self):
        store = ShmFlatStore()
        pst = _build_pst()
        old_flat = pst.flattened()
        old_spec = store.pin(old_flat)  # in-flight prescore holds a pin
        pst.add_sequence([1, 2, 1, 2])
        store.sync([pst.flattened()])
        # Stale but pinned: the in-flight chunk may still be attaching.
        assert _segment_exists(old_spec.name)
        store.release(old_flat)
        assert not _segment_exists(old_spec.name)
        store.close()

    def test_close_is_idempotent(self):
        store = ShmFlatStore()
        flat = _build_pst().flattened()
        spec = store.pin(flat)
        store.close()
        store.close()
        assert not _segment_exists(spec.name)
        assert _dev_shm_leftovers() == []


class TestPoolHygiene:
    def test_pool_prescore_matches_in_process(self):
        psts = [_build_pst(seed) for seed in (3, 4, 5)]
        flats = [pst.flattened() for pst in psts]
        sequences = _sequences(11, 25)
        background = np.full(psts[0].alphabet_size, 1.0 / psts[0].alphabet_size)
        log_bg = log_background(background)
        expected = score_matrix_raw(flats, sequences, log_bg)
        with ScoringPool(2) as pool:
            got = pool.prescore_lists(flats, sequences, log_bg)
        assert got == expected  # bit-identical, worker count invisible

    def test_pool_shutdown_leaves_no_segments(self):
        psts = [_build_pst(seed) for seed in (3, 4)]
        flats = [pst.flattened() for pst in psts]
        sequences = _sequences(12, 10)
        log_bg = log_background(
            np.full(psts[0].alphabet_size, 1.0 / psts[0].alphabet_size)
        )
        pool = ScoringPool(1)
        padded, lengths = pad_sequences(sequences)
        pool.prescore_matrix(flats, padded, lengths, log_bg)
        names = list(pool._resources.store.segment_names)
        assert len(names) == len(flats)
        pool.close()
        pool.close()  # idempotent
        assert pool.closed
        for name in names:
            assert not _segment_exists(name)
        assert _dev_shm_leftovers() == []
        with pytest.raises(RuntimeError):
            pool.prescore_matrix(flats, padded, lengths, log_bg)

    def test_finalizer_reclaims_forgotten_pool(self):
        psts = [_build_pst(seed) for seed in (6, 7)]
        flats = [pst.flattened() for pst in psts]
        sequences = _sequences(13, 8)
        log_bg = log_background(
            np.full(psts[0].alphabet_size, 1.0 / psts[0].alphabet_size)
        )
        pool = ScoringPool(1)
        padded, lengths = pad_sequences(sequences)
        pool.prescore_matrix(flats, padded, lengths, log_bg)
        names = list(pool._resources.store.segment_names)
        assert names
        del pool  # no close(): the weakref.finalize hook must fire
        gc.collect()
        for name in names:
            assert not _segment_exists(name)
        assert _dev_shm_leftovers() == []

    def test_worker_crash_does_not_leak_segments(self):
        psts = [_build_pst(seed) for seed in (8, 9)]
        flats = [pst.flattened() for pst in psts]
        sequences = _sequences(14, 8)
        log_bg = log_background(
            np.full(psts[0].alphabet_size, 1.0 / psts[0].alphabet_size)
        )
        pool = ScoringPool(1)
        padded, lengths = pad_sequences(sequences)
        pool.prescore_matrix(flats, padded, lengths, log_bg)
        names = list(pool._resources.store.segment_names)
        executor = pool._resources.executor
        assert executor is not None
        # Simulate a worker crash: kill the worker processes while they
        # still hold segment mappings. The parent's unlink (via close)
        # must still clear /dev/shm — POSIX keeps the memory alive for
        # mappers, but the *name* must go.
        for process in list(executor._processes.values()):
            process.terminate()
            process.join()
        pool.close()
        for name in names:
            assert not _segment_exists(name)
        assert _dev_shm_leftovers() == []


class TestPoolReset:
    """A long-running server must survive a crashed worker pool."""

    def test_reset_recovers_from_worker_crash(self):
        from concurrent.futures.process import BrokenProcessPool

        psts = [_build_pst(seed) for seed in (15, 16)]
        flats = [pst.flattened() for pst in psts]
        sequences = _sequences(17, 12)
        log_bg = log_background(
            np.full(psts[0].alphabet_size, 1.0 / psts[0].alphabet_size)
        )
        expected = score_matrix_raw(flats, sequences, log_bg)
        pool = ScoringPool(1)
        try:
            assert pool.prescore_lists(flats, sequences, log_bg) == expected
            assert pool.probe()
            # Crash the worker: the executor is now permanently broken
            # and poisons every later submit.
            executor = pool._resources.executor
            assert executor is not None
            for process in list(executor._processes.values()):
                process.terminate()
                process.join()
            padded, lengths = pad_sequences(sequences)
            with pytest.raises(BrokenProcessPool):
                pool.prescore_matrix(flats, padded, lengths, log_bg)
            assert not pool.probe()
            stale = list(pool._resources.store.segment_names)
            pool.reset()
            # The old store's segments were unlinked by the reset...
            for name in stale:
                assert not _segment_exists(name)
            # ...and the fresh executor scores bit-identically again.
            assert not pool.closed
            assert pool.probe()
            assert pool.prescore_lists(flats, sequences, log_bg) == expected
        finally:
            pool.close()
        assert _dev_shm_leftovers() == []

    def test_reset_on_closed_pool_raises(self):
        pool = ScoringPool(1)
        pool.close()
        with pytest.raises(RuntimeError, match="closed"):
            pool.reset()
        assert not pool.probe()

    def test_finalizer_still_reclaims_after_reset(self):
        psts = [_build_pst(seed) for seed in (18, 19)]
        flats = [pst.flattened() for pst in psts]
        sequences = _sequences(20, 6)
        log_bg = log_background(
            np.full(psts[0].alphabet_size, 1.0 / psts[0].alphabet_size)
        )
        pool = ScoringPool(1)
        padded, lengths = pad_sequences(sequences)
        pool.prescore_matrix(flats, padded, lengths, log_bg)
        pool.reset()
        pool.prescore_matrix(flats, padded, lengths, log_bg)
        names = list(pool._resources.store.segment_names)
        assert names
        del pool  # the re-armed finalizer must reclaim the new resources
        gc.collect()
        for name in names:
            assert not _segment_exists(name)
        assert _dev_shm_leftovers() == []
